#ifndef AMICI_SERVICE_SHARDED_SEARCH_SERVICE_H_
#define AMICI_SERVICE_SHARDED_SEARCH_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "service/search_service.h"
#include "service/service_persistence.h"
#include "storage/stable_column.h"
#include "util/thread_pool.h"

namespace amici {

/// The partitioned backend: items are hash-partitioned across N
/// single-node engines; the friendship graph and the proximity score
/// cache live in ONE SharedProximityProvider that every shard engine
/// consumes — one graph instance and one proximity computation per
/// cache-missed (user, generation), no matter the shard count. A request
/// fans out to every shard on a thread pool and the per-shard top-k
/// lists are merged exactly on (score desc, global id asc).
///
/// Why the merge is exact: an item's blended score depends only on the
/// item itself, the query, and the owner's proximity — and proximity is
/// computed on the one shared graph, identically everywhere. Any item in
/// the global top-k therefore also ranks in its own shard's top-k, so the
/// union of per-shard top-k lists contains the global top-k, and merging
/// on score reproduces it bit-for-bit (tests/service/
/// sharded_invariance_test.cc asserts this against LocalSearchService
/// for plain, diverse, geo-filtered and batch requests).
///
/// Id spaces: callers see GLOBAL ids, assigned densely in ingest order
/// exactly like a single engine would. Internally each shard has its own
/// dense local id space; the service keeps both directions of the
/// mapping in pointer-stable columns so queries can translate
/// concurrently with ingest. Because items are appended to shards in
/// global order, local id order within a shard agrees with global order —
/// which is what makes the tie-break (ascending id) consistent between
/// the per-shard heaps and the global merge.
///
/// Thread-safety mirrors the engine contract: queries from any number of
/// threads, concurrently with mutators; mutators serialize on a service
/// writer mutex (shard engines additionally serialize internally).
/// Consistency note: a fanned-out request pins each shard's snapshot
/// independently, so an ingest racing a query may be visible on some
/// shards and not yet on others — each shard's contribution is exact for
/// the state it pinned (the usual freshness relaxation of distributed
/// search; quiesced states match the local backend: identical float
/// scores at every rank, identical items except for selection among
/// entries whose float-rounded scores tie exactly).
class ShardedSearchService final : public SearchService {
 public:
  struct Options {
    /// Number of partitions; >= 1.
    size_t num_shards = 4;
    /// Applied to every shard engine. The proximity knobs
    /// (proximity_model / proximity_cache_capacity /
    /// proximity_warm_top_n) configure the ONE SharedProximityProvider
    /// Build creates and hands to every shard;
    /// engine.proximity_provider itself must be left null (Build owns
    /// provider construction).
    SocialSearchEngine::Options engine;
    /// Fan-out worker threads; 0 sizes the pool to min(num_shards,
    /// hardware concurrency).
    size_t fanout_threads = 0;
  };

  /// Builds the service over `graph` and `store` (both consumed): items
  /// are dealt to shards by id hash, the graph moves into the one shared
  /// ProximityProvider all shards consume.
  static Result<std::unique_ptr<ShardedSearchService>> Build(
      SocialGraph graph, ItemStore store, Options options);

  /// Reopens a service from a snapshot directory written by
  /// SaveSnapshot: restores the one shared graph from the root segment,
  /// maps every shard's segments, deterministically rebuilds the global
  /// <-> local id maps (placement is a pure function of the global id
  /// and the shard count), replays the WAL's committed tail through the
  /// normal mutators, and attaches the WAL. The shard count comes from
  /// the root manifest; options.num_shards is ignored. `replay_stats`,
  /// when non-null, receives what the replay did.
  static Result<std::unique_ptr<ShardedSearchService>> OpenSnapshot(
      const std::string& dir, Options options,
      const persist::SnapshotOpenOptions& open_options =
          persist::SnapshotOpenOptions(),
      persist::WalReplayStats* replay_stats = nullptr);

  /// Joins the background ingest/compaction threads before the shards go
  /// away (they drain through this object's mutators).
  ~ShardedSearchService() override;

  std::string_view backend_name() const override { return backend_label_; }
  size_t num_shards() const override { return shards_.size(); }

  /// Per-shard compaction surface: the background scheduler triggers
  /// exactly the shards whose policy fires, instead of the fleet-wide
  /// Compact(). Signals are read from each shard engine's snapshot and
  /// stats — safe concurrently with queries and ingest.
  CompactionSignals ShardSignals(size_t shard) const override;
  Status CompactShard(size_t shard,
                      CompactionOutcome* outcome = nullptr) override;

  Result<std::vector<TagSuggestion>> SuggestTags(
      UserId user, std::span<const TagId> seed_tags,
      const QueryExpansionOptions& options) override;

  /// Sum of the per-shard estimates (each shard runs the query against
  /// its own lists and tail).
  uint64_t EstimateQueryCost(const SocialQuery& query) const override;

  /// The one provider shared by every shard engine.
  std::shared_ptr<ProximityProvider> proximity_provider() const override {
    return provider_;
  }

  /// Escape hatch for tests/tooling that inspect a shard's engine (e.g.
  /// asserting every shard snapshot pins the SAME graph instance).
  SocialSearchEngine* shard_engine(size_t shard) {
    return shards_[shard].get();
  }

  Result<ItemId> AddItem(const Item& item) override;
  Result<std::vector<ItemId>> AddItems(std::span<const Item> items) override;
  Status AddFriendship(UserId u, UserId v) override;
  Status RemoveFriendship(UserId u, UserId v) override;
  Status Compact() override;
  Result<persist::SnapshotSaveReport> SaveSnapshot(
      const std::string& dir) override;

  size_t num_users() const override;
  /// Ids admitted so far. May briefly LEAD query visibility while an
  /// append is in flight (it never lags it: any id a response contains is
  /// already counted). Do not derive readable ids from it during
  /// concurrent ingest — see OwnerOf.
  size_t num_items() const override {
    return num_items_.load(std::memory_order_acquire);
  }
  size_t unindexed_items() const override;
  /// `item` must be a published id (obtained from a response or an Add
  /// return value) — ids merely admitted by an in-flight append are not
  /// yet readable.
  UserId OwnerOf(ItemId item) const override;
  std::vector<TagId> TagsOf(ItemId item) const override;
  std::vector<UserId> FriendsOf(UserId user) const override;
  std::string StatsSummary() const override;

 protected:
  Result<SearchResponse> SearchImpl(const SearchRequest& request) override;
  std::vector<Result<SearchResponse>> SearchBatchImpl(
      std::span<const SearchRequest> requests) override;

 private:
  /// Where a global item lives. Trivially copyable: stored in a
  /// StableColumn read concurrently with ingest.
  struct ShardRef {
    uint32_t shard;
    ItemId local;
  };

  explicit ShardedSearchService(Options options);

  uint32_t ShardOf(ItemId global) const;

  /// FanOutOnPool over this service's pool: fn(0) on the calling thread,
  /// the rest on the workers, per-call completion tracking.
  void RunFanOut(size_t count, const std::function<void(size_t)>& fn) const;

  /// True when any shard's current snapshot covers geo items (the
  /// precondition for honouring a geo-grid hint somewhere).
  bool AnyShardHasGeoItems() const;

  /// Executes `query` on shard `s` (honouring the algorithm hint, with an
  /// exact hybrid fallback where the hint cannot apply locally —
  /// `geo_fallback_allowed` is AnyShardHasGeoItems() computed once per
  /// request) and translates result ids to the global space. `cancel`
  /// (null = never) is the row's deadline/abandonment token, probed
  /// cooperatively inside the shard's algorithm — an abandoned row's
  /// stragglers exit early instead of occupying pool slots.
  Result<QueryResult> QueryShard(size_t s, const SocialQuery& query,
                                 std::optional<AlgorithmId> hint,
                                 bool geo_fallback_allowed,
                                 const CancellationToken* cancel) const;

  /// Shared fan-out/merge loop behind Search and SearchBatch.
  std::vector<Result<SearchResponse>> ExecuteRequests(
      std::span<const SearchRequest> requests);

  /// Appends the mapping rows for global id `global` -> (shard, local).
  void RecordPlacementLocked(ItemId global, uint32_t shard, ItemId local);

  Options options_;
  std::string backend_label_;  // "sharded/<N>"
  /// The one graph + proximity surface every shard engine consumes.
  std::shared_ptr<ProximityProvider> provider_;
  std::vector<std::unique_ptr<SocialSearchEngine>> shards_;
  /// global id -> (shard, local id). Readers only touch rows of items
  /// already visible through some pinned shard snapshot; the engine's
  /// snapshot publish provides the release/acquire edge that makes the
  /// row's writes visible (see StableColumn's concurrency contract).
  StableColumn<ShardRef> global_to_shard_;
  /// Per shard: local id -> global id. Same visibility argument.
  std::vector<StableColumn<ItemId>> local_to_global_;
  std::unique_ptr<ThreadPool> pool_;
  /// Serializes mutators (item ingest, friendship edits).
  std::mutex writer_mutex_;
  std::atomic<size_t> num_items_{0};
  /// Snapshot attachment + WAL; guarded by writer_mutex_.
  ServicePersistState persist_;
};

}  // namespace amici

#endif  // AMICI_SERVICE_SHARDED_SEARCH_SERVICE_H_
