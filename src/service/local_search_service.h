#ifndef AMICI_SERVICE_LOCAL_SEARCH_SERVICE_H_
#define AMICI_SERVICE_LOCAL_SEARCH_SERVICE_H_

#include <memory>
#include <mutex>
#include <vector>

#include "service/search_service.h"
#include "service/service_persistence.h"
#include "util/thread_pool.h"

namespace amici {

/// The single-node backend: a thin adapter over one SocialSearchEngine.
/// Global item ids coincide with the engine's ids, so the adapter is
/// mostly plumbing — it exists so that every caller speaks SearchService
/// and swapping in a partitioned backend is a one-line change.
class LocalSearchService final : public SearchService {
 public:
  struct Options {
    /// Forwarded to SocialSearchEngine::Build.
    SocialSearchEngine::Options engine;
    /// Worker threads for SearchBatch; 0 runs batches inline.
    size_t batch_threads = 0;
  };

  /// Builds an engine over `graph` and `store` (both consumed) and wraps
  /// it.
  static Result<std::unique_ptr<LocalSearchService>> Build(
      SocialGraph graph, ItemStore store, Options options);
  static Result<std::unique_ptr<LocalSearchService>> Build(SocialGraph graph,
                                                           ItemStore store);

  /// Reopens a service from a snapshot directory written by
  /// SaveSnapshot: maps the shard-0 segments, restores the graph from
  /// the root segment, replays the WAL's committed tail through the
  /// normal mutators, and attaches the WAL so new mutations keep being
  /// logged. `replay_stats`, when non-null, receives what the replay did
  /// (records applied, torn tail dropped).
  static Result<std::unique_ptr<LocalSearchService>> OpenSnapshot(
      const std::string& dir, Options options,
      const persist::SnapshotOpenOptions& open_options =
          persist::SnapshotOpenOptions(),
      persist::WalReplayStats* replay_stats = nullptr);

  /// Wraps an already-built engine — the migration path for callers that
  /// construct engines directly (custom proximity models, ablation
  /// options).
  explicit LocalSearchService(std::unique_ptr<SocialSearchEngine> engine,
                              size_t batch_threads = 0);

  /// Joins the background ingest/compaction threads before the engine
  /// goes away (they drain through this object's mutators).
  ~LocalSearchService() override;

  std::string_view backend_name() const override { return "local"; }
  size_t num_shards() const override { return 1; }
  CompactionSignals ShardSignals(size_t shard) const override;
  Status CompactShard(size_t shard,
                      CompactionOutcome* outcome = nullptr) override;

  Result<std::vector<TagSuggestion>> SuggestTags(
      UserId user, std::span<const TagId> seed_tags,
      const QueryExpansionOptions& options) override;

  /// Per-tag document frequencies (min for kAll, sum for kAny) + the
  /// un-indexed tail every query scans.
  uint64_t EstimateQueryCost(const SocialQuery& query) const override;

  /// The engine's provider (created by Build, or adopted from a wrapped
  /// engine).
  std::shared_ptr<ProximityProvider> proximity_provider() const override {
    return engine_->shared_proximity();
  }

  Result<ItemId> AddItem(const Item& item) override;
  Result<std::vector<ItemId>> AddItems(std::span<const Item> items) override;
  Status AddFriendship(UserId u, UserId v) override;
  Status RemoveFriendship(UserId u, UserId v) override;
  Status Compact() override;
  Result<persist::SnapshotSaveReport> SaveSnapshot(
      const std::string& dir) override;

  size_t num_users() const override;
  size_t num_items() const override;
  size_t unindexed_items() const override;
  UserId OwnerOf(ItemId item) const override;
  std::vector<TagId> TagsOf(ItemId item) const override;
  std::vector<UserId> FriendsOf(UserId user) const override;
  std::string StatsSummary() const override;

  /// Escape hatch for engine-level tooling (benches reading build stats).
  SocialSearchEngine* engine() { return engine_.get(); }

 protected:
  /// Derives a CancellationToken from request.timeout_ms and runs the
  /// engine query under it: an expired deadline stops the algorithm
  /// mid-run (stats.truncated); deadline_exceeded also reports post-hoc
  /// overruns the token was too late to prevent.
  Result<SearchResponse> SearchImpl(const SearchRequest& request) override;
  /// Fans SearchImpl per row — each row derives its OWN token, so a
  /// batch with mixed timeouts degrades per row.
  std::vector<Result<SearchResponse>> SearchBatchImpl(
      std::span<const SearchRequest> requests) override;

 private:
  std::unique_ptr<SocialSearchEngine> engine_;
  std::unique_ptr<ThreadPool> batch_pool_;  // null = inline batches

  /// Serializes mutators at the SERVICE level so WAL order always equals
  /// apply order (the engine's own writer mutex cannot order the log
  /// appends that happen after it is released).
  std::mutex writer_mutex_;
  /// Snapshot attachment + WAL; guarded by writer_mutex_.
  ServicePersistState persist_;
};

}  // namespace amici

#endif  // AMICI_SERVICE_LOCAL_SEARCH_SERVICE_H_
