#include "service/service_persistence.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <utility>

#include "persist/fs_util.h"
#include "persist/segment.h"
#include "persist/snapshot.h"
#include "util/hash.h"

namespace amici {

std::string ShardDirPath(const std::string& dir, size_t shard) {
  return persist::JoinPath(dir, "shard-" + std::to_string(shard));
}

Result<persist::SnapshotSaveReport> SaveServiceSnapshot(
    const std::string& dir, std::span<SocialSearchEngine* const> shards,
    ProximityProvider& provider, uint64_t num_items,
    persist::SnapshotSaveOptions options, ServicePersistState* state) {
  AMICI_RETURN_IF_ERROR(persist::EnsureDir(dir));

  // Previous committed root, if any. Generation numbering always
  // continues from it (even when it is incompatible and forces full
  // shard saves) so new files never collide with files the still-live
  // old snapshot references.
  std::optional<persist::Manifest> prev;
  if (persist::FileExists(persist::JoinPath(dir, "CURRENT"))) {
    AMICI_ASSIGN_OR_RETURN(persist::Manifest loaded,
                           persist::LoadCurrentManifest(dir));
    if (loaded.num_shards == 0) {
      return Status::InvalidArgument(
          dir + " holds a bare engine snapshot; save through "
                "SocialSearchEngine::SaveSnapshot");
    }
    prev = std::move(loaded);
  }
  const bool prev_compatible =
      prev.has_value() && prev->num_shards == shards.size();
  if (!prev_compatible &&
      options.mode == persist::SnapshotSaveOptions::Mode::kIncremental) {
    return Status::FailedPrecondition(
        "incremental save impossible: no compatible previous service "
        "snapshot in " + dir);
  }
  const uint64_t generation = prev.has_value() ? prev->generation + 1 : 1;

  persist::SnapshotSaveReport report;
  report.generation = generation;
  report.incremental = prev_compatible;

  // Shards first: each writes its segments + MANIFEST-<generation> into
  // shard-<i>/ (no CURRENT there — the root manifest pins the
  // generation). Incremental against the previous root's generation
  // when available.
  std::vector<persist::Manifest> shard_manifests;
  shard_manifests.reserve(shards.size());
  for (size_t s = 0; s < shards.size(); ++s) {
    const std::string shard_dir = ShardDirPath(dir, s);
    std::optional<persist::Manifest> shard_prev;
    if (prev_compatible) {
      const std::string prev_path = persist::JoinPath(
          shard_dir, persist::ManifestFileName(prev->generation));
      if (persist::FileExists(prev_path)) {
        AMICI_ASSIGN_OR_RETURN(persist::Manifest loaded,
                               persist::ReadManifestFile(prev_path));
        shard_prev = std::move(loaded);
      }
    }
    persist::SnapshotSaveOptions shard_options = options;
    shard_options.include_graph = false;  // ONE graph, at the root
    shard_options.graph_unchanged_since_prev = false;
    persist::SnapshotSaveReport shard_report;
    AMICI_ASSIGN_OR_RETURN(
        persist::Manifest manifest,
        shards[s]->WriteSnapshotFiles(
            shard_dir, generation, shard_prev ? &*shard_prev : nullptr,
            shard_options, &shard_report));
    report.segments_written += shard_report.segments_written;
    report.lists_written += shard_report.lists_written;
    report.bytes_written += shard_report.bytes_written;
    report.incremental = report.incremental && shard_report.incremental;
    shard_manifests.push_back(std::move(manifest));
  }

  // The one shared graph, at the root. Skipped (segment carried over)
  // when this process knows the committed segment already holds the
  // current generation's bytes.
  const ProximityProvider::GraphView view = provider.Acquire();
  const bool graph_unchanged =
      prev_compatible && state->attached && state->dir == dir &&
      state->root.generation == prev->generation &&
      state->saved_graph_version == view.generation;
  persist::SegmentInfo graph_info;
  bool have_graph_info = false;
  if (graph_unchanged) {
    for (const persist::SegmentInfo& info : prev->segments) {
      if (info.kind == persist::SegmentKind::kGraph) {
        graph_info = info;
        have_graph_info = true;
        break;
      }
    }
  }
  if (!have_graph_info) {
    const std::string payload = persist::BuildGraphSegmentPayload(*view.graph);
    graph_info.kind = persist::SegmentKind::kGraph;
    graph_info.generation = generation;
    char name[32];
    std::snprintf(name, sizeof(name), "graph-%06llu.seg",
                  static_cast<unsigned long long>(generation));
    graph_info.file = name;
    graph_info.payload_bytes = payload.size();
    graph_info.checksum = Fnv1a64(payload);
    graph_info.entries = view.graph->num_edges();
    AMICI_RETURN_IF_ERROR(persist::WriteSegmentFile(
        persist::JoinPath(dir, graph_info.file), persist::SegmentKind::kGraph,
        payload, graph_info.checksum));
    ++report.segments_written;
    report.bytes_written += payload.size() + persist::kSegmentHeaderSize;
  }

  // Fresh (empty) WAL for the new snapshot, durable BEFORE the commit
  // names it.
  const std::string wal_name = persist::WalFileName(generation);
  AMICI_ASSIGN_OR_RETURN(
      std::unique_ptr<persist::WalWriter> wal,
      persist::WalWriter::Create(persist::JoinPath(dir, wal_name),
                                 generation));

  persist::Manifest root;
  root.generation = generation;
  root.num_users = provider.num_users();
  root.num_items = num_items;
  root.graph_version = view.generation;
  root.num_shards = static_cast<uint32_t>(shards.size());
  root.wal_file = wal_name;
  root.segments.push_back(graph_info);
  AMICI_RETURN_IF_ERROR(persist::WriteManifestFile(dir, root));
  AMICI_RETURN_IF_ERROR(persist::SyncDir(dir));
  // THE commit point: everything above is durable, now make it live.
  AMICI_RETURN_IF_ERROR(persist::CommitCurrent(dir, generation));

  // Post-commit cleanup of superseded files (best-effort for
  // correctness, but surface IO errors).
  AMICI_RETURN_IF_ERROR(persist::RemoveRetiredFiles(dir, root));
  for (size_t s = 0; s < shards.size(); ++s) {
    AMICI_RETURN_IF_ERROR(
        persist::RemoveRetiredFiles(ShardDirPath(dir, s), shard_manifests[s]));
  }

  state->dir = dir;
  state->root = std::move(root);
  state->wal = std::move(wal);
  state->saved_graph_version = view.generation;
  state->attached = true;
  return report;
}

Result<LoadedServiceSnapshot> OpenServiceSnapshot(
    const std::string& dir, const SocialSearchEngine::Options& engine_options,
    const persist::SnapshotOpenOptions& open_options,
    ServicePersistState* state) {
  LoadedServiceSnapshot out;
  if (open_options.manifest_name.empty()) {
    AMICI_ASSIGN_OR_RETURN(out.root, persist::LoadCurrentManifest(dir));
  } else {
    AMICI_ASSIGN_OR_RETURN(
        out.root, persist::ReadManifestFile(
                      persist::JoinPath(dir, open_options.manifest_name)));
  }
  if (out.root.num_shards == 0) {
    return Status::InvalidArgument(
        dir + " holds a bare engine snapshot; open it through "
              "SocialSearchEngine::OpenSnapshot");
  }

  // The shared graph from the root segment.
  const persist::SegmentInfo* graph_info = nullptr;
  for (const persist::SegmentInfo& info : out.root.segments) {
    if (info.kind == persist::SegmentKind::kGraph) graph_info = &info;
  }
  if (graph_info == nullptr) {
    return Status::Corruption(dir + ": root manifest has no graph segment");
  }
  AMICI_ASSIGN_OR_RETURN(
      std::shared_ptr<const persist::MappedSegment> seg,
      persist::MappedSegment::Open(persist::JoinPath(dir, graph_info->file),
                                   persist::SegmentKind::kGraph,
                                   open_options.verify_checksums));
  if (seg->payload_checksum() != graph_info->checksum ||
      seg->payload().size() != graph_info->payload_bytes) {
    return Status::Corruption(graph_info->file +
                              ": segment does not match root manifest");
  }
  auto graph = persist::ParseGraphSegmentPayload(seg->payload());
  if (!graph.ok()) {
    return Status::Corruption(graph_info->file + ": " +
                              graph.status().message());
  }
  if (graph.value().num_users() != out.root.num_users) {
    return Status::Corruption(graph_info->file +
                              ": graph user count does not match manifest");
  }
  out.provider = SocialSearchEngine::MakeProximityProvider(
      std::move(graph).value(), engine_options);

  // Every shard engine against its pinned manifest generation, all
  // consuming the one provider.
  out.shards.reserve(out.root.num_shards);
  uint64_t total_items = 0;
  for (size_t s = 0; s < out.root.num_shards; ++s) {
    SocialSearchEngine::Options shard_options = engine_options;
    shard_options.proximity_provider = out.provider;
    persist::SnapshotOpenOptions shard_open = open_options;
    shard_open.manifest_name = persist::ManifestFileName(out.root.generation);
    AMICI_ASSIGN_OR_RETURN(
        std::unique_ptr<SocialSearchEngine> engine,
        SocialSearchEngine::OpenSnapshot(ShardDirPath(dir, s), shard_options,
                                         shard_open));
    total_items += engine->store().num_items();
    out.shards.push_back(std::move(engine));
  }
  if (total_items != out.root.num_items) {
    return Status::Corruption(
        dir + ": shards reconstruct " + std::to_string(total_items) +
        " items, root manifest records " + std::to_string(out.root.num_items));
  }

  state->dir = dir;
  state->root = out.root;
  state->wal = nullptr;
  state->saved_graph_version = out.provider->Acquire().generation;
  state->attached = false;
  return out;
}

Result<persist::WalReplayStats> ReplayAndAttachWal(
    ServicePersistState* state, const persist::WalReplayHandlers& handlers) {
  if (state->root.wal_file.empty()) return persist::WalReplayStats{};
  const std::string path =
      persist::JoinPath(state->dir, state->root.wal_file);
  AMICI_ASSIGN_OR_RETURN(
      persist::WalReplayStats stats,
      persist::ReplayWal(path, state->root.generation, handlers));
  AMICI_ASSIGN_OR_RETURN(
      state->wal, persist::WalWriter::OpenForAppend(path,
                                                    stats.committed_bytes));
  state->attached = true;
  return stats;
}

Status LogAddItems(ServicePersistState* state, uint64_t first_item_id,
                   std::span<const Item> items) {
  if (!state->attached) return Status::Ok();
  AMICI_RETURN_IF_ERROR(state->wal->AppendAddItems(first_item_id, items));
  return state->wal->Flush();
}

Status LogFriendship(ServicePersistState* state, bool adding, UserId u,
                     UserId v) {
  if (!state->attached) return Status::Ok();
  AMICI_RETURN_IF_ERROR(adding ? state->wal->AppendAddFriendship(u, v)
                               : state->wal->AppendRemoveFriendship(u, v));
  return state->wal->Flush();
}

}  // namespace amici
