#ifndef AMICI_SERVICE_SEARCH_SERVICE_H_
#define AMICI_SERVICE_SEARCH_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "core/query_expansion.h"
#include "core/social_query.h"
#include "ingest/compaction_scheduler.h"
#include "ingest/ingest_pipeline.h"
#include "ingest/ingest_sink.h"
#include "proximity/proximity_provider.h"
#include "service/admission_controller.h"
#include "storage/item_store.h"
#include "util/cancellation.h"
#include "util/ids.h"
#include "util/status.h"

namespace amici {

/// One query through the service surface: the SocialQuery plus the
/// options that used to be separate engine entry points (algorithm
/// override, owner diversity, deadline). A plain default-constructed
/// request with just `query` filled in reproduces the old
/// `engine.Query(query)` behaviour on any backend.
struct SearchRequest {
  SocialQuery query;
  /// Execution-strategy hint; nullopt lets the backend choose (hybrid).
  /// Backends may substitute an equivalent strategy where the hint cannot
  /// apply (e.g. geo-grid on a shard holding no geo items) — results are
  /// exact either way, only the work profile changes.
  std::optional<AlgorithmId> algorithm;
  /// Owner-diversified top-k: at most this many results from any single
  /// owner (0 = unconstrained). Exact — see SocialSearchEngine::QueryDiverse.
  size_t max_per_owner = 0;
  /// Deadline in milliseconds from request start; 0 disables. Enforced
  /// COOPERATIVELY: the service derives a CancellationToken from it that
  /// the search algorithms probe per posting-list block / candidate
  /// batch, so an expired deadline stops work *inside* a shard (stats.
  /// truncated marks the best-effort partial). The sharded backend
  /// additionally abandons whole shards at the fan-out barrier and
  /// cancels their stragglers (deadline_exceeded = true, shards_touched /
  /// shards_abandoned = how the fan-out split); the response is the
  /// exact-over-completed merge of whatever the deadline allowed.
  double timeout_ms = 0.0;
};

/// The outcome of one service request, backend-agnostic: item ids are in
/// the service's GLOBAL id space regardless of how the backend partitions
/// the catalogue.
struct SearchResponse {
  /// Best-first (score-descending, item-id-ascending tie-break) results,
  /// at most `query.k` entries.
  std::vector<ScoredItem> items;
  /// Work counters, summed across every shard that executed.
  SearchStats stats;
  /// End-to-end latency observed by the service, including fan-out and
  /// merge for partitioned backends.
  double elapsed_ms = 0.0;
  /// Which strategy executed (the hint, or the backend default). When a
  /// partitioned backend substituted an equivalent strategy on SOME
  /// shards only (see SearchRequest::algorithm), the hint's name is kept;
  /// if every shard substituted, the substitute's name is reported.
  std::string_view algorithm;
  /// Which backend served the request ("local", "sharded/4", ...).
  std::string_view backend;
  /// How many partitions contributed results. Normally the backend's
  /// shard count (1 for local); fewer when a deadline abandoned slow
  /// shards mid-fan-out or a shard failed (see shards_abandoned /
  /// shards_failed).
  size_t shards_touched = 1;
  /// Shards the deadline abandoned before they reported: their stragglers
  /// were cancelled (cooperatively) and their items are missing from this
  /// response by design. Counted even on paths the token cannot reach
  /// (e.g. a shard stuck in an un-cancellable proximity computation).
  size_t shards_abandoned = 0;
  /// Shards that completed with an error. Their items are missing; the
  /// merge is exact over the healthy shards. First error in shard_error.
  size_t shards_failed = 0;
  /// Message of the first failed shard's status ("" when none failed) —
  /// the honest-response contract surfaces partial failures here instead
  /// of discarding the healthy shards' results.
  std::string shard_error;
  /// True when a timeout_ms was set and the request overran it — cut
  /// short inside a shard (stats.truncated), at the fan-out barrier
  /// (shards_abandoned > 0, items possibly partial), or detected post-hoc
  /// (results still complete).
  bool deadline_exceeded = false;
  /// True when admission control ran this request cheaper than asked
  /// (substituted algorithm / capped k / clamped deadline — see
  /// AdmissionController::Options). Results are exact for WHAT RAN, but
  /// not what was requested.
  bool degraded = false;
  /// True when admission control refused to run this request: a
  /// well-formed empty response, not an error and never a silent drop.
  bool shed = false;
};

/// The backend-agnostic query surface: everything callers (examples,
/// benches, tests, a future RPC layer) need, with no mention of how the
/// corpus is laid out behind it. Which partition serves a request is a
/// routing decision inside the implementation, not a caller concern.
///
/// Contract shared by all implementations:
///  * Search / SearchBatch / SuggestTags are safe from any number of
///    threads, concurrently with each other AND with all mutators;
///  * AddItem / AddItems / AddFriendship / RemoveFriendship / Compact are
///    safe concurrently with queries and serialize among themselves;
///  * Search / SearchBatch results are EXACT and identical across
///    backends: the same corpus behind a local and a sharded service
///    returns the same items with the same scores (see
///    tests/service/sharded_invariance_test.cc). SuggestTags support
///    counts and thresholds are likewise exact everywhere; suggestion
///    WEIGHTS may differ across backends in the last float ulps
///    (per-shard float subtotals vs one double sum), which can reorder
///    near-tied tags.
///
/// The base class additionally owns the OPTIONAL background machinery of
/// the ingest subsystem (src/ingest/): an MPSC queue + writer thread
/// (StartIngest / EnqueueItems / Flush) and a background compaction
/// scheduler (StartAutoCompaction). Both drain into the implementation's
/// synchronous mutators via the IngestSink / CompactionTarget interfaces
/// the implementation provides. IMPORTANT for implementers: destructors
/// of concrete backends must call ShutdownBackgroundWork() FIRST — the
/// background threads call the implementation's virtuals and must be
/// joined while the derived object is still alive.
class SearchService : public IngestSink, public CompactionTarget {
 public:
  ~SearchService() override = default;

  /// Stable backend label ("local", "sharded/4").
  virtual std::string_view backend_name() const = 0;
  // num_shards() — number of partitions behind the surface (1 for local)
  // — is inherited from CompactionTarget, alongside ShardSignals() /
  // CompactShard(), the per-shard compaction surface the background
  // scheduler drives.

  /// Executes one request (plain or owner-diversified top-k) through the
  /// QoS edge: admission control first (when enabled — may shed or
  /// degrade, reported honestly in the response), then the backend.
  /// Non-virtual on purpose: the edge is the ONE place every query
  /// passes, whatever the backend (template method over SearchImpl).
  Result<SearchResponse> Search(const SearchRequest& request);

  /// Executes a batch; results are positionally aligned with `requests`.
  /// Backends parallelize internally where they can. Admission is
  /// per-request: some rows of one batch may run while others shed.
  std::vector<Result<SearchResponse>> SearchBatch(
      std::span<const SearchRequest> requests);

  /// Estimated work for `query` on this backend, in candidate units
  /// (posting entries the tag lists would feed the algorithm + un-indexed
  /// tail items scanned per query). Reads the current snapshot(s); cheap
  /// (per-tag document frequencies, no traversal). The admission
  /// controller's cost gates compare against this number.
  virtual uint64_t EstimateQueryCost(const SocialQuery& query) const = 0;

  // --- Query QoS: admission control + honest shedding -------------------
  // Disabled by default: without a controller the edge is a pass-through
  // and responses are bit-identical to the pre-QoS behaviour.

  /// Installs (or replaces) the admission controller at this service's
  /// query edge. Safe alongside in-flight queries: they finish under the
  /// controller they entered with.
  void EnableAdmissionControl(AdmissionController::Options options);

  /// Removes the controller; queries pass through unconditionally again.
  void DisableAdmissionControl();

  bool admission_enabled() const { return admission() != nullptr; }

  /// The live controller (null when disabled) — stats surface for benches
  /// and tests.
  std::shared_ptr<AdmissionController> admission() const;

  /// Cumulative QoS counters at this service's edge (all zero until the
  /// relevant feature fires): every Search/SearchBatch row lands in
  /// exactly one of admitted/degraded/shed.
  struct QosCounters {
    uint64_t admitted = 0;
    uint64_t degraded = 0;
    uint64_t shed = 0;
    /// Responses whose stats.truncated was set (mid-shard cancellation).
    uint64_t truncated = 0;
    uint64_t deadline_exceeded = 0;
    /// Sum of SearchResponse::shards_abandoned over all responses.
    uint64_t shards_abandoned = 0;
    /// Sum of SearchResponse::shards_failed over all responses.
    uint64_t shards_failed = 0;
  };
  QosCounters qos_counters() const;

  /// One "[qos] ..." line for StatsSummary (ends with '\n').
  std::string QosSummaryLine() const;

  /// Suggests expansion tags for `seed_tags` (sorted, unique) from the
  /// user's social neighbourhood (see query_expansion.h). Partitioned
  /// backends union-merge per-shard evidence, applying min_cooccurrence
  /// on the global support count.
  virtual Result<std::vector<TagSuggestion>> SuggestTags(
      UserId user, std::span<const TagId> seed_tags,
      const QueryExpansionOptions& options = QueryExpansionOptions()) = 0;

  /// The ONE graph + proximity surface behind this service. Every engine
  /// the backend runs consumes this same provider, so the graph and the
  /// proximity score cache exist exactly once regardless of shard count.
  virtual std::shared_ptr<ProximityProvider> proximity_provider() const = 0;

  /// Provider counter snapshot (computations, cache hits, in-flight
  /// joins, warm-over work, generations) — the service-stats surface of
  /// the shared proximity layer; per-request counters additionally ride
  /// in SearchResponse::stats.
  ProximityProviderStats proximity_stats() const {
    return proximity_provider()->stats();
  }

  /// Appends one item; returns its GLOBAL id. Ids are assigned densely in
  /// ingest order on every backend.
  virtual Result<ItemId> AddItem(const Item& item) = 0;

  // AddItems (batch, atomic, one snapshot publish per touched shard,
  // global ids in batch order) and AddFriendship / RemoveFriendship
  // (engine status semantics: AlreadyExists / NotFound) are inherited
  // from IngestSink — they are exactly what the writer thread drains
  // into.

  /// Folds every un-indexed tail into fresh indexes (all shards).
  virtual Status Compact() = 0;

  /// Persists the full service state into `dir` and commits it
  /// atomically (see src/service/service_persistence.h for the layout
  /// and protocol), then attaches a fresh ingest WAL: every subsequent
  /// mutation is logged and fdatasync-flushed before it is acknowledged,
  /// so reopening the directory replays exactly the acknowledged tail.
  /// Incremental when `dir` already holds a compatible snapshot.
  /// Serializes with the other mutators; queries are unaffected.
  virtual Result<persist::SnapshotSaveReport> SaveSnapshot(
      const std::string& dir) = 0;

  // --- Asynchronous ingest (MPSC queue + writer thread) ----------------
  // The decoupled write path: producers enqueue and immediately return
  // with a ticket; a dedicated writer thread coalesces queued batches
  // into the fewest possible AddItems calls (one snapshot publish per
  // coalesced run). See src/ingest/ingest_pipeline.h.

  /// Starts the pipeline. FailedPrecondition when already running.
  Status StartIngest(const IngestPipeline::Options& options = {});

  /// Closes the queue, drains it, joins the writer thread. Idempotent.
  Status StopIngest();

  bool ingest_running() const;

  /// Enqueues a batch for the writer thread (backpressure per the queue
  /// options). When no pipeline is running, falls back to applying the
  /// batch synchronously and returns an already-completed ticket — so
  /// callers can speak Enqueue + Flush regardless of deployment mode.
  /// While a StopIngest drain is in flight the enqueue is REJECTED
  /// (FailedPrecondition) rather than silently jumping the queue.
  Result<IngestTicket> EnqueueItems(std::vector<Item> items);

  /// Friendship edits through the same queue, ordered with the item
  /// batches around them. Synchronous fallback like EnqueueItems.
  ///
  /// Validated at the API edge, BEFORE anything is enqueued: self-edges
  /// and out-of-range endpoints are ALWAYS InvalidArgument immediately
  /// (no queued edit could make them valid). Edge-existence outcomes
  /// (AlreadyExists for duplicate adds, NotFound for missing removes)
  /// are also reported immediately on the synchronous path — but with a
  /// pipeline running they ride the ticket, because a still-queued edit
  /// may legitimately change the edge's state first (Add directly
  /// followed by Remove is a valid ordered sequence, and rejecting it
  /// against the published graph would break the queue's ordering
  /// contract).
  Result<IngestTicket> EnqueueAddFriendship(UserId u, UserId v);
  Result<IngestTicket> EnqueueRemoveFriendship(UserId u, UserId v);

  /// Read-your-writes barrier: returns once everything enqueued BEFORE
  /// this call is applied and query-visible. Ok when no pipeline runs
  /// (synchronous writes are always visible).
  Status Flush();

  /// Producer + drain side counters (zeroes when no pipeline ran).
  IngestCounters ingest_counters() const;

  // --- Background compaction -------------------------------------------
  // Replaces manual Compact() calls with policy: a scheduler thread polls
  // every shard's CompactionSignals and compacts exactly the shards whose
  // policy fires (per-shard, not fleet-wide). See
  // src/ingest/compaction_scheduler.h.

  /// Starts the scheduler. FailedPrecondition when already running.
  Status StartAutoCompaction(const CompactionScheduler::Options& options = {});

  /// Stops and joins the scheduler thread. Idempotent.
  Status StopAutoCompaction();

  bool auto_compaction_running() const;

  /// Background compactions triggered so far (0 when never started).
  uint64_t auto_compactions() const;

 protected:
  /// Backend execution of one request / one batch, AFTER the QoS edge
  /// decided the request runs (possibly with degrade overrides already
  /// applied to `request`). Implementations must not call the public
  /// Search/SearchBatch from inside these (double admission).
  virtual Result<SearchResponse> SearchImpl(const SearchRequest& request) = 0;
  virtual std::vector<Result<SearchResponse>> SearchBatchImpl(
      std::span<const SearchRequest> requests) = 0;

  /// Stops the background threads (scheduler first, then the ingest
  /// drain). EVERY concrete backend's destructor must call this before
  /// tearing anything else down — see the class comment.
  void ShutdownBackgroundWork();

 public:
  // --- Introspection (global id space) ---------------------------------

  virtual size_t num_users() const = 0;
  virtual size_t num_items() const = 0;
  /// Items not yet covered by indexes, summed over shards.
  virtual size_t unindexed_items() const = 0;
  virtual UserId OwnerOf(ItemId item) const = 0;
  /// Sorted, unique tags of `item` (copied: partitioned backends cannot
  /// hand out a stable span across the service boundary).
  virtual std::vector<TagId> TagsOf(ItemId item) const = 0;
  virtual std::vector<UserId> FriendsOf(UserId user) const = 0;
  /// Human-readable per-algorithm query statistics (per shard when
  /// partitioned).
  virtual std::string StatsSummary() const = 0;

 private:
  /// The QoS edge shared by Search and SearchBatch: admission verdict,
  /// degrade overrides, honest shed response, per-response accounting.
  /// `admission` may be null (pass-through).
  Result<SearchResponse> RunOneRequest(
      const SearchRequest& request,
      const std::shared_ptr<AdmissionController>& admission);

  /// Builds the well-formed empty response for a shed request.
  SearchResponse MakeShedResponse(const SearchRequest& request) const;

  /// Applies the controller's degrade overrides to `request`.
  static SearchRequest ApplyDegrade(const SearchRequest& request,
                                    const AdmissionController::Options& opts);

  /// Folds one finished response into the cumulative QoS counters.
  void AccountResponse(const Result<SearchResponse>& response);

  /// Shared edge-of-API path behind EnqueueAdd/RemoveFriendship:
  /// validates through the provider (see the contract above) and
  /// dispatches to the pipeline or the synchronous fallback under ONE
  /// pipeline snapshot.
  Result<IngestTicket> EnqueueFriendshipEdit(UserId u, UserId v, bool adding);

  /// Snapshots of the background objects. The mutex guards the POINTERS,
  /// not the objects: producers copy the shared_ptr and operate outside
  /// the lock, so a backpressure-blocked producer cannot deadlock
  /// StopIngest (which closes the queue to unblock it).
  std::shared_ptr<IngestPipeline> pipeline() const;
  std::shared_ptr<CompactionScheduler> scheduler() const;

  mutable std::mutex background_mutex_;
  std::shared_ptr<IngestPipeline> pipeline_;
  std::shared_ptr<CompactionScheduler> scheduler_;
  /// Admission controller; null = QoS edge disabled. Guarded by
  /// background_mutex_ (the pointer, not the object — queries copy the
  /// shared_ptr and run outside the lock).
  std::shared_ptr<AdmissionController> admission_;
  /// Cumulative QoS accounting (see QosCounters). Plain relaxed atomics:
  /// monotone counters, no cross-field consistency needed.
  std::atomic<uint64_t> qos_admitted_{0};
  std::atomic<uint64_t> qos_degraded_{0};
  std::atomic<uint64_t> qos_shed_{0};
  std::atomic<uint64_t> qos_truncated_{0};
  std::atomic<uint64_t> qos_deadline_exceeded_{0};
  std::atomic<uint64_t> qos_shards_abandoned_{0};
  std::atomic<uint64_t> qos_shards_failed_{0};
  /// Compactions triggered by schedulers that have since been stopped;
  /// guarded by background_mutex_ and updated in the SAME critical
  /// section that unregisters the scheduler, so auto_compactions() is
  /// cumulative across restarts and never transiently drops.
  uint64_t retired_auto_compactions_ = 0;
  /// Serializes StopIngest / StopAutoCompaction end to end (including
  /// the drain/join, which runs outside background_mutex_): a concurrent
  /// second Stop caller must not return before the first caller's drain
  /// finished — callers use Stop's return as "no background thread is
  /// touching this object any more" (destructors rely on it).
  std::mutex shutdown_mutex_;
};

/// Folds `from` into `into` (counter-wise sum) — the per-shard stats
/// merge every partitioned response goes through.
void MergeSearchStats(const SearchStats& from, SearchStats* into);

class ThreadPool;

/// Runs fn(0..count) with fn(0) on the calling thread and the rest on
/// `pool`, waiting for per-call completion — NOT pool-wide idleness
/// (ThreadPool::ParallelFor's WaitIdle would make concurrent callers
/// sharing one pool serialize on, and potentially starve behind, each
/// other's work). Must not be called from inside one of its own pool
/// tasks. Shared by the backends' batch and fan-out paths.
void FanOutOnPool(ThreadPool* pool, size_t count,
                  const std::function<void(size_t)>& fn);

}  // namespace amici

#endif  // AMICI_SERVICE_SEARCH_SERVICE_H_
