#ifndef AMICI_SERVICE_SEARCH_SERVICE_H_
#define AMICI_SERVICE_SEARCH_SERVICE_H_

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "core/query_expansion.h"
#include "core/social_query.h"
#include "storage/item_store.h"
#include "util/ids.h"
#include "util/status.h"

namespace amici {

/// One query through the service surface: the SocialQuery plus the
/// options that used to be separate engine entry points (algorithm
/// override, owner diversity, deadline). A plain default-constructed
/// request with just `query` filled in reproduces the old
/// `engine.Query(query)` behaviour on any backend.
struct SearchRequest {
  SocialQuery query;
  /// Execution-strategy hint; nullopt lets the backend choose (hybrid).
  /// Backends may substitute an equivalent strategy where the hint cannot
  /// apply (e.g. geo-grid on a shard holding no geo items) — results are
  /// exact either way, only the work profile changes.
  std::optional<AlgorithmId> algorithm;
  /// Owner-diversified top-k: at most this many results from any single
  /// owner (0 = unconstrained). Exact — see SocialSearchEngine::QueryDiverse.
  size_t max_per_owner = 0;
  /// Soft deadline in milliseconds; 0 disables. Deadline stub: execution
  /// is not cancelled mid-flight yet, but responses report overruns via
  /// SearchResponse::deadline_exceeded so callers can shed load.
  double timeout_ms = 0.0;
};

/// The outcome of one service request, backend-agnostic: item ids are in
/// the service's GLOBAL id space regardless of how the backend partitions
/// the catalogue.
struct SearchResponse {
  /// Best-first (score-descending, item-id-ascending tie-break) results,
  /// at most `query.k` entries.
  std::vector<ScoredItem> items;
  /// Work counters, summed across every shard that executed.
  SearchStats stats;
  /// End-to-end latency observed by the service, including fan-out and
  /// merge for partitioned backends.
  double elapsed_ms = 0.0;
  /// Which strategy executed (the hint, or the backend default). When a
  /// partitioned backend substituted an equivalent strategy on SOME
  /// shards only (see SearchRequest::algorithm), the hint's name is kept;
  /// if every shard substituted, the substitute's name is reported.
  std::string_view algorithm;
  /// Which backend served the request ("local", "sharded/4", ...).
  std::string_view backend;
  /// How many partitions participated (1 for the local backend).
  size_t shards_touched = 1;
  /// True when a timeout_ms was set and the request overran it.
  bool deadline_exceeded = false;
};

/// The backend-agnostic query surface: everything callers (examples,
/// benches, tests, a future RPC layer) need, with no mention of how the
/// corpus is laid out behind it. Which partition serves a request is a
/// routing decision inside the implementation, not a caller concern.
///
/// Contract shared by all implementations:
///  * Search / SearchBatch / SuggestTags are safe from any number of
///    threads, concurrently with each other AND with all mutators;
///  * AddItem / AddItems / AddFriendship / RemoveFriendship / Compact are
///    safe concurrently with queries and serialize among themselves;
///  * Search / SearchBatch results are EXACT and identical across
///    backends: the same corpus behind a local and a sharded service
///    returns the same items with the same scores (see
///    tests/service/sharded_invariance_test.cc). SuggestTags support
///    counts and thresholds are likewise exact everywhere; suggestion
///    WEIGHTS may differ across backends in the last float ulps
///    (per-shard float subtotals vs one double sum), which can reorder
///    near-tied tags.
class SearchService {
 public:
  virtual ~SearchService() = default;

  /// Stable backend label ("local", "sharded/4").
  virtual std::string_view backend_name() const = 0;
  /// Number of partitions behind the surface (1 for local).
  virtual size_t num_shards() const = 0;

  /// Executes one request (plain or owner-diversified top-k).
  virtual Result<SearchResponse> Search(const SearchRequest& request) = 0;

  /// Executes a batch; results are positionally aligned with `requests`.
  /// Backends parallelize internally where they can.
  virtual std::vector<Result<SearchResponse>> SearchBatch(
      std::span<const SearchRequest> requests) = 0;

  /// Suggests expansion tags for `seed_tags` (sorted, unique) from the
  /// user's social neighbourhood (see query_expansion.h). Partitioned
  /// backends union-merge per-shard evidence, applying min_cooccurrence
  /// on the global support count.
  virtual Result<std::vector<TagSuggestion>> SuggestTags(
      UserId user, std::span<const TagId> seed_tags,
      const QueryExpansionOptions& options = QueryExpansionOptions()) = 0;

  /// Appends one item; returns its GLOBAL id. Ids are assigned densely in
  /// ingest order on every backend.
  virtual Result<ItemId> AddItem(const Item& item) = 0;

  /// Appends a batch atomically (all-or-nothing) under one snapshot
  /// publish per touched shard; returns global ids in batch order.
  virtual Result<std::vector<ItemId>> AddItems(
      std::span<const Item> items) = 0;

  /// Adds / removes a friendship edge everywhere the graph lives.
  /// Same status semantics as the engine (AlreadyExists / NotFound).
  virtual Status AddFriendship(UserId u, UserId v) = 0;
  virtual Status RemoveFriendship(UserId u, UserId v) = 0;

  /// Folds every un-indexed tail into fresh indexes (all shards).
  virtual Status Compact() = 0;

  // --- Introspection (global id space) ---------------------------------

  virtual size_t num_users() const = 0;
  virtual size_t num_items() const = 0;
  /// Items not yet covered by indexes, summed over shards.
  virtual size_t unindexed_items() const = 0;
  virtual UserId OwnerOf(ItemId item) const = 0;
  /// Sorted, unique tags of `item` (copied: partitioned backends cannot
  /// hand out a stable span across the service boundary).
  virtual std::vector<TagId> TagsOf(ItemId item) const = 0;
  virtual std::vector<UserId> FriendsOf(UserId user) const = 0;
  /// Human-readable per-algorithm query statistics (per shard when
  /// partitioned).
  virtual std::string StatsSummary() const = 0;
};

/// Folds `from` into `into` (counter-wise sum) — the per-shard stats
/// merge every partitioned response goes through.
void MergeSearchStats(const SearchStats& from, SearchStats* into);

class ThreadPool;

/// Runs fn(0..count) with fn(0) on the calling thread and the rest on
/// `pool`, waiting for per-call completion — NOT pool-wide idleness
/// (ThreadPool::ParallelFor's WaitIdle would make concurrent callers
/// sharing one pool serialize on, and potentially starve behind, each
/// other's work). Must not be called from inside one of its own pool
/// tasks. Shared by the backends' batch and fan-out paths.
void FanOutOnPool(ThreadPool* pool, size_t count,
                  const std::function<void(size_t)>& fn);

}  // namespace amici

#endif  // AMICI_SERVICE_SEARCH_SERVICE_H_
