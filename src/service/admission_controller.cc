#include "service/admission_controller.h"

#include <algorithm>
#include <chrono>

namespace amici {
namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

AdmissionController::AdmissionController(Options options)
    : options_(std::move(options)) {
  if (options_.max_inflight == 0) options_.max_inflight = 1;
  options_.burst = std::max(1.0, options_.burst);
  if (options_.clock == nullptr) options_.clock = SteadySeconds;
}

bool AdmissionController::TakeRateToken() {
  if (options_.max_admitted_per_sec <= 0.0) return true;
  std::lock_guard<std::mutex> lock(bucket_mutex_);
  const double now = options_.clock();
  if (!bucket_primed_) {
    // A full bucket at first sight: bursts up to `burst` pass before the
    // steady-state rate applies.
    tokens_ = options_.burst;
    last_refill_s_ = now;
    bucket_primed_ = true;
  }
  const double elapsed = std::max(0.0, now - last_refill_s_);
  tokens_ = std::min(options_.burst,
                     tokens_ + elapsed * options_.max_admitted_per_sec);
  last_refill_s_ = now;
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

AdmissionController::Ticket AdmissionController::Admit(
    uint64_t estimated_cost) {
  Ticket ticket;
  // Reserve the slot optimistically; every shed path returns it. Doing
  // the increment first makes the gate exact under concurrent Admits —
  // two racing requests cannot both slip under max_inflight.
  const size_t occupied =
      inflight_.fetch_add(1, std::memory_order_relaxed) + 1;

  const auto shed = [&](const char* reason) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    shed_.fetch_add(1, std::memory_order_relaxed);
    ticket.decision = Decision::kShed;
    ticket.reason = reason;
    return ticket;
  };

  if (occupied > options_.max_inflight) return shed("inflight");
  if (!TakeRateToken()) return shed("rate");
  if (options_.shed_cost > 0 && estimated_cost > options_.shed_cost) {
    return shed("cost");
  }

  // Track the high-water mark only for requests that actually run.
  uint64_t peak = peak_inflight_.load(std::memory_order_relaxed);
  while (peak < occupied &&
         !peak_inflight_.compare_exchange_weak(peak, occupied,
                                               std::memory_order_relaxed)) {
  }

  if (options_.degrade_inflight > 0 && occupied > options_.degrade_inflight) {
    degraded_.fetch_add(1, std::memory_order_relaxed);
    ticket.decision = Decision::kDegrade;
    ticket.reason = "pressure";
    return ticket;
  }
  if (options_.degrade_cost > 0 && estimated_cost > options_.degrade_cost) {
    degraded_.fetch_add(1, std::memory_order_relaxed);
    ticket.decision = Decision::kDegrade;
    ticket.reason = "cost";
    return ticket;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return ticket;
}

void AdmissionController::Release() {
  inflight_.fetch_sub(1, std::memory_order_relaxed);
}

AdmissionController::Counters AdmissionController::counters() const {
  Counters counters;
  counters.admitted = admitted_.load(std::memory_order_relaxed);
  counters.degraded = degraded_.load(std::memory_order_relaxed);
  counters.shed = shed_.load(std::memory_order_relaxed);
  counters.peak_inflight = peak_inflight_.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace amici
