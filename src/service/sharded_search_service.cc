#include "service/sharded_search_service.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "util/hash.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace amici {
namespace {

/// The engine-wide result order: score-descending, ascending item id on
/// ties. Applied to GLOBAL ids here; it agrees with the per-shard heaps'
/// local-id tie-break because items are dealt to shards in global id
/// order, so local order within a shard is global order restricted to it.
bool ScoreOrder(const ScoredItem& a, const ScoredItem& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.item < b.item;
}

}  // namespace

ShardedSearchService::ShardedSearchService(Options options)
    : options_(std::move(options)),
      backend_label_("sharded/" + std::to_string(options_.num_shards)) {}

ShardedSearchService::~ShardedSearchService() { ShutdownBackgroundWork(); }

uint32_t ShardedSearchService::ShardOf(ItemId global) const {
  return static_cast<uint32_t>(Mix64(global) % options_.num_shards);
}

void ShardedSearchService::RecordPlacementLocked(ItemId global, uint32_t shard,
                                                 ItemId local) {
  AMICI_CHECK(global == static_cast<ItemId>(global_to_shard_.size()));
  AMICI_CHECK(local == static_cast<ItemId>(local_to_global_[shard].size()));
  global_to_shard_.push_back({shard, local});
  local_to_global_[shard].push_back(global);
}

Result<std::unique_ptr<ShardedSearchService>> ShardedSearchService::Build(
    SocialGraph graph, ItemStore store, Options options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  // Private constructor: cannot use make_unique.
  std::unique_ptr<ShardedSearchService> service(
      new ShardedSearchService(std::move(options)));
  const size_t num_shards = service->options_.num_shards;

  // Deal the catalogue to per-shard stores by id hash, in global id order
  // (which keeps local id order consistent with global order per shard).
  std::vector<ItemStore> stores(num_shards);
  service->local_to_global_.resize(num_shards);
  const size_t total = store.num_items();
  for (size_t g = 0; g < total; ++g) {
    const ItemId global = static_cast<ItemId>(g);
    const uint32_t shard = service->ShardOf(global);
    Item item;
    item.owner = store.owner(global);
    const auto tags = store.tags(global);
    item.tags.assign(tags.begin(), tags.end());
    item.quality = store.quality(global);
    item.has_geo = store.has_geo(global);
    if (item.has_geo) {
      item.latitude = store.latitude(global);
      item.longitude = store.longitude(global);
    }
    AMICI_ASSIGN_OR_RETURN(const ItemId local, stores[shard].Add(item));
    service->RecordPlacementLocked(global, shard, local);
  }

  // ONE provider for the whole service: the graph moves into it, and
  // every shard engine consumes it — no graph replicas, one shared
  // generation-keyed proximity cache.
  if (service->options_.engine.proximity_provider != nullptr) {
    return Status::InvalidArgument(
        "engine.proximity_provider must be null: ShardedSearchService "
        "builds the one shared provider itself");
  }
  service->provider_ = SocialSearchEngine::MakeProximityProvider(
      std::move(graph), service->options_.engine);

  service->shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    SocialSearchEngine::Options engine_options = service->options_.engine;
    engine_options.proximity_provider = service->provider_;
    AMICI_ASSIGN_OR_RETURN(
        std::unique_ptr<SocialSearchEngine> engine,
        SocialSearchEngine::Build(std::move(stores[s]),
                                  std::move(engine_options)));
    service->shards_.push_back(std::move(engine));
  }

  const size_t hardware = std::max<size_t>(1, std::thread::hardware_concurrency());
  const size_t threads =
      service->options_.fanout_threads > 0
          ? service->options_.fanout_threads
          : std::max<size_t>(1, std::min(num_shards, hardware));
  service->pool_ = std::make_unique<ThreadPool>(threads);
  service->num_items_.store(total, std::memory_order_release);
  return service;
}

void ShardedSearchService::RunFanOut(
    size_t count, const std::function<void(size_t)>& fn) const {
  FanOutOnPool(pool_.get(), count, fn);
}

bool ShardedSearchService::AnyShardHasGeoItems() const {
  for (const auto& shard : shards_) {
    if (shard->snapshot()->has_geo_items()) return true;
  }
  return false;
}

Result<QueryResult> ShardedSearchService::QueryShard(
    size_t s, const SocialQuery& query, std::optional<AlgorithmId> hint,
    bool geo_fallback_allowed, const CancellationToken* cancel) const {
  const AlgorithmId algorithm = hint.value_or(AlgorithmId::kHybrid);
  Result<QueryResult> result = shards_[s]->Query(query, algorithm, cancel);
  if (!result.ok() && algorithm == AlgorithmId::kGeoGrid &&
      result.status().code() == StatusCode::kFailedPrecondition &&
      query.has_geo_filter && geo_fallback_allowed) {
    // With a geo filter on the query, geo-grid's only FailedPrecondition
    // is "no geo items covered by THIS shard's indexes" — but a
    // single-node engine over the whole corpus would have executed the
    // hint, so substitute hybrid (exact, only the work profile differs).
    // When no shard has geo items (fallback not allowed) the whole corpus
    // has none, and the hint must fail exactly like the local backend.
    result = shards_[s]->Query(query, AlgorithmId::kHybrid, cancel);
  }
  if (!result.ok()) return result;
  for (ScoredItem& item : result.value().items) {
    item.item = local_to_global_[s][item.item];
  }
  return result;
}

Result<SearchResponse> ShardedSearchService::SearchImpl(
    const SearchRequest& request) {
  std::vector<Result<SearchResponse>> responses =
      ExecuteRequests(std::span<const SearchRequest>(&request, 1));
  return std::move(responses[0]);
}

std::vector<Result<SearchResponse>> ShardedSearchService::SearchBatchImpl(
    std::span<const SearchRequest> requests) {
  return ExecuteRequests(requests);
}

std::vector<Result<SearchResponse>> ShardedSearchService::ExecuteRequests(
    std::span<const SearchRequest> requests) {
  using Clock = std::chrono::steady_clock;
  const size_t num_shards = shards_.size();
  const Clock::time_point start = Clock::now();
  std::vector<Result<SearchResponse>> responses(
      requests.size(), Status::Internal("request never executed"));
  std::vector<Stopwatch> watches(requests.size());

  // A request stays pending while its owner-diversified selection needs a
  // deeper global prefix (iterative deepening, mirroring
  // SocialSearchEngine::QueryDiverse). Plain requests finish in round one.
  // A deepening request carries the best diversified selection a fully
  // completed round already produced, so a deadline expiring mid-round
  // can never hand back LESS than an earlier round had in hand.
  struct Pending {
    size_t request;  // index into `requests`
    size_t fetch_k;
    std::vector<ScoredItem> best_diverse;
    SearchStats best_stats;
    bool has_best = false;
  };
  std::vector<Pending> pending;
  pending.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    Pending p;
    p.request = i;
    p.fetch_k = requests[i].query.k;
    pending.push_back(std::move(p));
  }

  // Computed once per call (not per failing shard): whether a geo-grid
  // hint may fall back to hybrid on shards without geo coverage.
  bool geo_fallback_allowed = false;
  for (const SearchRequest& request : requests) {
    if (request.algorithm == AlgorithmId::kGeoGrid) {
      geo_fallback_allowed = AnyShardHasGeoItems();
      break;
    }
  }

  // One round's fan-out state. Heap-allocated and shared with the pool
  // tasks on the deadline path: a row whose deadline expires is
  // ABANDONED — its stragglers finish later and must still find live
  // storage to write into (including their own copy of the query).
  struct RoundState {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<SocialQuery> queries;                // per row
    std::vector<std::optional<AlgorithmId>> hints;   // per row
    /// Per row: the cooperative deadline token the shard queries probe.
    /// Unarmed for rows without a timeout. Lives here (not on the
    /// caller's stack) because an abandoned row's stragglers keep
    /// dereferencing it until they exit.
    std::vector<CancellationToken> tokens;
    std::vector<std::vector<Result<QueryResult>>> results;  // [row][shard]
    std::vector<std::vector<char>> done;             // [row][shard]
    std::vector<size_t> remaining;                   // per row
  };

  while (!pending.empty()) {
    const size_t rows = pending.size();
    auto state = std::make_shared<RoundState>();
    state->queries.reserve(rows);
    state->hints.reserve(rows);
    state->tokens.reserve(rows);
    bool any_deadline = false;
    for (const Pending& p : pending) {
      const SearchRequest& request = requests[p.request];
      SocialQuery query = request.query;
      query.k = p.fetch_k;
      state->queries.push_back(std::move(query));
      state->hints.push_back(request.algorithm);
      // The token carries the request's ABSOLUTE deadline (anchored at
      // fan-out start, so deepening rounds share it): shards stop
      // mid-algorithm when it passes, whether or not this thread has
      // abandoned the row yet.
      state->tokens.push_back(
          CancellationToken::FromTimeout(request.timeout_ms, start));
      if (request.timeout_ms > 0.0) any_deadline = true;
    }
    state->results.assign(
        rows, std::vector<Result<QueryResult>>(
                  num_shards, Status::Internal("shard never completed")));
    state->done.assign(rows, std::vector<char>(num_shards, 0));
    state->remaining.assign(rows, num_shards);

    if (!any_deadline) {
      // No deadline anywhere: flat barrier fan-out over (row x shard),
      // one pool pass, caller participates. No locking needed — the
      // barrier orders every write before the merge below.
      RunFanOut(rows * num_shards, [&](size_t job) {
        const size_t r = job / num_shards;
        const size_t s = job % num_shards;
        state->results[r][s] = QueryShard(s, state->queries[r],
                                          state->hints[r],
                                          geo_fallback_allowed,
                                          /*cancel=*/nullptr);
        state->done[r][s] = 1;
      });
      for (size_t r = 0; r < rows; ++r) state->remaining[r] = 0;
    } else {
      // Deadline path: every job goes to the pool; this thread checks
      // the deadline between per-shard completions and abandons rows
      // that overrun (their merge below uses whatever completed, and
      // their stragglers exit early through the row token).
      for (size_t r = 0; r < rows; ++r) {
        for (size_t s = 0; s < num_shards; ++s) {
          pool_->Submit([this, state, r, s, geo_fallback_allowed] {
            Result<QueryResult> result =
                QueryShard(s, state->queries[r], state->hints[r],
                           geo_fallback_allowed, &state->tokens[r]);
            std::lock_guard<std::mutex> lock(state->mutex);
            state->results[r][s] = std::move(result);
            state->done[r][s] = 1;
            --state->remaining[r];
            state->cv.notify_all();
          });
        }
      }
      std::unique_lock<std::mutex> lock(state->mutex);
      for (size_t r = 0; r < rows; ++r) {
        const double timeout_ms = requests[pending[r].request].timeout_ms;
        if (timeout_ms <= 0.0) {
          state->cv.wait(lock, [&] { return state->remaining[r] == 0; });
        } else {
          const auto deadline =
              start + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              timeout_ms));
          const bool all_done = state->cv.wait_until(
              lock, deadline, [&] { return state->remaining[r] == 0; });
          if (!all_done) {
            // Row abandoned. The token's own deadline already expired,
            // but cancel explicitly anyway: it is the only signal on
            // paths a clock probe cannot reach promptly, and it makes
            // abandonment visible to stragglers the instant WE stop
            // waiting rather than whenever they next read the clock.
            state->tokens[r].RequestCancel();
          }
        }
      }
    }

    std::vector<Pending> still_pending;
    for (size_t r = 0; r < rows; ++r) {
      const size_t i = pending[r].request;
      const SearchRequest& request = requests[i];
      const size_t fetch_k = pending[r].fetch_k;

      // Snapshot this row's completed slots under the lock (stragglers
      // of abandoned rows may still be writing other slots). The slot
      // storage was sized up front and never reallocates, so pointers to
      // completed slots stay valid after the lock is released.
      std::vector<const QueryResult*> shard_results(num_shards, nullptr);
      size_t completed = 0;  // shards that reported, ok or errored
      size_t healthy = 0;    // shards that reported ok
      Status error = Status::Ok();
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        for (size_t s = 0; s < num_shards; ++s) {
          if (!state->done[r][s]) continue;
          ++completed;
          if (!state->results[r][s].ok()) {
            if (error.ok()) error = state->results[r][s].status();
          } else {
            shard_results[s] = &state->results[r][s].value();
            ++healthy;
          }
        }
      }
      if (healthy == 0 && !error.ok()) {
        // Nothing to merge over — every shard that reported failed.
        responses[i] = std::move(error);
        continue;
      }
      const size_t failed = completed - healthy;
      // Partial: some shard did not contribute — either the deadline
      // passed before it reported (abandoned) or it reported an error.
      // The merge below is exact over the HEALTHY shards; items held by
      // the missing shards are absent by design, and the response says
      // so (shards_failed / shards_abandoned / shard_error) instead of
      // discarding the healthy work.
      const bool partial = healthy < num_shards;

      SearchResponse response;
      response.backend = backend_label_;
      response.shards_touched = healthy;
      response.shards_abandoned = num_shards - completed;
      response.shards_failed = failed;
      if (failed > 0) response.shard_error = error.ToString();
      // Label with what actually executed when the (completed) shards
      // agree (e.g. every shard fell back to hybrid); a mixed fan-out
      // keeps the hint's name — see the SearchResponse::algorithm
      // contract.
      const QueryResult* first = nullptr;
      bool uniform = true;
      for (size_t s = 0; s < num_shards && uniform; ++s) {
        if (shard_results[s] == nullptr) continue;
        if (first == nullptr) {
          first = shard_results[s];
        } else if (shard_results[s]->algorithm != first->algorithm) {
          uniform = false;
        }
      }
      response.algorithm =
          (first != nullptr && uniform)
              ? first->algorithm
              : AlgorithmName(request.algorithm.value_or(AlgorithmId::kHybrid));
      std::vector<ScoredItem> merged;
      bool all_exhausted = true;
      for (size_t s = 0; s < num_shards; ++s) {
        if (shard_results[s] == nullptr) continue;
        MergeSearchStats(shard_results[s]->stats, &response.stats);
        merged.insert(merged.end(), shard_results[s]->items.begin(),
                      shard_results[s]->items.end());
        if (shard_results[s]->items.size() >= fetch_k) all_exhausted = false;
      }
      std::sort(merged.begin(), merged.end(), ScoreOrder);

      // Abandonment (a shard never reported before the deadline) is a
      // deadline symptom; a shard ERROR is not — it must not masquerade
      // as a timeout.
      const bool abandoned = completed < num_shards;
      auto finalize = [&](std::vector<ScoredItem> items) {
        response.items = std::move(items);
        response.elapsed_ms = watches[i].ElapsedMillis();
        response.deadline_exceeded =
            abandoned || (request.timeout_ms > 0.0 &&
                          response.elapsed_ms > request.timeout_ms);
        responses[i] = std::move(response);
      };

      if (request.max_per_owner == 0) {
        // Exact: every global top-k member is in its own shard's top-k,
        // so the merge's first k entries ARE the global top-k.
        if (merged.size() > request.query.k) merged.resize(request.query.k);
        finalize(std::move(merged));
        continue;
      }

      // Owner-diversified: greedy per-owner cap over the EXACT global
      // prefix. When no shard was exhausted the first fetch_k entries of
      // the merge are exactly the global top-fetch_k; when every shard
      // was exhausted the merge is the entire positive-score corpus and
      // greedy over all of it is the exact answer.
      if (!all_exhausted && merged.size() > fetch_k) merged.resize(fetch_k);
      std::vector<ScoredItem> diverse;
      std::unordered_map<UserId, size_t> taken;
      for (const ScoredItem& entry : merged) {
        size_t& count = taken[OwnerOf(entry.item)];
        if (count >= request.max_per_owner) continue;
        ++count;
        diverse.push_back(entry);
        if (diverse.size() == request.query.k) break;
      }
      if (partial && pending[r].has_best &&
          pending[r].best_diverse.size() >= diverse.size()) {
        // This round was cut short AND a fully completed shallower round
        // already selected at least as many items: prefer that one (it
        // was exact over EVERY shard at its depth).
        response.shards_touched = num_shards;
        response.stats = pending[r].best_stats;
        finalize(std::move(pending[r].best_diverse));
        continue;
      }
      // Deepening past an already-blown deadline only digs the overrun
      // deeper; return the best prefix in hand instead. A partial row
      // (abandoned or errored shards) is likewise terminal — re-fanning
      // deeper would just repeat the miss.
      const bool deadline_passed =
          request.timeout_ms > 0.0 &&
          watches[i].ElapsedMillis() > request.timeout_ms;
      if (diverse.size() == request.query.k || all_exhausted || partial ||
          deadline_passed) {
        finalize(std::move(diverse));
      } else {
        Pending next;
        next.request = i;
        next.fetch_k = fetch_k * 2;
        next.best_diverse = std::move(diverse);
        next.best_stats = response.stats;
        next.has_best = true;
        still_pending.push_back(std::move(next));
      }
    }
    pending = std::move(still_pending);
  }
  return responses;
}

Result<std::vector<TagSuggestion>> ShardedSearchService::SuggestTags(
    UserId user, std::span<const TagId> seed_tags,
    const QueryExpansionOptions& options) {
  if (options.max_suggestions == 0) {
    // Mirror the per-engine validation the per-shard override would mask.
    return Status::InvalidArgument("max_suggestions must be >= 1");
  }
  // Every shard reports ALL its evidence (no per-shard truncation or
  // thresholding — both are applied on the merged, global totals below;
  // a tag just under a per-shard threshold could clear the global one).
  QueryExpansionOptions shard_options = options;
  shard_options.max_suggestions = std::numeric_limits<size_t>::max();
  shard_options.min_cooccurrence = 1;

  std::vector<Result<std::vector<TagSuggestion>>> per_shard(
      shards_.size(), Status::Internal("never executed"));
  RunFanOut(shards_.size(), [&](size_t s) {
    per_shard[s] = shards_[s]->SuggestTags(user, seed_tags, shard_options);
  });

  struct Evidence {
    double weight = 0.0;
    uint32_t support = 0;
  };
  std::unordered_map<TagId, Evidence> evidence;
  for (const auto& shard_result : per_shard) {
    if (!shard_result.ok()) return shard_result.status();
    for (const TagSuggestion& s : shard_result.value()) {
      Evidence& e = evidence[s.tag];
      e.weight += static_cast<double>(s.weight);
      e.support += s.support;
    }
  }
  std::vector<TagSuggestion> suggestions;
  suggestions.reserve(evidence.size());
  for (const auto& [tag, e] : evidence) {
    if (e.support < options.min_cooccurrence) continue;
    suggestions.push_back({tag, static_cast<float>(e.weight), e.support});
  }
  std::sort(suggestions.begin(), suggestions.end(),
            [](const TagSuggestion& a, const TagSuggestion& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.tag < b.tag;
            });
  if (suggestions.size() > options.max_suggestions) {
    suggestions.resize(options.max_suggestions);
  }
  return suggestions;
}

Result<ItemId> ShardedSearchService::AddItem(const Item& item) {
  AMICI_ASSIGN_OR_RETURN(
      const std::vector<ItemId> ids,
      AddItems(std::span<const Item>(&item, 1)));
  return ids[0];
}

Result<std::vector<ItemId>> ShardedSearchService::AddItems(
    std::span<const Item> items) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const size_t start =
      num_items_.load(std::memory_order_relaxed);
  const size_t users = num_users();

  // Validate the whole batch up front — per-item shape at the CALLER's
  // batch position, then per-shard cumulative capacity — so the engine
  // appends below cannot fail once the id maps are committed (the map
  // rows must be written before a shard publishes the items, because
  // readers translate ids of anything a pinned snapshot shows).
  std::vector<std::vector<Item>> per_shard(shards_.size());
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].owner >= users) {
      return Status::InvalidArgument(
          StringPrintf("batch item %zu: owner outside the social graph", i));
    }
    const uint32_t shard = ShardOf(static_cast<ItemId>(start + i));
    const Status status = shards_[shard]->store().ValidateForAdd(items[i]);
    if (!status.ok()) {
      return Status(status.code(), StringPrintf("batch item %zu: %s", i,
                                                status.message().c_str()));
    }
    per_shard[shard].push_back(items[i]);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) continue;
    // Shapes passed above; this adds the cumulative-capacity guarantee.
    AMICI_RETURN_IF_ERROR(
        shards_[s]->store().ValidateForAddAll(per_shard[s]));
  }

  // Commit the id maps for the whole batch, then append per shard — one
  // snapshot publish per touched shard (the batched-ingest path).
  std::vector<ItemId> ids;
  ids.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    const ItemId global = static_cast<ItemId>(start + i);
    const uint32_t shard = ShardOf(global);
    const ItemId local = static_cast<ItemId>(local_to_global_[shard].size());
    RecordPlacementLocked(global, shard, local);
    ids.push_back(global);
  }
  // Admit the ids BEFORE any shard publishes: num_items() must never lag
  // behind what a response can already contain. The cost is that it
  // briefly LEADS readability — ids in [published, num_items()) exist but
  // are not yet backed by shard store rows, which is why OwnerOf/TagsOf
  // only accept ids obtained from a response or an Add return value (see
  // the header contract), never ids derived from num_items().
  num_items_.store(start + items.size(), std::memory_order_release);
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) continue;
    const auto added = shards_[s]->AddItems(per_shard[s]);
    // Unreachable: ValidateForAddAll covered shape and cumulative
    // capacity; anything else would desynchronize the id maps, so fail
    // loudly.
    AMICI_CHECK(added.ok()) << added.status().ToString();
  }
  if (!items.empty()) {
    AMICI_RETURN_IF_ERROR(LogAddItems(&persist_, start, items));
  }
  return ids;
}

Status ShardedSearchService::AddFriendship(UserId u, UserId v) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  // ONE edit on the one shared graph (one O(E) rebuild, not N); every
  // shard then adopts the published generation into a fresh snapshot.
  AMICI_RETURN_IF_ERROR(provider_->AddFriendship(u, v));
  for (const auto& shard : shards_) {
    AMICI_CHECK_OK(shard->SyncGraph());
  }
  return LogFriendship(&persist_, /*adding=*/true, u, v);
}

Status ShardedSearchService::RemoveFriendship(UserId u, UserId v) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  AMICI_RETURN_IF_ERROR(provider_->RemoveFriendship(u, v));
  for (const auto& shard : shards_) {
    AMICI_CHECK_OK(shard->SyncGraph());
  }
  return LogFriendship(&persist_, /*adding=*/false, u, v);
}

Result<persist::SnapshotSaveReport> ShardedSearchService::SaveSnapshot(
    const std::string& dir) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  std::vector<SocialSearchEngine*> engines;
  engines.reserve(shards_.size());
  for (const auto& shard : shards_) engines.push_back(shard.get());
  return SaveServiceSnapshot(dir, engines, *provider_,
                             num_items_.load(std::memory_order_acquire),
                             persist::SnapshotSaveOptions(), &persist_);
}

Result<std::unique_ptr<ShardedSearchService>>
ShardedSearchService::OpenSnapshot(
    const std::string& dir, Options options,
    const persist::SnapshotOpenOptions& open_options,
    persist::WalReplayStats* replay_stats) {
  if (options.engine.proximity_provider != nullptr) {
    return Status::InvalidArgument(
        "engine.proximity_provider must be null: ShardedSearchService "
        "restores the one shared provider from the snapshot");
  }
  ServicePersistState state;
  AMICI_ASSIGN_OR_RETURN(
      LoadedServiceSnapshot loaded,
      OpenServiceSnapshot(dir, options.engine, open_options, &state));
  options.num_shards = loaded.root.num_shards;

  std::unique_ptr<ShardedSearchService> service(
      new ShardedSearchService(std::move(options)));
  const size_t num_shards = service->options_.num_shards;
  service->provider_ = std::move(loaded.provider);
  service->shards_ = std::move(loaded.shards);
  service->persist_ = std::move(state);

  // The id maps are NOT persisted: placement is ShardOf(global), a pure
  // function of the global id and the shard count, so replaying global
  // ids 0..num_items-1 reconstructs both directions exactly as ingest
  // built them.
  service->local_to_global_.resize(num_shards);
  std::vector<size_t> counts(num_shards, 0);
  for (uint64_t g = 0; g < loaded.root.num_items; ++g) {
    const ItemId global = static_cast<ItemId>(g);
    const uint32_t shard = service->ShardOf(global);
    service->RecordPlacementLocked(global, shard,
                                   static_cast<ItemId>(counts[shard]));
    ++counts[shard];
  }
  for (size_t s = 0; s < num_shards; ++s) {
    if (counts[s] != service->shards_[s]->store().num_items()) {
      return Status::Corruption(
          "shard " + std::to_string(s) + " holds " +
          std::to_string(service->shards_[s]->store().num_items()) +
          " items, placement expects " + std::to_string(counts[s]));
    }
  }
  service->num_items_.store(loaded.root.num_items,
                            std::memory_order_release);

  const size_t hardware =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  const size_t threads =
      service->options_.fanout_threads > 0
          ? service->options_.fanout_threads
          : std::max<size_t>(1, std::min(num_shards, hardware));
  service->pool_ = std::make_unique<ThreadPool>(threads);

  // Replay the acknowledged ingest tail through the NORMAL mutators
  // (the WAL is not attached yet, so nothing is re-logged).
  ShardedSearchService* raw = service.get();
  persist::WalReplayHandlers handlers;
  handlers.add_items = [raw](uint64_t first_item_id,
                             std::vector<Item>&& items) -> Status {
    if (first_item_id != raw->num_items()) {
      return Status::Corruption(
          "WAL batch starts at item " + std::to_string(first_item_id) +
          ", catalogue has " + std::to_string(raw->num_items()) +
          " (wrong base snapshot?)");
    }
    return raw->AddItems(items).status();
  };
  handlers.add_friendship = [raw](UserId u, UserId v) {
    return raw->AddFriendship(u, v);
  };
  handlers.remove_friendship = [raw](UserId u, UserId v) {
    return raw->RemoveFriendship(u, v);
  };
  AMICI_ASSIGN_OR_RETURN(const persist::WalReplayStats stats,
                         ReplayAndAttachWal(&service->persist_, handlers));
  if (replay_stats != nullptr) *replay_stats = stats;
  return service;
}

Status ShardedSearchService::Compact() {
  // Compactions are heavy and independent: run them in parallel. Each
  // engine handles its own concurrency with queries and ingest.
  std::vector<Status> statuses(shards_.size());
  RunFanOut(shards_.size(),
            [&](size_t s) { statuses[s] = shards_[s]->Compact(); });
  for (const Status& status : statuses) {
    AMICI_RETURN_IF_ERROR(status);
  }
  return Status::Ok();
}

CompactionSignals ShardedSearchService::ShardSignals(size_t shard) const {
  AMICI_CHECK(shard < shards_.size());
  const auto snap = shards_[shard]->snapshot();
  CompactionSignals signals;
  signals.tail_items = snap->unindexed_items();
  signals.indexed_items = snap->index_horizon;
  // One consistent (items, latency) pair — the policy relates the two.
  const auto observation = shards_[shard]->stats().last_tail_scan();
  signals.last_tail_scan_ms = observation.elapsed_ms;
  signals.last_tail_scan_items = observation.items;
  return signals;
}

Status ShardedSearchService::CompactShard(size_t shard,
                                          CompactionOutcome* outcome) {
  AMICI_CHECK(shard < shards_.size());
  return shards_[shard]->Compact(outcome);
}

size_t ShardedSearchService::num_users() const {
  return provider_->num_users();
}

size_t ShardedSearchService::unindexed_items() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->unindexed_items();
  return total;
}

uint64_t ShardedSearchService::EstimateQueryCost(
    const SocialQuery& query) const {
  // Every shard runs the query against its own lists and tail, so the
  // fan-out's work is the SUM of the per-shard estimates (each shard's
  // conjunctive walk is driven by its own rarest list).
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    const auto snap = shard->snapshot();
    const InvertedIndex& inverted = snap->indexes->inverted;
    uint64_t postings = 0;
    bool first = true;
    for (const TagId tag : query.tags) {
      const uint64_t df = inverted.DocumentFrequency(tag);
      if (query.mode == MatchMode::kAll) {
        postings = first ? df : std::min(postings, df);
        first = false;
      } else {
        postings += df;
      }
    }
    total += postings + snap->unindexed_items();
  }
  return total;
}

UserId ShardedSearchService::OwnerOf(ItemId item) const {
  const ShardRef ref = global_to_shard_[item];
  return shards_[ref.shard]->store().owner(ref.local);
}

std::vector<TagId> ShardedSearchService::TagsOf(ItemId item) const {
  const ShardRef ref = global_to_shard_[item];
  const auto tags = shards_[ref.shard]->store().tags(ref.local);
  return std::vector<TagId>(tags.begin(), tags.end());
}

std::vector<UserId> ShardedSearchService::FriendsOf(UserId user) const {
  // Pin the provider's generation: the span must not dangle if a
  // concurrent friendship edit publishes a new graph mid-copy.
  const ProximityProvider::GraphView view = provider_->Acquire();
  const auto friends = view.graph->Friends(user);
  return std::vector<UserId>(friends.begin(), friends.end());
}

std::string ShardedSearchService::StatsSummary() const {
  std::string summary;
  for (size_t s = 0; s < shards_.size(); ++s) {
    summary += "[shard " + std::to_string(s) + "]\n";
    summary += shards_[s]->stats().ToString();
  }
  const ProximityProviderStats proximity = provider_->stats();
  summary += StringPrintf(
      "[proximity] computations=%llu cache_hits=%llu inflight_joins=%llu "
      "warmed=%llu generations=%llu entries=%zu\n",
      static_cast<unsigned long long>(proximity.computations),
      static_cast<unsigned long long>(proximity.cache_hits),
      static_cast<unsigned long long>(proximity.inflight_joins),
      static_cast<unsigned long long>(proximity.warmed),
      static_cast<unsigned long long>(proximity.generations_published),
      proximity.cache_entries);
  summary += StringPrintf(
      "[proximity_service] partitions=%zu overlay_rows=%zu folds=%llu "
      "boundary_crossings=%llu frontier_users=%zu\n",
      proximity.partitions, proximity.overlay_rows,
      static_cast<unsigned long long>(proximity.overlay_folds),
      static_cast<unsigned long long>(proximity.boundary_crossings),
      proximity.frontier_users);
  summary += QosSummaryLine();
  return summary;
}

}  // namespace amici
