#include "service/sharded_search_service.h"

#include <algorithm>
#include <condition_variable>
#include <limits>
#include <thread>
#include <unordered_map>
#include <utility>

#include "util/hash.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace amici {
namespace {

/// The engine-wide result order: score-descending, ascending item id on
/// ties. Applied to GLOBAL ids here; it agrees with the per-shard heaps'
/// local-id tie-break because items are dealt to shards in global id
/// order, so local order within a shard is global order restricted to it.
bool ScoreOrder(const ScoredItem& a, const ScoredItem& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.item < b.item;
}

}  // namespace

ShardedSearchService::ShardedSearchService(Options options)
    : options_(std::move(options)),
      backend_label_("sharded/" + std::to_string(options_.num_shards)) {}

uint32_t ShardedSearchService::ShardOf(ItemId global) const {
  return static_cast<uint32_t>(Mix64(global) % options_.num_shards);
}

void ShardedSearchService::RecordPlacementLocked(ItemId global, uint32_t shard,
                                                 ItemId local) {
  AMICI_CHECK(global == static_cast<ItemId>(global_to_shard_.size()));
  AMICI_CHECK(local == static_cast<ItemId>(local_to_global_[shard].size()));
  global_to_shard_.push_back({shard, local});
  local_to_global_[shard].push_back(global);
}

Result<std::unique_ptr<ShardedSearchService>> ShardedSearchService::Build(
    SocialGraph graph, ItemStore store, Options options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  // Private constructor: cannot use make_unique.
  std::unique_ptr<ShardedSearchService> service(
      new ShardedSearchService(std::move(options)));
  const size_t num_shards = service->options_.num_shards;

  // Deal the catalogue to per-shard stores by id hash, in global id order
  // (which keeps local id order consistent with global order per shard).
  std::vector<ItemStore> stores(num_shards);
  service->local_to_global_.resize(num_shards);
  const size_t total = store.num_items();
  for (size_t g = 0; g < total; ++g) {
    const ItemId global = static_cast<ItemId>(g);
    const uint32_t shard = service->ShardOf(global);
    Item item;
    item.owner = store.owner(global);
    const auto tags = store.tags(global);
    item.tags.assign(tags.begin(), tags.end());
    item.quality = store.quality(global);
    item.has_geo = store.has_geo(global);
    if (item.has_geo) {
      item.latitude = store.latitude(global);
      item.longitude = store.longitude(global);
    }
    AMICI_ASSIGN_OR_RETURN(const ItemId local, stores[shard].Add(item));
    service->RecordPlacementLocked(global, shard, local);
  }

  // One engine per shard; the graph is replicated (copied) to each. The
  // last shard takes the original by move.
  service->shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    SocialGraph shard_graph;
    if (s + 1 == num_shards) {
      shard_graph = std::move(graph);  // the last replica takes the original
    } else {
      shard_graph = graph;
    }
    AMICI_ASSIGN_OR_RETURN(
        std::unique_ptr<SocialSearchEngine> engine,
        SocialSearchEngine::Build(std::move(shard_graph), std::move(stores[s]),
                                  service->options_.engine));
    service->shards_.push_back(std::move(engine));
  }

  const size_t hardware = std::max<size_t>(1, std::thread::hardware_concurrency());
  const size_t threads =
      service->options_.fanout_threads > 0
          ? service->options_.fanout_threads
          : std::max<size_t>(1, std::min(num_shards, hardware));
  service->pool_ = std::make_unique<ThreadPool>(threads);
  service->num_items_.store(total, std::memory_order_release);
  return service;
}

void ShardedSearchService::RunFanOut(
    size_t count, const std::function<void(size_t)>& fn) const {
  FanOutOnPool(pool_.get(), count, fn);
}

bool ShardedSearchService::AnyShardHasGeoItems() const {
  for (const auto& shard : shards_) {
    if (shard->snapshot()->has_geo_items()) return true;
  }
  return false;
}

Result<QueryResult> ShardedSearchService::QueryShard(
    size_t s, const SocialQuery& query, std::optional<AlgorithmId> hint,
    bool geo_fallback_allowed) const {
  const AlgorithmId algorithm = hint.value_or(AlgorithmId::kHybrid);
  Result<QueryResult> result = shards_[s]->Query(query, algorithm);
  if (!result.ok() && algorithm == AlgorithmId::kGeoGrid &&
      result.status().code() == StatusCode::kFailedPrecondition &&
      query.has_geo_filter && geo_fallback_allowed) {
    // With a geo filter on the query, geo-grid's only FailedPrecondition
    // is "no geo items covered by THIS shard's indexes" — but a
    // single-node engine over the whole corpus would have executed the
    // hint, so substitute hybrid (exact, only the work profile differs).
    // When no shard has geo items (fallback not allowed) the whole corpus
    // has none, and the hint must fail exactly like the local backend.
    result = shards_[s]->Query(query, AlgorithmId::kHybrid);
  }
  if (!result.ok()) return result;
  for (ScoredItem& item : result.value().items) {
    item.item = local_to_global_[s][item.item];
  }
  return result;
}

Result<SearchResponse> ShardedSearchService::Search(
    const SearchRequest& request) {
  std::vector<Result<SearchResponse>> responses =
      ExecuteRequests(std::span<const SearchRequest>(&request, 1));
  return std::move(responses[0]);
}

std::vector<Result<SearchResponse>> ShardedSearchService::SearchBatch(
    std::span<const SearchRequest> requests) {
  return ExecuteRequests(requests);
}

std::vector<Result<SearchResponse>> ShardedSearchService::ExecuteRequests(
    std::span<const SearchRequest> requests) {
  const size_t num_shards = shards_.size();
  std::vector<Result<SearchResponse>> responses(
      requests.size(), Status::Internal("request never executed"));
  std::vector<Stopwatch> watches(requests.size());

  // A request stays pending while its owner-diversified selection needs a
  // deeper global prefix (iterative deepening, mirroring
  // SocialSearchEngine::QueryDiverse). Plain requests finish in round one.
  struct Pending {
    size_t request;  // index into `requests`
    size_t fetch_k;
  };
  std::vector<Pending> pending;
  pending.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    pending.push_back({i, requests[i].query.k});
  }

  // Computed once per call (not per failing shard): whether a geo-grid
  // hint may fall back to hybrid on shards without geo coverage.
  bool geo_fallback_allowed = false;
  for (const SearchRequest& request : requests) {
    if (request.algorithm == AlgorithmId::kGeoGrid) {
      geo_fallback_allowed = AnyShardHasGeoItems();
      break;
    }
  }

  while (!pending.empty()) {
    // Flat fan-out over (pending request) x (shard): one pool pass per
    // round, never nested (ThreadPool fan-outs must not nest).
    std::vector<std::vector<Result<QueryResult>>> round(
        pending.size(), std::vector<Result<QueryResult>>(
                            num_shards, Status::Internal("never executed")));
    RunFanOut(pending.size() * num_shards, [&](size_t job) {
      const size_t p = job / num_shards;
      const size_t s = job % num_shards;
      const SearchRequest& request = requests[pending[p].request];
      SocialQuery query = request.query;
      query.k = pending[p].fetch_k;
      round[p][s] = QueryShard(s, query, request.algorithm,
                               geo_fallback_allowed);
    });

    std::vector<Pending> still_pending;
    for (size_t p = 0; p < pending.size(); ++p) {
      const size_t i = pending[p].request;
      const SearchRequest& request = requests[i];
      const size_t fetch_k = pending[p].fetch_k;

      Status error = Status::Ok();
      for (size_t s = 0; s < num_shards && error.ok(); ++s) {
        if (!round[p][s].ok()) error = round[p][s].status();
      }
      if (!error.ok()) {
        responses[i] = std::move(error);
        continue;
      }

      SearchResponse response;
      response.backend = backend_label_;
      response.shards_touched = num_shards;
      // Label with what actually executed when the shards agree (e.g.
      // every shard fell back to hybrid); a mixed fan-out keeps the
      // hint's name — see the SearchResponse::algorithm contract.
      response.algorithm = round[p][0].value().algorithm;
      for (size_t s = 1; s < num_shards; ++s) {
        if (round[p][s].value().algorithm != response.algorithm) {
          response.algorithm = AlgorithmName(
              request.algorithm.value_or(AlgorithmId::kHybrid));
          break;
        }
      }
      std::vector<ScoredItem> merged;
      bool all_exhausted = true;
      for (size_t s = 0; s < num_shards; ++s) {
        const QueryResult& shard_result = round[p][s].value();
        MergeSearchStats(shard_result.stats, &response.stats);
        merged.insert(merged.end(), shard_result.items.begin(),
                      shard_result.items.end());
        if (shard_result.items.size() >= fetch_k) all_exhausted = false;
      }
      std::sort(merged.begin(), merged.end(), ScoreOrder);

      auto finalize = [&](std::vector<ScoredItem> items) {
        response.items = std::move(items);
        response.elapsed_ms = watches[i].ElapsedMillis();
        response.deadline_exceeded = request.timeout_ms > 0.0 &&
                                     response.elapsed_ms > request.timeout_ms;
        responses[i] = std::move(response);
      };

      if (request.max_per_owner == 0) {
        // Exact: every global top-k member is in its own shard's top-k,
        // so the merge's first k entries ARE the global top-k.
        if (merged.size() > request.query.k) merged.resize(request.query.k);
        finalize(std::move(merged));
        continue;
      }

      // Owner-diversified: greedy per-owner cap over the EXACT global
      // prefix. When no shard was exhausted the first fetch_k entries of
      // the merge are exactly the global top-fetch_k; when every shard
      // was exhausted the merge is the entire positive-score corpus and
      // greedy over all of it is the exact answer.
      if (!all_exhausted && merged.size() > fetch_k) merged.resize(fetch_k);
      std::vector<ScoredItem> diverse;
      std::unordered_map<UserId, size_t> taken;
      for (const ScoredItem& entry : merged) {
        size_t& count = taken[OwnerOf(entry.item)];
        if (count >= request.max_per_owner) continue;
        ++count;
        diverse.push_back(entry);
        if (diverse.size() == request.query.k) break;
      }
      if (diverse.size() == request.query.k || all_exhausted) {
        finalize(std::move(diverse));
      } else {
        still_pending.push_back({i, fetch_k * 2});
      }
    }
    pending = std::move(still_pending);
  }
  return responses;
}

Result<std::vector<TagSuggestion>> ShardedSearchService::SuggestTags(
    UserId user, std::span<const TagId> seed_tags,
    const QueryExpansionOptions& options) {
  if (options.max_suggestions == 0) {
    // Mirror the per-engine validation the per-shard override would mask.
    return Status::InvalidArgument("max_suggestions must be >= 1");
  }
  // Every shard reports ALL its evidence (no per-shard truncation or
  // thresholding — both are applied on the merged, global totals below;
  // a tag just under a per-shard threshold could clear the global one).
  QueryExpansionOptions shard_options = options;
  shard_options.max_suggestions = std::numeric_limits<size_t>::max();
  shard_options.min_cooccurrence = 1;

  std::vector<Result<std::vector<TagSuggestion>>> per_shard(
      shards_.size(), Status::Internal("never executed"));
  RunFanOut(shards_.size(), [&](size_t s) {
    per_shard[s] = shards_[s]->SuggestTags(user, seed_tags, shard_options);
  });

  struct Evidence {
    double weight = 0.0;
    uint32_t support = 0;
  };
  std::unordered_map<TagId, Evidence> evidence;
  for (const auto& shard_result : per_shard) {
    if (!shard_result.ok()) return shard_result.status();
    for (const TagSuggestion& s : shard_result.value()) {
      Evidence& e = evidence[s.tag];
      e.weight += static_cast<double>(s.weight);
      e.support += s.support;
    }
  }
  std::vector<TagSuggestion> suggestions;
  suggestions.reserve(evidence.size());
  for (const auto& [tag, e] : evidence) {
    if (e.support < options.min_cooccurrence) continue;
    suggestions.push_back({tag, static_cast<float>(e.weight), e.support});
  }
  std::sort(suggestions.begin(), suggestions.end(),
            [](const TagSuggestion& a, const TagSuggestion& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.tag < b.tag;
            });
  if (suggestions.size() > options.max_suggestions) {
    suggestions.resize(options.max_suggestions);
  }
  return suggestions;
}

Result<ItemId> ShardedSearchService::AddItem(const Item& item) {
  AMICI_ASSIGN_OR_RETURN(
      const std::vector<ItemId> ids,
      AddItems(std::span<const Item>(&item, 1)));
  return ids[0];
}

Result<std::vector<ItemId>> ShardedSearchService::AddItems(
    std::span<const Item> items) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const size_t start =
      num_items_.load(std::memory_order_relaxed);
  const size_t users = num_users();

  // Validate the whole batch up front — per-item shape at the CALLER's
  // batch position, then per-shard cumulative capacity — so the engine
  // appends below cannot fail once the id maps are committed (the map
  // rows must be written before a shard publishes the items, because
  // readers translate ids of anything a pinned snapshot shows).
  std::vector<std::vector<Item>> per_shard(shards_.size());
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].owner >= users) {
      return Status::InvalidArgument(
          StringPrintf("batch item %zu: owner outside the social graph", i));
    }
    const uint32_t shard = ShardOf(static_cast<ItemId>(start + i));
    const Status status = shards_[shard]->store().ValidateForAdd(items[i]);
    if (!status.ok()) {
      return Status(status.code(), StringPrintf("batch item %zu: %s", i,
                                                status.message().c_str()));
    }
    per_shard[shard].push_back(items[i]);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) continue;
    // Shapes passed above; this adds the cumulative-capacity guarantee.
    AMICI_RETURN_IF_ERROR(
        shards_[s]->store().ValidateForAddAll(per_shard[s]));
  }

  // Commit the id maps for the whole batch, then append per shard — one
  // snapshot publish per touched shard (the batched-ingest path).
  std::vector<ItemId> ids;
  ids.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    const ItemId global = static_cast<ItemId>(start + i);
    const uint32_t shard = ShardOf(global);
    const ItemId local = static_cast<ItemId>(local_to_global_[shard].size());
    RecordPlacementLocked(global, shard, local);
    ids.push_back(global);
  }
  // Admit the ids BEFORE any shard publishes: num_items() must never lag
  // behind what a response can already contain. The cost is that it
  // briefly LEADS readability — ids in [published, num_items()) exist but
  // are not yet backed by shard store rows, which is why OwnerOf/TagsOf
  // only accept ids obtained from a response or an Add return value (see
  // the header contract), never ids derived from num_items().
  num_items_.store(start + items.size(), std::memory_order_release);
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) continue;
    const auto added = shards_[s]->AddItems(per_shard[s]);
    // Unreachable: ValidateForAddAll covered shape and cumulative
    // capacity; anything else would desynchronize the id maps, so fail
    // loudly.
    AMICI_CHECK(added.ok()) << added.status().ToString();
  }
  return ids;
}

Status ShardedSearchService::AddFriendship(UserId u, UserId v) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  // The graphs are replicas: shard 0's verdict is every shard's verdict,
  // so validate there before touching the rest.
  AMICI_RETURN_IF_ERROR(shards_[0]->AddFriendship(u, v));
  for (size_t s = 1; s < shards_.size(); ++s) {
    const Status status = shards_[s]->AddFriendship(u, v);
    AMICI_CHECK(status.ok()) << "shard " << s << " graph diverged: "
                             << status.ToString();
  }
  return Status::Ok();
}

Status ShardedSearchService::RemoveFriendship(UserId u, UserId v) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  AMICI_RETURN_IF_ERROR(shards_[0]->RemoveFriendship(u, v));
  for (size_t s = 1; s < shards_.size(); ++s) {
    const Status status = shards_[s]->RemoveFriendship(u, v);
    AMICI_CHECK(status.ok()) << "shard " << s << " graph diverged: "
                             << status.ToString();
  }
  return Status::Ok();
}

Status ShardedSearchService::Compact() {
  // Compactions are heavy and independent: run them in parallel. Each
  // engine handles its own concurrency with queries and ingest.
  std::vector<Status> statuses(shards_.size());
  RunFanOut(shards_.size(),
            [&](size_t s) { statuses[s] = shards_[s]->Compact(); });
  for (const Status& status : statuses) {
    AMICI_RETURN_IF_ERROR(status);
  }
  return Status::Ok();
}

size_t ShardedSearchService::num_users() const {
  return shards_[0]->snapshot()->graph->num_users();
}

size_t ShardedSearchService::unindexed_items() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->unindexed_items();
  return total;
}

UserId ShardedSearchService::OwnerOf(ItemId item) const {
  const ShardRef ref = global_to_shard_[item];
  return shards_[ref.shard]->store().owner(ref.local);
}

std::vector<TagId> ShardedSearchService::TagsOf(ItemId item) const {
  const ShardRef ref = global_to_shard_[item];
  const auto tags = shards_[ref.shard]->store().tags(ref.local);
  return std::vector<TagId>(tags.begin(), tags.end());
}

std::vector<UserId> ShardedSearchService::FriendsOf(UserId user) const {
  const auto snap = shards_[0]->snapshot();
  const auto friends = snap->graph->Friends(user);
  return std::vector<UserId>(friends.begin(), friends.end());
}

std::string ShardedSearchService::StatsSummary() const {
  std::string summary;
  for (size_t s = 0; s < shards_.size(); ++s) {
    summary += "[shard " + std::to_string(s) + "]\n";
    summary += shards_[s]->stats().ToString();
  }
  return summary;
}

}  // namespace amici
