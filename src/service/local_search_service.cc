#include "service/local_search_service.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace amici {

Result<std::unique_ptr<LocalSearchService>> LocalSearchService::Build(
    SocialGraph graph, ItemStore store, Options options) {
  AMICI_ASSIGN_OR_RETURN(
      std::unique_ptr<SocialSearchEngine> engine,
      SocialSearchEngine::Build(std::move(graph), std::move(store),
                                std::move(options.engine)));
  return std::make_unique<LocalSearchService>(std::move(engine),
                                              options.batch_threads);
}

Result<std::unique_ptr<LocalSearchService>> LocalSearchService::Build(
    SocialGraph graph, ItemStore store) {
  return Build(std::move(graph), std::move(store), Options());
}

LocalSearchService::LocalSearchService(
    std::unique_ptr<SocialSearchEngine> engine, size_t batch_threads)
    : engine_(std::move(engine)) {
  if (batch_threads > 0) {
    batch_pool_ = std::make_unique<ThreadPool>(batch_threads);
  }
}

LocalSearchService::~LocalSearchService() { ShutdownBackgroundWork(); }

CompactionSignals LocalSearchService::ShardSignals(size_t shard) const {
  AMICI_CHECK(shard == 0) << "local backend has exactly one shard";
  const auto snap = engine_->snapshot();
  CompactionSignals signals;
  signals.tail_items = snap->unindexed_items();
  signals.indexed_items = snap->index_horizon;
  // One consistent (items, latency) pair — the policy relates the two.
  const auto observation = engine_->stats().last_tail_scan();
  signals.last_tail_scan_ms = observation.elapsed_ms;
  signals.last_tail_scan_items = observation.items;
  return signals;
}

Status LocalSearchService::CompactShard(size_t shard,
                                        CompactionOutcome* outcome) {
  AMICI_CHECK(shard == 0) << "local backend has exactly one shard";
  return engine_->Compact(outcome);
}

Result<SearchResponse> LocalSearchService::SearchImpl(
    const SearchRequest& request) {
  Stopwatch watch;
  const AlgorithmId algorithm =
      request.algorithm.value_or(AlgorithmId::kHybrid);
  // The cooperative deadline: algorithms probe the token per posting-list
  // block / candidate batch, so expiry stops work mid-run instead of
  // being noticed post-hoc. timeout_ms <= 0 arms nothing.
  const CancellationToken token = CancellationToken::FromTimeout(
      request.timeout_ms, CancellationToken::Clock::now());
  const CancellationToken* cancel = token.armed() ? &token : nullptr;
  Result<QueryResult> result =
      request.max_per_owner > 0
          ? engine_->QueryDiverse(request.query, request.max_per_owner,
                                  algorithm, cancel)
          : engine_->Query(request.query, algorithm, cancel);
  if (!result.ok()) return result.status();

  SearchResponse response;
  response.items = std::move(result.value().items);
  response.stats = result.value().stats;
  response.algorithm = result.value().algorithm;
  response.backend = backend_name();
  response.shards_touched = 1;
  response.elapsed_ms = watch.ElapsedMillis();
  response.deadline_exceeded =
      response.stats.truncated ||
      (request.timeout_ms > 0.0 && response.elapsed_ms > request.timeout_ms);
  return response;
}

std::vector<Result<SearchResponse>> LocalSearchService::SearchBatchImpl(
    std::span<const SearchRequest> requests) {
  std::vector<Result<SearchResponse>> responses(
      requests.size(), Status::Internal("batch slot never executed"));
  // Each row runs SearchImpl and derives its own token from its own
  // timeout_ms, so one batch can mix zero / tight / generous deadlines
  // and each row degrades (or not) independently.
  if (batch_pool_ == nullptr) {
    for (size_t i = 0; i < requests.size(); ++i) {
      responses[i] = SearchImpl(requests[i]);
    }
    return responses;
  }
  // Per-call completion (not ParallelFor/WaitIdle): concurrent batches
  // sharing this pool must not serialize on pool-wide idleness.
  FanOutOnPool(batch_pool_.get(), requests.size(),
               [&](size_t i) { responses[i] = SearchImpl(requests[i]); });
  return responses;
}

uint64_t LocalSearchService::EstimateQueryCost(
    const SocialQuery& query) const {
  const auto snap = engine_->snapshot();
  const InvertedIndex& inverted = snap->indexes->inverted;
  uint64_t postings = 0;
  bool first = true;
  for (const TagId tag : query.tags) {
    const uint64_t df = inverted.DocumentFrequency(tag);
    if (query.mode == MatchMode::kAll) {
      // Conjunctive traversal is driven by the rarest list.
      postings = first ? df : std::min(postings, df);
      first = false;
    } else {
      postings += df;
    }
  }
  return postings + snap->unindexed_items();
}

Result<std::vector<TagSuggestion>> LocalSearchService::SuggestTags(
    UserId user, std::span<const TagId> seed_tags,
    const QueryExpansionOptions& options) {
  return engine_->SuggestTags(user, seed_tags, options);
}

Result<ItemId> LocalSearchService::AddItem(const Item& item) {
  AMICI_ASSIGN_OR_RETURN(
      const std::vector<ItemId> ids,
      AddItems(std::span<const Item>(&item, 1)));
  return ids[0];
}

Result<std::vector<ItemId>> LocalSearchService::AddItems(
    std::span<const Item> items) {
  // Service-level serialization so the WAL append below stays ordered
  // exactly like the engine applies.
  std::lock_guard<std::mutex> lock(writer_mutex_);
  AMICI_ASSIGN_OR_RETURN(std::vector<ItemId> ids, engine_->AddItems(items));
  if (!ids.empty()) {
    AMICI_RETURN_IF_ERROR(LogAddItems(&persist_, ids[0], items));
  }
  return ids;
}

Status LocalSearchService::AddFriendship(UserId u, UserId v) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  AMICI_RETURN_IF_ERROR(engine_->AddFriendship(u, v));
  return LogFriendship(&persist_, /*adding=*/true, u, v);
}

Status LocalSearchService::RemoveFriendship(UserId u, UserId v) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  AMICI_RETURN_IF_ERROR(engine_->RemoveFriendship(u, v));
  return LogFriendship(&persist_, /*adding=*/false, u, v);
}

Result<persist::SnapshotSaveReport> LocalSearchService::SaveSnapshot(
    const std::string& dir) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  SocialSearchEngine* const shard = engine_.get();
  return SaveServiceSnapshot(
      dir, std::span<SocialSearchEngine* const>(&shard, 1),
      *engine_->shared_proximity(), engine_->store().num_items(),
      persist::SnapshotSaveOptions(), &persist_);
}

Result<std::unique_ptr<LocalSearchService>> LocalSearchService::OpenSnapshot(
    const std::string& dir, Options options,
    const persist::SnapshotOpenOptions& open_options,
    persist::WalReplayStats* replay_stats) {
  ServicePersistState state;
  AMICI_ASSIGN_OR_RETURN(
      LoadedServiceSnapshot loaded,
      OpenServiceSnapshot(dir, options.engine, open_options, &state));
  if (loaded.root.num_shards != 1) {
    return Status::InvalidArgument(
        dir + " holds a " + std::to_string(loaded.root.num_shards) +
        "-shard snapshot; open it with ShardedSearchService::OpenSnapshot");
  }
  auto service = std::make_unique<LocalSearchService>(
      std::move(loaded.shards[0]), options.batch_threads);
  service->persist_ = std::move(state);

  // Replay the acknowledged ingest tail through the NORMAL mutators
  // (the WAL is not attached yet, so nothing is re-logged).
  LocalSearchService* raw = service.get();
  persist::WalReplayHandlers handlers;
  handlers.add_items = [raw](uint64_t first_item_id,
                             std::vector<Item>&& items) -> Status {
    if (first_item_id != raw->num_items()) {
      return Status::Corruption(
          "WAL batch starts at item " + std::to_string(first_item_id) +
          ", catalogue has " + std::to_string(raw->num_items()) +
          " (wrong base snapshot?)");
    }
    return raw->AddItems(items).status();
  };
  handlers.add_friendship = [raw](UserId u, UserId v) {
    return raw->AddFriendship(u, v);
  };
  handlers.remove_friendship = [raw](UserId u, UserId v) {
    return raw->RemoveFriendship(u, v);
  };
  AMICI_ASSIGN_OR_RETURN(const persist::WalReplayStats stats,
                         ReplayAndAttachWal(&service->persist_, handlers));
  if (replay_stats != nullptr) *replay_stats = stats;
  return service;
}

Status LocalSearchService::Compact() { return engine_->Compact(); }

size_t LocalSearchService::num_users() const {
  return engine_->snapshot()->graph->num_users();
}

size_t LocalSearchService::num_items() const {
  return engine_->store().num_items();
}

size_t LocalSearchService::unindexed_items() const {
  return engine_->unindexed_items();
}

UserId LocalSearchService::OwnerOf(ItemId item) const {
  return engine_->store().owner(item);
}

std::vector<TagId> LocalSearchService::TagsOf(ItemId item) const {
  const auto tags = engine_->store().tags(item);
  return std::vector<TagId>(tags.begin(), tags.end());
}

std::vector<UserId> LocalSearchService::FriendsOf(UserId user) const {
  // Pin a snapshot: the span must not dangle if a concurrent friendship
  // edit publishes a new graph generation mid-copy.
  const auto snap = engine_->snapshot();
  const auto friends = snap->graph->Friends(user);
  return std::vector<UserId>(friends.begin(), friends.end());
}

std::string LocalSearchService::StatsSummary() const {
  return engine_->stats().ToString() + QosSummaryLine();
}

}  // namespace amici
