#ifndef AMICI_SERVICE_SERVICE_PERSISTENCE_H_
#define AMICI_SERVICE_SERVICE_PERSISTENCE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/engine.h"
#include "persist/manifest.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "proximity/proximity_provider.h"
#include "util/status.h"

namespace amici {

/// Service-level snapshot orchestration, shared by LocalSearchService
/// (one shard) and ShardedSearchService (N shards). Directory layout on
/// top of the engine-level layout (src/persist/snapshot.h):
///
///   <dir>/CURRENT             -> MANIFEST-<gen> (THE commit point)
///   <dir>/MANIFEST-<gen>      root manifest: num_shards, wal file, graph
///   <dir>/graph-<gen>.seg     the ONE shared graph (never per shard)
///   <dir>/wal-<gen>.log       ingest WAL: mutations since the segments
///   <dir>/shard-<i>/MANIFEST-<gen> + segments   per-shard engine state
///
/// Save protocol: write every shard's segments + manifest (no CURRENT in
/// shard dirs — the root manifest pins their generation), then the graph
/// segment, then a fresh empty WAL, then the root manifest, then commit
/// CURRENT atomically. A crash anywhere before the commit leaves the
/// previous snapshot fully live (its files are deleted only after the
/// commit). Restart = map shard segments + replay the WAL tail.

/// In-memory persistence state of a service; guarded by the service's
/// writer mutex. `attached` means mutators append to `wal`.
struct ServicePersistState {
  std::string dir;
  persist::Manifest root;
  std::unique_ptr<persist::WalWriter> wal;
  /// Provider generation whose graph the committed snapshot holds —
  /// lets the next save skip the O(E) graph rewrite when no friendship
  /// edit happened in between (valid within this process only).
  uint64_t saved_graph_version = 0;
  bool attached = false;
};

/// "shard-<i>" subdirectory path.
std::string ShardDirPath(const std::string& dir, size_t shard);

/// Writes and COMMITS a full service snapshot of `shards` into `dir`,
/// then attaches a fresh WAL to `state`. Incremental per shard when the
/// directory's live snapshot is compatible (same shard count; each shard
/// save falls back to full when its own base is incompatible). Caller
/// holds the service writer mutex, so the engines' published snapshots
/// are the complete service state.
Result<persist::SnapshotSaveReport> SaveServiceSnapshot(
    const std::string& dir, std::span<SocialSearchEngine* const> shards,
    ProximityProvider& provider, uint64_t num_items,
    persist::SnapshotSaveOptions options, ServicePersistState* state);

/// What OpenServiceSnapshot reconstructs. The WAL is NOT yet replayed or
/// attached: the concrete service first rebuilds its routing state from
/// the manifests, then replays through its own mutators (see
/// ReplayAndAttachWal).
struct LoadedServiceSnapshot {
  persist::Manifest root;
  /// Built from the root graph segment via
  /// SocialSearchEngine::MakeProximityProvider — the one provider every
  /// restored shard engine consumes.
  std::shared_ptr<ProximityProvider> provider;
  std::vector<std::unique_ptr<SocialSearchEngine>> shards;
};

/// Opens the root manifest (CURRENT or open_options.manifest_name),
/// restores the shared graph + provider, and opens every shard engine
/// against its pinned manifest generation. Fills `state` (dir, root;
/// WAL not attached).
Result<LoadedServiceSnapshot> OpenServiceSnapshot(
    const std::string& dir, const SocialSearchEngine::Options& engine_options,
    const persist::SnapshotOpenOptions& open_options,
    ServicePersistState* state);

/// Replays the root WAL's committed prefix through `handlers` (the
/// service's own mutators — `state->attached` is still false, so nothing
/// is re-logged), truncates any torn tail, and attaches the WAL for
/// appending. No-op (Ok, zero stats) when the snapshot has no WAL.
Result<persist::WalReplayStats> ReplayAndAttachWal(
    ServicePersistState* state, const persist::WalReplayHandlers& handlers);

/// Mutation logging — called by the service mutators AFTER the mutation
/// applied, under the writer mutex. No-ops when not attached. Each
/// append is fdatasync-flushed: an acknowledged write survives a crash.
Status LogAddItems(ServicePersistState* state, uint64_t first_item_id,
                   std::span<const Item> items);
Status LogFriendship(ServicePersistState* state, bool adding, UserId u,
                     UserId v);

}  // namespace amici

#endif  // AMICI_SERVICE_SERVICE_PERSISTENCE_H_
