#include "service/search_service.h"

#include <condition_variable>
#include <mutex>
#include <utility>

#include "util/thread_pool.h"

namespace amici {

void MergeSearchStats(const SearchStats& from, SearchStats* into) {
  into->aggregation.sorted_accesses += from.aggregation.sorted_accesses;
  into->aggregation.random_accesses += from.aggregation.random_accesses;
  into->aggregation.candidates_scored += from.aggregation.candidates_scored;
  into->aggregation.blocks_decoded += from.aggregation.blocks_decoded;
  into->aggregation.blocks_skipped += from.aggregation.blocks_skipped;
  into->items_considered += from.items_considered;
  into->tail_items_scanned += from.tail_items_scanned;
  into->proximity_computations += from.proximity_computations;
  into->proximity_cache_hits += from.proximity_cache_hits;
  into->compactions_merge += from.compactions_merge;
  into->compactions_rebuild += from.compactions_rebuild;
  into->compaction_items_merged += from.compaction_items_merged;
  into->compaction_lists_touched += from.compaction_lists_touched;
}

// --- Background ingest / compaction plumbing ---------------------------

std::shared_ptr<IngestPipeline> SearchService::pipeline() const {
  std::lock_guard<std::mutex> lock(background_mutex_);
  return pipeline_;
}

std::shared_ptr<CompactionScheduler> SearchService::scheduler() const {
  std::lock_guard<std::mutex> lock(background_mutex_);
  return scheduler_;
}

Status SearchService::StartIngest(const IngestPipeline::Options& options) {
  std::lock_guard<std::mutex> lock(background_mutex_);
  if (pipeline_ != nullptr) {
    return Status::FailedPrecondition("ingest pipeline already running");
  }
  pipeline_ = std::make_shared<IngestPipeline>(this, options);
  return Status::Ok();
}

Status SearchService::StopIngest() {
  // shutdown_mutex_ spans the whole drain: a second concurrent caller
  // blocks here until the first caller's writer thread is joined, so
  // Stop's return always means "no writer thread is running".
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  std::shared_ptr<IngestPipeline> stopping = pipeline();
  if (stopping == nullptr) return Status::Ok();
  // Outside background_mutex_: Stop() drains the queue through this
  // service's mutators and unblocks producers waiting on backpressure.
  // The pipeline stays registered until the drain completes, so Flush()
  // issued concurrently still waits for queued work instead of
  // short-circuiting through the no-pipeline path.
  stopping->Stop();
  {
    std::lock_guard<std::mutex> lock(background_mutex_);
    pipeline_ = nullptr;
  }
  return Status::Ok();
}

bool SearchService::ingest_running() const { return pipeline() != nullptr; }

Result<IngestTicket> SearchService::EnqueueItems(std::vector<Item> items) {
  if (const auto active = pipeline(); active != nullptr) {
    return active->EnqueueItems(std::move(items));
  }
  // Synchronous fallback: apply now, hand back a completed ticket. Lets
  // callers write Enqueue + Flush once and run with or without the
  // pipeline (the ticket's status carries any rejection).
  Result<std::vector<ItemId>> ids = AddItems(items);
  if (!ids.ok()) return IngestTicket::Resolved(ids.status(), {});
  return IngestTicket::Resolved(Status::Ok(), std::move(ids).value());
}

Result<IngestTicket> SearchService::EnqueueFriendshipEdit(UserId u, UserId v,
                                                          bool adding) {
  // ONE pipeline snapshot decides both the validation mode and the
  // dispatch path — two separate reads could straddle a concurrent
  // Start/StopIngest and judge the edit under the wrong mode.
  const auto active = pipeline();
  // The provider is the single validation authority (the same rules the
  // edit itself will apply). Structural rejections (range, self-edge)
  // are always final at the edge; edge-EXISTENCE checks are only exact
  // when writes are synchronous — with a pipeline running, a still-
  // queued edit may legitimately change the edge's state before this
  // one applies (Add immediately followed by Remove is a valid ordered
  // sequence), so there the existence verdict rides the ticket instead.
  AMICI_RETURN_IF_ERROR(proximity_provider()->ValidateEdit(
      u, v, adding, /*check_existence=*/active == nullptr));
  if (active != nullptr) {
    return adding ? active->EnqueueAddFriendship(u, v)
                  : active->EnqueueRemoveFriendship(u, v);
  }
  return IngestTicket::Resolved(
      adding ? AddFriendship(u, v) : RemoveFriendship(u, v), {});
}

Result<IngestTicket> SearchService::EnqueueAddFriendship(UserId u, UserId v) {
  return EnqueueFriendshipEdit(u, v, /*adding=*/true);
}

Result<IngestTicket> SearchService::EnqueueRemoveFriendship(UserId u,
                                                            UserId v) {
  return EnqueueFriendshipEdit(u, v, /*adding=*/false);
}

Status SearchService::Flush() {
  if (const auto active = pipeline(); active != nullptr) {
    return active->Flush();
  }
  return Status::Ok();  // synchronous writes are always visible
}

IngestCounters SearchService::ingest_counters() const {
  if (const auto active = pipeline(); active != nullptr) {
    return active->counters();
  }
  return IngestCounters{};
}

Status SearchService::StartAutoCompaction(
    const CompactionScheduler::Options& options) {
  std::lock_guard<std::mutex> lock(background_mutex_);
  if (scheduler_ != nullptr) {
    return Status::FailedPrecondition("compaction scheduler already running");
  }
  scheduler_ = std::make_shared<CompactionScheduler>(this, options);
  return Status::Ok();
}

Status SearchService::StopAutoCompaction() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  std::shared_ptr<CompactionScheduler> stopping = scheduler();
  if (stopping == nullptr) return Status::Ok();
  stopping->Stop();  // outside background_mutex_: joins the poll thread
  {
    // Retire the count and unregister ATOMICALLY (one critical section):
    // auto_compactions() readers see either live-scheduler or
    // retired-count state, never a window with neither.
    std::lock_guard<std::mutex> lock(background_mutex_);
    retired_auto_compactions_ += stopping->compactions_triggered();
    scheduler_ = nullptr;
  }
  return Status::Ok();
}

bool SearchService::auto_compaction_running() const {
  return scheduler() != nullptr;
}

uint64_t SearchService::auto_compactions() const {
  std::lock_guard<std::mutex> lock(background_mutex_);
  uint64_t total = retired_auto_compactions_;
  if (scheduler_ != nullptr) total += scheduler_->compactions_triggered();
  return total;
}

void SearchService::ShutdownBackgroundWork() {
  // Scheduler first (no new compactions), then the pipeline (drains the
  // remaining queue synchronously through this service's mutators).
  StopAutoCompaction();
  StopIngest();
}

void FanOutOnPool(ThreadPool* pool, size_t count,
                  const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (count == 1) {
    fn(0);
    return;
  }
  // The counter is decremented UNDER the mutex: once the waiter observes
  // 0 the last worker has already left its critical section, so
  // returning (and destroying these stack-locals) cannot race a worker
  // still touching them.
  size_t remaining = count - 1;  // guarded by done_mutex
  std::mutex done_mutex;
  std::condition_variable done;
  for (size_t i = 1; i < count; ++i) {
    pool->Submit([&, i] {
      fn(i);
      std::lock_guard<std::mutex> lock(done_mutex);
      if (--remaining == 0) done.notify_all();
    });
  }
  fn(0);
  std::unique_lock<std::mutex> lock(done_mutex);
  done.wait(lock, [&] { return remaining == 0; });
}

}  // namespace amici
