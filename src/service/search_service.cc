#include "service/search_service.h"

#include <condition_variable>
#include <mutex>
#include <utility>

#include "util/thread_pool.h"

namespace amici {

void MergeSearchStats(const SearchStats& from, SearchStats* into) {
  into->aggregation.sorted_accesses += from.aggregation.sorted_accesses;
  into->aggregation.random_accesses += from.aggregation.random_accesses;
  into->aggregation.candidates_scored += from.aggregation.candidates_scored;
  into->aggregation.blocks_decoded += from.aggregation.blocks_decoded;
  into->aggregation.blocks_skipped += from.aggregation.blocks_skipped;
  into->items_considered += from.items_considered;
  into->tail_items_scanned += from.tail_items_scanned;
  into->proximity_computations += from.proximity_computations;
  into->proximity_cache_hits += from.proximity_cache_hits;
  into->compactions_merge += from.compactions_merge;
  into->compactions_rebuild += from.compactions_rebuild;
  into->compaction_items_merged += from.compaction_items_merged;
  into->compaction_lists_touched += from.compaction_lists_touched;
  // Any truncated shard makes the merged result best-effort.
  into->truncated = into->truncated || from.truncated;
}

// --- Query QoS edge ----------------------------------------------------

std::shared_ptr<AdmissionController> SearchService::admission() const {
  std::lock_guard<std::mutex> lock(background_mutex_);
  return admission_;
}

void SearchService::EnableAdmissionControl(
    AdmissionController::Options options) {
  auto controller = std::make_shared<AdmissionController>(std::move(options));
  std::lock_guard<std::mutex> lock(background_mutex_);
  admission_ = std::move(controller);
}

void SearchService::DisableAdmissionControl() {
  std::lock_guard<std::mutex> lock(background_mutex_);
  admission_ = nullptr;
}

SearchResponse SearchService::MakeShedResponse(
    const SearchRequest& request) const {
  SearchResponse response;
  response.shed = true;
  response.backend = backend_name();
  response.algorithm =
      AlgorithmName(request.algorithm.value_or(AlgorithmId::kHybrid));
  response.shards_touched = 0;
  return response;
}

SearchRequest SearchService::ApplyDegrade(
    const SearchRequest& request, const AdmissionController::Options& opts) {
  SearchRequest degraded = request;
  degraded.algorithm = opts.degrade_algorithm;
  if (opts.degrade_k_cap > 0 && degraded.query.k > opts.degrade_k_cap) {
    degraded.query.k = opts.degrade_k_cap;
  }
  if (opts.degrade_timeout_ms > 0.0 &&
      (degraded.timeout_ms <= 0.0 ||
       degraded.timeout_ms > opts.degrade_timeout_ms)) {
    degraded.timeout_ms = opts.degrade_timeout_ms;
  }
  return degraded;
}

void SearchService::AccountResponse(const Result<SearchResponse>& response) {
  if (!response.ok()) return;
  const SearchResponse& r = response.value();
  if (r.stats.truncated) {
    qos_truncated_.fetch_add(1, std::memory_order_relaxed);
  }
  if (r.deadline_exceeded) {
    qos_deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  }
  qos_shards_abandoned_.fetch_add(r.shards_abandoned,
                                  std::memory_order_relaxed);
  qos_shards_failed_.fetch_add(r.shards_failed, std::memory_order_relaxed);
}

Result<SearchResponse> SearchService::RunOneRequest(
    const SearchRequest& request,
    const std::shared_ptr<AdmissionController>& admission) {
  if (admission == nullptr) {
    // QoS edge disabled: pure pass-through, bit-identical to the
    // pre-admission behaviour (only the cumulative counters observe).
    qos_admitted_.fetch_add(1, std::memory_order_relaxed);
    Result<SearchResponse> response = SearchImpl(request);
    AccountResponse(response);
    return response;
  }
  const AdmissionController::Ticket ticket =
      admission->Admit(EstimateQueryCost(request.query));
  if (ticket.decision == AdmissionController::Decision::kShed) {
    qos_shed_.fetch_add(1, std::memory_order_relaxed);
    return MakeShedResponse(request);
  }
  const bool degrade =
      ticket.decision == AdmissionController::Decision::kDegrade;
  Result<SearchResponse> response =
      degrade ? SearchImpl(ApplyDegrade(request, admission->options()))
              : SearchImpl(request);
  admission->Release();
  if (degrade) {
    qos_degraded_.fetch_add(1, std::memory_order_relaxed);
    if (response.ok()) response.value().degraded = true;
  } else {
    qos_admitted_.fetch_add(1, std::memory_order_relaxed);
  }
  AccountResponse(response);
  return response;
}

Result<SearchResponse> SearchService::Search(const SearchRequest& request) {
  return RunOneRequest(request, admission());
}

std::vector<Result<SearchResponse>> SearchService::SearchBatch(
    std::span<const SearchRequest> requests) {
  const std::shared_ptr<AdmissionController> controller = admission();
  if (controller == nullptr) {
    // Pass-through: hand the whole batch to the backend (it parallelizes
    // internally); account each row.
    qos_admitted_.fetch_add(requests.size(), std::memory_order_relaxed);
    std::vector<Result<SearchResponse>> responses =
        SearchBatchImpl(requests);
    for (const auto& response : responses) AccountResponse(response);
    return responses;
  }

  // Per-row admission BEFORE dispatch: shed rows answer immediately
  // (their slot in the batch is a well-formed shed response), the rest
  // run as one backend batch with degrade overrides already applied.
  std::vector<Result<SearchResponse>> responses(
      requests.size(), Status::Internal("batch slot never executed"));
  std::vector<SearchRequest> to_run;
  std::vector<size_t> to_run_slot;
  std::vector<char> row_degraded;
  size_t slots_held = 0;
  to_run.reserve(requests.size());
  to_run_slot.reserve(requests.size());
  row_degraded.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const AdmissionController::Ticket ticket =
        controller->Admit(EstimateQueryCost(requests[i].query));
    if (ticket.decision == AdmissionController::Decision::kShed) {
      qos_shed_.fetch_add(1, std::memory_order_relaxed);
      responses[i] = MakeShedResponse(requests[i]);
      continue;
    }
    ++slots_held;
    const bool degrade =
        ticket.decision == AdmissionController::Decision::kDegrade;
    to_run.push_back(degrade
                         ? ApplyDegrade(requests[i], controller->options())
                         : requests[i]);
    to_run_slot.push_back(i);
    row_degraded.push_back(degrade ? 1 : 0);
  }
  if (!to_run.empty()) {
    std::vector<Result<SearchResponse>> ran = SearchBatchImpl(to_run);
    for (size_t j = 0; j < ran.size(); ++j) {
      if (row_degraded[j]) {
        qos_degraded_.fetch_add(1, std::memory_order_relaxed);
        if (ran[j].ok()) ran[j].value().degraded = true;
      } else {
        qos_admitted_.fetch_add(1, std::memory_order_relaxed);
      }
      AccountResponse(ran[j]);
      responses[to_run_slot[j]] = std::move(ran[j]);
    }
  }
  for (size_t s = 0; s < slots_held; ++s) controller->Release();
  return responses;
}

SearchService::QosCounters SearchService::qos_counters() const {
  QosCounters counters;
  counters.admitted = qos_admitted_.load(std::memory_order_relaxed);
  counters.degraded = qos_degraded_.load(std::memory_order_relaxed);
  counters.shed = qos_shed_.load(std::memory_order_relaxed);
  counters.truncated = qos_truncated_.load(std::memory_order_relaxed);
  counters.deadline_exceeded =
      qos_deadline_exceeded_.load(std::memory_order_relaxed);
  counters.shards_abandoned =
      qos_shards_abandoned_.load(std::memory_order_relaxed);
  counters.shards_failed =
      qos_shards_failed_.load(std::memory_order_relaxed);
  return counters;
}

std::string SearchService::QosSummaryLine() const {
  const QosCounters c = qos_counters();
  const std::shared_ptr<AdmissionController> controller = admission();
  std::string line =
      "[qos] admitted=" + std::to_string(c.admitted) +
      " degraded=" + std::to_string(c.degraded) +
      " shed=" + std::to_string(c.shed) +
      " truncated=" + std::to_string(c.truncated) +
      " deadline_exceeded=" + std::to_string(c.deadline_exceeded) +
      " shards_abandoned=" + std::to_string(c.shards_abandoned) +
      " shards_failed=" + std::to_string(c.shards_failed);
  if (controller != nullptr) {
    const AdmissionController::Counters a = controller->counters();
    line += " inflight=" + std::to_string(controller->inflight()) +
            " peak_inflight=" + std::to_string(a.peak_inflight);
  }
  line += "\n";
  return line;
}

// --- Background ingest / compaction plumbing ---------------------------

std::shared_ptr<IngestPipeline> SearchService::pipeline() const {
  std::lock_guard<std::mutex> lock(background_mutex_);
  return pipeline_;
}

std::shared_ptr<CompactionScheduler> SearchService::scheduler() const {
  std::lock_guard<std::mutex> lock(background_mutex_);
  return scheduler_;
}

Status SearchService::StartIngest(const IngestPipeline::Options& options) {
  std::lock_guard<std::mutex> lock(background_mutex_);
  if (pipeline_ != nullptr) {
    return Status::FailedPrecondition("ingest pipeline already running");
  }
  pipeline_ = std::make_shared<IngestPipeline>(this, options);
  return Status::Ok();
}

Status SearchService::StopIngest() {
  // shutdown_mutex_ spans the whole drain: a second concurrent caller
  // blocks here until the first caller's writer thread is joined, so
  // Stop's return always means "no writer thread is running".
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  std::shared_ptr<IngestPipeline> stopping = pipeline();
  if (stopping == nullptr) return Status::Ok();
  // Outside background_mutex_: Stop() drains the queue through this
  // service's mutators and unblocks producers waiting on backpressure.
  // The pipeline stays registered until the drain completes, so Flush()
  // issued concurrently still waits for queued work instead of
  // short-circuiting through the no-pipeline path.
  stopping->Stop();
  {
    std::lock_guard<std::mutex> lock(background_mutex_);
    pipeline_ = nullptr;
  }
  return Status::Ok();
}

bool SearchService::ingest_running() const { return pipeline() != nullptr; }

Result<IngestTicket> SearchService::EnqueueItems(std::vector<Item> items) {
  if (const auto active = pipeline(); active != nullptr) {
    return active->EnqueueItems(std::move(items));
  }
  // Synchronous fallback: apply now, hand back a completed ticket. Lets
  // callers write Enqueue + Flush once and run with or without the
  // pipeline (the ticket's status carries any rejection).
  Result<std::vector<ItemId>> ids = AddItems(items);
  if (!ids.ok()) return IngestTicket::Resolved(ids.status(), {});
  return IngestTicket::Resolved(Status::Ok(), std::move(ids).value());
}

Result<IngestTicket> SearchService::EnqueueFriendshipEdit(UserId u, UserId v,
                                                          bool adding) {
  // ONE pipeline snapshot decides both the validation mode and the
  // dispatch path — two separate reads could straddle a concurrent
  // Start/StopIngest and judge the edit under the wrong mode.
  const auto active = pipeline();
  // The provider is the single validation authority (the same rules the
  // edit itself will apply). Structural rejections (range, self-edge)
  // are always final at the edge; edge-EXISTENCE checks are only exact
  // when writes are synchronous — with a pipeline running, a still-
  // queued edit may legitimately change the edge's state before this
  // one applies (Add immediately followed by Remove is a valid ordered
  // sequence), so there the existence verdict rides the ticket instead.
  AMICI_RETURN_IF_ERROR(proximity_provider()->ValidateEdit(
      u, v, adding, /*check_existence=*/active == nullptr));
  if (active != nullptr) {
    return adding ? active->EnqueueAddFriendship(u, v)
                  : active->EnqueueRemoveFriendship(u, v);
  }
  return IngestTicket::Resolved(
      adding ? AddFriendship(u, v) : RemoveFriendship(u, v), {});
}

Result<IngestTicket> SearchService::EnqueueAddFriendship(UserId u, UserId v) {
  return EnqueueFriendshipEdit(u, v, /*adding=*/true);
}

Result<IngestTicket> SearchService::EnqueueRemoveFriendship(UserId u,
                                                            UserId v) {
  return EnqueueFriendshipEdit(u, v, /*adding=*/false);
}

Status SearchService::Flush() {
  if (const auto active = pipeline(); active != nullptr) {
    return active->Flush();
  }
  return Status::Ok();  // synchronous writes are always visible
}

IngestCounters SearchService::ingest_counters() const {
  if (const auto active = pipeline(); active != nullptr) {
    return active->counters();
  }
  return IngestCounters{};
}

Status SearchService::StartAutoCompaction(
    const CompactionScheduler::Options& options) {
  std::lock_guard<std::mutex> lock(background_mutex_);
  if (scheduler_ != nullptr) {
    return Status::FailedPrecondition("compaction scheduler already running");
  }
  scheduler_ = std::make_shared<CompactionScheduler>(this, options);
  return Status::Ok();
}

Status SearchService::StopAutoCompaction() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  std::shared_ptr<CompactionScheduler> stopping = scheduler();
  if (stopping == nullptr) return Status::Ok();
  stopping->Stop();  // outside background_mutex_: joins the poll thread
  {
    // Retire the count and unregister ATOMICALLY (one critical section):
    // auto_compactions() readers see either live-scheduler or
    // retired-count state, never a window with neither.
    std::lock_guard<std::mutex> lock(background_mutex_);
    retired_auto_compactions_ += stopping->compactions_triggered();
    scheduler_ = nullptr;
  }
  return Status::Ok();
}

bool SearchService::auto_compaction_running() const {
  return scheduler() != nullptr;
}

uint64_t SearchService::auto_compactions() const {
  std::lock_guard<std::mutex> lock(background_mutex_);
  uint64_t total = retired_auto_compactions_;
  if (scheduler_ != nullptr) total += scheduler_->compactions_triggered();
  return total;
}

void SearchService::ShutdownBackgroundWork() {
  // Scheduler first (no new compactions), then the pipeline (drains the
  // remaining queue synchronously through this service's mutators).
  StopAutoCompaction();
  StopIngest();
}

void FanOutOnPool(ThreadPool* pool, size_t count,
                  const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (count == 1) {
    fn(0);
    return;
  }
  // The counter is decremented UNDER the mutex: once the waiter observes
  // 0 the last worker has already left its critical section, so
  // returning (and destroying these stack-locals) cannot race a worker
  // still touching them.
  size_t remaining = count - 1;  // guarded by done_mutex
  std::mutex done_mutex;
  std::condition_variable done;
  for (size_t i = 1; i < count; ++i) {
    pool->Submit([&, i] {
      fn(i);
      std::lock_guard<std::mutex> lock(done_mutex);
      if (--remaining == 0) done.notify_all();
    });
  }
  fn(0);
  std::unique_lock<std::mutex> lock(done_mutex);
  done.wait(lock, [&] { return remaining == 0; });
}

}  // namespace amici
