#include "service/search_service.h"

#include <condition_variable>
#include <mutex>

#include "util/thread_pool.h"

namespace amici {

void MergeSearchStats(const SearchStats& from, SearchStats* into) {
  into->aggregation.sorted_accesses += from.aggregation.sorted_accesses;
  into->aggregation.random_accesses += from.aggregation.random_accesses;
  into->aggregation.candidates_scored += from.aggregation.candidates_scored;
  into->items_considered += from.items_considered;
}

void FanOutOnPool(ThreadPool* pool, size_t count,
                  const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (count == 1) {
    fn(0);
    return;
  }
  // The counter is decremented UNDER the mutex: once the waiter observes
  // 0 the last worker has already left its critical section, so
  // returning (and destroying these stack-locals) cannot race a worker
  // still touching them.
  size_t remaining = count - 1;  // guarded by done_mutex
  std::mutex done_mutex;
  std::condition_variable done;
  for (size_t i = 1; i < count; ++i) {
    pool->Submit([&, i] {
      fn(i);
      std::lock_guard<std::mutex> lock(done_mutex);
      if (--remaining == 0) done.notify_all();
    });
  }
  fn(0);
  std::unique_lock<std::mutex> lock(done_mutex);
  done.wait(lock, [&] { return remaining == 0; });
}

}  // namespace amici
