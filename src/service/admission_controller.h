#ifndef AMICI_SERVICE_ADMISSION_CONTROLLER_H_
#define AMICI_SERVICE_ADMISSION_CONTROLLER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "core/engine.h"

namespace amici {

/// Admission control at the SearchService edge: decides, BEFORE any work
/// is dispatched, whether a request runs as asked (admit), runs cheaper
/// (degrade: substitute algorithm / capped k / tightened deadline — the
/// service applies the overrides), or does not run at all (shed). The
/// decision is a pure function of the controller state (in-flight count,
/// token bucket) and the request's cost estimate, so it is deterministic
/// under an injected clock — see tests/service/admission_control_test.cc.
///
/// The gates, evaluated in order (first hit wins):
///   1. in-flight >= max_inflight                        -> shed  "inflight"
///   2. rate bucket empty (max_admitted_per_sec)          -> shed  "rate"
///   3. shed_cost > 0 and cost > shed_cost                -> shed  "cost"
///   4. in-flight >= degrade_inflight (when enabled)      -> degrade "pressure"
///   5. degrade_cost > 0 and cost > degrade_cost          -> degrade "cost"
///   6. otherwise                                         -> admit
///
/// Shedding is HONEST by contract: the service returns a well-formed
/// response with `shed = true` and no items — never an unexplained error,
/// never a silent drop. Degraded responses carry `degraded = true`.
///
/// Thread-safe; one instance guards one service's query edge.
class AdmissionController {
 public:
  /// Monotonic seconds; injectable so shed/degrade decisions are
  /// reproducible under a fake clock in tests.
  using ClockFn = std::function<double()>;

  struct Options {
    /// Hard in-flight gate: requests arriving with this many already
    /// running are shed. The ticket is held for the request's whole
    /// lifetime (including fan-out), so this bounds queue depth too.
    size_t max_inflight = 256;
    /// Soft gate: at or above this many in-flight, requests run degraded
    /// instead of as-asked. 0 disables.
    size_t degrade_inflight = 0;
    /// Cost estimate (posting entries + un-indexed tail items) above
    /// which a request is degraded. 0 disables.
    uint64_t degrade_cost = 0;
    /// Cost estimate above which a request is shed outright. 0 disables.
    uint64_t shed_cost = 0;
    /// Token-bucket rate limit on admissions (admit + degrade) per
    /// second. 0 disables. Replenishes continuously; capacity = `burst`.
    double max_admitted_per_sec = 0.0;
    /// Bucket capacity in requests (>= 1).
    double burst = 16.0;
    /// Overrides the service applies to degraded requests: the cheaper
    /// algorithm, a cap on k (0 = keep), and a timeout the request is
    /// clamped to when it asked for none or a longer one (0 = keep).
    AlgorithmId degrade_algorithm = AlgorithmId::kMergeScan;
    size_t degrade_k_cap = 0;
    double degrade_timeout_ms = 0.0;
    /// Test seam; null uses the process steady clock.
    ClockFn clock;
  };

  enum class Decision { kAdmit, kDegrade, kShed };

  /// One admission verdict. For kAdmit/kDegrade the caller owes exactly
  /// one Release() when the request finishes; kShed took no slot.
  struct Ticket {
    Decision decision = Decision::kAdmit;
    /// Which gate fired ("inflight", "rate", "cost", "pressure"); "" for
    /// plain admits. Static strings, safe to keep.
    const char* reason = "";
  };

  struct Counters {
    uint64_t admitted = 0;
    uint64_t degraded = 0;
    uint64_t shed = 0;
    uint64_t peak_inflight = 0;
  };

  explicit AdmissionController(Options options);

  /// Evaluates the gates for a request with `estimated_cost`; takes an
  /// in-flight slot unless the verdict is kShed.
  Ticket Admit(uint64_t estimated_cost);

  /// Returns the slot a kAdmit/kDegrade ticket holds.
  void Release();

  size_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  Counters counters() const;
  const Options& options() const { return options_; }

 private:
  Options options_;
  std::atomic<size_t> inflight_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> peak_inflight_{0};

  /// Token bucket state (only touched when max_admitted_per_sec > 0).
  mutable std::mutex bucket_mutex_;
  double tokens_ = 0.0;
  double last_refill_s_ = 0.0;
  bool bucket_primed_ = false;

  /// True when the bucket granted a token (or rate limiting is off).
  bool TakeRateToken();
};

}  // namespace amici

#endif  // AMICI_SERVICE_ADMISSION_CONTROLLER_H_
