#ifndef AMICI_GRAPH_GRAPH_ALGORITHMS_H_
#define AMICI_GRAPH_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "graph/social_graph.h"
#include "util/ids.h"

namespace amici {

/// Hop distance used by BfsDistances for unreachable users.
inline constexpr uint16_t kUnreachable = UINT16_MAX;

/// Breadth-first hop distances from `source`, truncated at `max_hops`
/// (users farther away get kUnreachable). The result has one entry per
/// user.
std::vector<uint16_t> BfsDistances(const SocialGraph& graph, UserId source,
                                   uint16_t max_hops);

/// Users within `max_hops` hops of `source` (excluding `source` itself),
/// paired with their hop distance, in increasing-distance order.
struct HopNeighbor {
  UserId user;
  uint16_t hops;
};
std::vector<HopNeighbor> KHopNeighborhood(const SocialGraph& graph,
                                          UserId source, uint16_t max_hops);

/// Component label per user (labels are 0-based and dense).
struct ComponentInfo {
  std::vector<uint32_t> label;   // per user
  size_t num_components = 0;
  size_t largest_size = 0;
};
ComponentInfo ConnectedComponents(const SocialGraph& graph);

/// Number of triangles in the graph (each counted once).
uint64_t CountTriangles(const SocialGraph& graph);

/// Global clustering coefficient: 3 * triangles / open-or-closed wedges.
/// Returns 0 when the graph has no wedge.
double GlobalClusteringCoefficient(const SocialGraph& graph);

/// Number of length-2 paths (wedges), i.e. sum over users of C(degree, 2).
uint64_t CountWedges(const SocialGraph& graph);

}  // namespace amici

#endif  // AMICI_GRAPH_GRAPH_ALGORITHMS_H_
