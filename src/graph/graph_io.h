#ifndef AMICI_GRAPH_GRAPH_IO_H_
#define AMICI_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/social_graph.h"
#include "util/status.h"

namespace amici {

/// Binary on-disk format for social graphs:
///
///   magic "AMIG" | version u32 | num_users u64 | num_directed u64
///   | adjacency (per user: varint count, then varint-delta neighbour ids)
///   | fnv64 checksum of everything before it
///
/// The format is self-validating: LoadGraph verifies magic, version,
/// structural invariants, and the checksum, returning Corruption on any
/// mismatch.

/// Serializes `graph` to `path`, overwriting any existing file.
Status SaveGraph(const SocialGraph& graph, const std::string& path);

/// Loads a graph previously written by SaveGraph.
Result<SocialGraph> LoadGraph(const std::string& path);

/// In-memory (de)serialization used by the file functions and tests.
std::string SerializeGraph(const SocialGraph& graph);
Result<SocialGraph> DeserializeGraph(const std::string& bytes);

}  // namespace amici

#endif  // AMICI_GRAPH_GRAPH_IO_H_
