#ifndef AMICI_GRAPH_SOCIAL_GRAPH_H_
#define AMICI_GRAPH_SOCIAL_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/ids.h"

namespace amici {

/// Immutable, undirected friendship graph in compressed sparse row (CSR)
/// form. Adjacency lists are sorted, enabling O(log d) edge probes and
/// linear-merge neighbourhood intersection. Each undirected edge {u, v} is
/// stored twice (once per endpoint).
///
/// Construction goes through GraphBuilder (which deduplicates edges and
/// strips self-loops) or a generator in graph_generators.h.
class SocialGraph {
 public:
  /// An empty graph with no users.
  SocialGraph() = default;

  /// Takes ownership of prebuilt CSR arrays. `offsets` has num_users + 1
  /// entries; neighbours within each row must be sorted and unique.
  /// Callers normally use GraphBuilder instead.
  SocialGraph(std::vector<uint64_t> offsets, std::vector<UserId> neighbors);

  SocialGraph(const SocialGraph&) = default;
  SocialGraph& operator=(const SocialGraph&) = default;
  SocialGraph(SocialGraph&&) noexcept = default;
  SocialGraph& operator=(SocialGraph&&) noexcept = default;

  /// Number of users (vertices).
  size_t num_users() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Number of undirected edges.
  size_t num_edges() const { return neighbors_.size() / 2; }

  /// Degree (friend count) of `u`.
  size_t Degree(UserId u) const {
    return static_cast<size_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// Sorted friends of `u`; the span stays valid while the graph lives.
  std::span<const UserId> Friends(UserId u) const {
    return {neighbors_.data() + offsets_[u],
            neighbors_.data() + offsets_[u + 1]};
  }

  /// True iff u and v are friends. O(log Degree(u)).
  bool HasEdge(UserId u, UserId v) const;

  /// Mean degree; 0 for an empty graph.
  double AverageDegree() const;

  /// Maximum degree over all users; 0 for an empty graph.
  size_t MaxDegree() const;

  /// Approximate heap footprint of the CSR arrays, in bytes.
  size_t MemoryBytes() const;

  /// Raw CSR access for serialization and algorithms.
  const std::vector<uint64_t>& offsets() const { return offsets_; }
  const std::vector<UserId>& neighbors() const { return neighbors_; }

 private:
  std::vector<uint64_t> offsets_{0};
  std::vector<UserId> neighbors_;
};

}  // namespace amici

#endif  // AMICI_GRAPH_SOCIAL_GRAPH_H_
