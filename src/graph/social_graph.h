#ifndef AMICI_GRAPH_SOCIAL_GRAPH_H_
#define AMICI_GRAPH_SOCIAL_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/hash.h"
#include "util/ids.h"

namespace amici {

/// Owner partition of user `u` when users are split across `n` partitions
/// (the proximity service's routing function). Matches the item-sharding
/// idiom: a strong mix so contiguous user ids spread evenly.
inline uint32_t GraphPartitionOf(UserId u, size_t n) {
  return n <= 1 ? 0 : static_cast<uint32_t>(Mix64(u) % n);
}

/// An immutable patch of whole adjacency rows layered over a base CSR:
/// for each touched user the overlay stores that user's COMPLETE current
/// friend row (sorted, unique), which SocialGraph::Friends consults before
/// falling back to the base arrays. Replacing whole rows (rather than
/// diffing adds/tombstones per probe) keeps neighbor iteration a single
/// span either way — queries cannot tell an overlaid graph from a flat
/// one, which is what the churn-invariance suite proves.
///
/// Rows are grouped into buckets by GraphPartitionOf so a partitioned
/// proximity service can own / persist / fold each partition's resident
/// rows independently; single-provider deployments use one bucket.
class GraphOverlay {
 public:
  using Row = std::vector<UserId>;
  using RowMap = std::unordered_map<UserId, std::shared_ptr<const Row>>;

  /// `buckets[GraphPartitionOf(u, buckets.size())]` holds u's row, if
  /// replaced. `slot_delta` is (total adjacency entries of the overlaid
  /// graph) − (entries of the base CSR) — kept precomputed so num_edges()
  /// stays O(1). Null bucket pointers are treated as empty.
  GraphOverlay(std::vector<std::shared_ptr<const RowMap>> buckets,
               int64_t slot_delta);

  /// The replacement row of `u`, or null when the base row stands.
  const Row* Find(UserId u) const {
    const auto& bucket = buckets_[GraphPartitionOf(u, buckets_.size())];
    if (bucket == nullptr) return nullptr;
    const auto it = bucket->find(u);
    return it == bucket->end() ? nullptr : it->second.get();
  }

  /// Replacement rows across all buckets.
  size_t num_rows() const { return num_rows_; }
  /// Adjacency entries across all replacement rows.
  size_t num_slots() const { return num_slots_; }
  /// Adjacency-slot difference vs the base CSR.
  int64_t slot_delta() const { return slot_delta_; }
  size_t num_buckets() const { return buckets_.size(); }
  const std::shared_ptr<const RowMap>& bucket(size_t i) const {
    return buckets_[i];
  }

  /// Visits every replacement row as fn(UserId, const Row&), bucket by
  /// bucket (order within a bucket is unspecified).
  template <typename Fn>
  void ForEachRow(Fn fn) const {
    for (const auto& bucket : buckets_) {
      if (bucket == nullptr) continue;
      for (const auto& [user, row] : *bucket) fn(user, *row);
    }
  }

  size_t MemoryBytes() const;

 private:
  std::vector<std::shared_ptr<const RowMap>> buckets_;
  size_t num_rows_ = 0;
  size_t num_slots_ = 0;
  int64_t slot_delta_ = 0;
};

/// Immutable, undirected friendship graph: a compressed sparse row (CSR)
/// base, optionally overlaid with a GraphOverlay row patch (the
/// delta-overlay representation friendship edits publish — see
/// src/proximity_service/delta_overlay_graph.h). Adjacency lists are
/// sorted, enabling O(log d) edge probes and linear-merge neighbourhood
/// intersection; each undirected edge {u, v} is stored twice (once per
/// endpoint). Copies are shallow (the CSR arrays and overlay are shared,
/// immutable state), so passing graphs by value is cheap.
///
/// Construction goes through GraphBuilder (which deduplicates edges and
/// strips self-loops), a generator in graph_generators.h, or the overlay
/// constructor below.
class SocialGraph {
 public:
  /// An empty graph with no users.
  SocialGraph() : csr_(EmptyCsr()) {}

  /// Takes ownership of prebuilt CSR arrays. `offsets` has num_users + 1
  /// entries; neighbours within each row must be sorted and unique.
  /// Callers normally use GraphBuilder instead.
  SocialGraph(std::vector<uint64_t> offsets, std::vector<UserId> neighbors);

  /// Overlays `overlay` (non-null) on `base`, which must be a pure-CSR
  /// graph (has_overlay() false — overlays do not stack; fold first).
  /// Shares base's CSR arrays; O(1).
  SocialGraph(const SocialGraph& base,
              std::shared_ptr<const GraphOverlay> overlay);

  SocialGraph(const SocialGraph&) = default;
  SocialGraph& operator=(const SocialGraph&) = default;
  SocialGraph(SocialGraph&&) noexcept = default;
  SocialGraph& operator=(SocialGraph&&) noexcept = default;

  /// Number of users (vertices).
  size_t num_users() const { return csr_->offsets.size() - 1; }

  /// Number of undirected edges (overlay included).
  size_t num_edges() const { return total_adjacency_slots() / 2; }

  /// Degree (friend count) of `u`.
  size_t Degree(UserId u) const {
    if (overlay_ != nullptr) {
      if (const GraphOverlay::Row* row = overlay_->Find(u)) {
        return row->size();
      }
    }
    return static_cast<size_t>(csr_->offsets[u + 1] - csr_->offsets[u]);
  }

  /// Sorted friends of `u`; the span stays valid while the graph lives.
  std::span<const UserId> Friends(UserId u) const {
    if (overlay_ != nullptr) {
      if (const GraphOverlay::Row* row = overlay_->Find(u)) {
        return {row->data(), row->size()};
      }
    }
    return {csr_->neighbors.data() + csr_->offsets[u],
            csr_->neighbors.data() + csr_->offsets[u + 1]};
  }

  /// True iff u and v are friends. O(log Degree(u)).
  bool HasEdge(UserId u, UserId v) const;

  /// Mean degree; 0 for an empty graph.
  double AverageDegree() const;

  /// Maximum degree over all users; 0 for an empty graph.
  size_t MaxDegree() const;

  /// Approximate heap footprint (CSR arrays + overlay rows), in bytes.
  size_t MemoryBytes() const;

  /// Raw BASE-CSR access for serialization and algorithms. When
  /// has_overlay() is true these do NOT reflect the overlaid rows — use
  /// Friends()/Flatten() (persistence serializes base + overlay tail
  /// explicitly; see persist/snapshot.h).
  const std::vector<uint64_t>& offsets() const { return csr_->offsets; }
  const std::vector<UserId>& neighbors() const { return csr_->neighbors; }

  /// The row patch, or null for a pure-CSR graph.
  bool has_overlay() const { return overlay_ != nullptr; }
  const std::shared_ptr<const GraphOverlay>& overlay() const {
    return overlay_;
  }

  /// The base CSR as a graph of its own (shares storage; O(1)).
  SocialGraph BaseGraph() const;

  /// Materializes the overlaid adjacency into a fresh pure CSR — the
  /// fold step's O(U + E) rebuild. Returns *this (shared) when there is
  /// no overlay.
  SocialGraph Flatten() const;

  /// Adjacency entries including overlay replacements (= 2 × num_edges).
  size_t total_adjacency_slots() const {
    const size_t base = csr_->neighbors.size();
    return overlay_ == nullptr
               ? base
               : static_cast<size_t>(static_cast<int64_t>(base) +
                                     overlay_->slot_delta());
  }

 private:
  /// The immutable CSR arrays, shared across copies / overlay layers.
  struct Csr {
    std::vector<uint64_t> offsets{0};
    std::vector<UserId> neighbors;
  };

  static std::shared_ptr<const Csr> EmptyCsr();

  std::shared_ptr<const Csr> csr_;
  std::shared_ptr<const GraphOverlay> overlay_;
};

}  // namespace amici

#endif  // AMICI_GRAPH_SOCIAL_GRAPH_H_
