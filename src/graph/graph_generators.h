#ifndef AMICI_GRAPH_GRAPH_GENERATORS_H_
#define AMICI_GRAPH_GRAPH_GENERATORS_H_

#include <cstddef>

#include "graph/social_graph.h"
#include "util/rng.h"

namespace amici {

/// Synthetic social-network generators. These are the data substitution for
/// the crawled networks used by the paper class (see DESIGN.md §5): they
/// reproduce the structural properties the algorithms depend on —
/// heavy-tailed degrees (BA), high clustering (WS), community structure
/// (planted partition) — with controllable scale.

/// Erdős–Rényi G(n, p) with p chosen to hit `expected_avg_degree`.
/// Uses geometric edge skipping, so generation is O(edges).
SocialGraph GenerateErdosRenyi(size_t num_users, double expected_avg_degree,
                               Rng* rng);

/// Barabási–Albert preferential attachment: each new user attaches to
/// `edges_per_user` existing users with probability proportional to degree.
/// Produces a power-law degree distribution (the hallmark of real social
/// graphs).
SocialGraph GenerateBarabasiAlbert(size_t num_users, size_t edges_per_user,
                                   Rng* rng);

/// Watts–Strogatz small world: ring lattice with `ring_degree` (even)
/// neighbours, each edge rewired with probability `rewire_prob`. High
/// clustering, short paths.
SocialGraph GenerateWattsStrogatz(size_t num_users, size_t ring_degree,
                                  double rewire_prob, Rng* rng);

/// Planted-partition community graph: `num_communities` equal-size blocks;
/// expected `intra_degree` within-block and `inter_degree` cross-block
/// friends per user. Models the community structure that makes
/// social-first search effective.
SocialGraph GeneratePlantedPartition(size_t num_users, size_t num_communities,
                                     double intra_degree, double inter_degree,
                                     Rng* rng);

}  // namespace amici

#endif  // AMICI_GRAPH_GRAPH_GENERATORS_H_
