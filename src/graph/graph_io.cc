#include "graph/graph_io.h"

#include <cstdio>
#include <vector>

#include "util/hash.h"
#include "util/string_util.h"
#include "util/varint.h"

namespace amici {
namespace {

constexpr char kMagic[4] = {'A', 'M', 'I', 'G'};
constexpr uint32_t kVersion = 1;

void PutFixed32(uint32_t value, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void PutFixed64(uint64_t value, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

bool GetFixed32(const std::string& data, size_t* offset, uint32_t* value) {
  if (*offset + 4 > data.size()) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data[*offset + i]))
         << (8 * i);
  }
  *offset += 4;
  *value = v;
  return true;
}

bool GetFixed64(const std::string& data, size_t* offset, uint64_t* value) {
  if (*offset + 8 > data.size()) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data[*offset + i]))
         << (8 * i);
  }
  *offset += 8;
  *value = v;
  return true;
}

}  // namespace

std::string SerializeGraph(const SocialGraph& graph) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutFixed32(kVersion, &out);
  PutFixed64(graph.num_users(), &out);
  // Rows are written through Friends(), so a delta-overlay graph exports
  // flattened — the slot count must match (neighbors() would undercount
  // or overcount the base arrays when an overlay is present).
  PutFixed64(graph.total_adjacency_slots(), &out);
  for (size_t u = 0; u < graph.num_users(); ++u) {
    const auto friends = graph.Friends(static_cast<UserId>(u));
    PutVarint64(friends.size(), &out);
    UserId previous = 0;
    for (size_t i = 0; i < friends.size(); ++i) {
      // Rows are sorted & unique, so gaps are >= 1 after the first entry.
      const uint32_t gap = i == 0 ? friends[0] : friends[i] - previous;
      PutVarint32(gap, &out);
      previous = friends[i];
    }
  }
  PutFixed64(Fnv1a64(out), &out);
  return out;
}

Result<SocialGraph> DeserializeGraph(const std::string& bytes) {
  if (bytes.size() < sizeof(kMagic) + 4 + 8 + 8 + 8) {
    return Status::Corruption("graph blob too small");
  }
  if (bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic; not an AMIG graph file");
  }
  // Verify trailer checksum over everything preceding it.
  const std::string body = bytes.substr(0, bytes.size() - 8);
  size_t tail = bytes.size() - 8;
  uint64_t stored_checksum = 0;
  if (!GetFixed64(bytes, &tail, &stored_checksum) ||
      stored_checksum != Fnv1a64(body)) {
    return Status::Corruption("graph checksum mismatch");
  }

  size_t offset = sizeof(kMagic);
  uint32_t version = 0;
  if (!GetFixed32(bytes, &offset, &version)) {
    return Status::Corruption("truncated header");
  }
  if (version != kVersion) {
    return Status::Corruption(
        StringPrintf("unsupported graph version %u", version));
  }
  uint64_t num_users = 0;
  uint64_t num_directed = 0;
  if (!GetFixed64(bytes, &offset, &num_users) ||
      !GetFixed64(bytes, &offset, &num_directed)) {
    return Status::Corruption("truncated header");
  }

  std::vector<uint64_t> offsets;
  offsets.reserve(num_users + 1);
  offsets.push_back(0);
  std::vector<UserId> neighbors;
  neighbors.reserve(num_directed);
  for (uint64_t u = 0; u < num_users; ++u) {
    uint64_t count = 0;
    if (!GetVarint64(body, &offset, &count)) {
      return Status::Corruption("truncated adjacency row");
    }
    uint64_t current = 0;
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t gap = 0;
      if (!GetVarint32(body, &offset, &gap)) {
        return Status::Corruption("truncated adjacency row");
      }
      current = i == 0 ? gap : current + gap;
      if (current >= num_users) {
        return Status::Corruption("neighbour id out of range");
      }
      neighbors.push_back(static_cast<UserId>(current));
    }
    offsets.push_back(neighbors.size());
  }
  if (neighbors.size() != num_directed) {
    return Status::Corruption("edge count mismatch");
  }
  return SocialGraph(std::move(offsets), std::move(neighbors));
}

Status SaveGraph(const SocialGraph& graph, const std::string& path) {
  const std::string bytes = SerializeGraph(graph);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(StringPrintf("cannot open %s for writing",
                                        path.c_str()));
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const int close_err = std::fclose(f);
  if (written != bytes.size() || close_err != 0) {
    return Status::IoError(StringPrintf("short write to %s", path.c_str()));
  }
  return Status::Ok();
}

Result<SocialGraph> LoadGraph(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError(StringPrintf("cannot open %s", path.c_str()));
  }
  std::string bytes;
  char buffer[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    bytes.append(buffer, n);
  }
  std::fclose(f);
  return DeserializeGraph(bytes);
}

}  // namespace amici
