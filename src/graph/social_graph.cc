#include "graph/social_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace amici {

SocialGraph::SocialGraph(std::vector<uint64_t> offsets,
                         std::vector<UserId> neighbors)
    : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {
  AMICI_CHECK(!offsets_.empty()) << "offsets must have num_users + 1 entries";
  AMICI_CHECK(offsets_.front() == 0);
  AMICI_CHECK(offsets_.back() == neighbors_.size());
}

bool SocialGraph::HasEdge(UserId u, UserId v) const {
  const auto friends = Friends(u);
  return std::binary_search(friends.begin(), friends.end(), v);
}

double SocialGraph::AverageDegree() const {
  if (num_users() == 0) return 0.0;
  return static_cast<double>(neighbors_.size()) /
         static_cast<double>(num_users());
}

size_t SocialGraph::MaxDegree() const {
  size_t best = 0;
  for (size_t u = 0; u < num_users(); ++u) {
    best = std::max(best, Degree(static_cast<UserId>(u)));
  }
  return best;
}

size_t SocialGraph::MemoryBytes() const {
  return offsets_.capacity() * sizeof(uint64_t) +
         neighbors_.capacity() * sizeof(UserId);
}

}  // namespace amici
