#include "graph/social_graph.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace amici {

GraphOverlay::GraphOverlay(
    std::vector<std::shared_ptr<const RowMap>> buckets, int64_t slot_delta)
    : buckets_(std::move(buckets)), slot_delta_(slot_delta) {
  AMICI_CHECK(!buckets_.empty()) << "an overlay needs at least one bucket";
  for (const auto& bucket : buckets_) {
    if (bucket == nullptr) continue;
    num_rows_ += bucket->size();
    for (const auto& [user, row] : *bucket) num_slots_ += row->size();
  }
}

size_t GraphOverlay::MemoryBytes() const {
  // Rows dominate; the per-entry map overhead is approximated by the
  // node (key + two pointers) it costs in practice.
  size_t bytes = num_slots_ * sizeof(UserId);
  bytes += num_rows_ * (sizeof(UserId) + 2 * sizeof(void*) +
                        sizeof(std::shared_ptr<const Row>));
  return bytes;
}

std::shared_ptr<const SocialGraph::Csr> SocialGraph::EmptyCsr() {
  static const std::shared_ptr<const Csr> empty = std::make_shared<Csr>();
  return empty;
}

SocialGraph::SocialGraph(std::vector<uint64_t> offsets,
                         std::vector<UserId> neighbors) {
  AMICI_CHECK(!offsets.empty()) << "offsets must have num_users + 1 entries";
  AMICI_CHECK(offsets.front() == 0);
  AMICI_CHECK(offsets.back() == neighbors.size());
  auto csr = std::make_shared<Csr>();
  csr->offsets = std::move(offsets);
  csr->neighbors = std::move(neighbors);
  csr_ = std::move(csr);
}

SocialGraph::SocialGraph(const SocialGraph& base,
                         std::shared_ptr<const GraphOverlay> overlay)
    : csr_(base.csr_), overlay_(std::move(overlay)) {
  AMICI_CHECK(overlay_ != nullptr);
  AMICI_CHECK(!base.has_overlay()) << "overlays do not stack; fold first";
}

bool SocialGraph::HasEdge(UserId u, UserId v) const {
  const auto friends = Friends(u);
  return std::binary_search(friends.begin(), friends.end(), v);
}

double SocialGraph::AverageDegree() const {
  if (num_users() == 0) return 0.0;
  return static_cast<double>(total_adjacency_slots()) /
         static_cast<double>(num_users());
}

size_t SocialGraph::MaxDegree() const {
  size_t best = 0;
  for (size_t u = 0; u < num_users(); ++u) {
    best = std::max(best, Degree(static_cast<UserId>(u)));
  }
  return best;
}

size_t SocialGraph::MemoryBytes() const {
  return csr_->offsets.capacity() * sizeof(uint64_t) +
         csr_->neighbors.capacity() * sizeof(UserId) +
         (overlay_ != nullptr ? overlay_->MemoryBytes() : 0);
}

SocialGraph SocialGraph::BaseGraph() const {
  SocialGraph base;
  base.csr_ = csr_;
  return base;
}

SocialGraph SocialGraph::Flatten() const {
  if (overlay_ == nullptr) return *this;
  const size_t users = num_users();
  std::vector<uint64_t> offsets;
  offsets.reserve(users + 1);
  std::vector<UserId> neighbors;
  neighbors.reserve(total_adjacency_slots());
  offsets.push_back(0);
  for (size_t u = 0; u < users; ++u) {
    const auto row = Friends(static_cast<UserId>(u));
    neighbors.insert(neighbors.end(), row.begin(), row.end());
    offsets.push_back(neighbors.size());
  }
  return SocialGraph(std::move(offsets), std::move(neighbors));
}

}  // namespace amici
