#include "graph/graph_algorithms.h"

#include <algorithm>
#include <deque>

#include "util/logging.h"

namespace amici {

std::vector<uint16_t> BfsDistances(const SocialGraph& graph, UserId source,
                                   uint16_t max_hops) {
  AMICI_CHECK(source < graph.num_users());
  std::vector<uint16_t> dist(graph.num_users(), kUnreachable);
  dist[source] = 0;
  std::deque<UserId> frontier{source};
  while (!frontier.empty()) {
    const UserId u = frontier.front();
    frontier.pop_front();
    if (dist[u] >= max_hops) continue;
    const uint16_t next = static_cast<uint16_t>(dist[u] + 1);
    for (const UserId v : graph.Friends(u)) {
      if (dist[v] != kUnreachable) continue;
      dist[v] = next;
      frontier.push_back(v);
    }
  }
  return dist;
}

std::vector<HopNeighbor> KHopNeighborhood(const SocialGraph& graph,
                                          UserId source, uint16_t max_hops) {
  const std::vector<uint16_t> dist = BfsDistances(graph, source, max_hops);
  std::vector<HopNeighbor> out;
  for (size_t u = 0; u < dist.size(); ++u) {
    if (u == source || dist[u] == kUnreachable) continue;
    out.push_back({static_cast<UserId>(u), dist[u]});
  }
  std::sort(out.begin(), out.end(),
            [](const HopNeighbor& a, const HopNeighbor& b) {
              if (a.hops != b.hops) return a.hops < b.hops;
              return a.user < b.user;
            });
  return out;
}

ComponentInfo ConnectedComponents(const SocialGraph& graph) {
  ComponentInfo info;
  info.label.assign(graph.num_users(), UINT32_MAX);
  std::vector<UserId> stack;
  for (size_t start = 0; start < graph.num_users(); ++start) {
    if (info.label[start] != UINT32_MAX) continue;
    const uint32_t component = static_cast<uint32_t>(info.num_components++);
    size_t size = 0;
    stack.push_back(static_cast<UserId>(start));
    info.label[start] = component;
    while (!stack.empty()) {
      const UserId u = stack.back();
      stack.pop_back();
      ++size;
      for (const UserId v : graph.Friends(u)) {
        if (info.label[v] != UINT32_MAX) continue;
        info.label[v] = component;
        stack.push_back(v);
      }
    }
    info.largest_size = std::max(info.largest_size, size);
  }
  return info;
}

uint64_t CountTriangles(const SocialGraph& graph) {
  // Forward counting: for each edge (u, v) with u < v, intersect the
  // higher-id halves of their (sorted) adjacency lists. Each triangle
  // {a < b < c} is found exactly once, at edge (a, b) via c.
  uint64_t triangles = 0;
  for (size_t u = 0; u < graph.num_users(); ++u) {
    const auto friends_u = graph.Friends(static_cast<UserId>(u));
    for (const UserId v : friends_u) {
      if (v <= u) continue;
      const auto friends_v = graph.Friends(v);
      auto it_u = std::lower_bound(friends_u.begin(), friends_u.end(),
                                   static_cast<UserId>(v + 1));
      auto it_v = std::lower_bound(friends_v.begin(), friends_v.end(),
                                   static_cast<UserId>(v + 1));
      while (it_u != friends_u.end() && it_v != friends_v.end()) {
        if (*it_u < *it_v) {
          ++it_u;
        } else if (*it_v < *it_u) {
          ++it_v;
        } else {
          ++triangles;
          ++it_u;
          ++it_v;
        }
      }
    }
  }
  return triangles;
}

uint64_t CountWedges(const SocialGraph& graph) {
  uint64_t wedges = 0;
  for (size_t u = 0; u < graph.num_users(); ++u) {
    const uint64_t d = graph.Degree(static_cast<UserId>(u));
    wedges += d * (d - 1) / 2;
  }
  return wedges;
}

double GlobalClusteringCoefficient(const SocialGraph& graph) {
  const uint64_t wedges = CountWedges(graph);
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(CountTriangles(graph)) /
         static_cast<double>(wedges);
}

}  // namespace amici
