#include "graph/graph_generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/graph_builder.h"
#include "util/ids.h"
#include "util/logging.h"

namespace amici {

SocialGraph GenerateErdosRenyi(size_t num_users, double expected_avg_degree,
                               Rng* rng) {
  AMICI_CHECK(num_users >= 1);
  GraphBuilder builder(num_users);
  if (num_users < 2) return builder.Build();
  const double p = std::clamp(
      expected_avg_degree / static_cast<double>(num_users - 1), 0.0, 1.0);
  if (p <= 0.0) return builder.Build();

  // Iterate the C(n,2) possible edges implicitly, skipping ahead by
  // geometric gaps; expected cost is O(#edges).
  const double log_1mp = std::log1p(-p);
  const uint64_t total_pairs =
      static_cast<uint64_t>(num_users) * (num_users - 1) / 2;
  uint64_t position = 0;
  while (true) {
    double u = rng->UniformDouble();
    if (u >= 1.0) u = 0.999999999;  // guard the log
    const uint64_t skip =
        p >= 1.0 ? 0
                 : static_cast<uint64_t>(std::log1p(-u) / log_1mp);
    position += skip;
    if (position >= total_pairs) break;
    // Map linear pair index back to (row, col) of the upper triangle.
    // Row r starts at offset r*n - r*(r+1)/2 (0-based, col > row).
    const double n = static_cast<double>(num_users);
    size_t row = static_cast<size_t>(
        n - 0.5 -
        std::sqrt((n - 0.5) * (n - 0.5) - 2.0 * static_cast<double>(position)));
    // Numerical guard: adjust row so that position lies inside its range.
    auto row_start = [num_users](size_t r) {
      return static_cast<uint64_t>(r) * num_users -
             static_cast<uint64_t>(r) * (r + 1) / 2;
    };
    while (row > 0 && row_start(row) > position) --row;
    while (row + 1 < num_users && row_start(row + 1) <= position) ++row;
    const size_t col = row + 1 + static_cast<size_t>(position - row_start(row));
    AMICI_CHECK_OK(builder.AddEdge(static_cast<UserId>(row),
                                   static_cast<UserId>(col)));
    ++position;
  }
  return builder.Build();
}

SocialGraph GenerateBarabasiAlbert(size_t num_users, size_t edges_per_user,
                                   Rng* rng) {
  AMICI_CHECK(num_users >= 1);
  const size_t m = std::max<size_t>(1, edges_per_user);
  GraphBuilder builder(num_users);
  // `targets` holds one entry per edge endpoint; sampling uniformly from it
  // realizes preferential attachment.
  std::vector<UserId> endpoint_pool;
  endpoint_pool.reserve(num_users * m * 2);

  const size_t seed_size = std::min(num_users, m + 1);
  // Seed clique keeps the early graph connected.
  for (size_t u = 0; u < seed_size; ++u) {
    for (size_t v = u + 1; v < seed_size; ++v) {
      AMICI_CHECK_OK(builder.AddEdge(static_cast<UserId>(u),
                                     static_cast<UserId>(v)));
      endpoint_pool.push_back(static_cast<UserId>(u));
      endpoint_pool.push_back(static_cast<UserId>(v));
    }
  }
  std::vector<UserId> chosen;
  for (size_t u = seed_size; u < num_users; ++u) {
    chosen.clear();
    // Sample m distinct targets by degree-proportional draws.
    size_t attempts = 0;
    while (chosen.size() < m && attempts < 50 * m) {
      ++attempts;
      const UserId candidate = endpoint_pool.empty()
          ? static_cast<UserId>(rng->UniformIndex(u))
          : endpoint_pool[rng->UniformIndex(endpoint_pool.size())];
      if (std::find(chosen.begin(), chosen.end(), candidate) == chosen.end()) {
        chosen.push_back(candidate);
      }
    }
    for (const UserId v : chosen) {
      AMICI_CHECK_OK(builder.AddEdge(static_cast<UserId>(u), v));
      endpoint_pool.push_back(static_cast<UserId>(u));
      endpoint_pool.push_back(v);
    }
  }
  return builder.Build();
}

SocialGraph GenerateWattsStrogatz(size_t num_users, size_t ring_degree,
                                  double rewire_prob, Rng* rng) {
  AMICI_CHECK(num_users >= 1);
  GraphBuilder builder(num_users);
  if (num_users < 3) {
    if (num_users == 2) AMICI_CHECK_OK(builder.AddEdge(0, 1));
    return builder.Build();
  }
  const size_t half = std::max<size_t>(1, ring_degree / 2);
  for (size_t u = 0; u < num_users; ++u) {
    for (size_t j = 1; j <= half; ++j) {
      UserId v = static_cast<UserId>((u + j) % num_users);
      if (rng->Bernoulli(rewire_prob)) {
        // Rewire to a uniform random non-self target; duplicates collapse
        // in the builder, matching the classic construction closely enough.
        UserId w = static_cast<UserId>(rng->UniformIndex(num_users));
        int guard = 0;
        while (w == u && guard++ < 16) {
          w = static_cast<UserId>(rng->UniformIndex(num_users));
        }
        if (w != u) v = w;
      }
      AMICI_CHECK_OK(builder.AddEdge(static_cast<UserId>(u), v));
    }
  }
  return builder.Build();
}

SocialGraph GeneratePlantedPartition(size_t num_users, size_t num_communities,
                                     double intra_degree, double inter_degree,
                                     Rng* rng) {
  AMICI_CHECK(num_users >= 1);
  AMICI_CHECK(num_communities >= 1);
  GraphBuilder builder(num_users);
  const size_t community_size =
      (num_users + num_communities - 1) / num_communities;

  // Expected-degree model: for each user draw Poisson-ish counts of intra
  // and inter partners (binomial approximated by fixed count + Bernoulli
  // remainder keeps it simple and fast).
  auto add_partners = [&](UserId u, double expected, bool intra) {
    const size_t community = u / community_size;
    const size_t base = static_cast<size_t>(expected / 2.0);
    const double frac = expected / 2.0 - static_cast<double>(base);
    const size_t count = base + (rng->Bernoulli(frac) ? 1 : 0);
    for (size_t i = 0; i < count; ++i) {
      UserId v;
      if (intra) {
        const size_t begin = community * community_size;
        const size_t end = std::min(begin + community_size, num_users);
        if (end - begin < 2) return;
        v = static_cast<UserId>(begin + rng->UniformIndex(end - begin));
      } else {
        v = static_cast<UserId>(rng->UniformIndex(num_users));
      }
      if (v != u) AMICI_CHECK_OK(builder.AddEdge(u, v));
    }
  };
  for (size_t u = 0; u < num_users; ++u) {
    add_partners(static_cast<UserId>(u), intra_degree, /*intra=*/true);
    add_partners(static_cast<UserId>(u), inter_degree, /*intra=*/false);
  }
  return builder.Build();
}

}  // namespace amici
