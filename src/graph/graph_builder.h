#ifndef AMICI_GRAPH_GRAPH_BUILDER_H_
#define AMICI_GRAPH_GRAPH_BUILDER_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "graph/social_graph.h"
#include "util/ids.h"
#include "util/status.h"

namespace amici {

/// Accumulates undirected friendship edges and produces a canonical
/// SocialGraph: self-loops dropped, duplicate edges collapsed, adjacency
/// sorted. The builder is reusable after Build().
class GraphBuilder {
 public:
  /// `num_users` fixes the vertex set {0, ..., num_users-1}.
  explicit GraphBuilder(size_t num_users);

  /// Records the undirected edge {u, v}. Self-loops are ignored.
  /// Returns InvalidArgument if either endpoint is out of range.
  Status AddEdge(UserId u, UserId v);

  /// Number of edge insertions accepted so far (before deduplication).
  size_t num_pending_edges() const { return edges_.size(); }

  /// Builds the CSR graph. Duplicate insertions of the same undirected edge
  /// are collapsed.
  SocialGraph Build() const;

 private:
  size_t num_users_;
  std::vector<std::pair<UserId, UserId>> edges_;  // canonical (min, max)
};

}  // namespace amici

#endif  // AMICI_GRAPH_GRAPH_BUILDER_H_
