#include "graph/graph_builder.h"

#include <algorithm>

#include "util/string_util.h"

namespace amici {

GraphBuilder::GraphBuilder(size_t num_users) : num_users_(num_users) {}

Status GraphBuilder::AddEdge(UserId u, UserId v) {
  if (u >= num_users_ || v >= num_users_) {
    return Status::InvalidArgument(StringPrintf(
        "edge (%u, %u) out of range for %zu users", u, v, num_users_));
  }
  if (u == v) return Status::Ok();  // Friendship is irreflexive.
  edges_.emplace_back(std::min(u, v), std::max(u, v));
  return Status::Ok();
}

SocialGraph GraphBuilder::Build() const {
  std::vector<std::pair<UserId, UserId>> edges = edges_;
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  std::vector<uint64_t> offsets(num_users_ + 1, 0);
  for (const auto& [u, v] : edges) {
    ++offsets[u + 1];
    ++offsets[v + 1];
  }
  for (size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<UserId> neighbors(edges.size() * 2);
  std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges) {
    neighbors[cursor[u]++] = v;
    neighbors[cursor[v]++] = u;
  }
  // Each row was filled in ascending order of the opposite endpoint only
  // for the "min" side; sort every row to guarantee the invariant.
  for (size_t u = 0; u < num_users_; ++u) {
    std::sort(neighbors.begin() + static_cast<ptrdiff_t>(offsets[u]),
              neighbors.begin() + static_cast<ptrdiff_t>(offsets[u + 1]));
  }
  return SocialGraph(std::move(offsets), std::move(neighbors));
}

}  // namespace amici
