#ifndef AMICI_STORAGE_STABLE_COLUMN_H_
#define AMICI_STORAGE_STABLE_COLUMN_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>

#include "util/logging.h"

namespace amici {

/// An append-only columnar array with pointer-stable storage: elements
/// live in fixed-size chunks reached through a two-level directory, so an
/// append NEVER moves previously written elements (unlike std::vector,
/// whose reallocation would race with concurrent readers).
///
/// Concurrency contract (the RCU-style snapshot substrate):
///  * exactly one writer appends at a time;
///  * any number of readers may concurrently access indexes strictly
///    below a bound they observed through a release/acquire edge (the
///    engine snapshot pointer, or ItemStore::num_items()) AFTER the
///    elements were written. The writer only ever touches root slots,
///    directory-block slots, and element slots that no reader is allowed
///    to see yet, so reader and writer never race on a memory location.
///
/// The directory is two-level precisely so it can stay lock-free for
/// readers WITHOUT being allocated at full capacity up front: the root
/// (64 block pointers, 512 bytes) is fixed-size and never moves, and each
/// directory block (512 chunk pointers, 4KB) is allocated only when the
/// column grows into it. The previous single-level design paid a 256KB
/// directory on the first append — ~2MB of fixed overhead per non-empty
/// ItemStore across its 8 columns.
///
/// Copy/move are writer-side operations (serial set-up only).
template <typename T>
class StableColumn {
  static_assert(std::is_trivially_copyable_v<T>,
                "readers rely on element writes being plain stores");

 public:
  static constexpr size_t kChunkBits = 13;
  /// Elements per chunk (8192).
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
  /// Chunk pointers per directory block (a 4KB allocation for 8-byte
  /// pointers — the unit of directory growth).
  static constexpr size_t kDirBlockBits = 9;
  static constexpr size_t kDirBlockSize = size_t{1} << kDirBlockBits;
  /// Root capacity: 64 block pointers cover 2^15 chunks * 2^13 elements
  /// = 268M elements. The root is allocated whole on first append (512
  /// bytes) because readers index it without synchronization — it must
  /// never move; blocks and chunks are allocated as the column grows.
  static constexpr size_t kMaxDirBlocks = size_t{1} << 6;
  static constexpr size_t kMaxChunks = kMaxDirBlocks * kDirBlockSize;
  /// Longest run AppendRun can keep contiguous (one chunk).
  static constexpr size_t kMaxRun = kChunkSize;
  /// Total element capacity. Writers should check CanAppend() and fail
  /// gracefully rather than rely on the internal capacity CHECK.
  static constexpr size_t kMaxElements = kMaxChunks * kChunkSize;

  StableColumn() = default;
  ~StableColumn() { Reset(); }

  StableColumn(const StableColumn& other) { CopyFrom(other); }
  StableColumn& operator=(const StableColumn& other) {
    if (this != &other) {
      Reset();
      CopyFrom(other);
    }
    return *this;
  }

  StableColumn(StableColumn&& other) noexcept
      : root_(std::move(other.root_)),
        num_blocks_(other.num_blocks_),
        num_chunks_(other.num_chunks_),
        size_(other.size_) {
    other.num_blocks_ = 0;
    other.num_chunks_ = 0;
    other.size_ = 0;
  }
  StableColumn& operator=(StableColumn&& other) noexcept {
    if (this != &other) {
      Reset();
      root_ = std::move(other.root_);
      num_blocks_ = other.num_blocks_;
      num_chunks_ = other.num_chunks_;
      size_ = other.size_;
      other.num_blocks_ = 0;
      other.num_chunks_ = 0;
      other.size_ = 0;
    }
    return *this;
  }

  /// Appends one element (writer only).
  void push_back(const T& value) {
    EnsureChunkFor(size_);
    Chunk(size_ >> kChunkBits)[size_ & (kChunkSize - 1)] = value;
    ++size_;
  }

  /// Appends `count` elements as one contiguous run and returns the index
  /// of its first element. Pads to the next chunk boundary when the run
  /// would straddle one, so RunData(start) is valid for the whole run.
  /// count must be in [0, kMaxRun].
  size_t AppendRun(const T* data, size_t count) {
    AMICI_CHECK(count <= kMaxRun);
    const size_t used = size_ & (kChunkSize - 1);
    if (used != 0 && used + count > kChunkSize) {
      size_ += kChunkSize - used;  // skip the chunk remainder (padding)
    }
    const size_t start = size_;
    if (count > 0) {
      EnsureChunkFor(start + count - 1);
      std::memcpy(&Chunk(start >> kChunkBits)[start & (kChunkSize - 1)],
                  data, count * sizeof(T));
      size_ = start + count;
    }
    return start;
  }

  /// Appends `count` elements with NO run-contiguity guarantee: the data
  /// is split across chunk boundaries without padding. The bulk path for
  /// plain (non-CSR) columns — one memcpy per touched chunk instead of a
  /// branch per element. Writer only; callers pre-check CanAppendAll.
  void AppendAll(const T* data, size_t count) {
    CopyAt(size_, data, count);
    size_ += count;
  }

  /// Appends `n` runs (lengths in `counts`, concatenated in `data`)
  /// under AppendRun's padding rule, recording each run's start index in
  /// `starts_out`. Equivalent to n AppendRun calls, but because padding
  /// happens at most once per chunk the data lands in a handful of
  /// chunk-wise memcpys — the CSR bulk-load path.
  void AppendRuns(const T* data, const uint32_t* counts, size_t n,
                  uint64_t* starts_out) {
    size_t src = 0;
    size_t span_src = 0;
    size_t span_dst = size_;
    for (size_t i = 0; i < n; ++i) {
      const size_t len = counts[i];
      AMICI_CHECK(len <= kMaxRun);
      const size_t used = size_ & (kChunkSize - 1);
      if (used != 0 && used + len > kChunkSize) {
        CopyAt(span_dst, data + span_src, src - span_src);
        size_ += kChunkSize - used;  // skip the chunk remainder (padding)
        span_dst = size_;
        span_src = src;
      }
      starts_out[i] = size_;
      size_ += len;
      src += len;
    }
    CopyAt(span_dst, data + span_src, src - span_src);
  }

  /// True when AppendAll(_, count) fits (no per-run padding to account
  /// for, unlike CanAppend).
  bool CanAppendAll(size_t count) const {
    return count <= kMaxElements - size_;
  }

  /// Element access. Readers must only pass indexes covered by a bound
  /// published after the write (see class comment).
  const T& operator[](size_t index) const {
    return Chunk(index >> kChunkBits)[index & (kChunkSize - 1)];
  }

  /// Pointer to the run starting at `start` (an AppendRun return value);
  /// contiguous for that run's length.
  const T* RunData(size_t start) const {
    return &Chunk(start >> kChunkBits)[start & (kChunkSize - 1)];
  }

  /// Writer-side element count (includes AppendRun padding).
  size_t size() const { return size_; }

  /// True when `count` more elements fit, even in the AppendRun worst
  /// case (a full chunk of padding before the run).
  bool CanAppend(size_t count) const {
    return count <= kMaxRun && size_ + kChunkSize + count <= kMaxElements;
  }

  size_t AllocatedBytes() const {
    return num_chunks_ * kChunkSize * sizeof(T) +
           num_blocks_ * kDirBlockSize * sizeof(T*) +
           (root_ ? kMaxDirBlocks * sizeof(T**) : 0);
  }

 private:
  /// The chunk holding elements [c << kChunkBits, (c+1) << kChunkBits).
  T* Chunk(size_t c) const {
    return root_[c >> kDirBlockBits][c & (kDirBlockSize - 1)];
  }

  /// Copies `count` elements to column indexes [pos, pos + count),
  /// chunk-wise; does NOT advance size_ (callers account for it).
  void CopyAt(size_t pos, const T* data, size_t count) {
    while (count > 0) {
      const size_t used = pos & (kChunkSize - 1);
      const size_t n = std::min(kChunkSize - used, count);
      // A brand-new chunk the copy covers end to end can skip the
      // zero fill — every slot is about to be overwritten (the bulk
      // restore path writes most chunks exactly this way).
      EnsureChunkFor(pos, /*zero_init=*/used != 0 || n != kChunkSize);
      std::memcpy(&Chunk(pos >> kChunkBits)[used], data, n * sizeof(T));
      pos += n;
      data += n;
      count -= n;
    }
  }

  void EnsureChunkFor(size_t index, bool zero_init = true) {
    const size_t chunk = index >> kChunkBits;
    AMICI_CHECK(chunk < kMaxChunks) << "StableColumn capacity exceeded";
    if (root_ == nullptr) {
      root_ = std::make_unique<T**[]>(kMaxDirBlocks);
      std::memset(root_.get(), 0, kMaxDirBlocks * sizeof(T**));
    }
    // Directory blocks, then chunks, are published bottom-up: a block
    // pointer is stored before any chunk pointer inside it, and chunk
    // contents before the reader-visible bound — the same happens-before
    // chain readers already rely on for elements.
    while (num_blocks_ <= (chunk >> kDirBlockBits)) {
      T** block = new T*[kDirBlockSize];
      std::memset(block, 0, kDirBlockSize * sizeof(T*));
      root_[num_blocks_] = block;
      ++num_blocks_;
    }
    while (num_chunks_ <= chunk) {
      // Value-initialized by default: padding slots (AppendRun) and the
      // unwritten chunk remainder hold zeros, so copies never read
      // indeterminate values (keeps MemorySanitizer quiet). zero_init
      // may only be false when the caller overwrites the WHOLE chunk
      // it asked for — earlier chunks in the loop still get zeros.
      root_[num_chunks_ >> kDirBlockBits][num_chunks_ & (kDirBlockSize - 1)] =
          (zero_init || num_chunks_ < chunk) ? new T[kChunkSize]()
                                             : new T[kChunkSize];
      ++num_chunks_;
    }
  }

  void Reset() {
    for (size_t i = 0; i < num_chunks_; ++i) delete[] Chunk(i);
    for (size_t b = 0; b < num_blocks_; ++b) delete[] root_[b];
    root_.reset();
    num_blocks_ = 0;
    num_chunks_ = 0;
    size_ = 0;
  }

  void CopyFrom(const StableColumn& other) {
    if (other.num_chunks_ > 0) {
      EnsureChunkFor(other.num_chunks_ * kChunkSize - 1);
      for (size_t i = 0; i < other.num_chunks_; ++i) {
        std::memcpy(Chunk(i), other.Chunk(i), kChunkSize * sizeof(T));
      }
    }
    size_ = other.size_;
  }

  /// Root of the two-level directory: kMaxDirBlocks pointers to
  /// directory blocks of kDirBlockSize chunk pointers each.
  std::unique_ptr<T**[]> root_;
  size_t num_blocks_ = 0;
  size_t num_chunks_ = 0;
  size_t size_ = 0;
};

}  // namespace amici

#endif  // AMICI_STORAGE_STABLE_COLUMN_H_
