#ifndef AMICI_STORAGE_STABLE_COLUMN_H_
#define AMICI_STORAGE_STABLE_COLUMN_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>

#include "util/logging.h"

namespace amici {

/// An append-only columnar array with pointer-stable storage: elements
/// live in fixed-size chunks reached through a fixed-capacity directory,
/// so an append NEVER moves previously written elements (unlike
/// std::vector, whose reallocation would race with concurrent readers).
///
/// Concurrency contract (the RCU-style snapshot substrate):
///  * exactly one writer appends at a time;
///  * any number of readers may concurrently access indexes strictly
///    below a bound they observed through a release/acquire edge (the
///    engine snapshot pointer, or ItemStore::num_items()) AFTER the
///    elements were written. The writer only ever touches directory
///    slots and element slots that no reader is allowed to see yet, so
///    reader and writer never race on a memory location.
///
/// Copy/move are writer-side operations (serial set-up only).
template <typename T>
class StableColumn {
  static_assert(std::is_trivially_copyable_v<T>,
                "readers rely on element writes being plain stores");

 public:
  static constexpr size_t kChunkBits = 13;
  /// Elements per chunk (8192).
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
  /// Directory capacity: 2^15 chunks * 2^13 elements = 268M elements.
  /// The directory is allocated at full capacity on first append (256KB
  /// of pointers for 8-byte T) because readers index into it without
  /// synchronization — growing it in place would reallocate the very
  /// array concurrent readers are traversing. A two-level directory
  /// could cut the fixed overhead; see ROADMAP open items.
  static constexpr size_t kMaxChunks = size_t{1} << 15;
  /// Longest run AppendRun can keep contiguous (one chunk).
  static constexpr size_t kMaxRun = kChunkSize;
  /// Total element capacity. Writers should check CanAppend() and fail
  /// gracefully rather than rely on the internal capacity CHECK.
  static constexpr size_t kMaxElements = kMaxChunks * kChunkSize;

  StableColumn() = default;
  ~StableColumn() { Reset(); }

  StableColumn(const StableColumn& other) { CopyFrom(other); }
  StableColumn& operator=(const StableColumn& other) {
    if (this != &other) {
      Reset();
      CopyFrom(other);
    }
    return *this;
  }

  StableColumn(StableColumn&& other) noexcept
      : chunks_(std::move(other.chunks_)),
        num_chunks_(other.num_chunks_),
        size_(other.size_) {
    other.num_chunks_ = 0;
    other.size_ = 0;
  }
  StableColumn& operator=(StableColumn&& other) noexcept {
    if (this != &other) {
      Reset();
      chunks_ = std::move(other.chunks_);
      num_chunks_ = other.num_chunks_;
      size_ = other.size_;
      other.num_chunks_ = 0;
      other.size_ = 0;
    }
    return *this;
  }

  /// Appends one element (writer only).
  void push_back(const T& value) {
    EnsureChunkFor(size_);
    chunks_[size_ >> kChunkBits][size_ & (kChunkSize - 1)] = value;
    ++size_;
  }

  /// Appends `count` elements as one contiguous run and returns the index
  /// of its first element. Pads to the next chunk boundary when the run
  /// would straddle one, so RunData(start) is valid for the whole run.
  /// count must be in [0, kMaxRun].
  size_t AppendRun(const T* data, size_t count) {
    AMICI_CHECK(count <= kMaxRun);
    const size_t used = size_ & (kChunkSize - 1);
    if (used != 0 && used + count > kChunkSize) {
      size_ += kChunkSize - used;  // skip the chunk remainder (padding)
    }
    const size_t start = size_;
    if (count > 0) {
      EnsureChunkFor(start + count - 1);
      std::memcpy(&chunks_[start >> kChunkBits][start & (kChunkSize - 1)],
                  data, count * sizeof(T));
      size_ = start + count;
    }
    return start;
  }

  /// Appends `count` elements with NO run-contiguity guarantee: the data
  /// is split across chunk boundaries without padding. The bulk path for
  /// plain (non-CSR) columns — one memcpy per touched chunk instead of a
  /// branch per element. Writer only; callers pre-check CanAppendAll.
  void AppendAll(const T* data, size_t count) {
    CopyAt(size_, data, count);
    size_ += count;
  }

  /// Appends `n` runs (lengths in `counts`, concatenated in `data`)
  /// under AppendRun's padding rule, recording each run's start index in
  /// `starts_out`. Equivalent to n AppendRun calls, but because padding
  /// happens at most once per chunk the data lands in a handful of
  /// chunk-wise memcpys — the CSR bulk-load path.
  void AppendRuns(const T* data, const uint32_t* counts, size_t n,
                  uint64_t* starts_out) {
    size_t src = 0;
    size_t span_src = 0;
    size_t span_dst = size_;
    for (size_t i = 0; i < n; ++i) {
      const size_t len = counts[i];
      AMICI_CHECK(len <= kMaxRun);
      const size_t used = size_ & (kChunkSize - 1);
      if (used != 0 && used + len > kChunkSize) {
        CopyAt(span_dst, data + span_src, src - span_src);
        size_ += kChunkSize - used;  // skip the chunk remainder (padding)
        span_dst = size_;
        span_src = src;
      }
      starts_out[i] = size_;
      size_ += len;
      src += len;
    }
    CopyAt(span_dst, data + span_src, src - span_src);
  }

  /// True when AppendAll(_, count) fits (no per-run padding to account
  /// for, unlike CanAppend).
  bool CanAppendAll(size_t count) const {
    return count <= kMaxElements - size_;
  }

  /// Element access. Readers must only pass indexes covered by a bound
  /// published after the write (see class comment).
  const T& operator[](size_t index) const {
    return chunks_[index >> kChunkBits][index & (kChunkSize - 1)];
  }

  /// Pointer to the run starting at `start` (an AppendRun return value);
  /// contiguous for that run's length.
  const T* RunData(size_t start) const {
    return &chunks_[start >> kChunkBits][start & (kChunkSize - 1)];
  }

  /// Writer-side element count (includes AppendRun padding).
  size_t size() const { return size_; }

  /// True when `count` more elements fit, even in the AppendRun worst
  /// case (a full chunk of padding before the run).
  bool CanAppend(size_t count) const {
    return count <= kMaxRun && size_ + kChunkSize + count <= kMaxElements;
  }

  size_t AllocatedBytes() const {
    return num_chunks_ * kChunkSize * sizeof(T) +
           (chunks_ ? kMaxChunks * sizeof(T*) : 0);
  }

 private:
  /// Copies `count` elements to column indexes [pos, pos + count),
  /// chunk-wise; does NOT advance size_ (callers account for it).
  void CopyAt(size_t pos, const T* data, size_t count) {
    while (count > 0) {
      const size_t used = pos & (kChunkSize - 1);
      const size_t n = std::min(kChunkSize - used, count);
      // A brand-new chunk the copy covers end to end can skip the
      // zero fill — every slot is about to be overwritten (the bulk
      // restore path writes most chunks exactly this way).
      EnsureChunkFor(pos, /*zero_init=*/used != 0 || n != kChunkSize);
      std::memcpy(&chunks_[pos >> kChunkBits][used], data, n * sizeof(T));
      pos += n;
      data += n;
      count -= n;
    }
  }

  void EnsureChunkFor(size_t index, bool zero_init = true) {
    const size_t chunk = index >> kChunkBits;
    AMICI_CHECK(chunk < kMaxChunks) << "StableColumn capacity exceeded";
    if (chunks_ == nullptr) {
      chunks_ = std::make_unique<T*[]>(kMaxChunks);
      std::memset(chunks_.get(), 0, kMaxChunks * sizeof(T*));
    }
    while (num_chunks_ <= chunk) {
      // Value-initialized by default: padding slots (AppendRun) and the
      // unwritten chunk remainder hold zeros, so copies never read
      // indeterminate values (keeps MemorySanitizer quiet). zero_init
      // may only be false when the caller overwrites the WHOLE chunk
      // it asked for — earlier chunks in the loop still get zeros.
      chunks_[num_chunks_] = (zero_init || num_chunks_ < chunk)
                                 ? new T[kChunkSize]()
                                 : new T[kChunkSize];
      ++num_chunks_;
    }
  }

  void Reset() {
    for (size_t i = 0; i < num_chunks_; ++i) delete[] chunks_[i];
    chunks_.reset();
    num_chunks_ = 0;
    size_ = 0;
  }

  void CopyFrom(const StableColumn& other) {
    if (other.num_chunks_ > 0) {
      EnsureChunkFor(other.num_chunks_ * kChunkSize - 1);
      for (size_t i = 0; i < other.num_chunks_; ++i) {
        std::memcpy(chunks_[i], other.chunks_[i], kChunkSize * sizeof(T));
      }
    }
    size_ = other.size_;
  }

  std::unique_ptr<T*[]> chunks_;
  size_t num_chunks_ = 0;
  size_t size_ = 0;
};

}  // namespace amici

#endif  // AMICI_STORAGE_STABLE_COLUMN_H_
