#ifndef AMICI_STORAGE_BUFFER_POOL_H_
#define AMICI_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "storage/block_file.h"
#include "util/status.h"

namespace amici {

/// One cached 4 KiB block. Obtained from BufferPool::Fetch; the shared
/// ownership keeps the bytes valid even if the pool evicts the block
/// while a reader still holds the handle.
class CachedBlock {
 public:
  const char* data() const { return bytes_; }
  static constexpr size_t size() { return BlockFile::kBlockSize; }

 private:
  friend class BufferPool;
  char bytes_[BlockFile::kBlockSize];
};

/// Thread-safe LRU page cache over one BlockFile — the classical database
/// buffer manager, scoped to read-only workloads (the on-disk index is
/// immutable once written, so there is no dirty-page machinery).
class BufferPool {
 public:
  /// `file` must outlive the pool; `capacity_blocks` >= 1.
  BufferPool(const BlockFile* file, size_t capacity_blocks);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns the (possibly cached) block. Concurrent misses on the same
  /// block may read it twice; both readers get valid data.
  Result<std::shared_ptr<const CachedBlock>> Fetch(uint64_t block_id);

  uint64_t hits() const;
  uint64_t misses() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  using LruList = std::list<uint64_t>;
  struct Entry {
    std::shared_ptr<const CachedBlock> block;
    LruList::iterator lru_position;
  };

  const BlockFile* file_;
  size_t capacity_;

  mutable std::mutex mutex_;
  LruList lru_;  // front = most recently used
  std::unordered_map<uint64_t, Entry> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace amici

#endif  // AMICI_STORAGE_BUFFER_POOL_H_
