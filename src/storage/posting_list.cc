#include "storage/posting_list.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.h"
#include "util/varint.h"

namespace amici {
namespace {

constexpr int kQuantLevels = 255;

/// Serialized-image version. 2 = per-block max impact in the skip table
/// plus split delta/impact block payload; the unversioned v1 layout is
/// rejected by DeserializeFrom.
constexpr uint8_t kFormatVersion = 2;

float DecodeBound(uint8_t impact, float max_score) {
  return static_cast<float>(impact) / static_cast<float>(kQuantLevels) *
         max_score;
}

// Conservative 8-bit quantization: bound >= score guaranteed by the
// ceiling in real arithmetic, then re-checked against the FLOAT decode
// the iterator actually computes — float rounding of impact/255*max can
// land a hair below the score, and pruning correctness needs a true
// upper bound, not an almost-upper bound.
uint8_t QuantizeUp(float score, float max_score) {
  if (max_score <= 0.0f) return 0;
  const double q = std::ceil(static_cast<double>(score) /
                             static_cast<double>(max_score) * kQuantLevels);
  uint8_t quant =
      static_cast<uint8_t>(std::min(q, static_cast<double>(kQuantLevels)));
  while (quant < kQuantLevels && DecodeBound(quant, max_score) < score) {
    ++quant;
  }
  return quant;
}

}  // namespace

PostingList::PostingList(const PostingList& other)
    : data_(other.data_),
      keepalive_(other.keepalive_),
      skips_(other.skips_),
      count_(other.count_),
      max_score_(other.max_score_),
      options_(other.options_) {
  payload_ = keepalive_ ? other.payload_ : std::string_view(data_);
}

PostingList& PostingList::operator=(const PostingList& other) {
  if (this == &other) return *this;
  data_ = other.data_;
  keepalive_ = other.keepalive_;
  skips_ = other.skips_;
  count_ = other.count_;
  max_score_ = other.max_score_;
  options_ = other.options_;
  payload_ = keepalive_ ? other.payload_ : std::string_view(data_);
  return *this;
}

PostingList::PostingList(PostingList&& other) noexcept
    : data_(std::move(other.data_)),
      keepalive_(std::move(other.keepalive_)),
      skips_(std::move(other.skips_)),
      count_(other.count_),
      max_score_(other.max_score_),
      options_(other.options_) {
  // SSO means a moved std::string may live at a new address; re-point.
  payload_ = keepalive_ ? other.payload_ : std::string_view(data_);
  other.payload_ = {};
  other.count_ = 0;
  other.max_score_ = 0.0f;
}

PostingList& PostingList::operator=(PostingList&& other) noexcept {
  if (this == &other) return *this;
  data_ = std::move(other.data_);
  keepalive_ = std::move(other.keepalive_);
  skips_ = std::move(other.skips_);
  count_ = other.count_;
  max_score_ = other.max_score_;
  options_ = other.options_;
  payload_ = keepalive_ ? other.payload_ : std::string_view(data_);
  other.payload_ = {};
  other.count_ = 0;
  other.max_score_ = 0.0f;
  return *this;
}

Result<PostingList> PostingList::Build(
    const std::vector<ScoredItem>& postings) {
  return Build(postings, Options());
}

Result<PostingList> PostingList::Build(const std::vector<ScoredItem>& postings,
                                       const Options& options) {
  if (options.block_size == 0) {
    return Status::InvalidArgument("block_size must be positive");
  }
  PostingList list;
  list.options_ = options;
  list.count_ = postings.size();
  for (size_t i = 0; i < postings.size(); ++i) {
    if (postings[i].score < 0.0f) {
      return Status::InvalidArgument("posting scores must be non-negative");
    }
    if (i > 0 && postings[i].item <= postings[i - 1].item) {
      return Status::InvalidArgument(
          "postings must be strictly ascending by item id");
    }
    list.max_score_ = std::max(list.max_score_, postings[i].score);
  }

  for (size_t begin = 0; begin < postings.size();
       begin += options.block_size) {
    const size_t end = std::min(begin + options.block_size, postings.size());
    SkipEntry skip;
    skip.offset = list.data_.size();
    skip.last_item = postings[end - 1].item;
    skip.num_postings = static_cast<uint32_t>(end - begin);
    // Split payload: the block's deltas back to back, then its impacts —
    // one contiguous varint stream for the batched decoder.
    for (size_t i = begin; i < end; ++i) {
      const uint32_t delta =
          i == begin ? postings[i].item : postings[i].item -
                                          postings[i - 1].item;
      PutVarint32(delta, &list.data_);
    }
    uint8_t max_impact = 0;
    for (size_t i = begin; i < end; ++i) {
      const uint8_t impact =
          QuantizeUp(postings[i].score, list.max_score_);
      list.data_.push_back(static_cast<char>(impact));
      max_impact = std::max(max_impact, impact);
    }
    skip.max_impact = options.enable_block_max
                          ? max_impact
                          : static_cast<uint8_t>(kQuantLevels);
    list.skips_.push_back(skip);
  }
  list.payload_ = list.data_;
  return list;
}

float PostingList::DecodeImpactBound(uint8_t impact) const {
  return DecodeBound(impact, max_score_);
}

std::vector<ItemId> PostingList::DecodeDocs() const {
  std::vector<ItemId> docs;
  docs.reserve(count_);
  for (Iterator it = NewIterator(); it.Valid(); it.Next()) {
    docs.push_back(it.Doc());
  }
  return docs;
}

Result<PostingList> PostingList::MergeFrom(
    std::span<const ScoredItem> tail,
    const std::function<float(ItemId)>& score_of) const {
  std::vector<ScoredItem> postings;
  postings.reserve(count_ + tail.size());
  for (Iterator it = NewIterator(); it.Valid(); it.Next()) {
    postings.push_back({it.Doc(), score_of(it.Doc())});
  }
  if (!postings.empty() && !tail.empty() &&
      tail.front().item <= postings.back().item) {
    return Status::InvalidArgument(
        "tail postings must have strictly greater ids than the base list");
  }
  postings.insert(postings.end(), tail.begin(), tail.end());
  return Build(postings, options_);
}

size_t PostingList::SizeBytes() const {
  return payload_.size() +
         (options_.enable_skips ? skips_.size() * sizeof(SkipEntry) : 0) +
         sizeof(PostingList);
}

void PostingList::SerializeTo(std::string* out) const {
  out->push_back(static_cast<char>(kFormatVersion));
  PutVarint64(count_, out);
  uint32_t score_bits = 0;
  std::memcpy(&score_bits, &max_score_, sizeof(score_bits));
  PutVarint32(score_bits, out);
  PutVarint64(options_.block_size, out);
  const uint8_t flags = (options_.enable_skips ? 1 : 0) |
                        (options_.enable_block_max ? 2 : 0);
  out->push_back(static_cast<char>(flags));
  PutVarint64(skips_.size(), out);
  for (const SkipEntry& skip : skips_) {
    PutVarint32(skip.last_item, out);
    PutVarint64(skip.offset, out);
    PutVarint32(skip.num_postings, out);
    out->push_back(static_cast<char>(skip.max_impact));
  }
  PutVarint64(payload_.size(), out);
  out->append(payload_);
}

Result<PostingList> PostingList::ParseImage(std::string_view data,
                                            size_t* offset,
                                            uint64_t* payload_size) {
  if (*offset >= data.size()) {
    return Status::Corruption("truncated posting-list version");
  }
  const uint8_t version = static_cast<uint8_t>(data[(*offset)++]);
  if (version != kFormatVersion) {
    return Status::Corruption("unsupported posting-list format version " +
                              std::to_string(version) + " (expected " +
                              std::to_string(kFormatVersion) +
                              "); re-serialize from source");
  }
  PostingList list;
  uint64_t count = 0;
  uint32_t score_bits = 0;
  uint64_t block_size = 0;
  if (!GetVarint64(data, offset, &count) ||
      !GetVarint32(data, offset, &score_bits) ||
      !GetVarint64(data, offset, &block_size) || block_size == 0) {
    return Status::Corruption("malformed posting-list header");
  }
  list.count_ = count;
  std::memcpy(&list.max_score_, &score_bits, sizeof(score_bits));
  list.options_.block_size = block_size;
  if (*offset >= data.size()) {
    return Status::Corruption("truncated posting-list flags");
  }
  const uint8_t flags = static_cast<uint8_t>(data[(*offset)++]);
  if (flags > 3) {
    return Status::Corruption("unknown posting-list flag bits");
  }
  list.options_.enable_skips = (flags & 1) != 0;
  list.options_.enable_block_max = (flags & 2) != 0;

  uint64_t num_skips = 0;
  if (!GetVarint64(data, offset, &num_skips)) {
    return Status::Corruption("truncated skip count");
  }
  list.skips_.reserve(num_skips);
  for (uint64_t i = 0; i < num_skips; ++i) {
    SkipEntry skip;
    uint64_t byte_offset = 0;
    if (!GetVarint32(data, offset, &skip.last_item) ||
        !GetVarint64(data, offset, &byte_offset) ||
        !GetVarint32(data, offset, &skip.num_postings)) {
      return Status::Corruption("truncated skip entry");
    }
    skip.offset = byte_offset;
    if (*offset >= data.size()) {
      return Status::Corruption("truncated block max impact");
    }
    skip.max_impact = static_cast<uint8_t>(data[(*offset)++]);
    list.skips_.push_back(skip);
  }
  if (!GetVarint64(data, offset, payload_size) ||
      *offset + *payload_size > data.size()) {
    return Status::Corruption("truncated posting payload");
  }
  return list;
}

Status PostingList::ValidatePayload() const {
  // Structural sanity: blocks must tile the payload in order, each block
  // must be large enough to hold its trailing impact bytes, no block may
  // exceed block_size (the iterator's decode buffers are sized to it),
  // and posting counts must add up.
  uint64_t total = 0;
  for (size_t i = 0; i < skips_.size(); ++i) {
    const SkipEntry& skip = skips_[i];
    const uint64_t block_end =
        i + 1 < skips_.size() ? skips_[i + 1].offset : payload_.size();
    if (skip.offset > block_end || block_end > payload_.size()) {
      return Status::Corruption("skip offsets out of order");
    }
    if (skip.num_postings == 0 || skip.num_postings > options_.block_size) {
      return Status::Corruption("block posting count out of range");
    }
    if (block_end - skip.offset < skip.num_postings) {
      return Status::Corruption("block too small for its impact bytes");
    }
    total += skip.num_postings;
  }
  if (total != count_) {
    return Status::Corruption("posting count mismatch");
  }
  return Status::Ok();
}

Result<PostingList> PostingList::DeserializeFrom(const std::string& data,
                                                 size_t* offset) {
  uint64_t payload_size = 0;
  AMICI_ASSIGN_OR_RETURN(PostingList list,
                         ParseImage(data, offset, &payload_size));
  list.data_ = data.substr(*offset, payload_size);
  list.payload_ = list.data_;
  *offset += payload_size;
  AMICI_RETURN_IF_ERROR(list.ValidatePayload());
  return list;
}

Result<PostingList> PostingList::DeserializeView(
    std::string_view data, size_t* offset,
    std::shared_ptr<const void> keepalive) {
  uint64_t payload_size = 0;
  AMICI_ASSIGN_OR_RETURN(PostingList list,
                         ParseImage(data, offset, &payload_size));
  list.payload_ = data.substr(*offset, payload_size);
  list.keepalive_ = std::move(keepalive);
  if (list.keepalive_ == nullptr) {
    // No pin to hold the bytes alive — degrade to the owning form.
    list.data_.assign(list.payload_.data(), list.payload_.size());
    list.payload_ = list.data_;
  }
  *offset += payload_size;
  AMICI_RETURN_IF_ERROR(list.ValidatePayload());
  return list;
}

PostingList::Iterator::Iterator(const PostingList* list) : list_(list) {
  AMICI_CHECK(list != nullptr);
  if (!list_->skips_.empty()) {
    // Size the decode buffers once; LoadBlock reuses them verbatim.
    block_docs_.resize(list->options_.block_size);
    block_impacts_.resize(list->options_.block_size);
    LoadBlock(0);
    valid_ = true;
  }
}

float PostingList::Iterator::ImpactBound() const {
  return list_->DecodeImpactBound(block_impacts_[index_in_block_]);
}

float PostingList::Iterator::BoundOfBlock(size_t block) const {
  return list_->DecodeImpactBound(list_->skips_[block].max_impact);
}

float PostingList::Iterator::BlockMaxBound() const {
  AMICI_CHECK(valid_);
  return BoundOfBlock(block_);
}

void PostingList::Iterator::LoadBlock(size_t block) {
  block_ = block;
  index_in_block_ = 0;
  const SkipEntry& skip = list_->skips_[block];
  block_count_ = skip.num_postings;
  const size_t block_end =
      block + 1 < list_->skips_.size()
          ? static_cast<size_t>(list_->skips_[block + 1].offset)
          : list_->payload_.size();
  AMICI_CHECK(block_end <= list_->payload_.size() &&
              skip.offset + block_count_ <= block_end);
  // The impacts are the block's trailing num_postings bytes; the delta
  // stream fills [offset, impacts_offset) and is decoded in one batch.
  const size_t impacts_offset = block_end - block_count_;
  size_t offset = static_cast<size_t>(skip.offset);
  const bool ok =
      DecodeDeltaBlock(list_->payload_.data(), impacts_offset, &offset,
                       block_count_, block_docs_.data());
  AMICI_CHECK(ok) << "corrupt posting block";
  std::memcpy(block_impacts_.data(), list_->payload_.data() + impacts_offset,
              block_count_);
  ++blocks_decoded_;
}

void PostingList::Iterator::Next() {
  AMICI_CHECK(valid_);
  ++index_in_block_;
  if (index_in_block_ < block_count_) return;
  if (block_ + 1 < list_->skips_.size()) {
    LoadBlock(block_ + 1);
  } else {
    valid_ = false;
  }
}

void PostingList::Iterator::SeekGeq(ItemId target) {
  if (!valid_) return;
  if (Doc() >= target) return;

  if (list_->options_.enable_skips) {
    // Find the first block whose last item reaches the target.
    if (list_->skips_[block_].last_item < target) {
      size_t lo = block_ + 1;
      size_t hi = list_->skips_.size();
      while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (list_->skips_[mid].last_item < target) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      blocks_skipped_ += lo - block_ - 1;
      if (lo == list_->skips_.size()) {
        valid_ = false;
        return;
      }
      LoadBlock(lo);
    }
    while (index_in_block_ < block_count_ &&
           block_docs_[index_in_block_] < target) {
      ++index_in_block_;
    }
    AMICI_CHECK(index_in_block_ < block_count_);
    return;
  }

  // Skip-free fallback: linear scan (the ablation path).
  while (valid_ && Doc() < target) Next();
}

bool PostingList::Iterator::SkipToBlockWithBoundAbove(double threshold) {
  if (!valid_) return false;
  if (static_cast<double>(BoundOfBlock(block_)) >= threshold) return true;
  size_t block = block_ + 1;
  while (block < list_->skips_.size() &&
         static_cast<double>(BoundOfBlock(block)) < threshold) {
    ++block;
  }
  blocks_skipped_ += block - block_ - 1;
  if (block == list_->skips_.size()) {
    valid_ = false;
    return false;
  }
  LoadBlock(block);
  return true;
}

}  // namespace amici
