#include "storage/posting_list.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.h"
#include "util/varint.h"

namespace amici {
namespace {

constexpr int kQuantLevels = 255;

// Conservative 8-bit quantization: bound >= score guaranteed by ceiling.
uint8_t QuantizeUp(float score, float max_score) {
  if (max_score <= 0.0f) return 0;
  const double q = std::ceil(static_cast<double>(score) /
                             static_cast<double>(max_score) * kQuantLevels);
  return static_cast<uint8_t>(std::min(q, static_cast<double>(kQuantLevels)));
}

}  // namespace

Result<PostingList> PostingList::Build(
    const std::vector<ScoredItem>& postings) {
  return Build(postings, Options());
}

Result<PostingList> PostingList::Build(const std::vector<ScoredItem>& postings,
                                       const Options& options) {
  if (options.block_size == 0) {
    return Status::InvalidArgument("block_size must be positive");
  }
  PostingList list;
  list.options_ = options;
  list.count_ = postings.size();
  for (size_t i = 0; i < postings.size(); ++i) {
    if (postings[i].score < 0.0f) {
      return Status::InvalidArgument("posting scores must be non-negative");
    }
    if (i > 0 && postings[i].item <= postings[i - 1].item) {
      return Status::InvalidArgument(
          "postings must be strictly ascending by item id");
    }
    list.max_score_ = std::max(list.max_score_, postings[i].score);
  }

  for (size_t begin = 0; begin < postings.size();
       begin += options.block_size) {
    const size_t end = std::min(begin + options.block_size, postings.size());
    SkipEntry skip;
    skip.offset = list.data_.size();
    skip.last_item = postings[end - 1].item;
    skip.num_postings = static_cast<uint32_t>(end - begin);
    for (size_t i = begin; i < end; ++i) {
      const uint32_t delta =
          i == begin ? postings[i].item : postings[i].item -
                                          postings[i - 1].item;
      PutVarint32(delta, &list.data_);
      list.data_.push_back(static_cast<char>(
          QuantizeUp(postings[i].score, list.max_score_)));
    }
    list.skips_.push_back(skip);
  }
  return list;
}

std::vector<ItemId> PostingList::DecodeDocs() const {
  std::vector<ItemId> docs;
  docs.reserve(count_);
  for (Iterator it = NewIterator(); it.Valid(); it.Next()) {
    docs.push_back(it.Doc());
  }
  return docs;
}

Result<PostingList> PostingList::MergeFrom(
    std::span<const ScoredItem> tail,
    const std::function<float(ItemId)>& score_of) const {
  std::vector<ScoredItem> postings;
  postings.reserve(count_ + tail.size());
  for (Iterator it = NewIterator(); it.Valid(); it.Next()) {
    postings.push_back({it.Doc(), score_of(it.Doc())});
  }
  if (!postings.empty() && !tail.empty() &&
      tail.front().item <= postings.back().item) {
    return Status::InvalidArgument(
        "tail postings must have strictly greater ids than the base list");
  }
  postings.insert(postings.end(), tail.begin(), tail.end());
  return Build(postings, options_);
}

size_t PostingList::SizeBytes() const {
  return data_.size() +
         (options_.enable_skips ? skips_.size() * sizeof(SkipEntry) : 0) +
         sizeof(PostingList);
}

void PostingList::SerializeTo(std::string* out) const {
  PutVarint64(count_, out);
  uint32_t score_bits = 0;
  std::memcpy(&score_bits, &max_score_, sizeof(score_bits));
  PutVarint32(score_bits, out);
  PutVarint64(options_.block_size, out);
  out->push_back(options_.enable_skips ? 1 : 0);
  PutVarint64(skips_.size(), out);
  for (const SkipEntry& skip : skips_) {
    PutVarint32(skip.last_item, out);
    PutVarint64(skip.offset, out);
    PutVarint32(skip.num_postings, out);
  }
  PutVarint64(data_.size(), out);
  out->append(data_);
}

Result<PostingList> PostingList::DeserializeFrom(const std::string& data,
                                                 size_t* offset) {
  PostingList list;
  uint64_t count = 0;
  uint32_t score_bits = 0;
  uint64_t block_size = 0;
  if (!GetVarint64(data, offset, &count) ||
      !GetVarint32(data, offset, &score_bits) ||
      !GetVarint64(data, offset, &block_size) || block_size == 0) {
    return Status::Corruption("malformed posting-list header");
  }
  list.count_ = count;
  std::memcpy(&list.max_score_, &score_bits, sizeof(score_bits));
  list.options_.block_size = block_size;
  if (*offset >= data.size()) {
    return Status::Corruption("truncated posting-list flags");
  }
  list.options_.enable_skips = data[(*offset)++] != 0;

  uint64_t num_skips = 0;
  if (!GetVarint64(data, offset, &num_skips)) {
    return Status::Corruption("truncated skip count");
  }
  list.skips_.reserve(num_skips);
  for (uint64_t i = 0; i < num_skips; ++i) {
    SkipEntry skip;
    uint64_t byte_offset = 0;
    if (!GetVarint32(data, offset, &skip.last_item) ||
        !GetVarint64(data, offset, &byte_offset) ||
        !GetVarint32(data, offset, &skip.num_postings)) {
      return Status::Corruption("truncated skip entry");
    }
    skip.offset = byte_offset;
    list.skips_.push_back(skip);
  }
  uint64_t payload_size = 0;
  if (!GetVarint64(data, offset, &payload_size) ||
      *offset + payload_size > data.size()) {
    return Status::Corruption("truncated posting payload");
  }
  list.data_ = data.substr(*offset, payload_size);
  *offset += payload_size;

  // Structural sanity: skip offsets must lie inside the payload and
  // posting counts must add up.
  uint64_t total = 0;
  for (const SkipEntry& skip : list.skips_) {
    if (skip.offset > list.data_.size()) {
      return Status::Corruption("skip offset out of range");
    }
    total += skip.num_postings;
  }
  if (total != list.count_) {
    return Status::Corruption("posting count mismatch");
  }
  return list;
}

PostingList::Iterator::Iterator(const PostingList* list) : list_(list) {
  AMICI_CHECK(list != nullptr);
  block_docs_.reserve(list->options_.block_size);
  block_impacts_.reserve(list->options_.block_size);
  if (!list_->skips_.empty()) {
    LoadBlock(0);
    valid_ = true;
  }
}

float PostingList::Iterator::ImpactBound() const {
  return static_cast<float>(block_impacts_[index_in_block_]) /
         static_cast<float>(kQuantLevels) * list_->max_score_;
}

void PostingList::Iterator::LoadBlock(size_t block) {
  block_ = block;
  index_in_block_ = 0;
  block_docs_.clear();
  block_impacts_.clear();
  const SkipEntry& skip = list_->skips_[block];
  size_t offset = skip.offset;
  uint32_t doc = 0;
  for (uint32_t i = 0; i < skip.num_postings; ++i) {
    uint32_t delta = 0;
    const bool ok = GetVarint32(list_->data_, &offset, &delta);
    AMICI_CHECK(ok) << "corrupt posting block";
    doc = i == 0 ? delta : doc + delta;
    block_docs_.push_back(doc);
    AMICI_CHECK(offset < list_->data_.size());
    block_impacts_.push_back(static_cast<uint8_t>(list_->data_[offset]));
    ++offset;
  }
}

void PostingList::Iterator::Next() {
  AMICI_CHECK(valid_);
  ++index_in_block_;
  if (index_in_block_ < block_docs_.size()) return;
  if (block_ + 1 < list_->skips_.size()) {
    LoadBlock(block_ + 1);
  } else {
    valid_ = false;
  }
}

void PostingList::Iterator::SeekGeq(ItemId target) {
  if (!valid_) return;
  if (Doc() >= target) return;

  if (list_->options_.enable_skips) {
    // Find the first block whose last item reaches the target.
    if (list_->skips_[block_].last_item < target) {
      size_t lo = block_ + 1;
      size_t hi = list_->skips_.size();
      while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (list_->skips_[mid].last_item < target) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo == list_->skips_.size()) {
        valid_ = false;
        return;
      }
      LoadBlock(lo);
    }
    while (index_in_block_ < block_docs_.size() &&
           block_docs_[index_in_block_] < target) {
      ++index_in_block_;
    }
    AMICI_CHECK(index_in_block_ < block_docs_.size());
    return;
  }

  // Skip-free fallback: linear scan (the ablation path).
  while (valid_ && Doc() < target) Next();
}

}  // namespace amici
