#ifndef AMICI_STORAGE_BLOCK_FILE_H_
#define AMICI_STORAGE_BLOCK_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "util/status.h"

namespace amici {

/// Fixed-size-block random-access file — the raw device abstraction under
/// the buffer pool. Blocks are 4 KiB; the file is either being written
/// (Create + AppendBlock + Sync) or being read (Open + ReadBlock), never
/// both.
class BlockFile {
 public:
  static constexpr size_t kBlockSize = 4096;

  /// Creates/truncates `path` for writing.
  static Result<BlockFile> Create(const std::string& path);

  /// Opens an existing file read-only. Fails unless the size is a whole
  /// number of blocks.
  static Result<BlockFile> Open(const std::string& path);

  BlockFile(BlockFile&& other) noexcept;
  BlockFile& operator=(BlockFile&& other) noexcept;
  BlockFile(const BlockFile&) = delete;
  BlockFile& operator=(const BlockFile&) = delete;
  ~BlockFile();

  /// Appends one block (exactly kBlockSize bytes); returns its id.
  Result<uint64_t> AppendBlock(const char* data);

  /// Reads block `block_id` into `out` (>= kBlockSize bytes).
  /// Thread-safe for concurrent readers.
  Status ReadBlock(uint64_t block_id, char* out) const;

  /// Flushes buffered writes to the OS.
  Status Sync();

  uint64_t num_blocks() const { return num_blocks_; }

 private:
  BlockFile(std::FILE* file, uint64_t num_blocks, bool writable);

  std::FILE* file_ = nullptr;
  uint64_t num_blocks_ = 0;
  bool writable_ = false;
};

}  // namespace amici

#endif  // AMICI_STORAGE_BLOCK_FILE_H_
