#include "storage/buffer_pool.h"

#include "util/logging.h"

namespace amici {

BufferPool::BufferPool(const BlockFile* file, size_t capacity_blocks)
    : file_(file), capacity_(capacity_blocks) {
  AMICI_CHECK(file != nullptr);
  AMICI_CHECK(capacity_blocks >= 1);
}

Result<std::shared_ptr<const CachedBlock>> BufferPool::Fetch(
    uint64_t block_id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(block_id);
    if (it != entries_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_position);
      return it->second.block;
    }
    ++misses_;
  }

  // Read outside the lock so a slow disk doesn't serialize all readers.
  auto block = std::make_shared<CachedBlock>();
  AMICI_RETURN_IF_ERROR(file_->ReadBlock(block_id, block->bytes_));
  std::shared_ptr<const CachedBlock> const_block = std::move(block);

  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(block_id);
  if (it != entries_.end()) {
    // Raced with another miss; keep the incumbent.
    lru_.splice(lru_.begin(), lru_, it->second.lru_position);
    return it->second.block;
  }
  lru_.push_front(block_id);
  entries_.emplace(block_id, Entry{const_block, lru_.begin()});
  if (entries_.size() > capacity_) {
    const uint64_t victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
  }
  return const_block;
}

uint64_t BufferPool::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

uint64_t BufferPool::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

size_t BufferPool::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace amici
