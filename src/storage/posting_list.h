#ifndef AMICI_STORAGE_POSTING_LIST_H_
#define AMICI_STORAGE_POSTING_LIST_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/ids.h"
#include "util/status.h"

namespace amici {

/// An (item, score) pair — the unit of every ranked list in the system.
struct ScoredItem {
  ItemId item;
  float score;
};

/// The canonical best-first order of ranked lists: score-descending,
/// item-ascending. A STRICT TOTAL order over distinct items — which is
/// what makes any correctly sorted list unique, and therefore what lets
/// the incremental-compaction merge path reproduce a full rebuild
/// bit-for-bit. The impact-ordered index arrays and the social index
/// buckets must both sort with exactly this.
inline bool ScoreDescItemAsc(const ScoredItem& a, const ScoredItem& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.item < b.item;
}

/// Absolute safety margin for block-max pruning comparisons. Quantized
/// block bounds are conservative by construction and re-checked against
/// float decode rounding, so the only remaining hazard when a caller
/// blends a bound into a score ceiling (alpha * 1 + (1 - alpha) * bound)
/// is double-rounding noise, ~1e-16 on O(1) scores. Subtracting this from
/// the top-k floor before pruning buries that noise while staying ~6
/// orders of magnitude below the 8-bit quantization step, so it never
/// costs a skip that mattered. Combined with pruning only strictly-below-
/// floor blocks (equal scores are kept, preserving id-tie-break entrants),
/// block-max pruning is exactly result-preserving.
inline constexpr double kBlockMaxPruneSlack = 1e-9;

/// Compressed, document-ordered posting list with per-block skip pointers
/// and per-block max-impact bounds.
///
/// Layout: postings are grouped into blocks of `block_size`. Within a
/// block's payload the item-id deltas are varint coded back to back,
/// followed by the block's 8-bit quantized impacts, one byte per posting
/// (the split keeps the delta stream contiguous for the batched SIMD
/// decoder in util/varint). A skip table holds (last_item, byte offset,
/// posting count, block max impact) per block, so SeekGeq can jump over
/// blocks and SkipToBlockWithBoundAbove can discard blocks whose best
/// possible impact cannot matter — WAND-style block-max pruning.
///
/// Impact quantization is *conservative*: the decoded bound is always >=
/// the true score (rounding up, re-checked against float rounding in the
/// decode formula), so traversal decisions based on it never miss a
/// result; exact scores are re-read from the ItemStore at scoring time.
/// This mirrors the classic compressed-index + exact-rescore design.
///
/// Serialized format (SerializeTo/DeserializeFrom) is versioned; the
/// current version is 2 (leading byte). Version 2 added the per-block
/// max impact and the split delta/impact block payload; version-1 images
/// (unversioned, interleaved payload) are rejected as Corruption —
/// re-serialize from source. The on-disk index format embeds these
/// images, so its own version bumped in lockstep.
class PostingList {
 public:
  struct Options {
    /// Postings per block; also the skip granularity.
    size_t block_size = 128;
    /// When false, no skip table is built and SeekGeq degrades to linear
    /// scanning — the Table 3 ablation knob.
    bool enable_skips = true;
    /// When false, every block's stored max impact saturates to the
    /// whole-list bound, so SkipToBlockWithBoundAbove degrades to
    /// list-global pruning — the block-max ablation knob. Results are
    /// identical either way; only blocks_decoded/blocks_skipped move.
    bool enable_block_max = true;
  };

  /// Streaming decoder over one PostingList. Forward-only.
  class Iterator {
   public:
    explicit Iterator(const PostingList* list);

    /// False once the list is exhausted.
    bool Valid() const { return valid_; }

    /// Current item id; requires Valid().
    ItemId Doc() const { return block_docs_[index_in_block_]; }

    /// Conservative impact bound for the current posting (>= true score).
    float ImpactBound() const;

    /// Conservative bound over every posting in the current block:
    /// >= ImpactBound() of each, hence >= every true score in the block.
    /// With enable_block_max off this saturates to max_score().
    /// Requires Valid().
    float BlockMaxBound() const;

    /// Advances by one posting.
    void Next();

    /// Advances to the first posting with item id >= target (no-op if
    /// already there). Uses the skip table when available.
    void SeekGeq(ItemId target);

    /// Block-max pruning primitive. If the current block's BlockMaxBound
    /// is >= threshold, stays put (mid-block position preserved).
    /// Otherwise jumps forward to the first posting of the next block
    /// whose bound reaches threshold, never decoding the blocks passed
    /// over. Returns Valid(). Exactness: a skipped block's bound is >=
    /// every true score inside it, so callers that only skip when the
    /// bound provably cannot beat their floor lose nothing.
    bool SkipToBlockWithBoundAbove(double threshold);

    /// Traversal observability: blocks decoded by this iterator, and
    /// blocks passed over undecoded (by SeekGeq or block-max pruning).
    uint64_t blocks_decoded() const { return blocks_decoded_; }
    uint64_t blocks_skipped() const { return blocks_skipped_; }

   private:
    void LoadBlock(size_t block);
    float BoundOfBlock(size_t block) const;

    const PostingList* list_;
    size_t block_ = 0;
    size_t index_in_block_ = 0;
    size_t block_count_ = 0;  // postings in the loaded block
    bool valid_ = false;
    uint64_t blocks_decoded_ = 0;
    uint64_t blocks_skipped_ = 0;
    // Fixed-capacity decode buffers, sized once to block_size at
    // construction and reused across LoadBlock calls.
    std::vector<ItemId> block_docs_;
    std::vector<uint8_t> block_impacts_;
  };

  PostingList() = default;
  // The payload may be a view into data_ (owning form) or into bytes
  // pinned by keepalive_ (mapped form); copies and moves re-point the
  // view, so both forms stay valid across container reshuffles.
  PostingList(const PostingList& other);
  PostingList& operator=(const PostingList& other);
  PostingList(PostingList&& other) noexcept;
  PostingList& operator=(PostingList&& other) noexcept;

  /// Builds a list from postings sorted strictly ascending by item id with
  /// non-negative scores; violations yield InvalidArgument.
  static Result<PostingList> Build(const std::vector<ScoredItem>& postings,
                                   const Options& options);
  static Result<PostingList> Build(const std::vector<ScoredItem>& postings);

  /// LSM-style merge surface: builds the list holding this list's
  /// postings followed by `tail`. Every tail id must be strictly greater
  /// than every existing id (the ingest tail is appended after the
  /// indexed prefix, so merged postings stay document-ordered without a
  /// sort). Existing postings are re-scored through `score_of` — the
  /// stored 8-bit impacts are conservative BOUNDS, not exact scores, and
  /// a tail posting can raise max_score and therefore re-quantize every
  /// block — so the result is bit-identical to Build() over the
  /// concatenated postings with this list's options.
  Result<PostingList> MergeFrom(
      std::span<const ScoredItem> tail,
      const std::function<float(ItemId)>& score_of) const;

  /// Decodes the document-ordered item ids (the exact Build input order).
  /// O(size); the merge path uses it to reconstruct touched lists.
  std::vector<ItemId> DecodeDocs() const;

  /// Number of postings.
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Largest true score over the list (0 for an empty list).
  float max_score() const { return max_score_; }

  /// Compressed footprint: payload plus skip table.
  size_t SizeBytes() const;

  Iterator NewIterator() const { return Iterator(this); }

  const Options& options() const { return options_; }

  /// Appends a self-contained binary image (payload + skip table +
  /// options) to `out`; DeserializeFrom reconstructs an identical list.
  /// Used by the on-disk index format.
  void SerializeTo(std::string* out) const;

  /// Parses a list written by SerializeTo starting at data[*offset];
  /// advances *offset past it. Corruption on malformed input. The result
  /// owns a copy of the block payload.
  static Result<PostingList> DeserializeFrom(const std::string& data,
                                             size_t* offset);

  /// Zero-copy variant for mmap-ed segments: parses the same image but
  /// the returned list VIEWS the block payload in place instead of
  /// copying it, holding `keepalive` so the backing bytes (typically a
  /// mapped segment file) outlive the list. The skip table is small and
  /// is materialized as usual, so traversal — block-max pruning, SIMD
  /// batched decode — runs unchanged over the mapped bytes.
  static Result<PostingList> DeserializeView(
      std::string_view data, size_t* offset,
      std::shared_ptr<const void> keepalive);

 private:
  friend class Iterator;

  struct SkipEntry {
    ItemId last_item;     // largest item id in the block
    uint64_t offset;      // byte offset of the block in data_
    uint32_t num_postings;  // postings in this block
    uint8_t max_impact;   // largest quantized impact in the block
                          // (saturated to 255 when block-max is disabled)
  };

  /// Decoded float bound for a quantized impact; monotone in `impact`,
  /// so a block's max_impact decodes to a bound covering every posting.
  float DecodeImpactBound(uint8_t impact) const;

  /// Shared image parser: header, flags, and skip table. On success the
  /// payload occupies data[*offset, *offset + *payload_size) and *offset
  /// points at its first byte; the caller decides whether to copy
  /// (DeserializeFrom) or view (DeserializeView) it.
  static Result<PostingList> ParseImage(std::string_view data, size_t* offset,
                                        uint64_t* payload_size);
  /// Validates skip offsets/counts against the attached payload.
  Status ValidatePayload() const;

  std::string data_;          // owned payload bytes; empty in mapped form
  std::string_view payload_;  // the payload: ==data_ or mapped bytes
  std::shared_ptr<const void> keepalive_;  // pins mapped bytes; null = owning
  std::vector<SkipEntry> skips_;
  size_t count_ = 0;
  float max_score_ = 0.0f;
  Options options_;
};

}  // namespace amici

#endif  // AMICI_STORAGE_POSTING_LIST_H_
