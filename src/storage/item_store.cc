#include "storage/item_store.h"

#include <algorithm>

#include "util/string_util.h"

namespace amici {

Result<ItemId> ItemStore::Add(const Item& item) {
  if (item.owner == kInvalidUserId) {
    return Status::InvalidArgument("item owner must be a valid user");
  }
  if (item.tags.empty()) {
    return Status::InvalidArgument("item must carry at least one tag");
  }
  if (item.quality < 0.0f || item.quality > 1.0f) {
    return Status::InvalidArgument(
        StringPrintf("quality %.3f outside [0, 1]", item.quality));
  }
  std::vector<TagId> tags = item.tags;
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());

  const ItemId id = static_cast<ItemId>(owner_.size());
  owner_.push_back(item.owner);
  quality_.push_back(item.quality);
  has_geo_.push_back(item.has_geo ? 1 : 0);
  latitude_.push_back(item.latitude);
  longitude_.push_back(item.longitude);
  for (const TagId tag : tags) {
    tag_ids_.push_back(tag);
    max_tag_plus_one_ = std::max(max_tag_plus_one_, static_cast<size_t>(tag) + 1);
  }
  tag_offsets_.push_back(tag_ids_.size());
  return id;
}

bool ItemStore::HasTag(ItemId item, TagId tag) const {
  const auto item_tags = tags(item);
  return std::binary_search(item_tags.begin(), item_tags.end(), tag);
}

size_t ItemStore::MemoryBytes() const {
  return owner_.capacity() * sizeof(UserId) +
         quality_.capacity() * sizeof(float) +
         has_geo_.capacity() * sizeof(uint8_t) +
         latitude_.capacity() * sizeof(float) +
         longitude_.capacity() * sizeof(float) +
         tag_offsets_.capacity() * sizeof(uint64_t) +
         tag_ids_.capacity() * sizeof(TagId);
}

}  // namespace amici
