#include "storage/item_store.h"

#include <algorithm>
#include <utility>

#include "util/string_util.h"

namespace amici {

namespace {

/// Sorted, deduplicated copy of the tag list (the stored form).
std::vector<TagId> NormalizedTags(const Item& item) {
  std::vector<TagId> tags = item.tags;
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  return tags;
}

/// Item validity checks shared by Add and the ValidateForAdd* family;
/// `tags` is the already-normalized list. Capacity is checked separately.
Status ValidateItemShape(const Item& item, const std::vector<TagId>& tags) {
  if (item.owner == kInvalidUserId) {
    return Status::InvalidArgument("item owner must be a valid user");
  }
  if (item.tags.empty()) {
    return Status::InvalidArgument("item must carry at least one tag");
  }
  if (item.quality < 0.0f || item.quality > 1.0f) {
    return Status::InvalidArgument(
        StringPrintf("quality %.3f outside [0, 1]", item.quality));
  }
  if (tags.size() > StableColumn<TagId>::kMaxRun) {
    return Status::InvalidArgument("item carries too many tags");
  }
  return Status::Ok();
}

}  // namespace

Status ItemStore::ValidateForAdd(const Item& item) const {
  const std::vector<TagId> tags = NormalizedTags(item);
  AMICI_RETURN_IF_ERROR(ValidateItemShape(item, tags));
  if (!owner_.CanAppend(1) || !tag_data_.CanAppend(tags.size())) {
    return Status::ResourceExhausted("item store is at capacity");
  }
  return Status::Ok();
}

Status ItemStore::ValidateForAddAll(std::span<const Item> items) const {
  // Cumulative capacity. An AppendRun pads only when the run would
  // straddle a chunk boundary, and the padding (kChunkSize - used) is
  // then strictly less than the run length — so 2x the run length is a
  // conservative per-run bound that stays proportional to the batch.
  size_t tag_slots = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    const std::vector<TagId> tags = NormalizedTags(items[i]);
    const Status status = ValidateItemShape(items[i], tags);
    if (!status.ok()) {
      return Status(status.code(), StringPrintf("batch item %zu: %s", i,
                                                status.message().c_str()));
    }
    tag_slots += 2 * tags.size();
  }
  // Mirror CanAppend's full-chunk slack per column so that after Ok()
  // every per-item CanAppend along the batch is guaranteed to pass.
  if (owner_.size() + items.size() + StableColumn<UserId>::kChunkSize >
          StableColumn<UserId>::kMaxElements ||
      tag_data_.size() + tag_slots + StableColumn<TagId>::kChunkSize >
          StableColumn<TagId>::kMaxElements) {
    return Status::ResourceExhausted(
        "batch does not fit: item store is near capacity");
  }
  return Status::Ok();
}

Result<ItemId> ItemStore::Add(const Item& item) {
  std::vector<TagId> tags = NormalizedTags(item);
  AMICI_RETURN_IF_ERROR(ValidateItemShape(item, tags));
  if (!owner_.CanAppend(1) || !tag_data_.CanAppend(tags.size())) {
    return Status::ResourceExhausted("item store is at capacity");
  }

  const size_t id = num_items_.load(std::memory_order_relaxed);
  owner_.push_back(item.owner);
  quality_.push_back(item.quality);
  has_geo_.push_back(item.has_geo ? 1 : 0);
  latitude_.push_back(item.latitude);
  longitude_.push_back(item.longitude);
  const size_t start = tag_data_.AppendRun(tags.data(), tags.size());
  tag_starts_.push_back(start);
  tag_counts_.push_back(static_cast<uint32_t>(tags.size()));

  size_t universe = tag_universe_.load(std::memory_order_relaxed);
  for (const TagId tag : tags) {
    universe = std::max(universe, static_cast<size_t>(tag) + 1);
  }
  tag_universe_.store(universe, std::memory_order_release);

  // Publish last: readers that observe num_items() > id are guaranteed to
  // see every column of item `id` (release/acquire on num_items_).
  num_items_.store(id + 1, std::memory_order_release);
  return static_cast<ItemId>(id);
}

Status ItemStore::AppendColumnarBlock(
    size_t count, const UserId* owner, const float* quality,
    const uint8_t* has_geo, const float* latitude, const float* longitude,
    const uint32_t* tag_counts, const TagId* tag_data, size_t total_tags) {
  // Validate the whole block up front so it appends entirely or not at
  // all (the all-or-nothing contract Add gives per row). The checks run
  // branchless — violation bits accumulate over whole columns, which the
  // compiler vectorizes — and only on failure does the precise per-row
  // loop rerun to name the offending row (restart-latency hot path).
  size_t universe = tag_universe_.load(std::memory_order_relaxed);
  bool bad_row = false;
  for (size_t i = 0; i < count; ++i) {
    bad_row |= owner[i] == kInvalidUserId;
    bad_row |= !(quality[i] >= 0.0f && quality[i] <= 1.0f);
    bad_row |= tag_counts[i] - 1 >= StableColumn<TagId>::kMaxRun;  // run==0 too
  }
  // Tag runs: each must be strictly ascending. Equivalent global form —
  // every adjacent descent in the concatenated tag data must coincide
  // with a run boundary, and the runs must cover total_tags exactly.
  // The same pass tracks the block's max tag (runs are ascending, so
  // the max anywhere is the max of some run's last element).
  size_t descents = 0;
  TagId max_tag = total_tags > 0 ? tag_data[0] : 0;
  for (size_t t = 1; t < total_tags; ++t) {
    descents += tag_data[t] <= tag_data[t - 1];
    max_tag = std::max(max_tag, tag_data[t]);
  }
  if (total_tags > 0) {
    universe = std::max(universe, static_cast<size_t>(max_tag) + 1);
  }
  size_t boundary_descents = 0;
  size_t tags_seen = 0;
  bool bad_cover = bad_row;
  for (size_t i = 0; i < count && !bad_cover; ++i) {
    tags_seen += tag_counts[i];
    bad_cover = tags_seen > total_tags;
    boundary_descents += tags_seen < total_tags &&
                         tag_data[tags_seen] <= tag_data[tags_seen - 1];
  }
  if (bad_cover || tags_seen != total_tags || descents != boundary_descents) {
    // Precise pass, cold: name the first offending row.
    tags_seen = 0;
    for (size_t i = 0; i < count; ++i) {
      if (owner[i] == kInvalidUserId) {
        return Status::InvalidArgument(
            StringPrintf("block row %zu: owner must be a valid user", i));
      }
      if (quality[i] < 0.0f || quality[i] > 1.0f) {
        return Status::InvalidArgument(StringPrintf(
            "block row %zu: quality %.3f outside [0, 1]", i, quality[i]));
      }
      const size_t run = tag_counts[i];
      if (run == 0) {
        return Status::InvalidArgument(
            StringPrintf("block row %zu: item must carry at least one tag", i));
      }
      if (run > StableColumn<TagId>::kMaxRun) {
        return Status::InvalidArgument(
            StringPrintf("block row %zu: item carries too many tags", i));
      }
      if (run > total_tags - tags_seen) {
        return Status::InvalidArgument("block tag runs overflow the tag data");
      }
      const TagId* tags = tag_data + tags_seen;
      for (size_t t = 1; t < run; ++t) {
        if (tags[t] <= tags[t - 1]) {
          return Status::InvalidArgument(StringPrintf(
              "block row %zu: tags are not sorted and unique", i));
        }
      }
      tags_seen += run;
    }
    return Status::InvalidArgument("block tag runs underflow the tag data");
  }
  // Capacity: 2x per-run length conservatively covers AppendRun padding
  // (see ValidateForAddAll), plus CanAppend's full-chunk slack.
  if (!owner_.CanAppendAll(count + StableColumn<UserId>::kChunkSize) ||
      !tag_data_.CanAppendAll(2 * total_tags +
                              StableColumn<TagId>::kChunkSize)) {
    return Status::ResourceExhausted(
        "block does not fit: item store is near capacity");
  }

  const size_t id = num_items_.load(std::memory_order_relaxed);
  owner_.AppendAll(owner, count);
  quality_.AppendAll(quality, count);
  has_geo_.AppendAll(has_geo, count);
  latitude_.AppendAll(latitude, count);
  longitude_.AppendAll(longitude, count);
  tag_counts_.AppendAll(tag_counts, count);
  std::vector<uint64_t> starts(count);
  tag_data_.AppendRuns(tag_data, tag_counts, count, starts.data());
  tag_starts_.AppendAll(starts.data(), count);
  tag_universe_.store(universe, std::memory_order_release);
  // Publish last, as in Add: the release store covers every column.
  num_items_.store(id + count, std::memory_order_release);
  return Status::Ok();
}

bool ItemStore::HasTag(ItemId item, TagId tag) const {
  const auto item_tags = tags(item);
  return std::binary_search(item_tags.begin(), item_tags.end(), tag);
}

size_t ItemStore::MemoryBytes() const {
  return owner_.AllocatedBytes() + quality_.AllocatedBytes() +
         has_geo_.AllocatedBytes() + latitude_.AllocatedBytes() +
         longitude_.AllocatedBytes() + tag_starts_.AllocatedBytes() +
         tag_counts_.AllocatedBytes() + tag_data_.AllocatedBytes();
}

void ItemStore::CopyFrom(const ItemStore& other) {
  owner_ = other.owner_;
  quality_ = other.quality_;
  has_geo_ = other.has_geo_;
  latitude_ = other.latitude_;
  longitude_ = other.longitude_;
  tag_starts_ = other.tag_starts_;
  tag_counts_ = other.tag_counts_;
  tag_data_ = other.tag_data_;
  num_items_.store(other.num_items_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  tag_universe_.store(other.tag_universe_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
}

void ItemStore::MoveFrom(ItemStore&& other) noexcept {
  owner_ = std::move(other.owner_);
  quality_ = std::move(other.quality_);
  has_geo_ = std::move(other.has_geo_);
  latitude_ = std::move(other.latitude_);
  longitude_ = std::move(other.longitude_);
  tag_starts_ = std::move(other.tag_starts_);
  tag_counts_ = std::move(other.tag_counts_);
  tag_data_ = std::move(other.tag_data_);
  num_items_.store(other.num_items_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  tag_universe_.store(other.tag_universe_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  other.num_items_.store(0, std::memory_order_relaxed);
  other.tag_universe_.store(0, std::memory_order_relaxed);
}

}  // namespace amici
