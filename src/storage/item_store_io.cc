#include "storage/item_store_io.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "util/file_util.h"
#include "util/hash.h"
#include "util/string_util.h"
#include "util/varint.h"

namespace amici {
namespace {

constexpr char kStoreMagic[4] = {'A', 'M', 'I', 'S'};
constexpr char kDictMagic[4] = {'A', 'M', 'I', 'D'};
constexpr uint32_t kVersion = 1;

void PutFixed32(uint32_t value, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void PutFixed64(uint64_t value, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

bool GetFixed32(const std::string& data, size_t* offset, uint32_t* value) {
  if (*offset + 4 > data.size()) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data[*offset + i]))
         << (8 * i);
  }
  *offset += 4;
  *value = v;
  return true;
}

bool GetFixed64(const std::string& data, size_t* offset, uint64_t* value) {
  if (*offset + 8 > data.size()) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data[*offset + i]))
         << (8 * i);
  }
  *offset += 8;
  *value = v;
  return true;
}

void PutFloat(float value, std::string* out) {
  uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  PutFixed32(bits, out);
}

bool GetFloat(const std::string& data, size_t* offset, float* value) {
  uint32_t bits = 0;
  if (!GetFixed32(data, offset, &bits)) return false;
  std::memcpy(value, &bits, sizeof(bits));
  return true;
}

/// Verifies magic + trailer checksum; on success strips them, returning
/// the payload region [header_end, checksum_begin) via offsets.
Status CheckEnvelope(const std::string& bytes, const char* magic,
                     size_t* offset) {
  if (bytes.size() < 4 + 4 + 8) {
    return Status::Corruption("blob too small");
  }
  if (bytes.compare(0, 4, magic, 4) != 0) {
    return Status::Corruption("bad magic");
  }
  const std::string body = bytes.substr(0, bytes.size() - 8);
  size_t tail = bytes.size() - 8;
  uint64_t stored = 0;
  if (!GetFixed64(bytes, &tail, &stored) || stored != Fnv1a64(body)) {
    return Status::Corruption("checksum mismatch");
  }
  *offset = 4;
  uint32_t version = 0;
  if (!GetFixed32(bytes, offset, &version) || version != kVersion) {
    return Status::Corruption("unsupported version");
  }
  return Status::Ok();
}

}  // namespace

std::string SerializeItemStore(const ItemStore& store) {
  std::string out;
  out.append(kStoreMagic, sizeof(kStoreMagic));
  PutFixed32(kVersion, &out);
  PutFixed64(store.num_items(), &out);
  for (size_t i = 0; i < store.num_items(); ++i) {
    const ItemId item = static_cast<ItemId>(i);
    PutVarint32(store.owner(item), &out);
    PutFloat(store.quality(item), &out);
    const auto tags = store.tags(item);
    PutVarint64(tags.size(), &out);
    TagId previous = 0;
    for (size_t t = 0; t < tags.size(); ++t) {
      // Tags are sorted & unique: gap coding.
      PutVarint32(t == 0 ? tags[0] : tags[t] - previous, &out);
      previous = tags[t];
    }
    out.push_back(store.has_geo(item) ? 1 : 0);
    if (store.has_geo(item)) {
      PutFloat(store.latitude(item), &out);
      PutFloat(store.longitude(item), &out);
    }
  }
  PutFixed64(Fnv1a64(out), &out);
  return out;
}

Result<ItemStore> DeserializeItemStore(const std::string& bytes) {
  size_t offset = 0;
  AMICI_RETURN_IF_ERROR(CheckEnvelope(bytes, kStoreMagic, &offset));
  const std::string body = bytes.substr(0, bytes.size() - 8);

  uint64_t num_items = 0;
  if (!GetFixed64(body, &offset, &num_items)) {
    return Status::Corruption("truncated item count");
  }
  ItemStore store;
  for (uint64_t i = 0; i < num_items; ++i) {
    Item item;
    uint32_t owner = 0;
    if (!GetVarint32(body, &offset, &owner) ||
        !GetFloat(body, &offset, &item.quality)) {
      return Status::Corruption("truncated item header");
    }
    item.owner = owner;
    uint64_t tag_count = 0;
    if (!GetVarint64(body, &offset, &tag_count)) {
      return Status::Corruption("truncated tag count");
    }
    uint64_t current = 0;
    for (uint64_t t = 0; t < tag_count; ++t) {
      uint32_t gap = 0;
      if (!GetVarint32(body, &offset, &gap)) {
        return Status::Corruption("truncated tag list");
      }
      current = t == 0 ? gap : current + gap;
      if (current > UINT32_MAX) return Status::Corruption("tag overflow");
      item.tags.push_back(static_cast<TagId>(current));
    }
    if (offset >= body.size()) return Status::Corruption("truncated geo flag");
    const uint8_t has_geo = static_cast<uint8_t>(body[offset++]);
    if (has_geo != 0) {
      item.has_geo = true;
      if (!GetFloat(body, &offset, &item.latitude) ||
          !GetFloat(body, &offset, &item.longitude)) {
        return Status::Corruption("truncated geo coordinates");
      }
    }
    const auto added = store.Add(item);
    if (!added.ok()) {
      return Status::Corruption(
          StringPrintf("invalid stored item %llu: %s",
                       static_cast<unsigned long long>(i),
                       added.status().ToString().c_str()));
    }
  }
  return store;
}

Status SaveItemStore(const ItemStore& store, const std::string& path) {
  return WriteStringToFile(SerializeItemStore(store), path);
}

Result<ItemStore> LoadItemStore(const std::string& path) {
  AMICI_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  return DeserializeItemStore(bytes);
}

std::string SerializeTagDictionary(const TagDictionary& dictionary) {
  std::string out;
  out.append(kDictMagic, sizeof(kDictMagic));
  PutFixed32(kVersion, &out);
  PutFixed64(dictionary.size(), &out);
  for (size_t t = 0; t < dictionary.size(); ++t) {
    const std::string& name = dictionary.Name(static_cast<TagId>(t));
    PutVarint64(name.size(), &out);
    out.append(name);
  }
  PutFixed64(Fnv1a64(out), &out);
  return out;
}

Result<TagDictionary> DeserializeTagDictionary(const std::string& bytes) {
  size_t offset = 0;
  AMICI_RETURN_IF_ERROR(CheckEnvelope(bytes, kDictMagic, &offset));
  const std::string body = bytes.substr(0, bytes.size() - 8);

  uint64_t count = 0;
  if (!GetFixed64(body, &offset, &count)) {
    return Status::Corruption("truncated tag count");
  }
  TagDictionary dictionary;
  for (uint64_t t = 0; t < count; ++t) {
    uint64_t length = 0;
    if (!GetVarint64(body, &offset, &length) ||
        offset + length > body.size()) {
      return Status::Corruption("truncated tag name");
    }
    const TagId id = dictionary.Intern(body.substr(offset, length));
    offset += length;
    if (id != t) {
      return Status::Corruption("duplicate tag name in dictionary");
    }
  }
  return dictionary;
}

Status SaveTagDictionary(const TagDictionary& dictionary,
                         const std::string& path) {
  return WriteStringToFile(SerializeTagDictionary(dictionary), path);
}

Result<TagDictionary> LoadTagDictionary(const std::string& path) {
  AMICI_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  return DeserializeTagDictionary(bytes);
}

}  // namespace amici
