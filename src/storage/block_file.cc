#include "storage/block_file.h"

#include <sys/stat.h>
#include <unistd.h>

#include <utility>

#include "util/string_util.h"

namespace amici {

BlockFile::BlockFile(std::FILE* file, uint64_t num_blocks, bool writable)
    : file_(file), num_blocks_(num_blocks), writable_(writable) {}

BlockFile::BlockFile(BlockFile&& other) noexcept
    : file_(std::exchange(other.file_, nullptr)),
      num_blocks_(other.num_blocks_),
      writable_(other.writable_) {}

BlockFile& BlockFile::operator=(BlockFile&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = std::exchange(other.file_, nullptr);
    num_blocks_ = other.num_blocks_;
    writable_ = other.writable_;
  }
  return *this;
}

BlockFile::~BlockFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<BlockFile> BlockFile::Create(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb+");
  if (file == nullptr) {
    return Status::IoError(StringPrintf("cannot create %s", path.c_str()));
  }
  return BlockFile(file, 0, /*writable=*/true);
}

Result<BlockFile> BlockFile::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError(StringPrintf("cannot open %s", path.c_str()));
  }
  struct stat info;
  if (fstat(fileno(file), &info) != 0) {
    std::fclose(file);
    return Status::IoError(StringPrintf("cannot stat %s", path.c_str()));
  }
  if (static_cast<uint64_t>(info.st_size) % kBlockSize != 0) {
    std::fclose(file);
    return Status::Corruption(
        StringPrintf("%s is not block-aligned", path.c_str()));
  }
  return BlockFile(file, static_cast<uint64_t>(info.st_size) / kBlockSize,
                   /*writable=*/false);
}

Result<uint64_t> BlockFile::AppendBlock(const char* data) {
  if (!writable_) return Status::FailedPrecondition("file opened read-only");
  if (std::fseek(file_, 0, SEEK_END) != 0 ||
      std::fwrite(data, 1, kBlockSize, file_) != kBlockSize) {
    return Status::IoError("block append failed");
  }
  return num_blocks_++;
}

Status BlockFile::ReadBlock(uint64_t block_id, char* out) const {
  if (block_id >= num_blocks_) {
    return Status::OutOfRange(
        StringPrintf("block %llu beyond end (%llu blocks)",
                     static_cast<unsigned long long>(block_id),
                     static_cast<unsigned long long>(num_blocks_)));
  }
  // pread keeps concurrent readers from racing on the shared file offset.
  const ssize_t got =
      pread(fileno(file_), out, kBlockSize,
            static_cast<off_t>(block_id * kBlockSize));
  if (got != static_cast<ssize_t>(kBlockSize)) {
    return Status::IoError("short block read");
  }
  return Status::Ok();
}

Status BlockFile::Sync() {
  if (!writable_) return Status::Ok();
  if (std::fflush(file_) != 0) return Status::IoError("fflush failed");
  return Status::Ok();
}

}  // namespace amici
