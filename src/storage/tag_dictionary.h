#ifndef AMICI_STORAGE_TAG_DICTIONARY_H_
#define AMICI_STORAGE_TAG_DICTIONARY_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/ids.h"

namespace amici {

/// Bidirectional mapping between tag strings and dense TagIds. Interning
/// happens at ingest; all indexes and queries operate on TagIds only.
class TagDictionary {
 public:
  TagDictionary() = default;

  /// Returns the id of `name`, assigning the next free id on first sight.
  TagId Intern(std::string_view name);

  /// Returns the id of `name` or kInvalidTagId if it was never interned.
  TagId Lookup(std::string_view name) const;

  /// The string for `tag`; tag must be a valid id from this dictionary.
  const std::string& Name(TagId tag) const;

  size_t size() const { return names_.size(); }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const;

 private:
  std::unordered_map<std::string, TagId> ids_;
  std::vector<std::string> names_;
};

}  // namespace amici

#endif  // AMICI_STORAGE_TAG_DICTIONARY_H_
