#ifndef AMICI_STORAGE_ITEM_STORE_IO_H_
#define AMICI_STORAGE_ITEM_STORE_IO_H_

#include <string>

#include "storage/item_store.h"
#include "storage/tag_dictionary.h"
#include "util/status.h"

namespace amici {

/// Binary persistence for the item catalogue and tag dictionary,
/// mirroring the graph format (graph_io.h): magic + version header,
/// varint/delta-coded payload, FNV-64 trailer checksum. Loading verifies
/// structure and checksum and returns Corruption on any mismatch.

/// Item catalogue ("AMIS" format).
std::string SerializeItemStore(const ItemStore& store);
Result<ItemStore> DeserializeItemStore(const std::string& bytes);
Status SaveItemStore(const ItemStore& store, const std::string& path);
Result<ItemStore> LoadItemStore(const std::string& path);

/// Tag dictionary ("AMID" format). Ids are positional, so the dictionary
/// round-trips with identical TagId assignments.
std::string SerializeTagDictionary(const TagDictionary& dictionary);
Result<TagDictionary> DeserializeTagDictionary(const std::string& bytes);
Status SaveTagDictionary(const TagDictionary& dictionary,
                         const std::string& path);
Result<TagDictionary> LoadTagDictionary(const std::string& path);

}  // namespace amici

#endif  // AMICI_STORAGE_ITEM_STORE_IO_H_
