#ifndef AMICI_STORAGE_ITEM_STORE_H_
#define AMICI_STORAGE_ITEM_STORE_H_

#include <atomic>
#include <cstddef>
#include <span>
#include <vector>

#include "storage/stable_column.h"
#include "util/ids.h"
#include "util/status.h"

namespace amici {

/// A single catalogue entry at ingest time: something a user posted
/// (a photo, bookmark, review, ...) described by tags, with an intrinsic
/// quality score and an optional geo position.
struct Item {
  UserId owner = kInvalidUserId;
  std::vector<TagId> tags;
  /// Static quality/popularity prior in [0, 1].
  float quality = 0.0f;
  /// Geo position; only meaningful when has_geo is true.
  bool has_geo = false;
  float latitude = 0.0f;
  float longitude = 0.0f;
};

/// Columnar, append-only item catalogue. Item ids are assigned densely in
/// insertion order. Tag sets are stored CSR-style (deduplicated, sorted)
/// in chunked columns; all per-item lookups are O(1) array reads, which
/// keeps the random-access ("rescore from the store") path of the query
/// algorithms cheap.
///
/// Concurrency: a single writer may Add() while any number of readers
/// access items concurrently, PROVIDED readers only touch item ids below
/// a num_items() value they observed (num_items() is published with
/// release semantics after all of the item's columns are written, and
/// storage is pointer-stable — see StableColumn). ItemStoreView packages
/// such a bound; the engine snapshots carry one per published state.
/// Copying/moving a store is not thread-safe.
class ItemStore {
 public:
  ItemStore() = default;

  ItemStore(const ItemStore& other) { CopyFrom(other); }
  ItemStore& operator=(const ItemStore& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  ItemStore(ItemStore&& other) noexcept { MoveFrom(std::move(other)); }
  ItemStore& operator=(ItemStore&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }

  /// Appends `item` and returns its id. Fails if owner is invalid, quality
  /// is outside [0, 1], or the tag list is empty. Single writer at a time.
  Result<ItemId> Add(const Item& item);

  /// The exact admission check Add() performs (validity + capacity),
  /// without mutating the store. Callers that must commit side effects
  /// before appending (e.g. the sharded service's id maps) use this to
  /// guarantee the subsequent Add() cannot fail.
  Status ValidateForAdd(const Item& item) const;

  /// Batch admission check: per-item validity plus CUMULATIVE capacity
  /// (a batch can exhaust the store even when every item fits alone).
  /// After Ok(), appending every item in order cannot fail — the
  /// guarantee the all-or-nothing batch ingest paths rely on. Errors
  /// name the offending batch position.
  Status ValidateForAddAll(std::span<const Item> items) const;

  /// Bulk-appends `count` rows given as parallel columns, bypassing the
  /// per-row Add path — the snapshot loader's fast lane (plain columns
  /// land via chunk-sized memcpys). Tag storage arrives CSR-style:
  /// `tag_counts[i]` tags for row i, runs concatenated in `tag_data`
  /// (`total_tags` in all), each run already sorted and unique. The
  /// whole block is validated (same admission rules as Add) BEFORE
  /// anything is written, so on error the store is untouched.
  Status AppendColumnarBlock(size_t count, const UserId* owner,
                             const float* quality, const uint8_t* has_geo,
                             const float* latitude, const float* longitude,
                             const uint32_t* tag_counts, const TagId* tag_data,
                             size_t total_tags);

  /// Items fully written so far (acquire load: everything below the
  /// returned bound is safe to read concurrently with the writer).
  size_t num_items() const {
    return num_items_.load(std::memory_order_acquire);
  }

  UserId owner(ItemId item) const { return owner_[item]; }
  float quality(ItemId item) const { return quality_[item]; }
  bool has_geo(ItemId item) const { return has_geo_[item] != 0; }
  float latitude(ItemId item) const { return latitude_[item]; }
  float longitude(ItemId item) const { return longitude_[item]; }

  /// Sorted, unique tags of `item`.
  std::span<const TagId> tags(ItemId item) const {
    return {tag_data_.RunData(tag_starts_[item]), tag_counts_[item]};
  }

  /// True iff `item` carries `tag`. O(log #tags).
  bool HasTag(ItemId item, TagId tag) const;

  /// Largest tag id stored plus one (0 if empty); the tag-universe size
  /// indexes need.
  size_t TagUniverseSize() const {
    return tag_universe_.load(std::memory_order_acquire);
  }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const;

 private:
  void CopyFrom(const ItemStore& other);
  void MoveFrom(ItemStore&& other) noexcept;

  StableColumn<UserId> owner_;
  StableColumn<float> quality_;
  StableColumn<uint8_t> has_geo_;
  StableColumn<float> latitude_;
  StableColumn<float> longitude_;
  /// CSR tag storage: per-item (start, count) into tag_data_ runs.
  StableColumn<uint64_t> tag_starts_;
  StableColumn<uint32_t> tag_counts_;
  StableColumn<TagId> tag_data_;
  std::atomic<size_t> num_items_{0};
  std::atomic<size_t> tag_universe_{0};
};

/// A bounded, immutable read view over an ItemStore: the item prefix
/// [0, num_items()) plus the tag-universe size captured when the view was
/// created. Queries and index builds go through a view, so they observe a
/// consistent catalogue prefix even while the writer keeps appending.
/// Copyable, 24 bytes; the underlying store must outlive the view.
class ItemStoreView {
 public:
  ItemStoreView() = default;

  /// Views the store's current contents (implicit: every pre-snapshot
  /// call site passing an ItemStore keeps working, pinned to "now").
  ItemStoreView(const ItemStore& store)  // NOLINT(runtime/explicit)
      : ItemStoreView(&store) {}
  ItemStoreView(const ItemStore* store)  // NOLINT(runtime/explicit)
      : store_(store),
        num_items_(store == nullptr ? 0 : store->num_items()),
        tag_universe_(store == nullptr ? 0 : store->TagUniverseSize()) {}

  /// Views exactly [0, num_items) with a fixed tag universe.
  ItemStoreView(const ItemStore* store, size_t num_items, size_t tag_universe)
      : store_(store), num_items_(num_items), tag_universe_(tag_universe) {}

  size_t num_items() const { return num_items_; }
  UserId owner(ItemId item) const { return store_->owner(item); }
  float quality(ItemId item) const { return store_->quality(item); }
  bool has_geo(ItemId item) const { return store_->has_geo(item); }
  float latitude(ItemId item) const { return store_->latitude(item); }
  float longitude(ItemId item) const { return store_->longitude(item); }
  std::span<const TagId> tags(ItemId item) const {
    return store_->tags(item);
  }
  bool HasTag(ItemId item, TagId tag) const {
    return store_->HasTag(item, tag);
  }
  size_t TagUniverseSize() const { return tag_universe_; }

  const ItemStore* store() const { return store_; }

 private:
  const ItemStore* store_ = nullptr;
  size_t num_items_ = 0;
  size_t tag_universe_ = 0;
};

}  // namespace amici

#endif  // AMICI_STORAGE_ITEM_STORE_H_
