#ifndef AMICI_STORAGE_ITEM_STORE_H_
#define AMICI_STORAGE_ITEM_STORE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "util/ids.h"
#include "util/status.h"

namespace amici {

/// A single catalogue entry at ingest time: something a user posted
/// (a photo, bookmark, review, ...) described by tags, with an intrinsic
/// quality score and an optional geo position.
struct Item {
  UserId owner = kInvalidUserId;
  std::vector<TagId> tags;
  /// Static quality/popularity prior in [0, 1].
  float quality = 0.0f;
  /// Geo position; only meaningful when has_geo is true.
  bool has_geo = false;
  float latitude = 0.0f;
  float longitude = 0.0f;
};

/// Columnar, append-only item catalogue. Item ids are assigned densely in
/// insertion order. Tag sets are stored CSR-style (deduplicated, sorted);
/// all per-item lookups are O(1) array reads, which keeps the random-access
/// ("rescore from the store") path of the query algorithms cheap.
class ItemStore {
 public:
  ItemStore() = default;

  /// Appends `item` and returns its id. Fails if owner is invalid, quality
  /// is outside [0, 1], or the tag list is empty.
  Result<ItemId> Add(const Item& item);

  size_t num_items() const { return owner_.size(); }

  UserId owner(ItemId item) const { return owner_[item]; }
  float quality(ItemId item) const { return quality_[item]; }
  bool has_geo(ItemId item) const { return has_geo_[item] != 0; }
  float latitude(ItemId item) const { return latitude_[item]; }
  float longitude(ItemId item) const { return longitude_[item]; }

  /// Sorted, unique tags of `item`.
  std::span<const TagId> tags(ItemId item) const {
    return {tag_ids_.data() + tag_offsets_[item],
            tag_ids_.data() + tag_offsets_[item + 1]};
  }

  /// True iff `item` carries `tag`. O(log #tags).
  bool HasTag(ItemId item, TagId tag) const;

  /// Largest tag id stored plus one (0 if empty); the tag-universe size
  /// indexes need.
  size_t TagUniverseSize() const { return max_tag_plus_one_; }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const;

 private:
  std::vector<UserId> owner_;
  std::vector<float> quality_;
  std::vector<uint8_t> has_geo_;
  std::vector<float> latitude_;
  std::vector<float> longitude_;
  std::vector<uint64_t> tag_offsets_{0};
  std::vector<TagId> tag_ids_;
  size_t max_tag_plus_one_ = 0;
};

}  // namespace amici

#endif  // AMICI_STORAGE_ITEM_STORE_H_
