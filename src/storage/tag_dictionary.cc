#include "storage/tag_dictionary.h"

#include "util/logging.h"

namespace amici {

TagId TagDictionary::Intern(std::string_view name) {
  const auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  const TagId id = static_cast<TagId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

TagId TagDictionary::Lookup(std::string_view name) const {
  const auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kInvalidTagId : it->second;
}

const std::string& TagDictionary::Name(TagId tag) const {
  AMICI_CHECK(tag < names_.size()) << "unknown tag id " << tag;
  return names_[tag];
}

size_t TagDictionary::MemoryBytes() const {
  size_t bytes = names_.capacity() * sizeof(std::string) +
                 ids_.size() * (sizeof(std::string) + sizeof(TagId) +
                                sizeof(void*) * 2);
  for (const auto& name : names_) bytes += name.capacity() * 2;
  return bytes;
}

}  // namespace amici
