#include "topk/nra.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace amici {
namespace {

struct Candidate {
  double lower = 0.0;     // sum of partials seen so far
  uint32_t seen_mask = 0;  // bit i set when source i delivered this item
};

}  // namespace

Result<std::vector<ScoredItem>> RunNra(std::span<SortedSource* const> sources,
                                       size_t k, AggregationStats* stats,
                                       const CancellationToken* cancel,
                                       bool* truncated) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (sources.size() > 32) {
    return Status::InvalidArgument("RunNra supports at most 32 sources");
  }
  AggregationStats local_stats;
  std::unordered_map<ItemId, Candidate> candidates;
  std::vector<double> bounds(sources.size(), 0.0);
  CancellationTicker ticker(cancel);
  bool cancelled = false;

  const size_t check_interval = 32 * std::max<size_t>(1, sources.size());
  size_t pulls_since_check = 0;

  auto refresh_bounds = [&]() -> bool {
    bool any_valid = false;
    for (size_t i = 0; i < sources.size(); ++i) {
      if (sources[i]->Valid()) {
        bounds[i] = sources[i]->Current().score;
        any_valid = true;
      } else {
        bounds[i] = 0.0;
      }
    }
    return any_valid;
  };

  // Tests termination; on success fills `result`.
  auto try_terminate = [&](std::vector<ScoredItem>* result) -> bool {
    if (candidates.size() < k) return false;
    // k-th best lower bound.
    std::vector<std::pair<double, ItemId>> lowers;
    lowers.reserve(candidates.size());
    for (const auto& [item, c] : candidates) lowers.push_back({c.lower, item});
    std::nth_element(
        lowers.begin(), lowers.begin() + static_cast<ptrdiff_t>(k - 1),
        lowers.end(), [](const auto& a, const auto& b) {
          if (a.first != b.first) return a.first > b.first;
          return a.second < b.second;
        });
    const double kth_lower = lowers[k - 1].first;

    // Upper bound for an unseen item: every source could still deliver it.
    double unseen_upper = 0.0;
    for (const double b : bounds) unseen_upper += b;
    if (unseen_upper > kth_lower) return false;

    // Upper bound for each seen item outside the provisional top-k.
    std::vector<std::pair<double, ItemId>> top(lowers.begin(),
                                               lowers.begin() +
                                                   static_cast<ptrdiff_t>(k));
    std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    auto in_top = [&](ItemId item) {
      for (const auto& [score, id] : top) {
        if (id == item) return true;
      }
      return false;
    };
    for (const auto& [item, c] : candidates) {
      if (in_top(item)) continue;
      double upper = c.lower;
      for (size_t i = 0; i < sources.size(); ++i) {
        if ((c.seen_mask & (1u << i)) == 0) upper += bounds[i];
      }
      if (upper > kth_lower) return false;
    }

    result->clear();
    result->reserve(k);
    for (const auto& [score, item] : top) {
      result->push_back({item, static_cast<float>(score)});
    }
    return true;
  };

  std::vector<ScoredItem> result;
  while (!cancelled && refresh_bounds()) {
    // One round-robin sweep over the valid sources.
    for (size_t i = 0; i < sources.size(); ++i) {
      if (ticker.Check()) {
        cancelled = true;
        break;
      }
      if (!sources[i]->Valid()) continue;
      const ScoredItem entry = sources[i]->Current();
      sources[i]->Next();
      ++local_stats.sorted_accesses;
      Candidate& c = candidates[entry.item];
      c.lower += entry.score;
      c.seen_mask |= (1u << i);
      ++pulls_since_check;
    }
    if (pulls_since_check >= check_interval) {
      pulls_since_check = 0;
      refresh_bounds();
      if (try_terminate(&result)) {
        if (stats != nullptr) *stats = local_stats;
        return result;
      }
    }
  }

  // Streams exhausted (all lower bounds are exact totals) — or the run
  // was cancelled, in which case the dominance test below may still
  // certify the interim set; only a failed certification is a partial.
  refresh_bounds();
  if (!try_terminate(&result)) {
    if (cancelled && truncated != nullptr) *truncated = true;
    // Fewer than k distinct items exist (or cancelled early); return the
    // best of what was accumulated, best first.
    std::vector<std::pair<double, ItemId>> lowers;
    for (const auto& [item, c] : candidates) lowers.push_back({c.lower, item});
    std::sort(lowers.begin(), lowers.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    result.clear();
    for (size_t i = 0; i < lowers.size() && i < k; ++i) {
      result.push_back({lowers[i].second,
                        static_cast<float>(lowers[i].first)});
    }
  }
  if (stats != nullptr) *stats = local_stats;
  return result;
}

}  // namespace amici
