#ifndef AMICI_TOPK_NRA_H_
#define AMICI_TOPK_NRA_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "storage/posting_list.h"
#include "topk/threshold_algorithm.h"
#include "util/status.h"

namespace amici {

/// No-Random-Access rank aggregation (Fagin, Lotem & Naor). Consumes the
/// same SortedSource streams as the TA engine but never probes the store:
/// it maintains [lower, upper] score bounds per seen item and stops when
/// the k-th best lower bound dominates every other item's upper bound (and
/// the bound on wholly-unseen items).
///
/// Returned scores are the accumulated lower bounds: exact for items that
/// surfaced in every source containing them, conservative otherwise; the
/// *membership* of the top-k set is exact (ties may resolve arbitrarily).
///
/// NRA trades random accesses for much heavier bookkeeping — it exists as
/// the classical baseline operator (micro benches; DESIGN.md §4).
///
/// Supports at most 32 sources.
///
/// `cancel` (optional): once expired, pulling stops at the next sweep
/// step and the best-k by accumulated lower bounds is returned; if that
/// interim set cannot be proven exact, *truncated (when given) is set.
Result<std::vector<ScoredItem>> RunNra(std::span<SortedSource* const> sources,
                                       size_t k, AggregationStats* stats,
                                       const CancellationToken* cancel = nullptr,
                                       bool* truncated = nullptr);

}  // namespace amici

#endif  // AMICI_TOPK_NRA_H_
