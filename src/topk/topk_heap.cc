#include "topk/topk_heap.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace amici {

TopKHeap::TopKHeap(size_t k) : k_(k) {
  AMICI_CHECK(k >= 1);
  heap_.reserve(k);
}

bool TopKHeap::Worse(const Entry& a, const Entry& b) {
  if (a.score != b.score) return a.score < b.score;
  return a.item > b.item;
}

bool TopKHeap::Push(ItemId item, double score) {
  const Entry candidate{score, item};
  if (heap_.size() < k_) {
    heap_.push_back(candidate);
    // Min-heap: the *worst* entry sits on top, so the comparator must say
    // "a orders before b when a is better".
    std::push_heap(heap_.begin(), heap_.end(),
                   [](const Entry& a, const Entry& b) { return Worse(b, a); });
    return true;
  }
  if (!Worse(heap_.front(), candidate)) return false;
  std::pop_heap(heap_.begin(), heap_.end(),
                [](const Entry& a, const Entry& b) { return Worse(b, a); });
  heap_.back() = candidate;
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const Entry& a, const Entry& b) { return Worse(b, a); });
  return true;
}

double TopKHeap::KthScore() const {
  if (heap_.size() < k_) return -std::numeric_limits<double>::infinity();
  return heap_.front().score;
}

std::vector<ScoredItem> TopKHeap::TakeSorted() {
  std::sort(heap_.begin(), heap_.end(), [](const Entry& a, const Entry& b) {
    return Worse(b, a);  // best first
  });
  std::vector<ScoredItem> out;
  out.reserve(heap_.size());
  for (const Entry& e : heap_) {
    out.push_back({e.item, static_cast<float>(e.score)});
  }
  heap_.clear();
  return out;
}

}  // namespace amici
