#ifndef AMICI_TOPK_TOPK_HEAP_H_
#define AMICI_TOPK_TOPK_HEAP_H_

#include <cstddef>
#include <vector>

#include "storage/posting_list.h"
#include "util/ids.h"

namespace amici {

/// Bounded top-k accumulator: keeps the k best (score, item) pairs seen so
/// far in a size-k min-heap. Ordering is score-descending with ascending
/// item id as the deterministic tie-break, so results are reproducible
/// across algorithms and runs.
class TopKHeap {
 public:
  /// Requires k >= 1.
  explicit TopKHeap(size_t k);

  /// Offers a candidate; returns true iff it entered the heap.
  bool Push(ItemId item, double score);

  /// True once k candidates are held.
  bool full() const { return heap_.size() == k_; }
  size_t size() const { return heap_.size(); }
  size_t k() const { return k_; }

  /// Current k-th best score — the score a new candidate must beat.
  /// Returns -infinity until the heap is full, so early-termination tests
  /// are trivially false while results are still missing.
  double KthScore() const;

  /// Extracts results ordered best-first. The heap is left empty.
  std::vector<ScoredItem> TakeSorted();

 private:
  struct Entry {
    double score;
    ItemId item;
  };

  /// True if a orders strictly after b (a is "worse"): min-heap on score,
  /// max on item id for equal scores.
  static bool Worse(const Entry& a, const Entry& b);

  size_t k_;
  std::vector<Entry> heap_;  // std::push_heap with Better-on-top inverted
};

}  // namespace amici

#endif  // AMICI_TOPK_TOPK_HEAP_H_
