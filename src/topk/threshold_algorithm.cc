#include "topk/threshold_algorithm.h"

#include <memory>
#include <unordered_set>

#include "topk/topk_heap.h"
#include "util/logging.h"

namespace amici {
namespace {

/// Slack absorbing floating-point reordering between the threshold sum and
/// score_of's own summation; keeps termination conservative.
constexpr double kThresholdSlack = 1e-12;

}  // namespace

size_t MaxBoundPull(std::span<const double> bounds) {
  size_t best = 0;
  for (size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] > bounds[best]) best = i;
  }
  return best;
}

PullPolicy MakeBoundProportionalPull() {
  // Stride scheduling: per-source credit grows by the source's bound each
  // step; the source with the most credit is pulled and pays the total.
  // Pull frequency therefore converges to bound_i / sum(bounds), and
  // re-balances automatically as the bounds drain.
  auto credits = std::make_shared<std::vector<double>>();
  return [credits](std::span<const double> bounds) -> size_t {
    if (credits->size() != bounds.size()) {
      credits->assign(bounds.size(), 0.0);
    }
    double total = 0.0;
    for (const double b : bounds) total += b;
    size_t best = bounds.size();
    double best_credit = 0.0;
    for (size_t i = 0; i < bounds.size(); ++i) {
      if (!(bounds[i] > 0.0)) {
        (*credits)[i] = 0.0;  // exhausted sources drop out
        continue;
      }
      (*credits)[i] += bounds[i];
      if (best == bounds.size() || (*credits)[i] > best_credit) {
        best = i;
        best_credit = (*credits)[i];
      }
    }
    if (best == bounds.size()) return 0;  // engine falls back if invalid
    (*credits)[best] -= total;
    return best;
  };
}

PullPolicy MakeBiasedPull(std::vector<bool> preferred, uint32_t weight) {
  AMICI_CHECK(weight >= 1);
  // State shared across invocations: a round counter and rotating cursors.
  struct State {
    std::vector<bool> preferred;
    uint32_t weight;
    uint64_t tick = 0;
    size_t preferred_cursor = 0;
    size_t other_cursor = 0;
  };
  auto state = std::make_shared<State>();
  state->preferred = std::move(preferred);
  state->weight = weight;

  return [state](std::span<const double> bounds) -> size_t {
    const size_t n = bounds.size();
    AMICI_CHECK(state->preferred.size() == n);
    const bool pull_preferred =
        (state->tick++ % (state->weight + 1)) != state->weight;
    // Two rotating scans: first over the favoured class, then the other;
    // skip exhausted sources (bound 0 with no better option handled by
    // the engine fallback).
    auto next_in_class = [&](bool want_preferred,
                             size_t* cursor) -> ptrdiff_t {
      for (size_t step = 0; step < n; ++step) {
        const size_t i = (*cursor + step) % n;
        if (state->preferred[i] == want_preferred && bounds[i] > 0.0) {
          *cursor = (i + 1) % n;
          return static_cast<ptrdiff_t>(i);
        }
      }
      return -1;
    };
    ptrdiff_t choice = pull_preferred
                           ? next_in_class(true, &state->preferred_cursor)
                           : next_in_class(false, &state->other_cursor);
    if (choice < 0) {
      choice = pull_preferred ? next_in_class(false, &state->other_cursor)
                              : next_in_class(true, &state->preferred_cursor);
    }
    return choice < 0 ? 0 : static_cast<size_t>(choice);
  };
}

Result<std::vector<ScoredItem>> RunThresholdAlgorithm(
    std::span<SortedSource* const> sources,
    const std::function<double(ItemId)>& score_of, size_t k,
    const PullPolicy& pull_policy, const std::function<bool(ItemId)>& filter,
    AggregationStats* stats, const CancellationToken* cancel,
    bool* truncated) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (score_of == nullptr) {
    return Status::InvalidArgument("score_of must be provided");
  }
  AggregationStats local_stats;
  TopKHeap heap(k);
  std::unordered_set<ItemId> seen;
  std::vector<double> bounds(sources.size(), 0.0);
  CancellationTicker ticker(cancel);

  while (true) {
    if (ticker.Check()) {
      if (truncated != nullptr) *truncated = true;
      break;
    }
    // Refresh bounds and the termination threshold.
    double threshold = 0.0;
    bool any_valid = false;
    for (size_t i = 0; i < sources.size(); ++i) {
      if (sources[i]->Valid()) {
        bounds[i] = sources[i]->Current().score;
        threshold += bounds[i];
        any_valid = true;
      } else {
        bounds[i] = 0.0;
      }
    }
    if (!any_valid) break;
    if (heap.full() && heap.KthScore() >= threshold - kThresholdSlack) break;

    size_t choice = pull_policy(std::span<const double>(bounds));
    if (choice >= sources.size() || !sources[choice]->Valid()) {
      choice = MaxBoundPull(bounds);
      if (!sources[choice]->Valid()) break;  // defensive; any_valid said no
    }

    const ScoredItem entry = sources[choice]->Current();
    sources[choice]->Next();
    ++local_stats.sorted_accesses;
    if (!seen.insert(entry.item).second) continue;
    if (filter != nullptr && !filter(entry.item)) continue;
    ++local_stats.random_accesses;
    const double score = score_of(entry.item);
    ++local_stats.candidates_scored;
    // Zero-score items are never results (engine-wide contract).
    if (score > 0.0) heap.Push(entry.item, score);
  }

  if (stats != nullptr) *stats = local_stats;
  return heap.TakeSorted();
}

}  // namespace amici
