#ifndef AMICI_TOPK_THRESHOLD_ALGORITHM_H_
#define AMICI_TOPK_THRESHOLD_ALGORITHM_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "storage/posting_list.h"
#include "util/cancellation.h"
#include "util/ids.h"
#include "util/status.h"

namespace amici {

/// A stream of (item, partial score) pairs in non-increasing partial-score
/// order — the "sorted access" abstraction of Fagin-style rank
/// aggregation. Implementations wrap impact-ordered posting lists and the
/// lazily-expanded social stream.
class SortedSource {
 public:
  virtual ~SortedSource() = default;

  /// False once the stream is exhausted.
  virtual bool Valid() const = 0;

  /// Current (item, partial score); requires Valid().
  virtual ScoredItem Current() const = 0;

  /// Advances to the next entry.
  virtual void Next() = 0;
};

/// Counters describing how much work a rank-aggregation run performed.
struct AggregationStats {
  uint64_t sorted_accesses = 0;
  uint64_t random_accesses = 0;
  uint64_t candidates_scored = 0;
  /// Posting-list block traversal: blocks actually decoded vs blocks
  /// passed over undecoded (SeekGeq jumps and block-max pruning).
  /// Populated by the algorithms that walk PostingList iterators; summed
  /// across shards in SearchResponse::stats.
  uint64_t blocks_decoded = 0;
  uint64_t blocks_skipped = 0;
};

/// Chooses which source to pull next, given the current per-source upper
/// bounds (0 for exhausted sources). Returning an exhausted source is
/// tolerated — the engine falls back to the best valid one. This is the
/// knob that turns the single TA engine into ContentFirst (content-biased
/// pulls), SocialFirst (social-biased) or HybridAdaptive (greedy max-bound)
/// — see src/core.
using PullPolicy = std::function<size_t(std::span<const double> bounds)>;

/// Fagin's Threshold Algorithm with summation aggregation.
///
/// Invariants required for exactness:
///  * every item with a positive total score appears in >= 1 source;
///  * each source's partial scores are non-increasing;
///  * score_of(item) >= the partial any source reports for that item, and
///    total score == sum of the item's partials across all sources.
///
/// Termination: once k results are held and the k-th score is >= the
/// threshold (sum of current per-source bounds), no unseen item can beat
/// the heap. Ties at the k-th score may be broken arbitrarily.
///
/// `filter` (optional) drops items before scoring — used for geo
/// restriction; exactness then holds w.r.t. the filtered corpus.
///
/// `cancel` (optional): once expired, the run stops at the next sorted
/// access, sets *truncated (when given), and returns the best-effort
/// top-k of the candidates scored so far.
Result<std::vector<ScoredItem>> RunThresholdAlgorithm(
    std::span<SortedSource* const> sources,
    const std::function<double(ItemId)>& score_of, size_t k,
    const PullPolicy& pull_policy, const std::function<bool(ItemId)>& filter,
    AggregationStats* stats, const CancellationToken* cancel = nullptr,
    bool* truncated = nullptr);

/// Ready-made pull policies.

/// Greedy: always pull the source with the largest current bound.
/// Simple, but can fixate on one long, flat list; prefer
/// MakeBoundProportionalPull for adaptive scheduling.
size_t MaxBoundPull(std::span<const double> bounds);

/// Adaptive stride scheduling: each source receives sorted accesses at a
/// frequency proportional to its current upper bound, re-balancing as the
/// bounds drain. With a dominant social term (large alpha) almost every
/// pull goes to the social stream; with dominant content bounds the tag
/// lists share the pulls — the policy morphs between the ContentFirst and
/// SocialFirst extremes query-adaptively. This is HybridAdaptive's
/// scheduler.
PullPolicy MakeBoundProportionalPull();

/// Weighted bias: pulls `preferred` sources `weight` times more often than
/// the rest (round-robin within each class). `preferred[i]` marks source i
/// as favoured.
PullPolicy MakeBiasedPull(std::vector<bool> preferred, uint32_t weight);

}  // namespace amici

#endif  // AMICI_TOPK_THRESHOLD_ALGORITHM_H_
