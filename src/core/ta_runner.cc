#include "core/ta_runner.h"

#include <memory>

#include "core/scorer.h"
#include "core/ta_sources.h"
#include "util/logging.h"

namespace amici {
namespace {

/// How strongly the biased policies favour their preferred source class.
constexpr uint32_t kBiasWeight = 8;

}  // namespace

Result<BlendedSources> BuildBlendedSources(const QueryContext& ctx) {
  const SocialQuery& query = *ctx.query;
  if (!ctx.inverted->has_impact_ordered() && query.alpha < 1.0) {
    return Status::FailedPrecondition(
        "TA algorithms need impact-ordered posting lists "
        "(InvertedIndex::Options::build_impact_ordered)");
  }
  BlendedSources sources;
  // Guard the division: a tag-less query (alpha == 1.0) has no content
  // dimension at all, and 0.0 / 0.0 would poison the weight with NaN.
  const double content_weight =
      query.tags.empty()
          ? 0.0
          : (1.0 - query.alpha) / static_cast<double>(query.tags.size());
  if (content_weight > 0.0) {
    for (const TagId tag : query.tags) {
      sources.owned.push_back(std::make_unique<ImpactListSource>(
          ctx.inverted->ImpactOrdered(tag), content_weight,
          ctx.index_horizon));
      sources.is_content.push_back(true);
    }
  }
  if (query.alpha > 0.0) {
    sources.owned.push_back(std::make_unique<SocialStreamSource>(
        ctx.proximity, ctx.social, query.user, query.alpha,
        ctx.index_horizon));
    sources.is_content.push_back(false);
  }
  return sources;
}

std::function<bool(ItemId)> BuildEligibilityFilter(const QueryContext& ctx,
                                                   const Scorer* scorer) {
  if (ctx.query->mode == MatchMode::kAll && ctx.filter != nullptr) {
    const auto engine_filter = ctx.filter;
    return [scorer, engine_filter](ItemId item) {
      return scorer->Eligible(item) && engine_filter(item);
    };
  }
  if (ctx.query->mode == MatchMode::kAll) {
    return [scorer](ItemId item) { return scorer->Eligible(item); };
  }
  return ctx.filter;
}

Result<std::vector<ScoredItem>> RunBlendedTa(const QueryContext& ctx,
                                             PullBias bias,
                                             SearchStats* stats) {
  const SocialQuery& query = *ctx.query;
  AMICI_ASSIGN_OR_RETURN(BlendedSources blended, BuildBlendedSources(ctx));
  if (blended.owned.empty()) {
    // Degenerate: alpha == 0 with no tags is rejected by validation; be
    // defensive anyway.
    return std::vector<ScoredItem>{};
  }
  std::vector<SortedSource*> sources;
  sources.reserve(blended.owned.size());
  for (const auto& s : blended.owned) sources.push_back(s.get());

  PullPolicy policy;
  switch (bias) {
    case PullBias::kContent:
      policy = MakeBiasedPull(blended.is_content, kBiasWeight);
      break;
    case PullBias::kSocial: {
      std::vector<bool> preferred(blended.is_content.size());
      for (size_t i = 0; i < blended.is_content.size(); ++i) {
        preferred[i] = !blended.is_content[i];
      }
      policy = MakeBiasedPull(std::move(preferred), kBiasWeight);
      break;
    }
    case PullBias::kAdaptive:
      policy = MakeBoundProportionalPull();
      break;
  }

  Scorer scorer(ctx.store, ctx.proximity, &query);
  const std::function<bool(ItemId)> filter =
      BuildEligibilityFilter(ctx, &scorer);
  auto score_of = [&scorer](ItemId item) { return scorer.Score(item); };

  SearchStats local;
  auto result = RunThresholdAlgorithm(
      std::span<SortedSource* const>(sources.data(), sources.size()),
      score_of, query.k, policy, filter, &local.aggregation, ctx.cancel,
      &local.truncated);
  if (stats != nullptr) *stats = local;
  return result;
}

}  // namespace amici
