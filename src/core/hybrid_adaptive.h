#ifndef AMICI_CORE_HYBRID_ADAPTIVE_H_
#define AMICI_CORE_HYBRID_ADAPTIVE_H_

#include <string_view>
#include <vector>

#include "core/search_algorithm.h"

namespace amici {

/// The headline algorithm: Threshold Algorithm with *adaptive* scheduling.
/// Every sorted access goes to the source currently holding the largest
/// upper bound, i.e. the greedy choice that shrinks the termination
/// threshold fastest. The pull distribution therefore re-balances itself
/// with alpha, query tags, and the local shape of the user's neighbourhood
/// — no planner knob to tune — and tracks the lower envelope of
/// ContentFirstTa and SocialFirst across the whole alpha range (Fig 4).
class HybridAdaptive final : public SearchAlgorithm {
 public:
  HybridAdaptive() = default;

  std::string_view name() const override { return "hybrid"; }

  Result<std::vector<ScoredItem>> Search(const QueryContext& ctx,
                                         SearchStats* stats) const override;
};

}  // namespace amici

#endif  // AMICI_CORE_HYBRID_ADAPTIVE_H_
