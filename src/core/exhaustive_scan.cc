#include "core/exhaustive_scan.h"

#include "core/scorer.h"
#include "topk/topk_heap.h"

namespace amici {

Result<std::vector<ScoredItem>> ExhaustiveScan::Search(
    const QueryContext& ctx, SearchStats* stats) const {
  const SocialQuery& query = *ctx.query;
  Scorer scorer(ctx.store, ctx.proximity, &query);
  TopKHeap heap(query.k);
  SearchStats local;

  for (ItemId item = 0; item < ctx.index_horizon; ++item) {
    ++local.items_considered;
    if (!scorer.Eligible(item)) continue;
    if (ctx.filter != nullptr && !ctx.filter(item)) continue;
    const double score = scorer.Score(item);
    if (score > 0.0) heap.Push(item, score);
  }
  if (stats != nullptr) *stats = local;
  return heap.TakeSorted();
}

}  // namespace amici
