#include "core/exhaustive_scan.h"

#include "core/scorer.h"
#include "storage/posting_list.h"
#include "topk/topk_heap.h"

namespace amici {

Result<std::vector<ScoredItem>> ExhaustiveScan::Search(
    const QueryContext& ctx, SearchStats* stats) const {
  const SocialQuery& query = *ctx.query;
  Scorer scorer(ctx.store, ctx.proximity, &query);
  TopKHeap heap(query.k);
  SearchStats local;
  CancellationTicker ticker(ctx.cancel);

  if (query.mode == MatchMode::kAll && !query.tags.empty()) {
    // Conjunctive queries: every eligible item carries every query tag,
    // so the rarest tag's posting list already enumerates a superset of
    // the eligible corpus — same exact contract as the id sweep below
    // (Eligible() is still checked per item), far fewer candidates, and
    // the block-max skip table discards blocks that cannot beat the
    // current floor. items_considered counts list entries examined.
    TagId rarest = query.tags[0];
    for (const TagId tag : query.tags) {
      if (ctx.inverted->DocumentFrequency(tag) <
          ctx.inverted->DocumentFrequency(rarest)) {
        rarest = tag;
      }
    }
    const double alpha = query.alpha;
    const double content_weight = 1.0 - alpha;
    auto it = ctx.inverted->Postings(rarest).NewIterator();
    while (it.Valid()) {
      if (ticker.Check()) {
        local.truncated = true;
        break;
      }
      // An eligible item scores at most alpha * 1 + (1 - alpha) * block
      // quality bound; see kBlockMaxPruneSlack for why this is exact.
      if (content_weight > 0.0 && heap.full()) {
        const double quality_needed =
            (heap.KthScore() - kBlockMaxPruneSlack - alpha) / content_weight;
        if (!it.SkipToBlockWithBoundAbove(quality_needed)) break;
      }
      const ItemId item = it.Doc();
      it.Next();
      if (item >= ctx.index_horizon) continue;
      ++local.items_considered;
      if (!scorer.Eligible(item)) continue;
      if (ctx.filter != nullptr && !ctx.filter(item)) continue;
      const double score = scorer.Score(item);
      if (score > 0.0) heap.Push(item, score);
    }
    local.aggregation.blocks_decoded += it.blocks_decoded();
    local.aggregation.blocks_skipped += it.blocks_skipped();
  } else {
    for (ItemId item = 0; item < ctx.index_horizon; ++item) {
      if (ticker.Check()) {
        local.truncated = true;
        break;
      }
      ++local.items_considered;
      if (!scorer.Eligible(item)) continue;
      if (ctx.filter != nullptr && !ctx.filter(item)) continue;
      const double score = scorer.Score(item);
      if (score > 0.0) heap.Push(item, score);
    }
  }
  if (stats != nullptr) *stats = local;
  return heap.TakeSorted();
}

}  // namespace amici
