#include "core/social_first.h"

#include "core/ta_runner.h"

namespace amici {

Result<std::vector<ScoredItem>> SocialFirst::Search(const QueryContext& ctx,
                                                    SearchStats* stats) const {
  return RunBlendedTa(ctx, PullBias::kSocial, stats);
}

}  // namespace amici
