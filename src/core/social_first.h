#ifndef AMICI_CORE_SOCIAL_FIRST_H_
#define AMICI_CORE_SOCIAL_FIRST_H_

#include <string_view>
#include <vector>

#include "core/search_algorithm.h"

namespace amici {

/// Threshold Algorithm biased towards the social dimension: expands the
/// querying user's neighbourhood in decreasing-proximity order (own items,
/// then closest friends' items, ...), probing the content lists only
/// occasionally. Mirrors ContentFirstTa: cheapest at large alpha, where a
/// handful of close friends already pins the threshold below the k-th
/// score — the right side of the Fig 4 crossover, and the algorithm whose
/// advantage grows with social locality (Fig 9).
class SocialFirst final : public SearchAlgorithm {
 public:
  SocialFirst() = default;

  std::string_view name() const override { return "social-first"; }

  Result<std::vector<ScoredItem>> Search(const QueryContext& ctx,
                                         SearchStats* stats) const override;
};

}  // namespace amici

#endif  // AMICI_CORE_SOCIAL_FIRST_H_
