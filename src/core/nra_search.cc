#include "core/nra_search.h"

#include <algorithm>
#include <memory>

#include "core/scorer.h"
#include "core/ta_runner.h"
#include "topk/nra.h"
#include "util/logging.h"

namespace amici {
namespace {

/// Skips entries that fail a predicate, preserving sorted order.
class FilteringSource final : public SortedSource {
 public:
  FilteringSource(SortedSource* inner, const std::function<bool(ItemId)>* keep)
      : inner_(inner), keep_(keep) {
    SkipRejected();
  }

  bool Valid() const override { return inner_->Valid(); }
  ScoredItem Current() const override { return inner_->Current(); }
  void Next() override {
    inner_->Next();
    SkipRejected();
  }

 private:
  void SkipRejected() {
    if (*keep_ == nullptr) return;
    while (inner_->Valid() && !(*keep_)(inner_->Current().item)) {
      inner_->Next();
    }
  }

  SortedSource* inner_;
  const std::function<bool(ItemId)>* keep_;
};

}  // namespace

Result<std::vector<ScoredItem>> NraSearch::Search(const QueryContext& ctx,
                                                  SearchStats* stats) const {
  const SocialQuery& query = *ctx.query;
  AMICI_ASSIGN_OR_RETURN(BlendedSources blended, BuildBlendedSources(ctx));
  if (blended.owned.empty()) return std::vector<ScoredItem>{};

  Scorer scorer(ctx.store, ctx.proximity, &query);
  const std::function<bool(ItemId)> keep =
      BuildEligibilityFilter(ctx, &scorer);

  std::vector<std::unique_ptr<FilteringSource>> filtered;
  std::vector<SortedSource*> sources;
  filtered.reserve(blended.owned.size());
  for (const auto& source : blended.owned) {
    filtered.push_back(std::make_unique<FilteringSource>(source.get(), &keep));
    sources.push_back(filtered.back().get());
  }

  SearchStats local;
  AMICI_ASSIGN_OR_RETURN(
      std::vector<ScoredItem> members,
      RunNra(std::span<SortedSource* const>(sources.data(), sources.size()),
             query.k, &local.aggregation, ctx.cancel, &local.truncated));

  // Exact rescore of the members; drop zero scores per the engine-wide
  // contract, order best-first with the deterministic tie-break.
  std::vector<ScoredItem> results;
  results.reserve(members.size());
  for (const ScoredItem& member : members) {
    const double score = scorer.Score(member.item);
    ++local.aggregation.random_accesses;
    if (score > 0.0) {
      results.push_back({member.item, static_cast<float>(score)});
    }
  }
  std::sort(results.begin(), results.end(),
            [](const ScoredItem& a, const ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (stats != nullptr) *stats = local;
  return results;
}

}  // namespace amici
