#include "core/scorer.h"

#include "util/logging.h"

namespace amici {

Scorer::Scorer(ItemStoreView store, const ProximityVector* proximity,
               const SocialQuery* query)
    : store_(store), proximity_(proximity), query_(query) {
  AMICI_CHECK(store.store() != nullptr);
  AMICI_CHECK(proximity != nullptr);
  AMICI_CHECK(query != nullptr);
}

double Scorer::SocialScore(ItemId item) const {
  const UserId owner = store_.owner(item);
  if (owner == query_->user) return 1.0;
  return static_cast<double>(proximity_->Proximity(owner));
}

size_t Scorer::MatchedTags(ItemId item) const {
  // Both tag lists are sorted; linear merge.
  const auto item_tags = store_.tags(item);
  size_t matched = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < item_tags.size() && j < query_->tags.size()) {
    if (item_tags[i] < query_->tags[j]) {
      ++i;
    } else if (query_->tags[j] < item_tags[i]) {
      ++j;
    } else {
      ++matched;
      ++i;
      ++j;
    }
  }
  return matched;
}

double Scorer::ContentScore(ItemId item) const {
  const size_t matched = MatchedTags(item);
  if (query_->mode == MatchMode::kAll) {
    return matched == query_->tags.size()
               ? static_cast<double>(store_.quality(item))
               : 0.0;
  }
  if (matched == 0) return 0.0;
  return static_cast<double>(store_.quality(item)) *
         static_cast<double>(matched) /
         static_cast<double>(query_->tags.size());
}

bool Scorer::Eligible(ItemId item) const {
  if (query_->mode == MatchMode::kAny) return true;
  return MatchedTags(item) == query_->tags.size();
}

}  // namespace amici
