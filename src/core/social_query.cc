#include "core/social_query.h"

#include <algorithm>

#include "util/string_util.h"

namespace amici {

void NormalizeQuery(SocialQuery* query) {
  std::sort(query->tags.begin(), query->tags.end());
  query->tags.erase(std::unique(query->tags.begin(), query->tags.end()),
                    query->tags.end());
}

Status ValidateQuery(const SocialQuery& query, size_t num_users) {
  if (query.user >= num_users) {
    return Status::InvalidArgument(
        StringPrintf("query user %u out of range (%zu users)", query.user,
                     num_users));
  }
  if (query.k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (!(query.alpha >= 0.0 && query.alpha <= 1.0)) {
    return Status::InvalidArgument(
        StringPrintf("alpha %.3f outside [0, 1]", query.alpha));
  }
  if (query.tags.empty() && query.alpha != 1.0) {
    // Tag-less is only meaningful as a pure social feed: with no tags the
    // content component is undefined, so alpha must give it zero weight.
    return Status::InvalidArgument(
        "tag-less queries are pure-social feeds: they require alpha == 1.0");
  }
  if (!std::is_sorted(query.tags.begin(), query.tags.end()) ||
      std::adjacent_find(query.tags.begin(), query.tags.end()) !=
          query.tags.end()) {
    return Status::InvalidArgument(
        "query tags must be sorted and unique (use NormalizeQuery)");
  }
  if (query.has_geo_filter && !(query.radius_km > 0.0f)) {
    return Status::InvalidArgument("geo filter needs a positive radius");
  }
  return Status::Ok();
}

}  // namespace amici
