#ifndef AMICI_CORE_SCORER_H_
#define AMICI_CORE_SCORER_H_

#include <vector>

#include "core/social_query.h"
#include "proximity/proximity_model.h"
#include "storage/item_store.h"
#include "util/ids.h"

namespace amici {

/// Computes the exact blended score of items for one (query, proximity
/// vector) pair. Every algorithm rescoring a candidate goes through this
/// class, so all algorithms agree bit-for-bit on item scores.
///
/// Conventions:
///  * the querying user's own items have social score 1.0 (you are closest
///    to yourself);
///  * other owners score their normalized proximity (0 when not in the
///    proximity vector);
///  * content under kAny is quality * (matched tags / |query tags|);
///    content under kAll is quality when all tags match (eligibility is a
///    separate predicate — see Eligible()).
class Scorer {
 public:
  /// All pointers (and the view's store) must outlive the Scorer; `query`
  /// must be validated.
  Scorer(ItemStoreView store, const ProximityVector* proximity,
         const SocialQuery* query);

  /// alpha * social + (1 - alpha) * content.
  double Score(ItemId item) const {
    return query_->alpha * SocialScore(item) +
           (1.0 - query_->alpha) * ContentScore(item);
  }

  /// Social component in [0, 1].
  double SocialScore(ItemId item) const;

  /// Content component in [0, 1] (see class comment for mode semantics).
  double ContentScore(ItemId item) const;

  /// Number of query tags the item carries.
  size_t MatchedTags(ItemId item) const;

  /// Mode-level eligibility: under kAll, items missing any query tag are
  /// excluded outright; under kAny every item is eligible.
  bool Eligible(ItemId item) const;

 private:
  ItemStoreView store_;
  const ProximityVector* proximity_;
  const SocialQuery* query_;
};

}  // namespace amici

#endif  // AMICI_CORE_SCORER_H_
