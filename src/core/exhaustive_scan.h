#ifndef AMICI_CORE_EXHAUSTIVE_SCAN_H_
#define AMICI_CORE_EXHAUSTIVE_SCAN_H_

#include <string_view>
#include <vector>

#include "core/search_algorithm.h"

namespace amici {

/// The naive baseline: score every item in the catalogue and keep the k
/// best. O(catalogue) per query regardless of k or alpha. It is also the
/// correctness oracle every other algorithm is tested against.
class ExhaustiveScan final : public SearchAlgorithm {
 public:
  ExhaustiveScan() = default;

  std::string_view name() const override { return "exhaustive"; }

  Result<std::vector<ScoredItem>> Search(const QueryContext& ctx,
                                         SearchStats* stats) const override;
};

}  // namespace amici

#endif  // AMICI_CORE_EXHAUSTIVE_SCAN_H_
