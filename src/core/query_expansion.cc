#include "core/query_expansion.h"

#include <algorithm>
#include <unordered_map>

namespace amici {
namespace {

bool IsSeed(std::span<const TagId> seeds, TagId tag) {
  return std::binary_search(seeds.begin(), seeds.end(), tag);
}

}  // namespace

Result<std::vector<TagSuggestion>> SuggestQueryTags(
    ItemStoreView store, const SocialIndex& social,
    const ProximityVector& proximity, UserId user,
    std::span<const TagId> seed_tags, const QueryExpansionOptions& options) {
  if (seed_tags.empty()) {
    return Status::InvalidArgument("query expansion needs seed tags");
  }
  if (!std::is_sorted(seed_tags.begin(), seed_tags.end()) ||
      std::adjacent_find(seed_tags.begin(), seed_tags.end()) !=
          seed_tags.end()) {
    return Status::InvalidArgument("seed tags must be sorted and unique");
  }
  if (options.max_suggestions == 0) {
    return Status::InvalidArgument("max_suggestions must be >= 1");
  }
  if (user >= social.num_users()) {
    return Status::InvalidArgument("user outside the social index");
  }

  struct Evidence {
    double weight = 0.0;
    uint32_t cooccurrences = 0;
  };
  std::unordered_map<TagId, Evidence> evidence;

  auto harvest = [&](UserId owner, double owner_weight) {
    for (const ScoredItem& entry : social.ItemsOf(owner)) {
      const auto tags = store.tags(entry.item);
      bool has_seed = false;
      for (const TagId tag : tags) {
        if (IsSeed(seed_tags, tag)) {
          has_seed = true;
          break;
        }
      }
      if (!has_seed) continue;
      for (const TagId tag : tags) {
        if (IsSeed(seed_tags, tag)) continue;
        Evidence& e = evidence[tag];
        e.weight += owner_weight;
        ++e.cooccurrences;
      }
    }
  };

  harvest(user, 1.0);
  size_t users_used = 1;
  for (const ProximityEntry& entry : proximity.ranked()) {
    if (users_used >= options.max_users) break;
    if (entry.user == user) continue;
    harvest(entry.user, static_cast<double>(entry.score));
    ++users_used;
  }

  std::vector<TagSuggestion> suggestions;
  suggestions.reserve(evidence.size());
  for (const auto& [tag, e] : evidence) {
    if (e.cooccurrences < options.min_cooccurrence) continue;
    suggestions.push_back({tag, static_cast<float>(e.weight), e.cooccurrences});
  }
  std::sort(suggestions.begin(), suggestions.end(),
            [](const TagSuggestion& a, const TagSuggestion& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.tag < b.tag;
            });
  if (suggestions.size() > options.max_suggestions) {
    suggestions.resize(options.max_suggestions);
  }
  return suggestions;
}

}  // namespace amici
