#ifndef AMICI_CORE_TA_SOURCES_H_
#define AMICI_CORE_TA_SOURCES_H_

#include <span>
#include <vector>

#include "index/social_index.h"
#include "proximity/proximity_model.h"
#include "storage/posting_list.h"
#include "topk/threshold_algorithm.h"
#include "util/ids.h"

namespace amici {

/// Sorted-access adapter over one impact-ordered posting list. The partial
/// score of an entry is weight * quality — i.e. the per-tag contribution
/// (1 - alpha) / |query tags| * quality to the blended score.
///
/// Entries with id >= horizon (un-indexed tail items) are skipped so the
/// stream matches the algorithm contract.
class ImpactListSource final : public SortedSource {
 public:
  ImpactListSource(std::span<const ScoredItem> entries, double weight,
                   ItemId horizon)
      : entries_(entries), weight_(weight), horizon_(horizon) {
    SkipInvisible();
  }

  bool Valid() const override { return pos_ < entries_.size(); }

  ScoredItem Current() const override {
    return {entries_[pos_].item,
            static_cast<float>(weight_ * entries_[pos_].score)};
  }

  void Next() override {
    ++pos_;
    SkipInvisible();
  }

 private:
  void SkipInvisible() {
    while (pos_ < entries_.size() && entries_[pos_].item >= horizon_) ++pos_;
  }

  std::span<const ScoredItem> entries_;
  double weight_;
  ItemId horizon_;
  size_t pos_ = 0;
};

/// Sorted-access adapter over the social dimension: emits the querying
/// user's own items first (proximity 1.0), then every proximate user's
/// items in decreasing proximity order. The partial score of an item is
/// weight * proximity(owner) — the alpha * social contribution. Within one
/// owner the partial is constant, so the stream is globally non-increasing.
class SocialStreamSource final : public SortedSource {
 public:
  /// `weight` is the query's alpha. Pass weight 0 to create an immediately
  /// useless (but valid) stream — callers usually skip building it instead.
  SocialStreamSource(const ProximityVector* proximity,
                     const SocialIndex* social, UserId self, double weight,
                     ItemId horizon)
      : proximity_(proximity),
        social_(social),
        self_(self),
        weight_(weight),
        horizon_(horizon) {
    AdvanceToNextItem();
  }

  bool Valid() const override { return current_owner_valid_; }

  ScoredItem Current() const override {
    const auto items = social_->ItemsOf(CurrentOwner());
    return {items[item_pos_].item,
            static_cast<float>(weight_ * CurrentProximity())};
  }

  void Next() override {
    ++item_pos_;
    AdvanceToNextItem();
  }

 private:
  /// rank_ == -1 addresses the querying user; rank_ >= 0 indexes the
  /// proximity vector.
  UserId CurrentOwner() const {
    return rank_ < 0 ? self_
                     : proximity_->ranked()[static_cast<size_t>(rank_)].user;
  }

  double CurrentProximity() const {
    return rank_ < 0
               ? 1.0
               : static_cast<double>(
                     proximity_->ranked()[static_cast<size_t>(rank_)].score);
  }

  /// Establishes the invariant: either current (rank_, item_pos_) points at
  /// a visible item, or the stream is exhausted.
  void AdvanceToNextItem() {
    while (true) {
      const size_t num_ranked = proximity_->ranked().size();
      if (rank_ >= static_cast<ptrdiff_t>(num_ranked)) {
        current_owner_valid_ = false;
        return;
      }
      const UserId owner = CurrentOwner();
      // The self row may also appear in the proximity vector of some
      // models; skip it the second time to avoid duplicate emission.
      if (rank_ >= 0 && owner == self_) {
        ++rank_;
        item_pos_ = 0;
        continue;
      }
      const auto items = social_->ItemsOf(owner);
      while (item_pos_ < items.size() && items[item_pos_].item >= horizon_) {
        ++item_pos_;
      }
      if (item_pos_ < items.size()) {
        current_owner_valid_ = true;
        return;
      }
      ++rank_;
      item_pos_ = 0;
    }
  }

  const ProximityVector* proximity_;
  const SocialIndex* social_;
  UserId self_;
  double weight_;
  ItemId horizon_;
  ptrdiff_t rank_ = -1;
  size_t item_pos_ = 0;
  bool current_owner_valid_ = false;
};

}  // namespace amici

#endif  // AMICI_CORE_TA_SOURCES_H_
