#include "core/merge_scan.h"

#include <algorithm>
#include <unordered_set>

#include "core/scorer.h"
#include "storage/posting_list.h"
#include "topk/topk_heap.h"

namespace amici {
namespace {

void FlushTraversalCounters(const PostingList::Iterator& it,
                            SearchStats* stats) {
  stats->aggregation.blocks_decoded += it.blocks_decoded();
  stats->aggregation.blocks_skipped += it.blocks_skipped();
}

/// kAll: leapfrog intersection over doc-ordered lists; SeekGeq exploits
/// skip pointers and block-max pruning discards driver blocks that
/// cannot beat the current top-k floor. Lists are visited smallest-first
/// so the rarest tag drives the probes.
void IntersectAndScore(const QueryContext& ctx, const Scorer& scorer,
                       TopKHeap* heap, SearchStats* stats) {
  const SocialQuery& query = *ctx.query;
  const double alpha = query.alpha;
  const double content_weight = 1.0 - alpha;
  CancellationTicker ticker(ctx.cancel);
  std::vector<PostingList::Iterator> iters;
  iters.reserve(query.tags.size());
  std::vector<size_t> order(query.tags.size());
  for (size_t i = 0; i < query.tags.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return ctx.inverted->DocumentFrequency(query.tags[a]) <
           ctx.inverted->DocumentFrequency(query.tags[b]);
  });
  bool some_tag_empty = false;
  for (const size_t i : order) {
    iters.push_back(ctx.inverted->Postings(query.tags[i]).NewIterator());
    if (!iters.back().Valid()) some_tag_empty = true;
  }

  const auto leapfrog = [&]() {
    while (true) {
      if (ticker.Check()) {
        stats->truncated = true;
        return;
      }
      // Block-max prune on the driver list. An intersection result in a
      // driver block scores at most alpha * 1 + (1 - alpha) * block
      // quality bound, so blocks whose bound stays strictly below the
      // floor (minus slack — see kBlockMaxPruneSlack) hold no winner.
      if (content_weight > 0.0 && heap->full()) {
        const double quality_needed =
            (heap->KthScore() - kBlockMaxPruneSlack - alpha) / content_weight;
        if (!iters[0].SkipToBlockWithBoundAbove(quality_needed)) return;
      }
      // Propose the current doc of the rarest list; ask every other list
      // to catch up. Restart whenever someone overshoots.
      const ItemId candidate = iters[0].Doc();
      bool agreed = true;
      for (size_t i = 1; i < iters.size(); ++i) {
        iters[i].SeekGeq(candidate);
        if (!iters[i].Valid()) return;
        if (iters[i].Doc() != candidate) {
          iters[0].SeekGeq(iters[i].Doc());
          if (!iters[0].Valid()) return;
          agreed = false;
          break;
        }
      }
      if (!agreed) continue;

      ++stats->items_considered;
      if (candidate < ctx.index_horizon &&
          (ctx.filter == nullptr || ctx.filter(candidate))) {
        const double score = scorer.Score(candidate);
        if (score > 0.0) heap->Push(candidate, score);
      }
      iters[0].Next();
      if (!iters[0].Valid()) return;
    }
  };
  if (!some_tag_empty) leapfrog();
  for (const auto& it : iters) FlushTraversalCounters(it, stats);
}

/// kAny: union of the tag lists plus social candidates.
void UnionAndScore(const QueryContext& ctx, const Scorer& scorer,
                   TopKHeap* heap, SearchStats* stats) {
  const SocialQuery& query = *ctx.query;
  const double content_weight = 1.0 - query.alpha;
  std::unordered_set<ItemId> seen;
  CancellationTicker ticker(ctx.cancel);

  auto consider = [&](ItemId item) {
    if (ticker.Check()) {
      stats->truncated = true;
      return false;
    }
    if (item >= ctx.index_horizon) return true;
    if (!seen.insert(item).second) return true;
    ++stats->items_considered;
    if (ctx.filter != nullptr && !ctx.filter(item)) return true;
    const double score = scorer.Score(item);
    if (score > 0.0) heap->Push(item, score);
    return true;
  };

  // Social candidates first — the querying user's own items, then every
  // user with positive proximity. Running them before the tag sweeps
  // both fills the heap early (so the sweeps prune against a real floor)
  // and establishes the exactness invariant of the prune below: every
  // item with a positive social term has been considered already, so an
  // item first met in a pruned tag block scores at most
  // (1 - alpha) * block quality bound < floor.
  for (const ScoredItem& own : ctx.social->ItemsOf(query.user)) {
    if (!consider(own.item)) return;
  }
  for (const ProximityEntry& entry : ctx.proximity->ranked()) {
    if (entry.user == query.user) continue;
    for (const ScoredItem& item : ctx.social->ItemsOf(entry.user)) {
      if (!consider(item.item)) return;
    }
  }

  for (const TagId tag : query.tags) {
    auto it = ctx.inverted->Postings(tag).NewIterator();
    bool cancelled = false;
    while (it.Valid()) {
      if (content_weight > 0.0 && heap->full()) {
        const double quality_needed =
            (heap->KthScore() - kBlockMaxPruneSlack) / content_weight;
        if (!it.SkipToBlockWithBoundAbove(quality_needed)) break;
      }
      if (!consider(it.Doc())) {
        cancelled = true;
        break;
      }
      it.Next();
    }
    FlushTraversalCounters(it, stats);
    if (cancelled) return;
  }
}

}  // namespace

Result<std::vector<ScoredItem>> MergeScan::Search(const QueryContext& ctx,
                                                  SearchStats* stats) const {
  const SocialQuery& query = *ctx.query;
  Scorer scorer(ctx.store, ctx.proximity, &query);
  TopKHeap heap(query.k);
  SearchStats local;

  // A tag-less query (pure-social, alpha == 1.0) has nothing to
  // intersect: every item is trivially eligible and only the social score
  // is positive, so the social-candidate enumeration in UnionAndScore
  // covers exactly the positive-score corpus.
  if (query.mode == MatchMode::kAll && !query.tags.empty()) {
    IntersectAndScore(ctx, scorer, &heap, &local);
  } else {
    UnionAndScore(ctx, scorer, &heap, &local);
  }
  if (stats != nullptr) *stats = local;
  return heap.TakeSorted();
}

}  // namespace amici
