#include "core/merge_scan.h"

#include <algorithm>
#include <unordered_set>

#include "core/scorer.h"
#include "storage/posting_list.h"
#include "topk/topk_heap.h"

namespace amici {
namespace {

/// kAll: leapfrog intersection over doc-ordered lists; SeekGeq exploits
/// skip pointers. Lists are visited smallest-first so the rarest tag
/// drives the probes.
void IntersectAndScore(const QueryContext& ctx, const Scorer& scorer,
                       TopKHeap* heap, SearchStats* stats) {
  const SocialQuery& query = *ctx.query;
  std::vector<PostingList::Iterator> iters;
  iters.reserve(query.tags.size());
  std::vector<size_t> order(query.tags.size());
  for (size_t i = 0; i < query.tags.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return ctx.inverted->DocumentFrequency(query.tags[a]) <
           ctx.inverted->DocumentFrequency(query.tags[b]);
  });
  for (const size_t i : order) {
    iters.push_back(ctx.inverted->Postings(query.tags[i]).NewIterator());
    if (!iters.back().Valid()) return;  // some tag matches nothing
  }

  while (true) {
    // Propose the current doc of the rarest list; ask every other list to
    // catch up. Restart whenever someone overshoots.
    ItemId candidate = iters[0].Doc();
    bool agreed = true;
    for (size_t i = 1; i < iters.size(); ++i) {
      iters[i].SeekGeq(candidate);
      if (!iters[i].Valid()) return;
      if (iters[i].Doc() != candidate) {
        iters[0].SeekGeq(iters[i].Doc());
        if (!iters[0].Valid()) return;
        agreed = false;
        break;
      }
    }
    if (!agreed) continue;

    ++stats->items_considered;
    if (candidate < ctx.index_horizon &&
        (ctx.filter == nullptr || ctx.filter(candidate))) {
      const double score = scorer.Score(candidate);
      if (score > 0.0) heap->Push(candidate, score);
    }
    iters[0].Next();
    if (!iters[0].Valid()) return;
  }
}

/// kAny: union of the tag lists plus social candidates.
void UnionAndScore(const QueryContext& ctx, const Scorer& scorer,
                   TopKHeap* heap, SearchStats* stats) {
  const SocialQuery& query = *ctx.query;
  std::unordered_set<ItemId> seen;

  auto consider = [&](ItemId item) {
    if (item >= ctx.index_horizon) return;
    if (!seen.insert(item).second) return;
    ++stats->items_considered;
    if (ctx.filter != nullptr && !ctx.filter(item)) return;
    const double score = scorer.Score(item);
    if (score > 0.0) heap->Push(item, score);
  };

  for (const TagId tag : query.tags) {
    for (auto it = ctx.inverted->Postings(tag).NewIterator(); it.Valid();
         it.Next()) {
      consider(it.Doc());
    }
  }
  // Social candidates: the querying user's own items, then every user with
  // positive proximity.
  for (const ScoredItem& own : ctx.social->ItemsOf(query.user)) {
    consider(own.item);
  }
  for (const ProximityEntry& entry : ctx.proximity->ranked()) {
    if (entry.user == query.user) continue;
    for (const ScoredItem& item : ctx.social->ItemsOf(entry.user)) {
      consider(item.item);
    }
  }
}

}  // namespace

Result<std::vector<ScoredItem>> MergeScan::Search(const QueryContext& ctx,
                                                  SearchStats* stats) const {
  const SocialQuery& query = *ctx.query;
  Scorer scorer(ctx.store, ctx.proximity, &query);
  TopKHeap heap(query.k);
  SearchStats local;

  // A tag-less query (pure-social, alpha == 1.0) has nothing to
  // intersect: every item is trivially eligible and only the social score
  // is positive, so the social-candidate enumeration in UnionAndScore
  // covers exactly the positive-score corpus.
  if (query.mode == MatchMode::kAll && !query.tags.empty()) {
    IntersectAndScore(ctx, scorer, &heap, &local);
  } else {
    UnionAndScore(ctx, scorer, &heap, &local);
  }
  if (stats != nullptr) *stats = local;
  return heap.TakeSorted();
}

}  // namespace amici
