#ifndef AMICI_CORE_SOCIAL_QUERY_H_
#define AMICI_CORE_SOCIAL_QUERY_H_

#include <cstddef>
#include <vector>

#include "util/ids.h"
#include "util/status.h"

namespace amici {

/// How query tags combine.
enum class MatchMode {
  /// OR semantics: any matching tag contributes; content score scales with
  /// the fraction of query tags matched. Items matching no tag are still
  /// eligible through their social score.
  kAny,
  /// AND semantics: only items carrying *every* query tag are eligible
  /// (hard filter); content score is then the item quality.
  kAll,
};

/// A social top-k query: "as `user`, find the `k` best items about `tags`,
/// blending how relevant an item is with how close its owner is to me".
///
///   score(item) = alpha * social(user, owner)
///               + (1 - alpha) * content(tags, item)
///
/// alpha = 0 is classical content search; alpha = 1 ranks purely by
/// social proximity ("show me my friends' stuff").
struct SocialQuery {
  /// The querying user (the personalization anchor).
  UserId user = 0;
  /// Query tags; duplicates are rejected by ValidateQuery — use
  /// NormalizeQuery to sort & dedupe first. May be empty ONLY when
  /// alpha == 1.0: the tag-less pure-social feed ("show me my friends'
  /// stuff") ranks by proximity alone.
  std::vector<TagId> tags;
  /// Result size; >= 1.
  size_t k = 10;
  /// Social/content blend in [0, 1].
  double alpha = 0.5;
  /// Tag combination semantics.
  MatchMode mode = MatchMode::kAny;

  /// Optional geo restriction: only items within `radius_km` of
  /// (latitude, longitude) are eligible. Items without a geo position
  /// never pass the filter.
  bool has_geo_filter = false;
  float latitude = 0.0f;
  float longitude = 0.0f;
  float radius_km = 0.0f;
};

/// Sorts and deduplicates the tag list in place.
void NormalizeQuery(SocialQuery* query);

/// Validates `query` against a universe of `num_users` users: user in
/// range, k >= 1, alpha in [0, 1], tags sorted / unique (and non-empty
/// unless alpha == 1.0 — the pure-social feed), and a positive radius when
/// the geo filter is enabled.
Status ValidateQuery(const SocialQuery& query, size_t num_users);

}  // namespace amici

#endif  // AMICI_CORE_SOCIAL_QUERY_H_
