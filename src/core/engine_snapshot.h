#ifndef AMICI_CORE_ENGINE_SNAPSHOT_H_
#define AMICI_CORE_ENGINE_SNAPSHOT_H_

#include <cstdint>
#include <memory>

#include "geo/grid_index.h"
#include "graph/social_graph.h"
#include "index/index_builder.h"
#include "storage/item_store.h"
#include "util/ids.h"

namespace amici {

/// One immutable, atomically-published generation of the engine's
/// query-visible state (RCU-style read/write split):
///
///  * readers load the current snapshot once per query (a lock-free
///    shared_ptr load) and execute entirely against it — no lock is held
///    while the query runs, and the shared_ptr keeps every component
///    alive even if writers publish newer generations mid-query;
///  * writers never mutate a published snapshot. They prepare new state
///    (append to the item store's pointer-stable tail, rebuild the graph
///    or the indexes) and publish a fresh snapshot with a copy-on-write
///    pointer swap under the engine's writer mutex.
///
/// The heavy components are shared_ptrs, so publishing a new generation
/// that changes only one of them (e.g. the store bound after AddItem)
/// costs one small allocation plus refcount traffic.
struct EngineSnapshot {
  /// CSR friendship graph of this generation — PINNED from the engine's
  /// ProximityProvider (which owns the graph and publishes new
  /// generations on friendship edits). Engines sharing one provider
  /// share this pointer: N shards, one graph instance.
  std::shared_ptr<const SocialGraph> graph;
  /// Inverted + social indexes covering items [0, index_horizon).
  std::shared_ptr<const BuiltIndexes> indexes;
  /// Geo grid over the indexed items; null when none of them carry a geo
  /// position.
  std::shared_ptr<const GridIndex> grid;
  /// Bounded read view: the catalogue prefix this generation exposes.
  /// Items in [index_horizon, store.num_items()) form the un-indexed tail
  /// that queries scan exhaustively. NOTE: the view points into the
  /// engine-owned catalogue — the engine must outlive pinned snapshots.
  ItemStoreView store;
  /// First item id NOT covered by `indexes`.
  ItemId index_horizon = 0;
  /// Monotonic generation counter of `graph` (the ProximityProvider's
  /// generation number); keys the shared proximity cache so vectors
  /// computed against an older graph can never serve (or poison) queries
  /// running against a newer one.
  uint64_t graph_version = 0;

  size_t unindexed_items() const { return store.num_items() - index_horizon; }

  /// True when the indexed items include geo positions (enables the
  /// kGeoGrid strategy). Derived from `grid`, which is built exactly when
  /// geo items exist, so the two can never desynchronize.
  bool has_geo_items() const { return grid != nullptr; }
};

}  // namespace amici

#endif  // AMICI_CORE_ENGINE_SNAPSHOT_H_
