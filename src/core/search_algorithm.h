#ifndef AMICI_CORE_SEARCH_ALGORITHM_H_
#define AMICI_CORE_SEARCH_ALGORITHM_H_

#include <functional>
#include <string_view>
#include <vector>

#include "core/social_query.h"
#include "graph/social_graph.h"
#include "index/inverted_index.h"
#include "index/social_index.h"
#include "proximity/proximity_model.h"
#include "storage/item_store.h"
#include "storage/posting_list.h"
#include "topk/threshold_algorithm.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace amici {

class GridIndex;

/// Everything a query algorithm may touch, assembled by the engine per
/// query from one immutable EngineSnapshot. All pointers outlive the call;
/// `store` is a bounded read view (a consistent catalogue prefix even
/// while ingest runs); `proximity` is the (cached) vector for
/// query->user; `filter`, when set, restricts the eligible corpus (geo
/// restriction and/or AND-mode tag matching).
struct QueryContext {
  const SocialGraph* graph = nullptr;
  ItemStoreView store;
  const InvertedIndex* inverted = nullptr;
  const SocialIndex* social = nullptr;
  /// Grid over the indexed items; null when the snapshot has none.
  const GridIndex* grid = nullptr;
  const ProximityVector* proximity = nullptr;
  const SocialQuery* query = nullptr;
  std::function<bool(ItemId)> filter;  // empty = accept everything
  /// Items with id >= index_horizon are not covered by the indexes (they
  /// arrived after the last compaction); the engine scores them separately.
  ItemId index_horizon = 0;
  /// Cooperative cancellation for this query; null = never cancels.
  /// Algorithms probe it per posting-list block / candidate batch (via
  /// CancellationTicker) and, once expired, return their best-effort
  /// partial with SearchStats::truncated set instead of an error.
  const CancellationToken* cancel = nullptr;
};

/// Work counters one query execution produces.
struct SearchStats {
  AggregationStats aggregation;
  /// Candidates examined outside the aggregation engine (scans/merges).
  uint64_t items_considered = 0;
  /// Un-indexed tail items the engine folded in exhaustively after the
  /// algorithm ran (a subset of items_considered) — the per-query cost of
  /// ingest freshness, summed across shards in SearchResponse::stats.
  uint64_t tail_items_scanned = 0;
  /// Proximity-model computations this query caused (0 or 1 per engine;
  /// summed across shards in SearchResponse::stats, where a shared
  /// ProximityProvider keeps the sum at 1 per cache-missed user no matter
  /// the shard count).
  uint64_t proximity_computations = 0;
  /// Queries whose proximity vector came without computing: a shared-
  /// cache hit, or a join on a concurrent shard's in-flight computation.
  uint64_t proximity_cache_hits = 0;
  /// Compaction observability riding each response: the serving engine's
  /// CUMULATIVE compaction counters at response time (set by the engine
  /// after the algorithm ran, like the proximity counters above; summed
  /// across shards in SearchResponse::stats). The merge/rebuild split is
  /// the compaction-mode surface, items_merged/lists_touched the
  /// incremental-compaction cost surface (see EngineStats).
  uint64_t compactions_merge = 0;
  uint64_t compactions_rebuild = 0;
  uint64_t compaction_items_merged = 0;
  uint64_t compaction_lists_touched = 0;
  /// True when cancellation (deadline or external cancel) stopped the
  /// query before it examined every eligible candidate: the results are a
  /// best-effort partial, not the exact top-k. OR-merged across shards.
  bool truncated = false;
};

/// A top-k retrieval strategy. Implementations must be stateless and
/// thread-safe: all per-query state lives on the stack of Search().
///
/// Contract: returns the exact top-k (score-descending; ties on score may
/// order arbitrarily) of the *eligible* items with id < index_horizon,
/// where eligible means passing ctx.filter. Scores must equal
/// Scorer::Score bit-for-bit. Items with zero blended score are never
/// returned — the result may therefore hold fewer than k entries when the
/// corpus has fewer than k positive-score matches.
///
/// When ctx.cancel expires mid-run the exactness contract is relaxed:
/// the algorithm stops promptly (within one posting-list block / candidate
/// batch), sets stats->truncated, and returns the best-effort top-k of the
/// candidates it DID score — every returned score still equals
/// Scorer::Score bit-for-bit. A token that never expires must leave
/// results bit-identical to a null token.
class SearchAlgorithm {
 public:
  virtual ~SearchAlgorithm() = default;

  /// Stable identifier used in benches and engine stats.
  virtual std::string_view name() const = 0;

  /// Executes the query described by `ctx`.
  virtual Result<std::vector<ScoredItem>> Search(const QueryContext& ctx,
                                                 SearchStats* stats) const = 0;
};

}  // namespace amici

#endif  // AMICI_CORE_SEARCH_ALGORITHM_H_
