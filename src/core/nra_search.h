#ifndef AMICI_CORE_NRA_SEARCH_H_
#define AMICI_CORE_NRA_SEARCH_H_

#include <string_view>
#include <vector>

#include "core/search_algorithm.h"

namespace amici {

/// No-Random-Access execution + exact rescore: runs Fagin's NRA over the
/// same blended sources as the TA family to determine top-k *membership*
/// without probing the store during aggregation, then rescores the k
/// members exactly. The classical alternative when random accesses are
/// expensive (e.g. the store is remote); here it serves as the comparison
/// operator the literature always includes.
///
/// Filtering (geo circles, AND-mode tag matching) is applied at the
/// source level: entries failing the predicate never enter the
/// aggregation, so exactness holds w.r.t. the filtered corpus.
class NraSearch final : public SearchAlgorithm {
 public:
  NraSearch() = default;

  std::string_view name() const override { return "nra"; }

  Result<std::vector<ScoredItem>> Search(const QueryContext& ctx,
                                         SearchStats* stats) const override;
};

}  // namespace amici

#endif  // AMICI_CORE_NRA_SEARCH_H_
