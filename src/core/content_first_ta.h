#ifndef AMICI_CORE_CONTENT_FIRST_TA_H_
#define AMICI_CORE_CONTENT_FIRST_TA_H_

#include <string_view>
#include <vector>

#include "core/search_algorithm.h"

namespace amici {

/// Threshold Algorithm biased towards the content dimension: sorted access
/// drains the impact-ordered tag lists aggressively and touches the social
/// stream only occasionally. Exact for every alpha, but its early
/// termination bites fastest when alpha is small (content dominates the
/// blended score), degrading as alpha -> 1 — the left side of the Fig 4
/// crossover.
class ContentFirstTa final : public SearchAlgorithm {
 public:
  ContentFirstTa() = default;

  std::string_view name() const override { return "content-first"; }

  Result<std::vector<ScoredItem>> Search(const QueryContext& ctx,
                                         SearchStats* stats) const override;
};

}  // namespace amici

#endif  // AMICI_CORE_CONTENT_FIRST_TA_H_
