#include "core/content_first_ta.h"

#include "core/ta_runner.h"

namespace amici {

Result<std::vector<ScoredItem>> ContentFirstTa::Search(
    const QueryContext& ctx, SearchStats* stats) const {
  return RunBlendedTa(ctx, PullBias::kContent, stats);
}

}  // namespace amici
