#include "core/engine_stats.h"

#include <algorithm>

#include "util/string_util.h"
#include "util/table_printer.h"

namespace amici {

void EngineStats::RecordQuery(std::string_view algorithm, double elapsed_ms,
                              const SearchStats& stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = per_algorithm_.find(algorithm);
  if (it == per_algorithm_.end()) {
    it = per_algorithm_.emplace(std::string(algorithm), PerAlgorithm{}).first;
  }
  PerAlgorithm& agg = it->second;
  agg.latency_ms.Add(elapsed_ms);
  agg.sorted_accesses += stats.aggregation.sorted_accesses;
  agg.random_accesses += stats.aggregation.random_accesses;
  agg.items_considered += stats.items_considered;
  agg.blocks_decoded += stats.aggregation.blocks_decoded;
  agg.blocks_skipped += stats.aggregation.blocks_skipped;
}

void EngineStats::RecordTailScan(uint64_t tail_items, double elapsed_ms) {
  // One packed store: readers pair (items, latency), so the two must
  // never tear (see the header's field comment). Both halves saturate.
  const uint64_t items =
      std::min<uint64_t>(tail_items, 0xFFFFFFFFull);
  const uint64_t micros = std::min<uint64_t>(
      static_cast<uint64_t>(std::max(elapsed_ms, 0.0) * 1000.0 + 0.5),
      0xFFFFFFFFull);
  last_tail_scan_.store((items << 32) | micros, std::memory_order_relaxed);
}

void EngineStats::NoteCompaction(const CompactionOutcome& outcome) {
  compactions_.fetch_add(1, std::memory_order_relaxed);
  if (outcome.merged) {
    merge_compactions_.fetch_add(1, std::memory_order_relaxed);
  }
  items_merged_.fetch_add(outcome.items_merged, std::memory_order_relaxed);
  lists_touched_.fetch_add(outcome.lists_touched, std::memory_order_relaxed);
  last_items_merged_.store(outcome.items_merged, std::memory_order_relaxed);
  last_lists_touched_.store(outcome.lists_touched,
                            std::memory_order_relaxed);
  last_mode_.store(outcome.merged ? 2 : 1, std::memory_order_relaxed);
  last_compaction_ms_.store(outcome.elapsed_ms, std::memory_order_relaxed);
  // The observation below described the tail this compaction folded
  // away; leaving it standing would re-trigger the policy against a
  // tail that no longer exists.
  last_tail_scan_.store(0, std::memory_order_relaxed);
}

std::string_view EngineStats::last_compaction_mode() const {
  switch (last_mode_.load(std::memory_order_relaxed)) {
    case 1:
      return "rebuild";
    case 2:
      return "merge";
    default:
      return "none";
  }
}

uint64_t EngineStats::total_queries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& [name, agg] : per_algorithm_) {
    total += agg.latency_ms.count();
  }
  return total;
}

uint64_t EngineStats::QueriesFor(std::string_view algorithm) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = per_algorithm_.find(algorithm);
  return it == per_algorithm_.end() ? 0 : it->second.latency_ms.count();
}

double EngineStats::MeanLatencyMsFor(std::string_view algorithm) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = per_algorithm_.find(algorithm);
  return it == per_algorithm_.end() ? 0.0 : it->second.latency_ms.mean();
}

std::string EngineStats::ToString() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TablePrinter table({"algorithm", "queries", "mean ms", "max ms",
                      "sorted acc", "random acc", "items scanned",
                      "blk dec", "blk skip"});
  for (const auto& [name, agg] : per_algorithm_) {
    table.AddRow({name, std::to_string(agg.latency_ms.count()),
                  StringPrintf("%.3f", agg.latency_ms.mean()),
                  StringPrintf("%.3f", agg.latency_ms.max()),
                  std::to_string(agg.sorted_accesses),
                  std::to_string(agg.random_accesses),
                  std::to_string(agg.items_considered),
                  std::to_string(agg.blocks_decoded),
                  std::to_string(agg.blocks_skipped)});
  }
  std::string summary = table.ToString();
  summary += StringPrintf(
      "compactions: %llu (%llu merge / %llu rebuild, last %s %.3f ms); "
      "items merged: %llu; lists touched: %llu; last tail scan: %llu items "
      "/ %.3f ms\n",
      static_cast<unsigned long long>(compactions()),
      static_cast<unsigned long long>(merge_compactions()),
      static_cast<unsigned long long>(rebuild_compactions()),
      std::string(last_compaction_mode()).c_str(), last_compaction_ms(),
      static_cast<unsigned long long>(compaction_items_merged()),
      static_cast<unsigned long long>(compaction_lists_touched()),
      static_cast<unsigned long long>(last_tail_items()),
      last_tail_scan_ms());
  return summary;
}

void EngineStats::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  per_algorithm_.clear();
  last_tail_scan_.store(0, std::memory_order_relaxed);
  compactions_.store(0, std::memory_order_relaxed);
  merge_compactions_.store(0, std::memory_order_relaxed);
  items_merged_.store(0, std::memory_order_relaxed);
  lists_touched_.store(0, std::memory_order_relaxed);
  last_items_merged_.store(0, std::memory_order_relaxed);
  last_lists_touched_.store(0, std::memory_order_relaxed);
  last_mode_.store(0, std::memory_order_relaxed);
  last_compaction_ms_.store(0.0, std::memory_order_relaxed);
}

}  // namespace amici
