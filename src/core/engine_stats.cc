#include "core/engine_stats.h"

#include "util/string_util.h"
#include "util/table_printer.h"

namespace amici {

void EngineStats::RecordQuery(std::string_view algorithm, double elapsed_ms,
                              const SearchStats& stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = per_algorithm_.find(algorithm);
  if (it == per_algorithm_.end()) {
    it = per_algorithm_.emplace(std::string(algorithm), PerAlgorithm{}).first;
  }
  PerAlgorithm& agg = it->second;
  agg.latency_ms.Add(elapsed_ms);
  agg.sorted_accesses += stats.aggregation.sorted_accesses;
  agg.random_accesses += stats.aggregation.random_accesses;
  agg.items_considered += stats.items_considered;
}

uint64_t EngineStats::total_queries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& [name, agg] : per_algorithm_) {
    total += agg.latency_ms.count();
  }
  return total;
}

uint64_t EngineStats::QueriesFor(std::string_view algorithm) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = per_algorithm_.find(algorithm);
  return it == per_algorithm_.end() ? 0 : it->second.latency_ms.count();
}

double EngineStats::MeanLatencyMsFor(std::string_view algorithm) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = per_algorithm_.find(algorithm);
  return it == per_algorithm_.end() ? 0.0 : it->second.latency_ms.mean();
}

std::string EngineStats::ToString() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TablePrinter table({"algorithm", "queries", "mean ms", "max ms",
                      "sorted acc", "random acc", "items scanned"});
  for (const auto& [name, agg] : per_algorithm_) {
    table.AddRow({name, std::to_string(agg.latency_ms.count()),
                  StringPrintf("%.3f", agg.latency_ms.mean()),
                  StringPrintf("%.3f", agg.latency_ms.max()),
                  std::to_string(agg.sorted_accesses),
                  std::to_string(agg.random_accesses),
                  std::to_string(agg.items_considered)});
  }
  return table.ToString();
}

void EngineStats::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  per_algorithm_.clear();
}

}  // namespace amici
