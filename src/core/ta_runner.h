#ifndef AMICI_CORE_TA_RUNNER_H_
#define AMICI_CORE_TA_RUNNER_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/search_algorithm.h"
#include "storage/posting_list.h"
#include "topk/threshold_algorithm.h"
#include "util/status.h"

namespace amici {

/// Which class of sources a pull policy should favour.
enum class PullBias {
  kContent,   // ContentFirst: drain tag lists, touch the social stream rarely
  kSocial,    // SocialFirst: drain the social stream, touch tag lists rarely
  kAdaptive,  // Hybrid: greedy max-bound pulls
};

/// The sorted sources of one blended query: per-tag impact-ordered lists
/// (weight (1-alpha)/|tags|) followed by the social stream (weight alpha).
/// Zero-weight sources are omitted.
struct BlendedSources {
  std::vector<std::unique_ptr<SortedSource>> owned;
  /// Parallel to `owned`: true for tag-list sources.
  std::vector<bool> is_content;
};

/// Assembles the sorted sources for `ctx`. Requires impact-ordered lists
/// when alpha < 1; returns FailedPrecondition otherwise.
Result<BlendedSources> BuildBlendedSources(const QueryContext& ctx);

/// The eligibility predicate of `ctx`: combines the engine filter with
/// kAll tag matching. May be empty (accept everything). `scorer` must
/// outlive the returned function.
std::function<bool(ItemId)> BuildEligibilityFilter(const QueryContext& ctx,
                                                   const class Scorer* scorer);

/// Shared implementation of the three blended TA algorithms. Assembles the
/// sources, combines eligibility filters, and runs the TA engine with a
/// policy matching `bias`.
///
/// Requires the inverted index to have impact-ordered lists materialized;
/// returns FailedPrecondition otherwise.
Result<std::vector<ScoredItem>> RunBlendedTa(const QueryContext& ctx,
                                             PullBias bias,
                                             SearchStats* stats);

}  // namespace amici

#endif  // AMICI_CORE_TA_RUNNER_H_
