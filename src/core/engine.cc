#include "core/engine.h"

#include <unordered_map>
#include <utility>

#include "core/content_first_ta.h"
#include "graph/graph_builder.h"
#include "core/exhaustive_scan.h"
#include "core/hybrid_adaptive.h"
#include "core/merge_scan.h"
#include "core/nra_search.h"
#include "core/scorer.h"
#include "core/social_first.h"
#include "geo/geo_point.h"
#include "geo/geo_social.h"
#include "proximity/ppr_forward_push.h"
#include "topk/topk_heap.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace amici {

std::string_view AlgorithmName(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kExhaustive:
      return "exhaustive";
    case AlgorithmId::kMergeScan:
      return "merge-scan";
    case AlgorithmId::kContentFirst:
      return "content-first";
    case AlgorithmId::kSocialFirst:
      return "social-first";
    case AlgorithmId::kHybrid:
      return "hybrid";
    case AlgorithmId::kGeoGrid:
      return "geo-grid";
    case AlgorithmId::kNra:
      return "nra";
  }
  return "unknown";
}

SocialSearchEngine::SocialSearchEngine(SocialGraph graph, ItemStore store,
                                       Options options)
    : graph_(std::move(graph)),
      store_(std::move(store)),
      options_(std::move(options)) {}

Result<std::unique_ptr<SocialSearchEngine>> SocialSearchEngine::Build(
    SocialGraph graph, ItemStore store, Options options) {
  if (options.proximity_model == nullptr) {
    options.proximity_model = std::make_shared<PprForwardPush>(
        /*restart_prob=*/0.15, /*epsilon=*/1e-4);
  }
  // Private constructor: cannot use make_unique.
  std::unique_ptr<SocialSearchEngine> engine(new SocialSearchEngine(
      std::move(graph), std::move(store), std::move(options)));

  AMICI_RETURN_IF_ERROR(engine->BuildIndexesInternal());

  engine->proximity_model_ = engine->options_.proximity_model;
  engine->proximity_cache_ = std::make_unique<ProximityCache>(
      engine->proximity_model_.get(),
      std::max<size_t>(1, engine->options_.proximity_cache_capacity));

  engine->algorithms_.resize(7);
  engine->algorithms_[static_cast<size_t>(AlgorithmId::kExhaustive)] =
      std::make_unique<ExhaustiveScan>();
  engine->algorithms_[static_cast<size_t>(AlgorithmId::kMergeScan)] =
      std::make_unique<MergeScan>();
  engine->algorithms_[static_cast<size_t>(AlgorithmId::kContentFirst)] =
      std::make_unique<ContentFirstTa>();
  engine->algorithms_[static_cast<size_t>(AlgorithmId::kSocialFirst)] =
      std::make_unique<SocialFirst>();
  engine->algorithms_[static_cast<size_t>(AlgorithmId::kHybrid)] =
      std::make_unique<HybridAdaptive>();
  engine->algorithms_[static_cast<size_t>(AlgorithmId::kGeoGrid)] =
      std::make_unique<GeoGridScan>(&engine->grid_);
  engine->algorithms_[static_cast<size_t>(AlgorithmId::kNra)] =
      std::make_unique<NraSearch>();
  return engine;
}

Status SocialSearchEngine::BuildIndexesInternal() {
  AMICI_ASSIGN_OR_RETURN(
      indexes_,
      BuildIndexes(store_, graph_.num_users(), options_.index_options));
  index_horizon_ = static_cast<ItemId>(store_.num_items());

  has_geo_items_ = false;
  for (size_t i = 0; i < store_.num_items(); ++i) {
    if (store_.has_geo(static_cast<ItemId>(i))) {
      has_geo_items_ = true;
      break;
    }
  }
  if (has_geo_items_) {
    grid_ = GridIndex::Build(store_, options_.geo_cell_size_deg);
  }
  return Status::Ok();
}

const SearchAlgorithm* SocialSearchEngine::AlgorithmFor(
    AlgorithmId id) const {
  const size_t index = static_cast<size_t>(id);
  AMICI_CHECK(index < algorithms_.size());
  return algorithms_[index].get();
}

Result<QueryResult> SocialSearchEngine::Query(const SocialQuery& query) {
  return Query(query, AlgorithmId::kHybrid);
}

Result<QueryResult> SocialSearchEngine::Query(const SocialQuery& query,
                                              AlgorithmId algorithm) {
  AMICI_RETURN_IF_ERROR(ValidateQuery(query, graph_.num_users()));
  if (algorithm == AlgorithmId::kGeoGrid && !has_geo_items_) {
    return Status::FailedPrecondition(
        "geo-grid requires geo-tagged items in the store");
  }

  Stopwatch watch;
  const std::shared_ptr<const ProximityVector> proximity =
      proximity_cache_->Get(graph_, query.user);

  QueryContext ctx;
  ctx.graph = &graph_;
  ctx.store = &store_;
  ctx.inverted = &indexes_.inverted;
  ctx.social = &indexes_.social;
  ctx.proximity = proximity.get();
  ctx.query = &query;
  ctx.index_horizon = index_horizon_;
  if (query.has_geo_filter) {
    const GeoPoint center{query.latitude, query.longitude};
    const ItemStore* store = &store_;
    const double radius = query.radius_km;
    ctx.filter = [store, center, radius](ItemId item) {
      if (!store->has_geo(item)) return false;
      const GeoPoint p{store->latitude(item), store->longitude(item)};
      return DistanceKm(center, p) <= radius;
    };
  }

  QueryResult result;
  result.algorithm = AlgorithmName(algorithm);
  AMICI_ASSIGN_OR_RETURN(result.items,
                         AlgorithmFor(algorithm)->Search(ctx, &result.stats));

  // Fold in the un-indexed tail: exhaustively score items the indexes do
  // not cover yet, merging with the algorithm's (exact) indexed top-k.
  if (index_horizon_ < store_.num_items()) {
    Scorer scorer(&store_, proximity.get(), &query);
    TopKHeap heap(query.k);
    for (const ScoredItem& item : result.items) {
      heap.Push(item.item, item.score);
    }
    for (ItemId item = index_horizon_;
         item < static_cast<ItemId>(store_.num_items()); ++item) {
      ++result.stats.items_considered;
      if (!scorer.Eligible(item)) continue;
      if (ctx.filter != nullptr && !ctx.filter(item)) continue;
      const double score = scorer.Score(item);
      if (score > 0.0) heap.Push(item, score);
    }
    result.items = heap.TakeSorted();
  }

  result.elapsed_ms = watch.ElapsedMillis();
  stats_.RecordQuery(result.algorithm, result.elapsed_ms, result.stats);
  return result;
}

Result<QueryResult> SocialSearchEngine::QueryDiverse(
    const SocialQuery& query, size_t max_per_owner, AlgorithmId algorithm) {
  if (max_per_owner == 0) {
    return Status::InvalidArgument("max_per_owner must be >= 1");
  }
  // Iterative deepening: greedy per-owner selection over the top-N is
  // exact as soon as it either fills k slots or exhausts the positive-
  // score corpus (N returned < N requested).
  SocialQuery fetch_query = query;
  size_t fetch_k = query.k;
  while (true) {
    fetch_query.k = fetch_k;
    AMICI_ASSIGN_OR_RETURN(QueryResult fetched,
                           Query(fetch_query, algorithm));
    std::unordered_map<UserId, size_t> taken;
    std::vector<ScoredItem> diverse;
    for (const ScoredItem& entry : fetched.items) {
      size_t& count = taken[store_.owner(entry.item)];
      if (count >= max_per_owner) continue;
      ++count;
      diverse.push_back(entry);
      if (diverse.size() == query.k) break;
    }
    const bool corpus_exhausted = fetched.items.size() < fetch_k;
    if (diverse.size() == query.k || corpus_exhausted) {
      fetched.items = std::move(diverse);
      return fetched;
    }
    fetch_k *= 2;
  }
}

std::vector<Result<QueryResult>> SocialSearchEngine::QueryBatch(
    std::span<const SocialQuery> queries, AlgorithmId algorithm,
    ThreadPool* pool) {
  std::vector<Result<QueryResult>> results(
      queries.size(), Status::Internal("batch slot never executed"));
  if (pool == nullptr) {
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i] = Query(queries[i], algorithm);
    }
    return results;
  }
  pool->ParallelFor(queries.size(), [&](size_t i) {
    results[i] = Query(queries[i], algorithm);
  });
  return results;
}

Result<std::vector<TagSuggestion>> SocialSearchEngine::SuggestTags(
    UserId user, std::span<const TagId> seed_tags,
    const QueryExpansionOptions& options) {
  if (user >= graph_.num_users()) {
    return Status::InvalidArgument("user outside the social graph");
  }
  const std::shared_ptr<const ProximityVector> proximity =
      proximity_cache_->Get(graph_, user);
  return SuggestQueryTags(store_, indexes_.social, *proximity, user,
                          seed_tags, options);
}

Result<ItemId> SocialSearchEngine::AddItem(const Item& item) {
  if (item.owner >= graph_.num_users()) {
    return Status::InvalidArgument("item owner outside the social graph");
  }
  return store_.Add(item);
}

namespace {

/// Rebuilds a CSR graph with one edge toggled. `insert` adds {u, v};
/// otherwise the edge is dropped.
SocialGraph RebuildWithEdge(const SocialGraph& graph, UserId u, UserId v,
                            bool insert) {
  GraphBuilder builder(graph.num_users());
  for (size_t a = 0; a < graph.num_users(); ++a) {
    for (const UserId b : graph.Friends(static_cast<UserId>(a))) {
      if (b <= a) continue;  // each undirected edge once
      if (!insert && ((a == u && b == v) || (a == v && b == u))) continue;
      AMICI_CHECK_OK(builder.AddEdge(static_cast<UserId>(a), b));
    }
  }
  if (insert) AMICI_CHECK_OK(builder.AddEdge(u, v));
  return builder.Build();
}

}  // namespace

Status SocialSearchEngine::AddFriendship(UserId u, UserId v) {
  if (u >= graph_.num_users() || v >= graph_.num_users()) {
    return Status::InvalidArgument("friendship endpoint outside the graph");
  }
  if (u == v) return Status::InvalidArgument("self-friendship is not a thing");
  if (graph_.HasEdge(u, v)) {
    return Status::AlreadyExists("friendship already present");
  }
  graph_ = RebuildWithEdge(graph_, u, v, /*insert=*/true);
  proximity_cache_->Clear();  // proximities are stale graph-wide
  return Status::Ok();
}

Status SocialSearchEngine::RemoveFriendship(UserId u, UserId v) {
  if (u >= graph_.num_users() || v >= graph_.num_users()) {
    return Status::InvalidArgument("friendship endpoint outside the graph");
  }
  if (!graph_.HasEdge(u, v)) {
    return Status::NotFound("no such friendship");
  }
  graph_ = RebuildWithEdge(graph_, u, v, /*insert=*/false);
  proximity_cache_->Clear();
  return Status::Ok();
}

Status SocialSearchEngine::Compact() {
  AMICI_RETURN_IF_ERROR(BuildIndexesInternal());
  AMICI_LOG(kInfo) << "compacted: indexes now cover " << index_horizon_
                   << " items";
  return Status::Ok();
}

}  // namespace amici
