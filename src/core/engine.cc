#include "core/engine.h"

#include <optional>
#include <unordered_map>
#include <utility>

#include "core/content_first_ta.h"
#include "core/exhaustive_scan.h"
#include "core/hybrid_adaptive.h"
#include "core/merge_scan.h"
#include "core/nra_search.h"
#include "core/scorer.h"
#include "core/social_first.h"
#include "geo/geo_point.h"
#include "geo/geo_social.h"
#include "persist/fs_util.h"
#include "proximity/shared_proximity_provider.h"
#include "proximity_service/proximity_router.h"
#include "topk/topk_heap.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace amici {

std::string_view AlgorithmName(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kExhaustive:
      return "exhaustive";
    case AlgorithmId::kMergeScan:
      return "merge-scan";
    case AlgorithmId::kContentFirst:
      return "content-first";
    case AlgorithmId::kSocialFirst:
      return "social-first";
    case AlgorithmId::kHybrid:
      return "hybrid";
    case AlgorithmId::kGeoGrid:
      return "geo-grid";
    case AlgorithmId::kNra:
      return "nra";
    case AlgorithmId::kNumAlgorithms:
      break;
  }
  return "unknown";
}

SocialSearchEngine::SocialSearchEngine(ItemStore store, Options options)
    : store_(std::move(store)), options_(std::move(options)) {}

std::shared_ptr<ProximityProvider> SocialSearchEngine::MakeProximityProvider(
    SocialGraph graph, const Options& options) {
  if (options.proximity_partitions > 1) {
    ProximityServiceRouter::Options router_options;
    router_options.num_partitions = options.proximity_partitions;
    router_options.model = options.proximity_model;
    router_options.cache_capacity =
        std::max<size_t>(1, options.proximity_cache_capacity);
    router_options.warm_top_n = options.proximity_warm_top_n;
    router_options.fold_policy = options.proximity_fold_policy;
    return std::make_shared<ProximityServiceRouter>(
        std::move(graph), std::move(router_options));
  }
  SharedProximityProvider::Options provider_options;
  provider_options.model = options.proximity_model;
  provider_options.cache_capacity =
      std::max<size_t>(1, options.proximity_cache_capacity);
  provider_options.warm_top_n = options.proximity_warm_top_n;
  provider_options.fold_policy = options.proximity_fold_policy;
  return std::make_shared<SharedProximityProvider>(
      std::move(graph), std::move(provider_options));
}

Result<std::unique_ptr<SocialSearchEngine>> SocialSearchEngine::Build(
    SocialGraph graph, ItemStore store, Options options) {
  if (options.proximity_provider != nullptr) {
    return Status::InvalidArgument(
        "a shared ProximityProvider already owns its graph; use "
        "Build(store, options) to consume it");
  }
  options.proximity_provider =
      MakeProximityProvider(std::move(graph), options);
  return Build(std::move(store), std::move(options));
}

Result<std::unique_ptr<SocialSearchEngine>> SocialSearchEngine::Build(
    ItemStore store, Options options) {
  if (options.proximity_provider == nullptr) {
    return Status::InvalidArgument(
        "options.proximity_provider is required (or use the "
        "Build(graph, store, options) overload)");
  }
  // Private constructor: cannot use make_unique.
  std::unique_ptr<SocialSearchEngine> engine(
      new SocialSearchEngine(std::move(store), std::move(options)));
  engine->proximity_ = engine->options_.proximity_provider;

  // Pin the provider's current generation into the initial snapshot.
  const ProximityProvider::GraphView view = engine->proximity_->Acquire();
  AMICI_ASSIGN_OR_RETURN(
      std::shared_ptr<const EngineSnapshot> initial,
      engine->BuildSnapshot(view.graph, view.generation,
                            ItemStoreView(engine->store_)));
  engine->snapshot_.store(std::move(initial));
  engine->RegisterAlgorithms();
  return engine;
}

void SocialSearchEngine::RegisterAlgorithms() {
  algorithms_.resize(kNumAlgorithms);
  algorithms_[static_cast<size_t>(AlgorithmId::kExhaustive)] =
      std::make_unique<ExhaustiveScan>();
  algorithms_[static_cast<size_t>(AlgorithmId::kMergeScan)] =
      std::make_unique<MergeScan>();
  algorithms_[static_cast<size_t>(AlgorithmId::kContentFirst)] =
      std::make_unique<ContentFirstTa>();
  algorithms_[static_cast<size_t>(AlgorithmId::kSocialFirst)] =
      std::make_unique<SocialFirst>();
  algorithms_[static_cast<size_t>(AlgorithmId::kHybrid)] =
      std::make_unique<HybridAdaptive>();
  algorithms_[static_cast<size_t>(AlgorithmId::kGeoGrid)] =
      std::make_unique<GeoGridScan>();
  algorithms_[static_cast<size_t>(AlgorithmId::kNra)] =
      std::make_unique<NraSearch>();
  for (const auto& algorithm : algorithms_) {
    AMICI_CHECK(algorithm != nullptr)
        << "algorithm table has a null slot; register every AlgorithmId";
  }
}

Result<std::unique_ptr<SocialSearchEngine>> SocialSearchEngine::OpenSnapshot(
    const std::string& dir, Options options,
    const persist::SnapshotOpenOptions& open_options) {
  AMICI_ASSIGN_OR_RETURN(persist::LoadedEngineState loaded,
                         persist::LoadEngineSnapshot(dir, open_options));
  return FromLoadedSnapshot(dir, std::move(loaded), std::move(options));
}

Result<std::unique_ptr<SocialSearchEngine>>
SocialSearchEngine::FromLoadedSnapshot(const std::string& dir,
                                       persist::LoadedEngineState loaded,
                                       Options options) {
  if (loaded.manifest.num_shards != 0) {
    return Status::InvalidArgument(
        dir + " holds a service snapshot (num_shards = " +
        std::to_string(loaded.manifest.num_shards) +
        "); open it through the service layer");
  }
  if (options.proximity_provider == nullptr) {
    if (loaded.graph == nullptr) {
      return Status::Corruption(
          dir + ": snapshot has no graph segment and no shared "
                "ProximityProvider was supplied");
    }
    options.proximity_provider =
        MakeProximityProvider(SocialGraph(*loaded.graph), options);
  }
  std::unique_ptr<SocialSearchEngine> engine(
      new SocialSearchEngine(std::move(loaded.store), std::move(options)));
  engine->proximity_ = engine->options_.proximity_provider;
  const ProximityProvider::GraphView view = engine->proximity_->Acquire();
  if (view.graph->num_users() != loaded.manifest.num_users) {
    return Status::Corruption(
        dir + ": provider graph covers " +
        std::to_string(view.graph->num_users()) +
        " users, manifest records " +
        std::to_string(loaded.manifest.num_users));
  }

  // Reassemble the published snapshot WITHOUT an index build: the
  // restored posting lists still view the mapped segment files.
  auto next = std::make_shared<EngineSnapshot>();
  BuiltIndexes built{
      InvertedIndex::Restore(std::move(loaded.doc_ordered),
                             std::move(loaded.impact_ordered),
                             loaded.manifest.has_impact_ordered != 0),
      SocialIndex::Restore(std::move(loaded.social_buckets)),
      IndexBuildStats{}};
  next->indexes = std::make_shared<const BuiltIndexes>(std::move(built));
  if (loaded.manifest.has_grid != 0) {
    // The grid views the ENGINE-owned store (for the exact geo
    // post-filter), so it must be restored after the store has moved
    // into place.
    next->grid = std::make_shared<const GridIndex>(GridIndex::Restore(
        loaded.manifest.grid_cell_size_deg, std::move(loaded.grid_cells),
        ItemStoreView(engine->store_)));
  }
  next->graph = view.graph;
  next->graph_version = view.generation;
  next->store = ItemStoreView(engine->store_);
  next->index_horizon = static_cast<ItemId>(loaded.manifest.index_horizon);
  engine->snapshot_.store(
      std::shared_ptr<const EngineSnapshot>(std::move(next)));
  engine->RegisterAlgorithms();
  // The segments on disk ARE this engine's state: a later SaveSnapshot
  // into the same directory may go incremental against them.
  engine->last_save_ = {dir, loaded.manifest.generation, view.generation};
  return engine;
}

Result<std::shared_ptr<const EngineSnapshot>>
SocialSearchEngine::BuildSnapshot(std::shared_ptr<const SocialGraph> graph,
                                  uint64_t graph_version,
                                  ItemStoreView view) const {
  auto next = std::make_shared<EngineSnapshot>();
  AMICI_ASSIGN_OR_RETURN(
      BuiltIndexes built,
      BuildIndexes(view, graph->num_users(), options_.index_options));
  next->indexes = std::make_shared<const BuiltIndexes>(std::move(built));
  next->index_horizon = static_cast<ItemId>(view.num_items());

  bool has_geo = false;
  for (size_t i = 0; i < view.num_items(); ++i) {
    if (view.has_geo(static_cast<ItemId>(i))) {
      has_geo = true;
      break;
    }
  }
  if (has_geo) {
    next->grid = std::make_shared<const GridIndex>(
        GridIndex::Build(view, options_.geo_cell_size_deg));
  }

  next->graph = std::move(graph);
  next->graph_version = graph_version;
  next->store = view;
  return std::shared_ptr<const EngineSnapshot>(std::move(next));
}

void SocialSearchEngine::PublishLocked(
    std::shared_ptr<const EngineSnapshot> next) {
  snapshot_.store(std::move(next));
}

const SearchAlgorithm* SocialSearchEngine::AlgorithmFor(
    AlgorithmId id) const {
  const size_t index = static_cast<size_t>(id);
  AMICI_CHECK(index < algorithms_.size());
  return algorithms_[index].get();
}

Result<QueryResult> SocialSearchEngine::Query(const SocialQuery& query) {
  return Query(query, AlgorithmId::kHybrid);
}

Result<QueryResult> SocialSearchEngine::Query(const SocialQuery& query,
                                              AlgorithmId algorithm,
                                              const CancellationToken* cancel) {
  // Pin one generation: everything below executes against `snap`, immune
  // to concurrent AddItem / Compact / friendship publishes.
  const std::shared_ptr<const EngineSnapshot> snap = snapshot();

  AMICI_RETURN_IF_ERROR(ValidateQuery(query, snap->graph->num_users()));
  if (algorithm == AlgorithmId::kGeoGrid && !snap->has_geo_items()) {
    return Status::FailedPrecondition(
        "geo-grid requires geo-tagged items covered by the indexes");
  }

  Stopwatch watch;
  ProximityOutcome proximity_outcome = ProximityOutcome::kCacheHit;
  const std::shared_ptr<const ProximityVector> proximity =
      proximity_->GetProximity(*snap->graph, query.user, snap->graph_version,
                               &proximity_outcome);

  QueryContext ctx;
  ctx.graph = snap->graph.get();
  ctx.store = snap->store;
  ctx.inverted = &snap->indexes->inverted;
  ctx.social = &snap->indexes->social;
  ctx.grid = snap->grid.get();
  ctx.proximity = proximity.get();
  ctx.query = &query;
  ctx.index_horizon = snap->index_horizon;
  ctx.cancel = cancel;
  if (query.has_geo_filter) {
    const GeoPoint center{query.latitude, query.longitude};
    const ItemStoreView store = snap->store;
    const double radius = query.radius_km;
    ctx.filter = [store, center, radius](ItemId item) {
      if (!store.has_geo(item)) return false;
      const GeoPoint p{store.latitude(item), store.longitude(item)};
      return DistanceKm(center, p) <= radius;
    };
  }

  QueryResult result;
  result.algorithm = AlgorithmName(algorithm);
  AMICI_ASSIGN_OR_RETURN(result.items,
                         AlgorithmFor(algorithm)->Search(ctx, &result.stats));
  // After Search: algorithms overwrite *stats wholesale with their local
  // counters.
  if (proximity_outcome == ProximityOutcome::kComputed) {
    result.stats.proximity_computations = 1;
  } else {
    result.stats.proximity_cache_hits = 1;
  }
  // Compaction observability rides each response: cumulative engine
  // counters at response time (mode split + merged/touched work).
  result.stats.compactions_merge = stats_.merge_compactions();
  result.stats.compactions_rebuild = stats_.rebuild_compactions();
  result.stats.compaction_items_merged = stats_.compaction_items_merged();
  result.stats.compaction_lists_touched = stats_.compaction_lists_touched();

  // Fold in the un-indexed tail: exhaustively score items the indexes do
  // not cover yet, merging with the algorithm's (exact) indexed top-k.
  // The fold is timed separately: its latency is the freshness cost the
  // compaction policy triggers on (see ingest/compaction_policy.h).
  if (snap->index_horizon < snap->store.num_items()) {
    const uint64_t tail_items =
        snap->store.num_items() - snap->index_horizon;
    Stopwatch tail_watch;
    Scorer scorer(snap->store, proximity.get(), &query);
    TopKHeap heap(query.k);
    for (const ScoredItem& item : result.items) {
      heap.Push(item.item, item.score);
    }
    CancellationTicker tail_ticker(cancel);
    for (ItemId item = snap->index_horizon;
         item < static_cast<ItemId>(snap->store.num_items()); ++item) {
      if (tail_ticker.Check()) {
        result.stats.truncated = true;
        break;
      }
      ++result.stats.items_considered;
      if (!scorer.Eligible(item)) continue;
      if (ctx.filter != nullptr && !ctx.filter(item)) continue;
      const double score = scorer.Score(item);
      if (score > 0.0) heap.Push(item, score);
    }
    result.items = heap.TakeSorted();
    result.stats.tail_items_scanned = tail_items;
    stats_.RecordTailScan(tail_items, tail_watch.ElapsedMillis());
  } else {
    stats_.RecordTailScan(0, 0.0);
  }

  result.elapsed_ms = watch.ElapsedMillis();
  stats_.RecordQuery(result.algorithm, result.elapsed_ms, result.stats);
  return result;
}

Result<QueryResult> SocialSearchEngine::QueryDiverse(
    const SocialQuery& query, size_t max_per_owner, AlgorithmId algorithm,
    const CancellationToken* cancel) {
  if (max_per_owner == 0) {
    return Status::InvalidArgument("max_per_owner must be >= 1");
  }
  // Iterative deepening: greedy per-owner selection over the top-N is
  // exact as soon as it either fills k slots or exhausts the positive-
  // score corpus (N returned < N requested). Owner lookups are safe
  // without pinning a snapshot: an item's owner never changes once the
  // item is visible.
  SocialQuery fetch_query = query;
  size_t fetch_k = query.k;
  while (true) {
    fetch_query.k = fetch_k;
    AMICI_ASSIGN_OR_RETURN(QueryResult fetched,
                           Query(fetch_query, algorithm, cancel));
    std::unordered_map<UserId, size_t> taken;
    std::vector<ScoredItem> diverse;
    for (const ScoredItem& entry : fetched.items) {
      size_t& count = taken[store_.owner(entry.item)];
      if (count >= max_per_owner) continue;
      ++count;
      diverse.push_back(entry);
      if (diverse.size() == query.k) break;
    }
    const bool corpus_exhausted = fetched.items.size() < fetch_k;
    // A truncated fetch ends the deepening: the token has expired, so a
    // deeper re-fetch would only redo partial work. Return the best-
    // effort diversified prefix.
    if (diverse.size() == query.k || corpus_exhausted ||
        fetched.stats.truncated) {
      fetched.items = std::move(diverse);
      return fetched;
    }
    fetch_k *= 2;
  }
}

std::vector<Result<QueryResult>> SocialSearchEngine::QueryBatch(
    std::span<const SocialQuery> queries, AlgorithmId algorithm,
    ThreadPool* pool) {
  std::vector<Result<QueryResult>> results(
      queries.size(), Status::Internal("batch slot never executed"));
  if (pool == nullptr) {
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i] = Query(queries[i], algorithm);
    }
    return results;
  }
  pool->ParallelFor(queries.size(), [&](size_t i) {
    results[i] = Query(queries[i], algorithm);
  });
  return results;
}

Result<std::vector<TagSuggestion>> SocialSearchEngine::SuggestTags(
    UserId user, std::span<const TagId> seed_tags,
    const QueryExpansionOptions& options) {
  const std::shared_ptr<const EngineSnapshot> snap = snapshot();
  if (user >= snap->graph->num_users()) {
    return Status::InvalidArgument("user outside the social graph");
  }
  const std::shared_ptr<const ProximityVector> proximity =
      proximity_->GetProximity(*snap->graph, user, snap->graph_version);
  return SuggestQueryTags(snap->store, snap->indexes->social, *proximity,
                          user, seed_tags, options);
}

Result<ItemId> SocialSearchEngine::AddItem(const Item& item) {
  // The batch path with a batch of one: a single append followed by one
  // publish whose store view covers the new item — the "cheap
  // tail-append" write path.
  AMICI_ASSIGN_OR_RETURN(const std::vector<ItemId> ids,
                         AddItems(std::span<const Item>(&item, 1)));
  return ids[0];
}

Result<std::vector<ItemId>> SocialSearchEngine::AddItems(
    std::span<const Item> items) {
  if (items.empty()) return std::vector<ItemId>{};  // nothing to publish
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const std::shared_ptr<const EngineSnapshot> cur = snapshot();
  // Validate the whole batch up front (including CUMULATIVE store
  // capacity): after the first append the only way to keep the batch
  // atomic is to not start appending until every item is known to be
  // admissible.
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].owner >= cur->graph->num_users()) {
      return Status::InvalidArgument(
          StringPrintf("batch item %zu: owner outside the social graph", i));
    }
  }
  AMICI_RETURN_IF_ERROR(store_.ValidateForAddAll(items));
  std::vector<ItemId> ids;
  ids.reserve(items.size());
  for (const Item& item : items) {
    // Cannot fail: ValidateForAddAll covered shape AND cumulative
    // capacity, and the writer mutex serializes every appender.
    AMICI_ASSIGN_OR_RETURN(const ItemId id, store_.Add(item));
    ids.push_back(id);
  }

  // One publish for the whole batch; see AddItem for the snapshot shape.
  auto next = std::make_shared<EngineSnapshot>(*cur);
  next->store = ItemStoreView(store_);
  PublishLocked(std::move(next));
  return ids;
}

Status SocialSearchEngine::AddFriendship(UserId u, UserId v) {
  // The provider owns the graph: it validates, rebuilds and publishes the
  // new generation (AlreadyExists / NotFound / InvalidArgument semantics
  // live there now); this engine then adopts it into a fresh snapshot.
  AMICI_RETURN_IF_ERROR(proximity_->AddFriendship(u, v));
  return SyncGraph();
}

Status SocialSearchEngine::RemoveFriendship(UserId u, UserId v) {
  AMICI_RETURN_IF_ERROR(proximity_->RemoveFriendship(u, v));
  return SyncGraph();
}

Status SocialSearchEngine::SyncGraph() {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const ProximityProvider::GraphView view = proximity_->Acquire();
  const std::shared_ptr<const EngineSnapshot> cur = snapshot();
  // <= not ==: when two edits race, the loser's Acquire may read an older
  // view than the winner's sync already published — never regress.
  if (view.generation <= cur->graph_version) return Status::Ok();
  auto next = std::make_shared<EngineSnapshot>(*cur);
  next->graph = view.graph;
  next->graph_version = view.generation;
  next->store = ItemStoreView(store_);
  PublishLocked(std::move(next));
  // No proximity-cache clear: entries are keyed by graph generation, so
  // stale vectors can neither hit nor survive the first new-generation
  // access.
  return Status::Ok();
}

namespace {

/// Lists a full rebuild materialized (every non-empty one) — the rebuild
/// counterpart of the merge path's touched-list count, so the two modes
/// report comparable work numbers.
uint64_t CountBuiltLists(const EngineSnapshot& snap) {
  uint64_t lists = 0;
  const InvertedIndex& inverted = snap.indexes->inverted;
  for (size_t tag = 0; tag < inverted.num_tags(); ++tag) {
    if (inverted.DocumentFrequency(static_cast<TagId>(tag)) > 0) ++lists;
  }
  const SocialIndex& social = snap.indexes->social;
  for (size_t user = 0; user < social.num_users(); ++user) {
    if (!social.ItemsOf(static_cast<UserId>(user)).empty()) ++lists;
  }
  if (snap.grid != nullptr) lists += snap.grid->num_cells();
  return lists;
}

}  // namespace

Result<std::shared_ptr<const EngineSnapshot>>
SocialSearchEngine::MergeSnapshot(const EngineSnapshot& pinned,
                                  CompactionOutcome* outcome) const {
  const ItemStoreView view = pinned.store;
  auto next = std::make_shared<EngineSnapshot>();

  IndexMergeStats merge_stats;
  AMICI_ASSIGN_OR_RETURN(
      BuiltIndexes merged,
      MergeIndexes(*pinned.indexes, pinned.index_horizon, view,
                   pinned.graph->num_users(), options_.index_options,
                   &merge_stats));
  next->indexes = std::make_shared<const BuiltIndexes>(std::move(merged));
  next->index_horizon = static_cast<ItemId>(view.num_items());

  // The grid exists iff any covered item has a geo position; the merge
  // only needs to look at the TAIL to decide (the base grid already
  // answers it for the indexed prefix).
  bool tail_has_geo = false;
  for (size_t i = pinned.index_horizon; i < view.num_items(); ++i) {
    if (view.has_geo(static_cast<ItemId>(i))) {
      tail_has_geo = true;
      break;
    }
  }
  uint64_t cells_touched = 0;
  if (pinned.grid != nullptr || tail_has_geo) {
    next->grid = std::make_shared<const GridIndex>(GridIndex::MergeFrom(
        pinned.grid.get(), view, pinned.index_horizon,
        options_.geo_cell_size_deg, &cells_touched));
  }

  next->graph = pinned.graph;
  next->graph_version = pinned.graph_version;
  next->store = view;

  outcome->items_merged = merge_stats.items_merged;
  outcome->lists_touched = merge_stats.lists_touched + cells_touched;
  return std::shared_ptr<const EngineSnapshot>(std::move(next));
}

Status SocialSearchEngine::Compact(CompactionOutcome* outcome) {
  return Compact(options_.compaction_mode, outcome);
}

Status SocialSearchEngine::Compact(CompactionMode mode,
                                   CompactionOutcome* outcome) {
  // Pin the generation to compact. The expensive index build below runs
  // WITHOUT the writer lock: queries keep executing and AddItem keeps
  // appending (past the pinned view's bound) while we work.
  Stopwatch watch;
  const std::shared_ptr<const EngineSnapshot> pinned = snapshot();

  const size_t tail_items = pinned->unindexed_items();
  const size_t indexed_items = pinned->index_horizon;
  bool merge = false;
  switch (mode) {
    case CompactionMode::kAuto:
      // Merge pays off while the tail is small next to the indexed base;
      // with no base at all, the "merge" IS a build — take the rebuild
      // path and report it as such.
      merge = indexed_items > 0 &&
              static_cast<double>(tail_items) <=
                  options_.merge_max_tail_ratio *
                      static_cast<double>(indexed_items);
      break;
    case CompactionMode::kAlwaysRebuild:
      merge = false;
      break;
    case CompactionMode::kAlwaysMerge:
      merge = true;
      break;
  }

  CompactionOutcome result;
  result.merged = merge;
  std::shared_ptr<const EngineSnapshot> built;
  if (merge) {
    AMICI_ASSIGN_OR_RETURN(built, MergeSnapshot(*pinned, &result));
  } else {
    AMICI_ASSIGN_OR_RETURN(
        built,
        BuildSnapshot(pinned->graph, pinned->graph_version, pinned->store));
    result.items_merged = tail_items;
    result.lists_touched = CountBuiltLists(*built);
  }

  {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    const std::shared_ptr<const EngineSnapshot> cur = snapshot();
    if (built->index_horizon < cur->index_horizon) {
      // A concurrent Compact already covered more of the catalogue; keep
      // it (and report that nothing was published here).
      if (outcome != nullptr) *outcome = CompactionOutcome{};
      return Status::Ok();
    }
    auto next = std::make_shared<EngineSnapshot>(*built);
    // Adopt whatever the writers published while we built: the latest
    // graph generation and the full store extent (items ingested during
    // the build stay in the tail until the next Compact).
    next->graph = cur->graph;
    next->graph_version = cur->graph_version;
    next->store = ItemStoreView(store_);
    PublishLocked(std::move(next));
  }
  result.published = true;
  result.elapsed_ms = watch.ElapsedMillis();
  stats_.NoteCompaction(result);
  if (outcome != nullptr) *outcome = result;
  AMICI_LOG(kInfo) << "compacted (" << result.mode() << "): indexes now cover "
                   << built->index_horizon << " items; "
                   << result.items_merged << " items merged, "
                   << result.lists_touched << " lists touched";
  return Status::Ok();
}

Result<persist::SnapshotSaveReport> SocialSearchEngine::SaveSnapshot(
    const std::string& dir, persist::SnapshotSaveOptions options) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  std::optional<persist::Manifest> prev;
  if (persist::FileExists(persist::JoinPath(dir, "CURRENT"))) {
    AMICI_ASSIGN_OR_RETURN(persist::Manifest loaded,
                           persist::LoadCurrentManifest(dir));
    if (loaded.num_shards != 0) {
      return Status::InvalidArgument(
          dir + " holds a service snapshot; save through the service layer");
    }
    prev = std::move(loaded);
  }
  const uint64_t generation = prev ? prev->generation + 1 : 1;
  // Under the writer mutex the published snapshot IS the full engine
  // state (every publish happens under this mutex), so the save is
  // consistent: store extent, indexes and graph all from one generation.
  const std::shared_ptr<const EngineSnapshot> snap = snapshot();
  options.graph_unchanged_since_prev =
      prev && last_save_.dir == dir &&
      last_save_.generation == prev->generation &&
      last_save_.graph_version == snap->graph_version;
  persist::SnapshotSaveReport report;
  AMICI_ASSIGN_OR_RETURN(
      const persist::Manifest manifest,
      persist::WriteEngineSnapshot(dir, *snap, generation,
                                   prev ? &*prev : nullptr, options, &report));
  AMICI_RETURN_IF_ERROR(persist::CommitCurrent(dir, generation));
  // Cleanup is best-effort after the commit point; a failure here leaves
  // garbage files, never a broken snapshot.
  AMICI_RETURN_IF_ERROR(persist::RemoveRetiredFiles(dir, manifest));
  last_save_ = {dir, generation, snap->graph_version};
  return report;
}

Result<persist::Manifest> SocialSearchEngine::WriteSnapshotFiles(
    const std::string& dir, uint64_t generation, const persist::Manifest* prev,
    const persist::SnapshotSaveOptions& options,
    persist::SnapshotSaveReport* report) {
  const std::shared_ptr<const EngineSnapshot> snap = snapshot();
  return persist::WriteEngineSnapshot(dir, *snap, generation, prev, options,
                                      report);
}

}  // namespace amici
