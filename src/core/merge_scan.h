#ifndef AMICI_CORE_MERGE_SCAN_H_
#define AMICI_CORE_MERGE_SCAN_H_

#include <string_view>
#include <vector>

#include "core/search_algorithm.h"

namespace amici {

/// The classical IR baseline: enumerate candidates from the compressed
/// document-ordered posting lists, then score each candidate exactly.
///
///  * kAny: multi-way union over the query tags' lists, plus the social
///    candidates (own + proximate users' items), since an item with zero
///    content score can still rank on social score alone.
///  * kAll: leapfrog intersection driven by PostingList skip pointers —
///    the hard AND filter makes the intersection exactly the eligible set.
///
/// Unlike ExhaustiveScan it never touches items outside the candidate
/// set, but unlike the TA family it cannot stop early.
class MergeScan final : public SearchAlgorithm {
 public:
  MergeScan() = default;

  std::string_view name() const override { return "merge-scan"; }

  Result<std::vector<ScoredItem>> Search(const QueryContext& ctx,
                                         SearchStats* stats) const override;
};

}  // namespace amici

#endif  // AMICI_CORE_MERGE_SCAN_H_
