#ifndef AMICI_CORE_ENGINE_H_
#define AMICI_CORE_ENGINE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "core/engine_snapshot.h"
#include "core/engine_stats.h"
#include "core/query_expansion.h"
#include "core/search_algorithm.h"
#include "core/social_query.h"
#include "geo/grid_index.h"
#include "graph/social_graph.h"
#include "index/index_builder.h"
#include "persist/snapshot.h"
#include "proximity/proximity_model.h"
#include "proximity/proximity_provider.h"
#include "proximity_service/overlay_fold_policy.h"
#include "storage/item_store.h"
#include "storage/tag_dictionary.h"
#include "util/atomic_shared_ptr.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace amici {

/// Names the execution strategy for one query.
enum class AlgorithmId {
  kExhaustive,
  kMergeScan,
  kContentFirst,
  kSocialFirst,
  kHybrid,
  kGeoGrid,
  kNra,
  /// Sentinel: number of strategies. Keep last; the engine sizes its
  /// algorithm table from it, so a new strategy cannot silently leave a
  /// null slot.
  kNumAlgorithms,
};

inline constexpr size_t kNumAlgorithms =
    static_cast<size_t>(AlgorithmId::kNumAlgorithms);

/// Stable display name of `id` ("hybrid", "merge-scan", ...).
std::string_view AlgorithmName(AlgorithmId id);

/// How Compact() folds the tail into the indexes.
///
///  * kAuto — incremental (LSM-style) merge when the tail is small
///    relative to the indexed catalogue (see
///    Options::merge_max_tail_ratio), full rebuild otherwise. The merge
///    rebuilds only tail-touched posting lists / owner buckets / grid
///    cells, structurally sharing everything else with the previous
///    snapshot: O(tail + touched lists) instead of O(catalogue).
///  * kAlwaysRebuild / kAlwaysMerge — force one path; used by the
///    compaction-invariance tests (a rebuild twin proving the merge path
///    bit-identical) and by benches comparing the two costs.
///
/// Both paths produce bit-identical query results — see
/// tests/core/compaction_invariance_test.cc.
enum class CompactionMode {
  kAuto,
  kAlwaysRebuild,
  kAlwaysMerge,
};

/// The outcome of one engine query.
struct QueryResult {
  /// Best-first (score-descending) results, at most k entries.
  std::vector<ScoredItem> items;
  /// Work counters from the executing algorithm (plus the tail merge).
  SearchStats stats;
  /// End-to-end latency, including proximity computation on cache miss.
  double elapsed_ms = 0.0;
  /// Which algorithm executed.
  std::string_view algorithm;
};

/// The public facade: owns the item catalogue and the algorithm suite,
/// CONSUMES a ProximityProvider (which owns the graph, the proximity
/// model and the score cache — possibly shared with other engines), and
/// publishes the query-visible state (graph, indexes, grid, store view)
/// as immutable EngineSnapshot generations.
///
/// Thread-safety — the snapshot read/write split:
///  * Query / QueryBatch / QueryDiverse / SuggestTags are safe from any
///    number of threads, concurrently with each other AND with all
///    mutators. Each query pins one snapshot (lock-free load) and runs
///    against that consistent state to completion.
///  * AddItem, AddFriendship, RemoveFriendship and Compact are safe
///    concurrently with queries. Mutators serialize among themselves on an
///    internal writer mutex; Compact additionally runs its expensive index
///    build OFF the writer lock (from a pinned snapshot) so ingest stalls
///    only for the final pointer swap.
///
/// Incremental ingest follows the main-index + tail design: AddItem
/// appends to an un-indexed, pointer-stable tail that queries scan
/// exhaustively (exactness is never sacrificed); Compact() folds the tail
/// into freshly built indexes and publishes them as a new generation.
class SocialSearchEngine {
 public:
  struct Options {
    /// The graph + proximity surface this engine consumes. When null,
    /// Build(graph, store, options) wraps the passed graph in a PRIVATE
    /// SharedProximityProvider built from the knobs below — the
    /// single-engine deployment. Services that run several engines pass
    /// ONE shared provider here instead, so the graph and the score
    /// cache exist once, not once per shard.
    std::shared_ptr<ProximityProvider> proximity_provider;
    /// Social proximity model for the private provider; defaults to
    /// forward-push PPR (restart 0.15, epsilon 1e-4) when null. Ignored
    /// when proximity_provider is set.
    std::shared_ptr<const ProximityModel> proximity_model;
    /// LRU capacity of the private provider's proximity cache. Ignored
    /// when proximity_provider is set.
    size_t proximity_cache_capacity = 4096;
    /// Hottest users the private provider re-warms after a graph
    /// generation bump (0 disables). Ignored when proximity_provider is
    /// set.
    size_t proximity_warm_top_n = 16;
    /// User partitions of the private provider: 1 builds the single
    /// SharedProximityProvider; > 1 builds a ProximityServiceRouter that
    /// hash-partitions users across that many serving units (each with
    /// its own cache / single-flight / warm-over, cross-partition edits
    /// through the partition boundary). Ignored when proximity_provider
    /// is set.
    size_t proximity_partitions = 1;
    /// When the private provider folds its delta-overlay patch into a
    /// fresh base CSR; null selects AdaptiveOverlayFoldPolicy defaults.
    /// Ignored when proximity_provider is set.
    std::shared_ptr<const OverlayFoldPolicy> proximity_fold_policy;
    /// Posting-list / impact-list knobs (ablation surface).
    InvertedIndex::Options index_options;
    /// Geo grid cell size in degrees (used when the store has geo items).
    double geo_cell_size_deg = 0.25;
    /// Compact() path selection (see CompactionMode).
    CompactionMode compaction_mode = CompactionMode::kAuto;
    /// kAuto merges when tail_items <= ratio * indexed_items (and an
    /// indexed base exists); a bigger tail pays the one-off rebuild,
    /// whose cost the now-large catalogue amortizes.
    double merge_max_tail_ratio = 0.25;
  };

  /// Builds an engine over `graph` and `store` (both consumed). The graph
  /// is wrapped in a private SharedProximityProvider;
  /// options.proximity_provider must be null on this overload (a shared
  /// provider already owns its graph — use the overload below).
  static Result<std::unique_ptr<SocialSearchEngine>> Build(SocialGraph graph,
                                                           ItemStore store,
                                                           Options options);

  /// Builds an engine over `store` that CONSUMES
  /// options.proximity_provider (required) for its graph and proximity —
  /// the multi-engine deployment where one provider is shared across
  /// shards.
  static Result<std::unique_ptr<SocialSearchEngine>> Build(ItemStore store,
                                                           Options options);

  /// Reopens an engine from a snapshot directory written by
  /// SaveSnapshot: maps and verifies the segments named by CURRENT (or
  /// open_options.manifest_name), reconstructs the catalogue, views the
  /// posting payloads zero-copy in the mapped files, and restores the
  /// indexes/grid without any index build. When
  /// options.proximity_provider is null the snapshot's own graph segment
  /// feeds a private provider; services opening per-shard snapshots pass
  /// the shared provider they restored from the root graph segment (the
  /// shard manifest then has no graph segment to ignore).
  static Result<std::unique_ptr<SocialSearchEngine>> OpenSnapshot(
      const std::string& dir, Options options,
      const persist::SnapshotOpenOptions& open_options =
          persist::SnapshotOpenOptions());

  /// The construction half of OpenSnapshot: assembles an engine from a
  /// state already read by persist::LoadEngineSnapshot(dir, ...).
  /// Services use the split to overlap shard segment loads with the
  /// root graph/provider restore; everyone else wants OpenSnapshot.
  static Result<std::unique_ptr<SocialSearchEngine>> FromLoadedSnapshot(
      const std::string& dir, persist::LoadedEngineState loaded,
      Options options);

  /// The ONE mapping from engine options to a SharedProximityProvider
  /// over `graph` (model default, cache-capacity clamp, warm-over knob).
  /// Build(graph, store, options) uses it for the private provider, and
  /// multi-engine services use it to construct the provider they share —
  /// same knobs, same behavior, one place to extend.
  static std::shared_ptr<ProximityProvider> MakeProximityProvider(
      SocialGraph graph, const Options& options);

  /// Executes `query` with the default (hybrid) strategy.
  Result<QueryResult> Query(const SocialQuery& query);

  /// Executes `query` with a specific strategy. kGeoGrid requires a geo
  /// filter on the query and geo items covered by the current indexes.
  ///
  /// `cancel` (optional, null = never cancels) is probed cooperatively
  /// inside the algorithm (per posting-list block / candidate batch) and
  /// in the tail fold; once expired the query returns promptly with the
  /// best-effort partial and stats.truncated set. A token that never
  /// fires leaves results bit-identical to passing null.
  Result<QueryResult> Query(const SocialQuery& query, AlgorithmId algorithm,
                            const CancellationToken* cancel = nullptr);

  /// Executes a batch concurrently on `pool` (inline when pool is null).
  /// Results are positionally aligned with `queries`. Queries are
  /// thread-safe, so the batch only needs the pool for parallelism.
  std::vector<Result<QueryResult>> QueryBatch(
      std::span<const SocialQuery> queries, AlgorithmId algorithm,
      ThreadPool* pool);

  /// Owner-diversified top-k: at most `max_per_owner` results from any
  /// single owner, selected greedily in score order over the whole
  /// eligible corpus (exact — implemented by iterative deepening of the
  /// fetch size, so a feed cannot be monopolized by one prolific friend).
  /// `cancel` stops the deepening between rounds as well as inside them.
  Result<QueryResult> QueryDiverse(const SocialQuery& query,
                                   size_t max_per_owner, AlgorithmId algorithm,
                                   const CancellationToken* cancel = nullptr);

  /// Suggests expansion tags for `seed_tags` (sorted, unique) from the
  /// user's social neighbourhood — the personalized-thesaurus feature
  /// (see query_expansion.h). Thread-safe alongside queries and mutators.
  Result<std::vector<TagSuggestion>> SuggestTags(
      UserId user, std::span<const TagId> seed_tags,
      const QueryExpansionOptions& options = QueryExpansionOptions());

  /// Appends a new item to the un-indexed tail and publishes a snapshot
  /// that makes it queryable. Cheap (columnar append + pointer swap);
  /// safe concurrently with queries and other mutators.
  Result<ItemId> AddItem(const Item& item);

  /// Appends a whole batch under ONE writer-lock acquisition and ONE
  /// snapshot publish (cuts snapshot-allocation traffic N-fold versus N
  /// AddItem calls — the first step of the batched-ingest roadmap item).
  /// Ids are assigned in batch order; every item is validated before
  /// anything is appended, so the batch is all-or-nothing.
  Result<std::vector<ItemId>> AddItems(std::span<const Item> items);

  /// Adds / removes a friendship edge THROUGH the proximity provider
  /// (which owns the graph): the provider validates, rebuilds (O(E)) and
  /// publishes a new graph generation, and this engine adopts it into a
  /// fresh snapshot; in-flight queries finish on the generation they
  /// pinned. RemoveFriendship returns NotFound when the edge does not
  /// exist; AddFriendship returns AlreadyExists for duplicates; self
  /// edges and out-of-range endpoints are InvalidArgument.
  ///
  /// NOTE with a SHARED provider: only THIS engine adopts the new
  /// generation here. The owning service must call SyncGraph() on its
  /// other engines (see ShardedSearchService::AddFriendship).
  Status AddFriendship(UserId u, UserId v);
  Status RemoveFriendship(UserId u, UserId v);

  /// Adopts the provider's current graph generation into a new snapshot
  /// (no-op when already current). Cheap: one snapshot copy + pointer
  /// swap; the indexes are graph-independent and are reused as-is.
  Status SyncGraph();

  /// Folds the tail into the indexes — incrementally (merging tail
  /// postings into shared list handles) or by full rebuild, per
  /// Options::compaction_mode. Either way the build runs off the writer
  /// lock against a pinned snapshot, so queries AND ingest proceed while
  /// it works; only the final publish takes the writer mutex. Items
  /// ingested while the build runs simply stay in the tail until the
  /// next Compact. `outcome`, when non-null, receives what was done
  /// (mode, items merged, lists touched, wall time).
  Status Compact(CompactionOutcome* outcome = nullptr);

  /// Compact with a forced mode, overriding Options::compaction_mode for
  /// this one call — the invariance-test / bench surface for comparing
  /// the merge and rebuild paths on identical state.
  Status Compact(CompactionMode mode, CompactionOutcome* outcome);

  /// Persists the current snapshot into `dir` and commits it: segments +
  /// MANIFEST-<gen> written and fsynced, CURRENT atomically repointed,
  /// superseded files deleted. When `dir` already holds a committed
  /// snapshot this engine saved (or was opened from) in this process,
  /// the save is incremental — only the lists touched since the previous
  /// save's index horizon are rewritten (options.mode can force either
  /// path). Holds the writer mutex for the duration: ingest stalls,
  /// queries do not.
  Result<persist::SnapshotSaveReport> SaveSnapshot(
      const std::string& dir,
      persist::SnapshotSaveOptions options = persist::SnapshotSaveOptions());

  /// Service building block: writes segments + MANIFEST-<generation> for
  /// the current snapshot into `dir` WITHOUT committing CURRENT — a
  /// sharded service writes every shard's files first and then commits
  /// one root CURRENT over all of them. Callers serialize saves
  /// themselves (the service writer mutex).
  Result<persist::Manifest> WriteSnapshotFiles(
      const std::string& dir, uint64_t generation,
      const persist::Manifest* prev,
      const persist::SnapshotSaveOptions& options,
      persist::SnapshotSaveReport* report);

  /// The current snapshot (lock-free load). Holding the returned pointer
  /// pins this generation's graph, indexes and grid for as long as the
  /// caller keeps it. The store view inside points into the engine-owned
  /// catalogue, so the ENGINE must outlive any pinned snapshot.
  std::shared_ptr<const EngineSnapshot> snapshot() const {
    return snapshot_.load();
  }

  /// Items not yet covered by the indexes (in the current snapshot).
  size_t unindexed_items() const { return snapshot()->unindexed_items(); }

  /// Accessors into the CURRENT snapshot. The references stay valid only
  /// while no concurrent writer publishes a new generation — single-thread
  /// callers (tests, benches, examples) are fine; concurrent callers
  /// should pin snapshot() instead.
  const SocialGraph& graph() const { return *snapshot()->graph; }
  const InvertedIndex& inverted_index() const {
    return snapshot()->indexes->inverted;
  }
  const SocialIndex& social_index() const {
    return snapshot()->indexes->social;
  }
  const GridIndex& grid_index() const {
    static const GridIndex kEmptyGrid;
    const auto snap = snapshot();
    return snap->grid ? *snap->grid : kEmptyGrid;
  }
  const IndexBuildStats& last_build_stats() const {
    return snapshot()->indexes->stats;
  }

  const ItemStore& store() const { return store_; }
  const ProximityModel& proximity_model() const {
    return proximity_->model();
  }
  /// The graph + proximity surface this engine consumes (possibly shared
  /// with other engines).
  ProximityProvider& proximity() const { return *proximity_; }
  std::shared_ptr<ProximityProvider> shared_proximity() const {
    return proximity_;
  }
  EngineStats& stats() { return stats_; }
  const EngineStats& stats() const { return stats_; }

 private:
  SocialSearchEngine(ItemStore store, Options options);

  /// Builds indexes + grid over `view` and returns the snapshot holding
  /// them (graph/version taken from `graph`/`graph_version`).
  Result<std::shared_ptr<const EngineSnapshot>> BuildSnapshot(
      std::shared_ptr<const SocialGraph> graph, uint64_t graph_version,
      ItemStoreView view) const;

  /// Incremental counterpart of BuildSnapshot for the Compact merge
  /// path: folds pinned's un-indexed tail into pinned's indexes/grid,
  /// sharing untouched lists, and reports the touched-list counts into
  /// `outcome`.
  Result<std::shared_ptr<const EngineSnapshot>> MergeSnapshot(
      const EngineSnapshot& pinned, CompactionOutcome* outcome) const;

  const SearchAlgorithm* AlgorithmFor(AlgorithmId id) const;

  /// Fills the algorithm table (one strategy per AlgorithmId slot) —
  /// shared by Build and OpenSnapshot.
  void RegisterAlgorithms();

  /// Atomically replaces the published snapshot. Callers must hold
  /// writer_mutex_.
  void PublishLocked(std::shared_ptr<const EngineSnapshot> next);

  ItemStore store_;
  Options options_;

  /// Owns the graph, the model, and the score cache; shared across
  /// engines when the service layer passes one provider to all shards.
  std::shared_ptr<ProximityProvider> proximity_;
  std::vector<std::unique_ptr<SearchAlgorithm>> algorithms_;  // by AlgorithmId
  EngineStats stats_;

  /// Serializes mutators (AddItem, friendship edits, snapshot publishes).
  /// Never held while a query executes.
  std::mutex writer_mutex_;
  AtomicSharedPtr<const EngineSnapshot> snapshot_;

  /// In-process record of the last committed save (or the snapshot this
  /// engine was opened from): lets the next SaveSnapshot prove "graph
  /// unchanged since the segment on disk" by comparing provider
  /// generations — valid only within one process, which is exactly what
  /// this tracks. Guarded by writer_mutex_.
  struct LastSave {
    std::string dir;
    uint64_t generation = 0;
    uint64_t graph_version = 0;
  };
  LastSave last_save_;
};

}  // namespace amici

#endif  // AMICI_CORE_ENGINE_H_
