#ifndef AMICI_CORE_ENGINE_H_
#define AMICI_CORE_ENGINE_H_

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/engine_stats.h"
#include "core/query_expansion.h"
#include "core/search_algorithm.h"
#include "core/social_query.h"
#include "geo/grid_index.h"
#include "graph/social_graph.h"
#include "index/index_builder.h"
#include "proximity/proximity_cache.h"
#include "proximity/proximity_model.h"
#include "storage/item_store.h"
#include "storage/tag_dictionary.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace amici {

/// Names the execution strategy for one query.
enum class AlgorithmId {
  kExhaustive,
  kMergeScan,
  kContentFirst,
  kSocialFirst,
  kHybrid,
  kGeoGrid,
  kNra,
};

/// Stable display name of `id` ("hybrid", "merge-scan", ...).
std::string_view AlgorithmName(AlgorithmId id);

/// The outcome of one engine query.
struct QueryResult {
  /// Best-first (score-descending) results, at most k entries.
  std::vector<ScoredItem> items;
  /// Work counters from the executing algorithm (plus the tail merge).
  SearchStats stats;
  /// End-to-end latency, including proximity computation on cache miss.
  double elapsed_ms = 0.0;
  /// Which algorithm executed.
  std::string_view algorithm;
};

/// The public facade: owns the social graph, the item catalogue, both
/// indexes, the proximity model + cache, and the algorithm suite.
///
/// Thread-safety: concurrent Query() calls are safe (internal
/// synchronization covers the proximity cache and stats); AddItem() and
/// Compact() require external exclusion against queries.
///
/// Incremental ingest follows the main-index + tail design: AddItem
/// appends to an un-indexed tail that queries scan exhaustively (exactness
/// is never sacrificed); Compact() folds the tail into the indexes.
class SocialSearchEngine {
 public:
  struct Options {
    /// Social proximity model; defaults to forward-push PPR
    /// (restart 0.15, epsilon 1e-4) when null.
    std::shared_ptr<const ProximityModel> proximity_model;
    /// LRU capacity of the per-user proximity cache. 0 disables caching.
    size_t proximity_cache_capacity = 4096;
    /// Posting-list / impact-list knobs (ablation surface).
    InvertedIndex::Options index_options;
    /// Geo grid cell size in degrees (used when the store has geo items).
    double geo_cell_size_deg = 0.25;
  };

  /// Builds an engine over `graph` and `store` (both consumed).
  static Result<std::unique_ptr<SocialSearchEngine>> Build(SocialGraph graph,
                                                           ItemStore store,
                                                           Options options);

  /// Executes `query` with the default (hybrid) strategy.
  Result<QueryResult> Query(const SocialQuery& query);

  /// Executes `query` with a specific strategy. kGeoGrid requires a geo
  /// filter on the query and geo items in the store.
  Result<QueryResult> Query(const SocialQuery& query, AlgorithmId algorithm);

  /// Executes a batch concurrently on `pool` (inline when pool is null).
  /// Results are positionally aligned with `queries`. Queries are
  /// thread-safe, so the batch only needs the pool for parallelism.
  std::vector<Result<QueryResult>> QueryBatch(
      std::span<const SocialQuery> queries, AlgorithmId algorithm,
      ThreadPool* pool);

  /// Owner-diversified top-k: at most `max_per_owner` results from any
  /// single owner, selected greedily in score order over the whole
  /// eligible corpus (exact — implemented by iterative deepening of the
  /// fetch size, so a feed cannot be monopolized by one prolific friend).
  Result<QueryResult> QueryDiverse(const SocialQuery& query,
                                   size_t max_per_owner,
                                   AlgorithmId algorithm);

  /// Suggests expansion tags for `seed_tags` (sorted, unique) from the
  /// user's social neighbourhood — the personalized-thesaurus feature
  /// (see query_expansion.h). Thread-safe alongside queries.
  Result<std::vector<TagSuggestion>> SuggestTags(
      UserId user, std::span<const TagId> seed_tags,
      const QueryExpansionOptions& options = QueryExpansionOptions());

  /// Appends a new item to the un-indexed tail. Requires external
  /// exclusion against concurrent queries.
  Result<ItemId> AddItem(const Item& item);

  /// Adds / removes a friendship edge. The CSR graph is rebuilt (O(E))
  /// and the proximity cache invalidated — adequate for the low edge-churn
  /// typical of social workloads. Requires external exclusion against
  /// concurrent queries. RemoveFriendship returns NotFound when the edge
  /// does not exist; AddFriendship returns AlreadyExists for duplicates.
  Status AddFriendship(UserId u, UserId v);
  Status RemoveFriendship(UserId u, UserId v);

  /// Folds the tail into freshly rebuilt indexes.
  Status Compact();

  /// Items not yet covered by the indexes.
  size_t unindexed_items() const {
    return store_.num_items() - index_horizon_;
  }

  const SocialGraph& graph() const { return graph_; }
  const ItemStore& store() const { return store_; }
  const InvertedIndex& inverted_index() const { return indexes_.inverted; }
  const SocialIndex& social_index() const { return indexes_.social; }
  const GridIndex& grid_index() const { return grid_; }
  const IndexBuildStats& last_build_stats() const { return indexes_.stats; }
  const ProximityModel& proximity_model() const { return *proximity_model_; }
  ProximityCache& proximity_cache() { return *proximity_cache_; }
  EngineStats& stats() { return stats_; }

 private:
  SocialSearchEngine(SocialGraph graph, ItemStore store, Options options);

  Status BuildIndexesInternal();
  const SearchAlgorithm* AlgorithmFor(AlgorithmId id) const;

  SocialGraph graph_;
  ItemStore store_;
  Options options_;
  BuiltIndexes indexes_;
  GridIndex grid_;
  bool has_geo_items_ = false;
  ItemId index_horizon_ = 0;

  std::shared_ptr<const ProximityModel> proximity_model_;
  std::unique_ptr<ProximityCache> proximity_cache_;
  std::vector<std::unique_ptr<SearchAlgorithm>> algorithms_;  // by AlgorithmId
  EngineStats stats_;
};

}  // namespace amici

#endif  // AMICI_CORE_ENGINE_H_
