#ifndef AMICI_CORE_QUERY_EXPANSION_H_
#define AMICI_CORE_QUERY_EXPANSION_H_

#include <cstddef>
#include <span>
#include <vector>

#include "index/social_index.h"
#include "proximity/proximity_model.h"
#include "storage/item_store.h"
#include "util/ids.h"
#include "util/status.h"

namespace amici {

/// A tag proposed for query expansion, with its evidence weight.
struct TagSuggestion {
  TagId tag;
  /// Accumulated proximity-weighted co-occurrence evidence (not
  /// normalized; useful for ordering and thresholding).
  float weight;
  /// Number of co-occurring items backing the suggestion — the count
  /// min_cooccurrence thresholds. Carried in the result so that a sharded
  /// backend can union-merge per-shard suggestions and apply the
  /// threshold on the GLOBAL count.
  uint32_t support = 0;
};

/// Knobs for SuggestQueryTags.
struct QueryExpansionOptions {
  /// Maximum suggestions returned.
  size_t max_suggestions = 5;
  /// How many of the closest users (the querying user counts as the
  /// closest) contribute evidence.
  size_t max_users = 50;
  /// Tags must co-occur with a seed tag on at least this many items.
  uint32_t min_cooccurrence = 1;
};

/// "With a little help from my friends", applied to the query itself:
/// proposes tags that co-occur with the seed tags *on the items of the
/// user's social neighbourhood*, weighted by the owner's proximity. The
/// social circle acts as a personalized thesaurus — "beach" suggests
/// "surf" for one user and "volleyball" for another.
///
/// Evidence model: for every item of the self + top `max_users` proximate
/// users that carries >= 1 seed tag, each non-seed tag on that item earns
/// proximity(owner) weight (self counts 1.0). Suggestions are returned by
/// decreasing weight (ties by ascending tag id).
///
/// `seed_tags` must be sorted and unique (NormalizeQuery does this).
Result<std::vector<TagSuggestion>> SuggestQueryTags(
    ItemStoreView store, const SocialIndex& social,
    const ProximityVector& proximity, UserId user,
    std::span<const TagId> seed_tags, const QueryExpansionOptions& options);

}  // namespace amici

#endif  // AMICI_CORE_QUERY_EXPANSION_H_
