#include "core/hybrid_adaptive.h"

#include "core/ta_runner.h"

namespace amici {

Result<std::vector<ScoredItem>> HybridAdaptive::Search(
    const QueryContext& ctx, SearchStats* stats) const {
  return RunBlendedTa(ctx, PullBias::kAdaptive, stats);
}

}  // namespace amici
