#ifndef AMICI_CORE_ENGINE_STATS_H_
#define AMICI_CORE_ENGINE_STATS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "core/search_algorithm.h"
#include "util/stats.h"

namespace amici {

/// Aggregate, thread-safe counters for one engine instance — the
/// "Statistics" surface a production storage engine exposes. Benches and
/// examples dump this after their runs.
class EngineStats {
 public:
  EngineStats() = default;

  EngineStats(const EngineStats&) = delete;
  EngineStats& operator=(const EngineStats&) = delete;

  /// Folds one executed query into the per-algorithm aggregates.
  void RecordQuery(std::string_view algorithm, double elapsed_ms,
                   const SearchStats& stats);

  /// Records one query's tail-fold observation: how many un-indexed items
  /// it scanned and what that cost. These are the compaction policy's
  /// trigger inputs (see ingest/compaction_policy.h); lock-free so the
  /// scheduler can poll them without contending with queries.
  void RecordTailScan(uint64_t tail_items, double elapsed_ms);

  /// Records one completed compaction and RESETS the tail-scan trigger
  /// inputs (the tail those observations measured no longer exists).
  void NoteCompaction(double elapsed_ms);

  /// The most recent query's tail-fold observation, as one consistent
  /// pair. (items, latency) live in ONE atomic word precisely so the
  /// compaction scheduler's staleness check — which relates the two —
  /// can never see a torn observation; always read them through this.
  struct TailScanObservation {
    uint64_t items = 0;
    double elapsed_ms = 0.0;  // microsecond resolution
  };
  TailScanObservation last_tail_scan() const {
    const uint64_t packed = last_tail_scan_.load(std::memory_order_relaxed);
    return {packed >> 32,
            static_cast<double>(packed & 0xFFFFFFFFull) / 1000.0};
  }
  /// Tail size observed by the most recent query (0 after compaction).
  uint64_t last_tail_items() const { return last_tail_scan().items; }
  /// Tail-fold latency of the most recent query in milliseconds (0 after
  /// compaction).
  double last_tail_scan_ms() const { return last_tail_scan().elapsed_ms; }
  /// Compactions recorded so far.
  uint64_t compactions() const {
    return compactions_.load(std::memory_order_relaxed);
  }
  /// Duration of the most recent compaction in milliseconds.
  double last_compaction_ms() const {
    return last_compaction_ms_.load(std::memory_order_relaxed);
  }

  /// Total queries across all algorithms.
  uint64_t total_queries() const;

  /// Queries recorded for one algorithm (0 if never used).
  uint64_t QueriesFor(std::string_view algorithm) const;

  /// Mean latency for one algorithm in milliseconds (0 if never used).
  double MeanLatencyMsFor(std::string_view algorithm) const;

  /// Multi-line human-readable dump (one row per algorithm).
  std::string ToString() const;

  /// Clears all aggregates.
  void Reset();

 private:
  struct PerAlgorithm {
    OnlineStats latency_ms;
    uint64_t sorted_accesses = 0;
    uint64_t random_accesses = 0;
    uint64_t items_considered = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, PerAlgorithm, std::less<>> per_algorithm_;

  // Ingest/compaction observability (outside mutex_: read on the
  // compaction scheduler's poll path, written on every query).
  // last_tail_scan_ packs the most recent query's observation into one
  // word — tail items in the high 32 bits, scan latency in MICROSECONDS
  // in the low 32 (both saturated) — because the compaction policy's
  // staleness check needs the PAIR to be consistent.
  std::atomic<uint64_t> last_tail_scan_{0};
  std::atomic<uint64_t> compactions_{0};
  std::atomic<double> last_compaction_ms_{0.0};
};

}  // namespace amici

#endif  // AMICI_CORE_ENGINE_STATS_H_
