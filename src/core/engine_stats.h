#ifndef AMICI_CORE_ENGINE_STATS_H_
#define AMICI_CORE_ENGINE_STATS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "core/search_algorithm.h"
#include "util/stats.h"

namespace amici {

/// Aggregate, thread-safe counters for one engine instance — the
/// "Statistics" surface a production storage engine exposes. Benches and
/// examples dump this after their runs.
class EngineStats {
 public:
  EngineStats() = default;

  EngineStats(const EngineStats&) = delete;
  EngineStats& operator=(const EngineStats&) = delete;

  /// Folds one executed query into the per-algorithm aggregates.
  void RecordQuery(std::string_view algorithm, double elapsed_ms,
                   const SearchStats& stats);

  /// Total queries across all algorithms.
  uint64_t total_queries() const;

  /// Queries recorded for one algorithm (0 if never used).
  uint64_t QueriesFor(std::string_view algorithm) const;

  /// Mean latency for one algorithm in milliseconds (0 if never used).
  double MeanLatencyMsFor(std::string_view algorithm) const;

  /// Multi-line human-readable dump (one row per algorithm).
  std::string ToString() const;

  /// Clears all aggregates.
  void Reset();

 private:
  struct PerAlgorithm {
    OnlineStats latency_ms;
    uint64_t sorted_accesses = 0;
    uint64_t random_accesses = 0;
    uint64_t items_considered = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, PerAlgorithm, std::less<>> per_algorithm_;
};

}  // namespace amici

#endif  // AMICI_CORE_ENGINE_STATS_H_
