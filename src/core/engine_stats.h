#ifndef AMICI_CORE_ENGINE_STATS_H_
#define AMICI_CORE_ENGINE_STATS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "core/search_algorithm.h"
#include "util/stats.h"

namespace amici {

/// What one Compact() actually did: which path ran and how much it
/// touched. Produced by the engine, folded into EngineStats, and handed
/// to callers (the background CompactionScheduler records per-mode
/// counts from it; benches report incremental-vs-rebuild cost from it).
struct CompactionOutcome {
  /// True when this Compact actually published a snapshot. False when it
  /// abandoned its build because a concurrent Compact already covered
  /// more of the catalogue — nothing ran to completion, so per-mode
  /// accounting must skip it.
  bool published = false;
  /// True for the incremental merge path (tail folded into shared
  /// lists), false for a full index rebuild.
  bool merged = false;
  /// Tail items folded into the indexes (either path).
  uint64_t items_merged = 0;
  /// Lists rebuilt: posting lists + owner buckets + grid cells. On the
  /// merge path only tail-touched lists count; on a rebuild every
  /// non-empty list was rebuilt and is counted.
  uint64_t lists_touched = 0;
  /// Wall time of the compaction (build + publish).
  double elapsed_ms = 0.0;

  /// Stable mode label for logs and stats dumps.
  std::string_view mode() const { return merged ? "merge" : "rebuild"; }
};

/// Aggregate, thread-safe counters for one engine instance — the
/// "Statistics" surface a production storage engine exposes. Benches and
/// examples dump this after their runs.
class EngineStats {
 public:
  EngineStats() = default;

  EngineStats(const EngineStats&) = delete;
  EngineStats& operator=(const EngineStats&) = delete;

  /// Folds one executed query into the per-algorithm aggregates.
  void RecordQuery(std::string_view algorithm, double elapsed_ms,
                   const SearchStats& stats);

  /// Records one query's tail-fold observation: how many un-indexed items
  /// it scanned and what that cost. These are the compaction policy's
  /// trigger inputs (see ingest/compaction_policy.h); lock-free so the
  /// scheduler can poll them without contending with queries.
  void RecordTailScan(uint64_t tail_items, double elapsed_ms);

  /// Records one completed compaction (mode + merged/touched work) and
  /// RESETS the tail-scan trigger inputs (the tail those observations
  /// measured no longer exists).
  void NoteCompaction(const CompactionOutcome& outcome);

  /// The most recent query's tail-fold observation, as one consistent
  /// pair. (items, latency) live in ONE atomic word precisely so the
  /// compaction scheduler's staleness check — which relates the two —
  /// can never see a torn observation; always read them through this.
  struct TailScanObservation {
    uint64_t items = 0;
    double elapsed_ms = 0.0;  // microsecond resolution
  };
  TailScanObservation last_tail_scan() const {
    const uint64_t packed = last_tail_scan_.load(std::memory_order_relaxed);
    return {packed >> 32,
            static_cast<double>(packed & 0xFFFFFFFFull) / 1000.0};
  }
  /// Tail size observed by the most recent query (0 after compaction).
  uint64_t last_tail_items() const { return last_tail_scan().items; }
  /// Tail-fold latency of the most recent query in milliseconds (0 after
  /// compaction).
  double last_tail_scan_ms() const { return last_tail_scan().elapsed_ms; }
  /// Compactions recorded so far.
  uint64_t compactions() const {
    return compactions_.load(std::memory_order_relaxed);
  }
  /// Compactions that took the incremental merge path.
  uint64_t merge_compactions() const {
    return merge_compactions_.load(std::memory_order_relaxed);
  }
  /// Compactions that rebuilt the indexes from scratch.
  uint64_t rebuild_compactions() const {
    return compactions() - merge_compactions();
  }
  /// Tail items folded by compactions so far (either mode).
  uint64_t compaction_items_merged() const {
    return items_merged_.load(std::memory_order_relaxed);
  }
  /// Lists (posting lists + owner buckets + grid cells) rebuilt by
  /// compactions so far; the merge path keeps this near the tail's
  /// distinct-tag/owner/cell count instead of the whole catalogue's.
  uint64_t compaction_lists_touched() const {
    return lists_touched_.load(std::memory_order_relaxed);
  }
  /// Mode of the most recent compaction: "merge", "rebuild" or "none".
  std::string_view last_compaction_mode() const;
  /// Work counters of the most recent compaction.
  uint64_t last_items_merged() const {
    return last_items_merged_.load(std::memory_order_relaxed);
  }
  uint64_t last_lists_touched() const {
    return last_lists_touched_.load(std::memory_order_relaxed);
  }
  /// Duration of the most recent compaction in milliseconds.
  double last_compaction_ms() const {
    return last_compaction_ms_.load(std::memory_order_relaxed);
  }

  /// Total queries across all algorithms.
  uint64_t total_queries() const;

  /// Queries recorded for one algorithm (0 if never used).
  uint64_t QueriesFor(std::string_view algorithm) const;

  /// Mean latency for one algorithm in milliseconds (0 if never used).
  double MeanLatencyMsFor(std::string_view algorithm) const;

  /// Multi-line human-readable dump (one row per algorithm).
  std::string ToString() const;

  /// Clears all aggregates.
  void Reset();

 private:
  struct PerAlgorithm {
    OnlineStats latency_ms;
    uint64_t sorted_accesses = 0;
    uint64_t random_accesses = 0;
    uint64_t items_considered = 0;
    uint64_t blocks_decoded = 0;
    uint64_t blocks_skipped = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, PerAlgorithm, std::less<>> per_algorithm_;

  // Ingest/compaction observability (outside mutex_: read on the
  // compaction scheduler's poll path, written on every query).
  // last_tail_scan_ packs the most recent query's observation into one
  // word — tail items in the high 32 bits, scan latency in MICROSECONDS
  // in the low 32 (both saturated) — because the compaction policy's
  // staleness check needs the PAIR to be consistent.
  std::atomic<uint64_t> last_tail_scan_{0};
  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> merge_compactions_{0};
  std::atomic<uint64_t> items_merged_{0};
  std::atomic<uint64_t> lists_touched_{0};
  std::atomic<uint64_t> last_items_merged_{0};
  std::atomic<uint64_t> last_lists_touched_{0};
  std::atomic<int> last_mode_{0};  // 0 = none, 1 = rebuild, 2 = merge
  std::atomic<double> last_compaction_ms_{0.0};
};

}  // namespace amici

#endif  // AMICI_CORE_ENGINE_STATS_H_
