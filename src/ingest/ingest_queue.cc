#include "ingest/ingest_queue.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace amici {

namespace {

std::shared_ptr<internal::TicketState> MakeState() {
  return std::make_shared<internal::TicketState>();
}

}  // namespace

IngestTicket IngestTicket::Resolved(Status status, std::vector<ItemId> ids) {
  auto state = MakeState();
  state->done = true;
  state->status = std::move(status);
  state->ids = std::move(ids);
  return IngestTicket(std::move(state));
}

uint64_t IngestTicket::sequence() const {
  AMICI_CHECK(state_ != nullptr);
  // Written once, before the ticket is handed out; safe without the lock.
  return state_->sequence;
}

bool IngestTicket::done() const {
  AMICI_CHECK(state_ != nullptr);
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

Status IngestTicket::Wait() const {
  AMICI_CHECK(state_ != nullptr);
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->status;
}

std::vector<ItemId> IngestTicket::ids() const {
  AMICI_CHECK(state_ != nullptr);
  std::lock_guard<std::mutex> lock(state_->mutex);
  AMICI_CHECK(state_->done) << "ids() before the ticket completed";
  return state_->ids;
}

IngestQueue::IngestQueue(Options options) : options_(options) {
  AMICI_CHECK(options_.capacity >= 1) << "queue capacity must be >= 1";
}

Status IngestQueue::AdmitLocked(bool coalescible, bool* coalesce,
                                std::unique_lock<std::mutex>& lock) {
  *coalesce = false;
  while (true) {
    if (closed_) {
      ++counters_.rejected;
      return Status::FailedPrecondition("ingest queue is closed");
    }
    if (ops_.size() < options_.capacity) return Status::Ok();
    if (options_.backpressure == BackpressureMode::kReject) {
      ++counters_.rejected;
      return Status::ResourceExhausted("ingest queue is full");
    }
    if (options_.backpressure == BackpressureMode::kCoalesce &&
        coalescible && !ops_.empty() &&
        ops_.back().kind == IngestOp::Kind::kItems &&
        ops_.back().items.size() < options_.max_coalesced_items) {
      *coalesce = true;
      return Status::Ok();
    }
    // kBlock — or a kCoalesce op that cannot fold (an edit at the tail
    // would be reordered past; a tail batch at max_coalesced_items must
    // stop absorbing, or the backlog would be unbounded): wait for the
    // writer to drain, then re-evaluate.
    ++counters_.producer_waits;
    space_available_.wait(lock, [&] {
      return closed_ || ops_.size() < options_.capacity;
    });
  }
}

Result<IngestTicket> IngestQueue::PushItems(std::vector<Item> items) {
  if (items.empty()) return IngestTicket::Resolved(Status::Ok(), {});
  std::unique_lock<std::mutex> lock(mutex_);
  bool coalesce = false;
  AMICI_RETURN_IF_ERROR(AdmitLocked(/*coalescible=*/true, &coalesce, lock));

  auto state = MakeState();
  state->sequence = ++last_sequence_;
  ++counters_.batches_enqueued;
  counters_.items_enqueued += items.size();
  if (coalesce) {
    IngestOp& tail = ops_.back();
    tail.slices.push_back({state, items.size()});
    tail.items.insert(tail.items.end(),
                      std::make_move_iterator(items.begin()),
                      std::make_move_iterator(items.end()));
    ++counters_.batches_coalesced;
  } else {
    IngestOp op;
    op.kind = IngestOp::Kind::kItems;
    op.slices.push_back({state, items.size()});
    op.items = std::move(items);
    ops_.push_back(std::move(op));
  }
  counters_.max_queue_depth =
      std::max<uint64_t>(counters_.max_queue_depth, ops_.size());
  lock.unlock();
  work_available_.notify_one();
  return IngestTicket(std::move(state));
}

Result<IngestTicket> IngestQueue::PushEdit(IngestOp::Kind kind, UserId u,
                                           UserId v) {
  std::unique_lock<std::mutex> lock(mutex_);
  bool coalesce = false;
  AMICI_RETURN_IF_ERROR(AdmitLocked(/*coalescible=*/false, &coalesce, lock));

  auto state = MakeState();
  state->sequence = ++last_sequence_;
  ++counters_.edits_enqueued;
  IngestOp op;
  op.kind = kind;
  op.u = u;
  op.v = v;
  op.ticket = state;
  ops_.push_back(std::move(op));
  counters_.max_queue_depth =
      std::max<uint64_t>(counters_.max_queue_depth, ops_.size());
  lock.unlock();
  work_available_.notify_one();
  return IngestTicket(std::move(state));
}

Result<IngestTicket> IngestQueue::PushAddFriendship(UserId u, UserId v) {
  return PushEdit(IngestOp::Kind::kAddFriendship, u, v);
}

Result<IngestTicket> IngestQueue::PushRemoveFriendship(UserId u, UserId v) {
  return PushEdit(IngestOp::Kind::kRemoveFriendship, u, v);
}

std::vector<IngestOp> IngestQueue::PopAll() {
  std::unique_lock<std::mutex> lock(mutex_);
  work_available_.wait(lock, [&] { return closed_ || !ops_.empty(); });
  std::vector<IngestOp> drained = std::move(ops_);
  ops_.clear();
  lock.unlock();
  // Every slot is free now; wake all blocked producers.
  space_available_.notify_all();
  return drained;
}

void IngestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  work_available_.notify_all();
  space_available_.notify_all();
}

uint64_t IngestQueue::last_sequence() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_sequence_;
}

size_t IngestQueue::pending_ops() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ops_.size();
}

IngestCounters IngestQueue::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace amici
