#ifndef AMICI_INGEST_INGEST_QUEUE_H_
#define AMICI_INGEST_INGEST_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "storage/item_store.h"
#include "util/ids.h"
#include "util/status.h"

namespace amici {

namespace internal {

/// Shared completion state behind one IngestTicket. Resolved exactly once
/// by the writer thread (or synchronously on the fallback path).
struct TicketState {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  Status status;
  /// Global ids assigned to the ticket's items, in enqueue order. Empty
  /// for friendship edits and failed batches.
  std::vector<ItemId> ids;
  /// Queue admission sequence number (monotonic per queue).
  uint64_t sequence = 0;
};

}  // namespace internal

/// A handle to one enqueued ingest operation. Cheap to copy; all copies
/// observe the same completion. Default-constructed tickets are invalid.
class IngestTicket {
 public:
  IngestTicket() = default;
  explicit IngestTicket(std::shared_ptr<internal::TicketState> state)
      : state_(std::move(state)) {}

  /// Builds an already-completed ticket (the synchronous fallback path of
  /// SearchService::EnqueueItems when no pipeline is running).
  static IngestTicket Resolved(Status status, std::vector<ItemId> ids);

  bool valid() const { return state_ != nullptr; }

  /// Queue admission order; later tickets have larger sequences.
  uint64_t sequence() const;

  /// True once the writer thread has applied (or rejected) the operation.
  bool done() const;

  /// Blocks until the operation is applied; returns its final status.
  Status Wait() const;

  /// Ids assigned to the ticket's items. Only meaningful after Wait()
  /// returned Ok; empty for friendship edits.
  std::vector<ItemId> ids() const;

 private:
  std::shared_ptr<internal::TicketState> state_;
};

/// What a producer experiences when the queue is at capacity.
enum class BackpressureMode {
  /// Producers wait until the writer thread frees a slot.
  kBlock,
  /// Producers get ResourceExhausted immediately (shed load upstream).
  kReject,
  /// Item batches are folded into the newest queued batch instead of
  /// occupying a new slot, so bursts absorb without waiting while BOTH
  /// bounds hold: at most `capacity` ops, each at most
  /// `max_coalesced_items` items. When folding is impossible — the
  /// newest op is a friendship edit (folding past it would reorder), or
  /// the tail batch is at its size cap — the producer blocks like
  /// kBlock.
  kCoalesce,
};

/// One queued operation, as handed to the writer thread by PopAll().
struct IngestOp {
  enum class Kind { kItems, kAddFriendship, kRemoveFriendship };

  /// One enqueued batch inside a (possibly coalesced) items op: `count`
  /// consecutive items belong to `ticket`.
  struct Slice {
    std::shared_ptr<internal::TicketState> ticket;
    size_t count = 0;
  };

  Kind kind = Kind::kItems;
  /// kItems: the concatenated batches, slice by slice.
  std::vector<Item> items;
  std::vector<Slice> slices;
  /// Friendship edits.
  UserId u = 0;
  UserId v = 0;
  std::shared_ptr<internal::TicketState> ticket;  // edits only
};

/// Producer-side counters (drain-side counters live in IngestPipeline;
/// IngestPipeline::counters() merges both into one snapshot).
struct IngestCounters {
  uint64_t batches_enqueued = 0;
  uint64_t items_enqueued = 0;
  uint64_t edits_enqueued = 0;
  /// Batches folded into an earlier queued batch (kCoalesce at capacity).
  uint64_t batches_coalesced = 0;
  /// Batches/edits refused (kReject at capacity, or queue closed).
  uint64_t rejected = 0;
  /// Times a producer had to wait for a slot (kBlock at capacity).
  uint64_t producer_waits = 0;
  uint64_t max_queue_depth = 0;
  // --- drain side (filled in by IngestPipeline::counters()) ------------
  /// Writer wake-ups that applied at least one op.
  uint64_t drain_cycles = 0;
  /// AddItems calls issued; < batches_enqueued when drains coalesced
  /// adjacent batches into one call (one snapshot publish each).
  uint64_t apply_calls = 0;
  uint64_t items_applied = 0;
  uint64_t edits_applied = 0;
  uint64_t apply_errors = 0;
  /// Exponentially-weighted items/s over the drain side (time constant
  /// ~1s), updated once per drain cycle. 0 until the first cycle applies
  /// items; decays towards the recent rate, so a stalled pipeline reads
  /// low instead of reporting its lifetime average forever.
  double items_per_sec_ewma = 0.0;
};

/// Bounded multi-producer single-consumer queue of ingest operations.
///
/// Thread-safety: any number of producers may Push* concurrently with one
/// consumer calling PopAll. Close() may be called from any thread;
/// afterwards producers are rejected and PopAll drains what is left, then
/// returns empty.
class IngestQueue {
 public:
  struct Options {
    /// Maximum queued ops before backpressure applies; >= 1.
    size_t capacity = 1024;
    BackpressureMode backpressure = BackpressureMode::kBlock;
    /// kCoalesce only: a coalesced batch stops absorbing further batches
    /// at this many items (the producer then blocks), which caps the
    /// buffered backlog at capacity * max_coalesced_items items.
    size_t max_coalesced_items = 65536;
  };

  explicit IngestQueue(Options options);

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  /// Enqueues a batch of items (one ticket covering the whole batch).
  /// Empty batches complete immediately without occupying a slot.
  Result<IngestTicket> PushItems(std::vector<Item> items);

  /// Enqueues one friendship edit.
  Result<IngestTicket> PushAddFriendship(UserId u, UserId v);
  Result<IngestTicket> PushRemoveFriendship(UserId u, UserId v);

  /// Consumer side: blocks until at least one op is queued (or the queue
  /// is closed), then returns everything queued, in admission order. An
  /// empty result means closed-and-drained — the consumer should exit.
  std::vector<IngestOp> PopAll();

  /// Rejects future producers and wakes everyone (blocked producers get
  /// ResourceExhausted; the consumer drains the remainder).
  void Close();

  /// Sequence number of the newest admitted operation (0 when none yet).
  /// The Flush() barrier waits for the applied sequence to reach this.
  uint64_t last_sequence() const;

  size_t pending_ops() const;

  /// Producer-side counter snapshot.
  IngestCounters counters() const;

 private:
  Result<IngestTicket> PushEdit(IngestOp::Kind kind, UserId u, UserId v);

  /// Waits for a slot (kBlock) or reports how the caller must proceed.
  /// Returns Ok with *coalesce set when the op should be folded into the
  /// queue tail instead of appended. Callers hold `mutex_`.
  Status AdmitLocked(bool coalescible, bool* coalesce,
                     std::unique_lock<std::mutex>& lock);

  const Options options_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;  // consumer waits
  std::condition_variable space_available_;  // blocked producers wait
  std::vector<IngestOp> ops_;
  bool closed_ = false;
  uint64_t last_sequence_ = 0;
  IngestCounters counters_;
};

}  // namespace amici

#endif  // AMICI_INGEST_INGEST_QUEUE_H_
