#include "ingest/compaction_scheduler.h"

#include <chrono>
#include <utility>

#include "util/logging.h"

namespace amici {

CompactionScheduler::CompactionScheduler(CompactionTarget* target,
                                         Options options)
    : target_(target), options_(std::move(options)) {
  AMICI_CHECK(target_ != nullptr);
  if (options_.policy == nullptr) {
    options_.policy = std::make_shared<AdaptiveCompactionPolicy>();
  }
  AMICI_CHECK(options_.poll_interval_ms > 0.0);
  poller_ = std::thread(&CompactionScheduler::SchedulerLoop, this);
}

CompactionScheduler::~CompactionScheduler() { Stop(); }

size_t CompactionScheduler::PollOnce() {
  size_t compacted = 0;
  const size_t shards = target_->num_shards();
  for (size_t s = 0; s < shards; ++s) {
    if (!options_.policy->ShouldCompact(target_->ShardSignals(s))) continue;
    CompactionOutcome outcome;
    const Status status = target_->CompactShard(s, &outcome);
    if (status.ok()) {
      ++compacted;
      compactions_.fetch_add(1, std::memory_order_relaxed);
      // Per-mode counts only for compactions that actually published —
      // a Compact abandoned to a concurrent winner ran neither path.
      if (outcome.published) {
        (outcome.merged ? merge_compactions_ : rebuild_compactions_)
            .fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      errors_.fetch_add(1, std::memory_order_relaxed);
      AMICI_LOG(kWarning) << "background compaction of shard " << s
                          << " failed: " << status.ToString();
    }
  }
  return compacted;
}

void CompactionScheduler::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (stopped_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  poller_.join();
  stopped_ = true;
}

void CompactionScheduler::SchedulerLoop() {
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(options_.poll_interval_ms));
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    if (stop_cv_.wait_for(lock, interval, [&] { return stopping_; })) break;
    lock.unlock();
    PollOnce();
    lock.lock();
  }
}

}  // namespace amici
