#ifndef AMICI_INGEST_COMPACTION_SCHEDULER_H_
#define AMICI_INGEST_COMPACTION_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/engine_stats.h"
#include "ingest/compaction_policy.h"
#include "util/status.h"

namespace amici {

/// What the scheduler compacts: a set of independently-compactable shards
/// (1 for the local backend). Both SearchService backends implement it.
/// ShardSignals/CompactShard must be safe to call from the scheduler
/// thread concurrently with queries and ingest — which the engines'
/// snapshot protocol already guarantees.
class CompactionTarget {
 public:
  virtual ~CompactionTarget() = default;

  /// Number of partitions behind the surface (1 for local).
  virtual size_t num_shards() const = 0;
  /// Trigger inputs of shard `shard` (< num_shards()).
  virtual CompactionSignals ShardSignals(size_t shard) const = 0;
  /// Folds ONE shard's tail into fresh indexes, leaving the other shards
  /// untouched — per-shard compaction, not fleet-wide. `outcome`, when
  /// non-null, receives which path ran (incremental merge vs full
  /// rebuild) and how much it touched; the scheduler records per-mode
  /// counts from it.
  virtual Status CompactShard(size_t shard,
                              CompactionOutcome* outcome = nullptr) = 0;
};

/// Background driver that turns manual Compact() calls into policy: a
/// thread polls every shard's CompactionSignals on a fixed cadence and
/// compacts exactly the shards whose policy fires. Because the engines
/// build indexes off the writer lock, a triggered compaction runs
/// concurrently with queries AND ingest; the scheduler merely decides
/// WHEN and WHERE.
class CompactionScheduler {
 public:
  struct Options {
    /// Shared across shards; null selects AdaptiveCompactionPolicy with
    /// default options.
    std::shared_ptr<const CompactionPolicy> policy;
    /// Cadence of the signal poll, milliseconds.
    double poll_interval_ms = 20.0;
  };

  /// Starts the scheduler thread immediately. `target` must outlive this
  /// object (or outlive Stop(), which joins the thread).
  CompactionScheduler(CompactionTarget* target, Options options);

  /// Stops and joins.
  ~CompactionScheduler();

  CompactionScheduler(const CompactionScheduler&) = delete;
  CompactionScheduler& operator=(const CompactionScheduler&) = delete;

  /// Evaluates the policy on every shard once, compacting where it fires;
  /// returns how many shards were compacted. The scheduler thread calls
  /// this on its cadence; tests call it directly for determinism.
  size_t PollOnce();

  /// Stops the polling thread. Idempotent.
  void Stop();

  const CompactionPolicy& policy() const { return *options_.policy; }

  /// Compactions triggered since construction (sum over shards).
  uint64_t compactions_triggered() const {
    return compactions_.load(std::memory_order_relaxed);
  }
  /// Of those, how many took the incremental merge path vs a full
  /// rebuild — which compaction mode the policy's firings actually hit.
  /// The two may sum below compactions_triggered(): a Compact abandoned
  /// to a concurrent winner counts as triggered but ran neither path.
  uint64_t merge_compactions_triggered() const {
    return merge_compactions_.load(std::memory_order_relaxed);
  }
  uint64_t rebuild_compactions_triggered() const {
    return rebuild_compactions_.load(std::memory_order_relaxed);
  }
  /// CompactShard calls that returned an error.
  uint64_t compaction_errors() const {
    return errors_.load(std::memory_order_relaxed);
  }

 private:
  void SchedulerLoop();

  CompactionTarget* const target_;
  Options options_;

  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> merge_compactions_{0};
  std::atomic<uint64_t> rebuild_compactions_{0};
  std::atomic<uint64_t> errors_{0};

  std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;  // guarded by mutex_

  std::mutex stop_mutex_;  // serializes Stop() callers across the join
  bool stopped_ = false;   // guarded by stop_mutex_
  std::thread poller_;
};

}  // namespace amici

#endif  // AMICI_INGEST_COMPACTION_SCHEDULER_H_
