#ifndef AMICI_INGEST_INGEST_SINK_H_
#define AMICI_INGEST_INGEST_SINK_H_

#include <span>
#include <vector>

#include "storage/item_store.h"
#include "util/ids.h"
#include "util/status.h"

namespace amici {

/// The synchronous write surface the ingest pipeline drains into. Both
/// SearchService backends implement it (their existing mutators match
/// these signatures), which is what lets the pipeline live below the
/// service layer without depending on it.
///
/// Contract (inherited by every implementation):
///  * AddItems appends a batch atomically (all-or-nothing) and returns
///    ids in batch order; safe concurrently with queries, serializes with
///    other mutators;
///  * AddFriendship / RemoveFriendship edit one edge everywhere the graph
///    lives (AlreadyExists / NotFound on duplicates / missing edges).
class IngestSink {
 public:
  virtual ~IngestSink() = default;

  virtual Result<std::vector<ItemId>> AddItems(
      std::span<const Item> items) = 0;
  virtual Status AddFriendship(UserId u, UserId v) = 0;
  virtual Status RemoveFriendship(UserId u, UserId v) = 0;
};

}  // namespace amici

#endif  // AMICI_INGEST_INGEST_SINK_H_
