#ifndef AMICI_INGEST_COMPACTION_POLICY_H_
#define AMICI_INGEST_COMPACTION_POLICY_H_

#include <cstddef>
#include <string_view>

namespace amici {

/// The trigger inputs a compaction policy observes for ONE engine (one
/// shard). Tail size is read live from the engine snapshot; the tail-scan
/// latency is the most recent query's observation as recorded by
/// EngineStats::RecordTailScan (and reset by compaction).
struct CompactionSignals {
  /// Items in the un-indexed tail right now.
  size_t tail_items = 0;
  /// Items covered by the current indexes (the compaction cost proxy).
  size_t indexed_items = 0;
  /// Tail-fold latency of the most recent query, milliseconds; 0 when no
  /// query has scanned a tail since the last compaction.
  double last_tail_scan_ms = 0.0;
  /// Tail size that query observed. When it EXCEEDS tail_items the
  /// observation predates a compaction (tails only shrink by compacting)
  /// — a query pinned to an old snapshot wrote its stale measurement
  /// after the compaction reset the stats — and the latency reading must
  /// not be trusted against the current, smaller tail.
  size_t last_tail_scan_items = 0;
};

/// Decides when an engine's tail should be folded into fresh indexes.
/// Implementations must be stateless const objects: one policy instance
/// is shared across every shard of a service and consulted concurrently.
class CompactionPolicy {
 public:
  virtual ~CompactionPolicy() = default;

  /// Stable identifier for logs and bench output.
  virtual std::string_view name() const = 0;

  /// True when `signals` warrants compacting this shard now.
  virtual bool ShouldCompact(const CompactionSignals& signals) const = 0;
};

/// The default policy: compact when the tail is large in absolute terms
/// OR when queries are measurably paying for it (tail-scan latency over
/// budget, gated on a minimum tail so a timing blip on a near-empty tail
/// cannot trigger a full index rebuild). An empty tail never triggers.
class AdaptiveCompactionPolicy final : public CompactionPolicy {
 public:
  struct Options {
    /// Tail-size trigger: compact once this many items are un-indexed.
    size_t max_tail_items = 8192;
    /// Latency trigger: compact once a query's tail fold costs more than
    /// this many milliseconds...
    double max_tail_scan_ms = 2.0;
    /// ...provided the tail holds at least this many items.
    size_t min_tail_items = 64;
  };

  AdaptiveCompactionPolicy() = default;
  explicit AdaptiveCompactionPolicy(Options options) : options_(options) {}

  std::string_view name() const override { return "adaptive"; }
  bool ShouldCompact(const CompactionSignals& signals) const override;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace amici

#endif  // AMICI_INGEST_COMPACTION_POLICY_H_
