#include "ingest/compaction_policy.h"

namespace amici {

bool AdaptiveCompactionPolicy::ShouldCompact(
    const CompactionSignals& signals) const {
  if (signals.tail_items == 0) return false;
  if (signals.tail_items >= options_.max_tail_items) return true;
  // Latency trigger: only on a measurement of the CURRENT tail (or a
  // prefix of it). An observation covering more items than the tail now
  // holds was taken against a pre-compaction tail that no longer exists;
  // acting on it would re-compact a near-empty tail back to back.
  return signals.tail_items >= options_.min_tail_items &&
         signals.last_tail_scan_items <= signals.tail_items &&
         signals.last_tail_scan_ms > options_.max_tail_scan_ms;
}

}  // namespace amici
