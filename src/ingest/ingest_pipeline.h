#ifndef AMICI_INGEST_INGEST_PIPELINE_H_
#define AMICI_INGEST_INGEST_PIPELINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "ingest/ingest_queue.h"
#include "ingest/ingest_sink.h"

namespace amici {

/// Drain-side work counters of one ApplyIngestOps call (accumulated into
/// the pipeline's totals by the writer thread).
struct ApplyStats {
  uint64_t apply_calls = 0;
  uint64_t items_applied = 0;
  uint64_t edits_applied = 0;
  uint64_t errors = 0;
};

/// Applies one drained op sequence to `sink`, in admission order,
/// resolving every ticket. Adjacent item batches are coalesced into ONE
/// AddItems call — one writer-lock acquisition and one snapshot publish
/// for the whole run — falling back to per-batch application when the
/// combined call is rejected, so validation errors land on the ticket
/// that caused them (batch atomicity is per enqueued batch, never per
/// drain cycle). Exposed as a free function so tests can drive the drain
/// logic deterministically, without the writer thread.
void ApplyIngestOps(IngestSink* sink, std::vector<IngestOp> ops,
                    ApplyStats* stats);

/// The ingest subsystem's front half: a bounded MPSC queue of item
/// batches and friendship edits, drained by one dedicated writer thread
/// into an IngestSink (either SearchService backend).
///
/// Producers get an IngestTicket per enqueue and never touch the sink's
/// writer lock; the writer thread coalesces whatever queued since its
/// last wake-up into the fewest possible sink calls. Flush() is the
/// read-your-writes barrier: it returns once everything enqueued before
/// the call has been applied (and is therefore query-visible).
class IngestPipeline {
 public:
  struct Options {
    IngestQueue::Options queue;
  };

  /// Starts the writer thread immediately. `sink` must outlive this
  /// object (or outlive Stop(), which joins the thread).
  IngestPipeline(IngestSink* sink, Options options);

  /// Stops and joins (drains the queue first).
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Enqueues a batch; the ticket completes when the writer applied it.
  /// Subject to the queue's backpressure mode.
  Result<IngestTicket> EnqueueItems(std::vector<Item> items);
  Result<IngestTicket> EnqueueAddFriendship(UserId u, UserId v);
  Result<IngestTicket> EnqueueRemoveFriendship(UserId u, UserId v);

  /// Barrier: returns once every operation enqueued BEFORE this call has
  /// been applied to the sink. Concurrent enqueues may or may not be
  /// covered. Always returns Ok (per-op failures are reported on their
  /// tickets, not here).
  Status Flush();

  /// Closes the queue (new producers are rejected), drains what is
  /// already queued, and joins the writer thread. Idempotent.
  void Stop();

  /// Merged producer + drain side counter snapshot.
  IngestCounters counters() const;

 private:
  void WriterLoop();

  IngestSink* const sink_;
  IngestQueue queue_;

  std::mutex applied_mutex_;
  std::condition_variable applied_cv_;
  uint64_t applied_sequence_ = 0;  // guarded by applied_mutex_

  std::atomic<uint64_t> drain_cycles_{0};
  std::atomic<uint64_t> apply_calls_{0};
  std::atomic<uint64_t> items_applied_{0};
  std::atomic<uint64_t> edits_applied_{0};
  std::atomic<uint64_t> apply_errors_{0};
  /// Drain-side ingest rate (items/s, EWMA with ~1s time constant).
  /// Written only by the writer thread after each drain cycle; read by
  /// counters() from any thread, which applies the decay for the time
  /// elapsed SINCE the last drain — so a stalled pipeline reads low
  /// instead of freezing at its last busy-period value.
  std::atomic<double> items_per_sec_ewma_{0.0};
  /// steady_clock nanoseconds of the previous EWMA update (atomic: the
  /// read-side decay in counters() needs it too).
  std::atomic<int64_t> last_rate_update_ns_{
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count()};

  std::mutex stop_mutex_;  // serializes Stop() callers
  bool stopped_ = false;   // guarded by stop_mutex_
  std::thread writer_;
};

}  // namespace amici

#endif  // AMICI_INGEST_INGEST_PIPELINE_H_
