#include "ingest/ingest_pipeline.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/logging.h"

namespace amici {

namespace {

/// Time constant of the drain-side items/s EWMA (seconds).
constexpr double kRateEwmaTauSec = 1.0;

void ResolveTicket(const std::shared_ptr<internal::TicketState>& state,
                   Status status, std::vector<ItemId> ids) {
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    AMICI_CHECK(!state->done) << "ticket resolved twice";
    state->done = true;
    state->status = std::move(status);
    state->ids = std::move(ids);
  }
  state->cv.notify_all();
}

/// Applies one maximal run of coalesced item batches: ONE AddItems call
/// when the sink admits the combined batch, per-slice fallback otherwise
/// so the rejection lands on the ticket that caused it.
void ApplyItemsRun(IngestSink* sink, std::span<const Item> items,
                   std::span<const IngestOp::Slice> slices,
                   ApplyStats* stats) {
  ++stats->apply_calls;
  Result<std::vector<ItemId>> ids = sink->AddItems(items);
  if (ids.ok()) {
    stats->items_applied += items.size();
    size_t offset = 0;
    for (const IngestOp::Slice& slice : slices) {
      ResolveTicket(slice.ticket, Status::Ok(),
                    {ids.value().begin() + offset,
                     ids.value().begin() + offset + slice.count});
      offset += slice.count;
    }
    AMICI_CHECK(offset == ids.value().size());
    return;
  }
  if (slices.size() == 1) {
    ++stats->errors;
    ResolveTicket(slices[0].ticket, ids.status(), {});
    return;
  }
  // The combined batch was rejected (it is all-or-nothing, so nothing was
  // appended). Re-apply slice by slice: atomicity is per ENQUEUED batch,
  // so healthy batches must not be sunk by a bad neighbour they happened
  // to share a drain cycle with.
  size_t offset = 0;
  for (const IngestOp::Slice& slice : slices) {
    ++stats->apply_calls;
    Result<std::vector<ItemId>> slice_ids =
        sink->AddItems(items.subspan(offset, slice.count));
    if (slice_ids.ok()) {
      stats->items_applied += slice.count;
      ResolveTicket(slice.ticket, Status::Ok(),
                    std::move(slice_ids).value());
    } else {
      ++stats->errors;
      ResolveTicket(slice.ticket, slice_ids.status(), {});
    }
    offset += slice.count;
  }
}

}  // namespace

void ApplyIngestOps(IngestSink* sink, std::vector<IngestOp> ops,
                    ApplyStats* stats) {
  size_t i = 0;
  while (i < ops.size()) {
    if (ops[i].kind != IngestOp::Kind::kItems) {
      const IngestOp& op = ops[i];
      const Status status = op.kind == IngestOp::Kind::kAddFriendship
                                ? sink->AddFriendship(op.u, op.v)
                                : sink->RemoveFriendship(op.u, op.v);
      ++stats->edits_applied;
      if (!status.ok()) ++stats->errors;
      ResolveTicket(op.ticket, status, {});
      ++i;
      continue;
    }
    // Extend the run across ADJACENT item ops (never past an edit: the
    // queue order is the ingest order callers observe).
    size_t j = i + 1;
    while (j < ops.size() && ops[j].kind == IngestOp::Kind::kItems) ++j;
    if (j == i + 1) {
      ApplyItemsRun(sink, ops[i].items, ops[i].slices, stats);
    } else {
      std::vector<Item> combined;
      std::vector<IngestOp::Slice> slices;
      for (size_t k = i; k < j; ++k) {
        combined.insert(combined.end(),
                        std::make_move_iterator(ops[k].items.begin()),
                        std::make_move_iterator(ops[k].items.end()));
        slices.insert(slices.end(),
                      std::make_move_iterator(ops[k].slices.begin()),
                      std::make_move_iterator(ops[k].slices.end()));
      }
      ApplyItemsRun(sink, combined, slices, stats);
    }
    i = j;
  }
}

IngestPipeline::IngestPipeline(IngestSink* sink, Options options)
    : sink_(sink), queue_(options.queue) {
  AMICI_CHECK(sink_ != nullptr);
  writer_ = std::thread(&IngestPipeline::WriterLoop, this);
}

IngestPipeline::~IngestPipeline() { Stop(); }

Result<IngestTicket> IngestPipeline::EnqueueItems(std::vector<Item> items) {
  return queue_.PushItems(std::move(items));
}

Result<IngestTicket> IngestPipeline::EnqueueAddFriendship(UserId u,
                                                          UserId v) {
  return queue_.PushAddFriendship(u, v);
}

Result<IngestTicket> IngestPipeline::EnqueueRemoveFriendship(UserId u,
                                                             UserId v) {
  return queue_.PushRemoveFriendship(u, v);
}

Status IngestPipeline::Flush() {
  const uint64_t target = queue_.last_sequence();
  std::unique_lock<std::mutex> lock(applied_mutex_);
  applied_cv_.wait(lock, [&] { return applied_sequence_ >= target; });
  return Status::Ok();
}

void IngestPipeline::Stop() {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  if (stopped_) return;
  queue_.Close();
  writer_.join();
  stopped_ = true;
}

IngestCounters IngestPipeline::counters() const {
  IngestCounters counters = queue_.counters();
  counters.drain_cycles = drain_cycles_.load(std::memory_order_relaxed);
  counters.apply_calls = apply_calls_.load(std::memory_order_relaxed);
  counters.items_applied = items_applied_.load(std::memory_order_relaxed);
  counters.edits_applied = edits_applied_.load(std::memory_order_relaxed);
  counters.apply_errors = apply_errors_.load(std::memory_order_relaxed);
  // Decay for the time elapsed since the last drain: the writer thread
  // only updates the EWMA when a cycle completes, so without this a
  // stalled pipeline would freeze at its last busy-period rate forever.
  const int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  const int64_t last_ns = last_rate_update_ns_.load(std::memory_order_relaxed);
  const double idle_sec =
      std::max(0.0, static_cast<double>(now_ns - last_ns) * 1e-9);
  counters.items_per_sec_ewma =
      items_per_sec_ewma_.load(std::memory_order_relaxed) *
      std::exp(-idle_sec / kRateEwmaTauSec);
  return counters;
}

void IngestPipeline::WriterLoop() {
  while (true) {
    std::vector<IngestOp> ops = queue_.PopAll();
    if (ops.empty()) break;  // closed and drained
    uint64_t max_sequence = 0;
    for (const IngestOp& op : ops) {
      for (const IngestOp::Slice& slice : op.slices) {
        max_sequence = std::max(max_sequence, slice.ticket->sequence);
      }
      if (op.ticket != nullptr) {
        max_sequence = std::max(max_sequence, op.ticket->sequence);
      }
    }
    ApplyStats stats;
    ApplyIngestOps(sink_, std::move(ops), &stats);

    // Ingest-rate EWMA: blend this cycle's instantaneous items/s in with
    // a weight that grows with the time elapsed since the last cycle
    // (alpha = 1 - exp(-dt/tau), tau = 1s), so the rate is cadence-
    // independent: many small drains and one big drain covering the same
    // second converge to the same number.
    {
      const int64_t now_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count();
      const int64_t last_ns =
          last_rate_update_ns_.load(std::memory_order_relaxed);
      const double dt_sec =
          std::max(1e-6, static_cast<double>(now_ns - last_ns) * 1e-9);
      last_rate_update_ns_.store(now_ns, std::memory_order_relaxed);
      const double alpha = 1.0 - std::exp(-dt_sec / kRateEwmaTauSec);
      const double instantaneous =
          static_cast<double>(stats.items_applied) / dt_sec;
      const double previous =
          items_per_sec_ewma_.load(std::memory_order_relaxed);
      items_per_sec_ewma_.store(
          previous + alpha * (instantaneous - previous),
          std::memory_order_relaxed);
    }

    drain_cycles_.fetch_add(1, std::memory_order_relaxed);
    apply_calls_.fetch_add(stats.apply_calls, std::memory_order_relaxed);
    items_applied_.fetch_add(stats.items_applied, std::memory_order_relaxed);
    edits_applied_.fetch_add(stats.edits_applied, std::memory_order_relaxed);
    apply_errors_.fetch_add(stats.errors, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(applied_mutex_);
      applied_sequence_ = std::max(applied_sequence_, max_sequence);
    }
    applied_cv_.notify_all();
  }
}

}  // namespace amici
