#include "workload/dataset_config.h"

namespace amici {

DatasetConfig SmallDataset() {
  DatasetConfig config;
  config.name = "small";
  config.num_users = 2000;
  config.degree_param = 8.0;
  config.items_per_user = 4.0;
  config.num_tags = 2000;
  config.geo_fraction = 0.5;
  config.seed = 1;
  return config;
}

DatasetConfig MediumDataset() {
  DatasetConfig config;
  config.name = "medium";
  config.num_users = 20000;
  config.degree_param = 12.0;
  config.items_per_user = 5.0;
  config.num_tags = 10000;
  config.geo_fraction = 0.5;
  config.seed = 2;
  return config;
}

DatasetConfig LargeDataset() {
  DatasetConfig config;
  config.name = "large";
  config.num_users = 100000;
  config.degree_param = 15.0;
  config.items_per_user = 5.0;
  config.num_tags = 40000;
  config.geo_fraction = 0.5;
  config.seed = 3;
  return config;
}

DatasetConfig ScaledDataset(size_t num_users) {
  DatasetConfig config = MediumDataset();
  config.name = "scaled-" + std::to_string(num_users);
  config.num_users = num_users;
  // Tag vocabulary grows sub-linearly with the corpus, as in real systems.
  config.num_tags = 2000 + num_users / 2;
  config.seed = 7 + num_users;
  return config;
}

}  // namespace amici
