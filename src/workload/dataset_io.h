#ifndef AMICI_WORKLOAD_DATASET_IO_H_
#define AMICI_WORKLOAD_DATASET_IO_H_

#include <string>

#include "util/status.h"
#include "workload/dataset_generator.h"

namespace amici {

/// Persists a dataset as three files inside `directory` (which must
/// exist): graph.amig, items.amis, tags.amid. The DatasetConfig itself is
/// not persisted — datasets are regenerable from their config; saving is
/// for sharing exact corpora across machines or pinning a corpus for a
/// long experiment series.
Status SaveDataset(const Dataset& dataset, const std::string& directory);

/// Loads a dataset previously written by SaveDataset. The returned
/// config carries only the name hint, not the generation parameters.
Result<Dataset> LoadDataset(const std::string& directory);

}  // namespace amici

#endif  // AMICI_WORKLOAD_DATASET_IO_H_
