#ifndef AMICI_WORKLOAD_DATASET_GENERATOR_H_
#define AMICI_WORKLOAD_DATASET_GENERATOR_H_

#include "graph/social_graph.h"
#include "storage/item_store.h"
#include "storage/tag_dictionary.h"
#include "util/status.h"
#include "workload/dataset_config.h"

namespace amici {

/// A fully materialized synthetic dataset.
struct Dataset {
  SocialGraph graph;
  ItemStore store;
  TagDictionary tags;
  DatasetConfig config;
};

/// Generates a dataset from `config`, deterministically from config.seed.
///
/// Pipeline: (1) friendship graph per config.graph_kind; (2) item owners
/// drawn degree-biased (active users post more); (3) item tags drawn from
/// a Zipf vocabulary, except that with probability `social_locality` a tag
/// is copied from a random friend's earlier item — this plants the
/// "friends post similar things" correlation the social algorithms
/// exploit; (4) quality via the skewed-uniform law; (5) geo positions
/// clustered into Gaussian cities for the configured fraction of items.
Result<Dataset> GenerateDataset(const DatasetConfig& config);

}  // namespace amici

#endif  // AMICI_WORKLOAD_DATASET_GENERATOR_H_
