#ifndef AMICI_WORKLOAD_TRACE_H_
#define AMICI_WORKLOAD_TRACE_H_

#include <span>
#include <string>
#include <vector>

#include "core/social_query.h"
#include "util/status.h"

namespace amici {

/// Query-trace persistence (RocksDB trace/replay style): a line-oriented
/// text format so traces can be inspected, grepped, and hand-edited.
///
///   # comment
///   user=5 k=10 alpha=0.50 mode=any tags=3,17,42
///   user=9 k=5 alpha=0.90 mode=all tags=7 geo=37.77,-122.42,5.0
///
/// Fields may appear in any order; `tags` values are sorted/deduplicated
/// on parse; blank lines and '#' comments are skipped.

/// Renders queries to the trace text format.
std::string SerializeQueryTrace(std::span<const SocialQuery> queries);

/// Parses a trace; fails with InvalidArgument naming the offending line.
Result<std::vector<SocialQuery>> ParseQueryTrace(const std::string& text);

/// File wrappers.
Status SaveQueryTrace(std::span<const SocialQuery> queries,
                      const std::string& path);
Result<std::vector<SocialQuery>> LoadQueryTrace(const std::string& path);

}  // namespace amici

#endif  // AMICI_WORKLOAD_TRACE_H_
