#ifndef AMICI_WORKLOAD_DATASET_CONFIG_H_
#define AMICI_WORKLOAD_DATASET_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace amici {

/// Which synthetic network generator shapes the friendship graph.
enum class GraphKind {
  kErdosRenyi,
  kBarabasiAlbert,
  kWattsStrogatz,
  kPlantedPartition,
};

/// Full recipe for one synthetic dataset — the substitute for the crawled
/// social datasets of the paper class (DESIGN.md §5). Every knob that the
/// evaluation sweeps lives here so experiments are reproducible from the
/// config alone.
struct DatasetConfig {
  std::string name = "custom";

  // --- social graph ---
  size_t num_users = 10000;
  GraphKind graph_kind = GraphKind::kBarabasiAlbert;
  /// BA: edges per new user. ER: expected average degree. WS: ring degree.
  double degree_param = 10.0;
  /// WS rewiring probability; planted partition: inter-community degree.
  double secondary_param = 0.1;
  /// Planted partition only.
  size_t num_communities = 50;

  // --- item catalogue ---
  /// Average items per user (owners are drawn degree-biased, so actives
  /// post more).
  double items_per_user = 5.0;
  size_t num_tags = 20000;
  /// Zipf exponent of tag popularity.
  double tag_zipf_s = 1.1;
  /// Tags per item drawn uniformly from [1, max_tags_per_item].
  size_t max_tags_per_item = 5;
  /// Social locality λ: probability that an item tag is copied from a
  /// random friend's earlier item instead of drawn from the global Zipf.
  /// Higher λ = friends' items are more alike = SocialFirst prunes better
  /// (the Fig 9 axis).
  double social_locality = 0.5;
  /// Quality = Uniform(0,1)^quality_skew; skew > 1 pushes mass to low
  /// quality, making high-quality items rare (realistic impact lists).
  double quality_skew = 2.0;

  // --- geo ---
  /// Fraction of items with a geo position.
  double geo_fraction = 0.0;
  /// Geo positions cluster into this many Gaussian "cities".
  size_t num_cities = 8;
  /// City standard deviation in km.
  double city_sigma_km = 5.0;

  uint64_t seed = 42;
};

/// Preset datasets used throughout the evaluation (Table 1).
DatasetConfig SmallDataset();
DatasetConfig MediumDataset();
DatasetConfig LargeDataset();

/// MediumDataset rescaled to `num_users` users (items scale along);
/// used by the Fig 5 scalability sweep.
DatasetConfig ScaledDataset(size_t num_users);

}  // namespace amici

#endif  // AMICI_WORKLOAD_DATASET_CONFIG_H_
