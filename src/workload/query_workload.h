#ifndef AMICI_WORKLOAD_QUERY_WORKLOAD_H_
#define AMICI_WORKLOAD_QUERY_WORKLOAD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/social_query.h"
#include "util/status.h"
#include "workload/dataset_generator.h"

namespace amici {

/// Recipe for a batch of queries over one dataset.
struct QueryWorkloadConfig {
  size_t num_queries = 200;
  size_t k = 10;
  double alpha = 0.5;
  MatchMode mode = MatchMode::kAny;
  /// Tags per query drawn uniformly from [1, max_tags_per_query].
  size_t max_tags_per_query = 3;
  /// Probability that a query tag is taken from the neighbourhood's items
  /// (own + friends') rather than the global popularity distribution —
  /// "users search for what their circle posts".
  double tag_locality = 0.7;
  /// When true, querying users are drawn degree-biased (active users
  /// query more); uniform otherwise.
  bool degree_biased_users = true;

  /// Optional geo restriction attached to every query: a circle of
  /// `radius_km` around a random geo item's position.
  bool with_geo_filter = false;
  double radius_km = 10.0;

  uint64_t seed = 4242;
};

/// Generates `config.num_queries` valid, normalized queries against
/// `dataset`. Fails only on inconsistent configs (e.g. geo filters against
/// a dataset without geo items).
Result<std::vector<SocialQuery>> GenerateQueries(
    const Dataset& dataset, const QueryWorkloadConfig& config);

}  // namespace amici

#endif  // AMICI_WORKLOAD_QUERY_WORKLOAD_H_
