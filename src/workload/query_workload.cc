#include "workload/query_workload.h"

#include <algorithm>

#include "util/rng.h"
#include "util/zipf.h"

namespace amici {
namespace {

/// Degree-biased user draw (uniform edge endpoint), uniform fallback.
UserId SampleUser(const SocialGraph& graph, bool degree_biased, Rng* rng) {
  if (degree_biased && !graph.neighbors().empty()) {
    return graph.neighbors()[rng->UniformIndex(graph.neighbors().size())];
  }
  return static_cast<UserId>(rng->UniformIndex(graph.num_users()));
}

}  // namespace

Result<std::vector<SocialQuery>> GenerateQueries(
    const Dataset& dataset, const QueryWorkloadConfig& config) {
  if (config.num_queries == 0) {
    return Status::InvalidArgument("workload needs at least one query");
  }
  if (config.tag_locality < 0.0 || config.tag_locality > 1.0) {
    return Status::InvalidArgument("tag_locality must lie in [0, 1]");
  }

  // Pre-compute each user's posted tags and the geo item pool once.
  std::vector<std::vector<TagId>> user_tags(dataset.graph.num_users());
  std::vector<ItemId> geo_items;
  for (size_t i = 0; i < dataset.store.num_items(); ++i) {
    const ItemId item = static_cast<ItemId>(i);
    const UserId owner = dataset.store.owner(item);
    for (const TagId tag : dataset.store.tags(item)) {
      user_tags[owner].push_back(tag);
    }
    if (dataset.store.has_geo(item)) geo_items.push_back(item);
  }
  if (config.with_geo_filter && geo_items.empty()) {
    return Status::FailedPrecondition(
        "geo workload requires geo-tagged items in the dataset");
  }

  Rng rng(config.seed);
  const size_t vocabulary = std::max<size_t>(1, dataset.tags.size());
  const ZipfSampler tag_sampler(vocabulary, dataset.config.tag_zipf_s);

  auto sample_local_tag = [&](UserId user) -> TagId {
    // Own items first; otherwise a uniformly chosen friend with items.
    if (!user_tags[user].empty() && rng.Bernoulli(0.5)) {
      return user_tags[user][rng.UniformIndex(user_tags[user].size())];
    }
    const auto friends = dataset.graph.Friends(user);
    if (!friends.empty()) {
      const UserId f = friends[rng.UniformIndex(friends.size())];
      if (!user_tags[f].empty()) {
        return user_tags[f][rng.UniformIndex(user_tags[f].size())];
      }
    }
    if (!user_tags[user].empty()) {
      return user_tags[user][rng.UniformIndex(user_tags[user].size())];
    }
    return kInvalidTagId;
  };

  std::vector<SocialQuery> queries;
  queries.reserve(config.num_queries);
  while (queries.size() < config.num_queries) {
    SocialQuery query;
    query.user = SampleUser(dataset.graph, config.degree_biased_users, &rng);
    query.k = config.k;
    query.alpha = config.alpha;
    query.mode = config.mode;

    const size_t want =
        1 + rng.UniformIndex(std::max<size_t>(1, config.max_tags_per_query));
    size_t attempts = 0;
    while (query.tags.size() < want && attempts < want * 8) {
      ++attempts;
      TagId tag = kInvalidTagId;
      if (rng.Bernoulli(config.tag_locality)) {
        tag = sample_local_tag(query.user);
      }
      if (tag == kInvalidTagId) {
        tag = static_cast<TagId>(tag_sampler.Sample(&rng) - 1);
      }
      if (std::find(query.tags.begin(), query.tags.end(), tag) ==
          query.tags.end()) {
        query.tags.push_back(tag);
      }
    }
    if (query.tags.empty()) continue;  // pathological; resample

    if (config.with_geo_filter) {
      const ItemId anchor = geo_items[rng.UniformIndex(geo_items.size())];
      query.has_geo_filter = true;
      query.latitude = dataset.store.latitude(anchor);
      query.longitude = dataset.store.longitude(anchor);
      query.radius_km = static_cast<float>(config.radius_km);
    }

    NormalizeQuery(&query);
    AMICI_RETURN_IF_ERROR(ValidateQuery(query, dataset.graph.num_users()));
    queries.push_back(std::move(query));
  }
  return queries;
}

}  // namespace amici
