#include "workload/dataset_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "geo/geo_point.h"
#include "graph/graph_generators.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/zipf.h"

namespace amici {
namespace {

SocialGraph GenerateGraph(const DatasetConfig& config, Rng* rng) {
  switch (config.graph_kind) {
    case GraphKind::kErdosRenyi:
      return GenerateErdosRenyi(config.num_users, config.degree_param, rng);
    case GraphKind::kBarabasiAlbert:
      return GenerateBarabasiAlbert(
          config.num_users,
          static_cast<size_t>(std::max(1.0, config.degree_param / 2.0)), rng);
    case GraphKind::kWattsStrogatz:
      return GenerateWattsStrogatz(
          config.num_users, static_cast<size_t>(config.degree_param),
          config.secondary_param, rng);
    case GraphKind::kPlantedPartition:
      return GeneratePlantedPartition(config.num_users, config.num_communities,
                                      config.degree_param,
                                      config.secondary_param, rng);
  }
  return GenerateErdosRenyi(config.num_users, config.degree_param, rng);
}

/// Draws an item owner biased towards high-degree users by sampling a
/// uniform edge endpoint (each user is picked with probability
/// degree/2|E|). Falls back to uniform on edgeless graphs.
UserId SampleOwner(const SocialGraph& graph, Rng* rng) {
  const auto& endpoints = graph.neighbors();
  if (endpoints.empty()) {
    return static_cast<UserId>(rng->UniformIndex(graph.num_users()));
  }
  return endpoints[rng->UniformIndex(endpoints.size())];
}

/// Gaussian city centers inside one metropolitan bounding box.
struct City {
  float latitude;
  float longitude;
};

std::vector<City> MakeCities(size_t count, Rng* rng) {
  std::vector<City> cities;
  cities.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    cities.push_back({static_cast<float>(rng->UniformDouble(37.0, 38.0)),
                      static_cast<float>(rng->UniformDouble(-122.5, -121.5))});
  }
  return cities;
}

}  // namespace

Result<Dataset> GenerateDataset(const DatasetConfig& config) {
  if (config.num_users == 0) {
    return Status::InvalidArgument("dataset needs at least one user");
  }
  if (config.num_tags == 0) {
    return Status::InvalidArgument("dataset needs a tag vocabulary");
  }
  if (config.social_locality < 0.0 || config.social_locality > 1.0) {
    return Status::InvalidArgument("social_locality must lie in [0, 1]");
  }
  if (config.geo_fraction < 0.0 || config.geo_fraction > 1.0) {
    return Status::InvalidArgument("geo_fraction must lie in [0, 1]");
  }

  Dataset dataset;
  dataset.config = config;
  Rng rng(config.seed);
  dataset.graph = GenerateGraph(config, &rng);

  // Intern the whole vocabulary so TagIds are dense and stable.
  for (size_t t = 0; t < config.num_tags; ++t) {
    dataset.tags.Intern(StringPrintf("tag%zu", t));
  }

  const ZipfSampler tag_sampler(config.num_tags, config.tag_zipf_s);
  const std::vector<City> cities = MakeCities(config.num_cities, &rng);
  const size_t num_items = static_cast<size_t>(
      config.items_per_user * static_cast<double>(config.num_users));

  // Per-user list of their items' tags, for the social-locality copies.
  std::vector<std::vector<TagId>> user_tags(dataset.graph.num_users());

  for (size_t i = 0; i < num_items; ++i) {
    Item item;
    item.owner = SampleOwner(dataset.graph, &rng);

    const size_t tag_count =
        1 + rng.UniformIndex(std::max<size_t>(1, config.max_tags_per_item));
    for (size_t t = 0; t < tag_count; ++t) {
      TagId tag = kInvalidTagId;
      if (rng.Bernoulli(config.social_locality)) {
        // Copy a tag from a random friend's earlier item, if any exists.
        const auto friends = dataset.graph.Friends(item.owner);
        if (!friends.empty()) {
          const UserId friend_id =
              friends[rng.UniformIndex(friends.size())];
          const auto& pool = user_tags[friend_id];
          if (!pool.empty()) tag = pool[rng.UniformIndex(pool.size())];
        }
      }
      if (tag == kInvalidTagId) {
        tag = static_cast<TagId>(tag_sampler.Sample(&rng) - 1);
      }
      item.tags.push_back(tag);
    }

    item.quality = static_cast<float>(
        std::pow(rng.UniformDouble(), config.quality_skew));

    if (rng.Bernoulli(config.geo_fraction) && !cities.empty()) {
      const City& city = cities[rng.UniformIndex(cities.size())];
      const double sigma_lat = KmToLatitudeDegrees(config.city_sigma_km);
      const double sigma_lon =
          KmToLongitudeDegrees(config.city_sigma_km, city.latitude);
      item.has_geo = true;
      item.latitude = static_cast<float>(
          city.latitude + rng.Gaussian(0.0, sigma_lat));
      item.longitude = static_cast<float>(
          city.longitude + rng.Gaussian(0.0, sigma_lon));
    }

    AMICI_ASSIGN_OR_RETURN(const ItemId id, dataset.store.Add(item));
    (void)id;
    for (const TagId tag : item.tags) user_tags[item.owner].push_back(tag);
  }
  return dataset;
}

}  // namespace amici
