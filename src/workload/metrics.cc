#include "workload/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace amici {
namespace {

std::unordered_set<ItemId> TopSet(const std::vector<ScoredItem>& ranking,
                                  size_t k) {
  std::unordered_set<ItemId> out;
  for (size_t i = 0; i < ranking.size() && i < k; ++i) {
    out.insert(ranking[i].item);
  }
  return out;
}

}  // namespace

double PrecisionAtK(const std::vector<ScoredItem>& truth,
                    const std::vector<ScoredItem>& candidate, size_t k) {
  const auto truth_top = TopSet(truth, k);
  if (truth_top.empty()) return 1.0;
  size_t hits = 0;
  for (size_t i = 0; i < candidate.size() && i < k; ++i) {
    if (truth_top.count(candidate[i].item) != 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth_top.size());
}

double RecallAtK(const std::vector<ScoredItem>& truth,
                 const std::vector<ScoredItem>& candidate, size_t k) {
  const auto truth_top = TopSet(truth, k);
  if (truth_top.empty()) return 1.0;
  std::unordered_set<ItemId> candidate_all;
  for (const auto& entry : candidate) candidate_all.insert(entry.item);
  size_t hits = 0;
  for (const ItemId item : truth_top) {
    if (candidate_all.count(item) != 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth_top.size());
}

double KendallTau(const std::vector<ScoredItem>& truth,
                  const std::vector<ScoredItem>& candidate) {
  // Positions of shared items in both rankings.
  std::unordered_map<ItemId, size_t> truth_pos;
  for (size_t i = 0; i < truth.size(); ++i) truth_pos[truth[i].item] = i;
  std::vector<std::pair<size_t, size_t>> shared;  // (truth pos, cand pos)
  for (size_t i = 0; i < candidate.size(); ++i) {
    const auto it = truth_pos.find(candidate[i].item);
    if (it != truth_pos.end()) shared.push_back({it->second, i});
  }
  if (shared.size() < 2) return 1.0;
  std::sort(shared.begin(), shared.end());
  int64_t concordant = 0;
  int64_t discordant = 0;
  for (size_t i = 0; i < shared.size(); ++i) {
    for (size_t j = i + 1; j < shared.size(); ++j) {
      if (shared[j].second > shared[i].second) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double pairs = static_cast<double>(concordant + discordant);
  if (pairs == 0.0) return 1.0;
  return (static_cast<double>(concordant) - static_cast<double>(discordant)) /
         pairs;
}

double NdcgAtK(const std::vector<ScoredItem>& truth,
               const std::vector<ScoredItem>& candidate, size_t k) {
  if (truth.empty()) return 1.0;
  std::unordered_map<ItemId, double> relevance;
  for (const auto& entry : truth) {
    relevance[entry.item] = static_cast<double>(entry.score);
  }
  auto discount = [](size_t rank) {
    return 1.0 / std::log2(static_cast<double>(rank) + 2.0);
  };
  double dcg = 0.0;
  for (size_t i = 0; i < candidate.size() && i < k; ++i) {
    const auto it = relevance.find(candidate[i].item);
    if (it != relevance.end()) dcg += it->second * discount(i);
  }
  double ideal = 0.0;
  for (size_t i = 0; i < truth.size() && i < k; ++i) {
    ideal += static_cast<double>(truth[i].score) * discount(i);
  }
  return ideal == 0.0 ? 1.0 : dcg / ideal;
}

double MeanScoreError(const std::vector<ScoredItem>& truth,
                      const std::vector<ScoredItem>& candidate) {
  std::unordered_map<ItemId, float> truth_score;
  for (const auto& entry : truth) truth_score[entry.item] = entry.score;
  double total = 0.0;
  size_t shared = 0;
  for (const auto& entry : candidate) {
    const auto it = truth_score.find(entry.item);
    if (it == truth_score.end()) continue;
    total += std::abs(static_cast<double>(entry.score) -
                      static_cast<double>(it->second));
    ++shared;
  }
  return shared == 0 ? 0.0 : total / static_cast<double>(shared);
}

}  // namespace amici
