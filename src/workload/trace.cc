#include "workload/trace.h"

#include <cstdlib>

#include "util/file_util.h"
#include "util/string_util.h"

namespace amici {
namespace {

Status LineError(size_t line_number, const std::string& reason) {
  return Status::InvalidArgument(
      StringPrintf("trace line %zu: %s",
                   line_number, reason.c_str()));
}

}  // namespace

std::string SerializeQueryTrace(std::span<const SocialQuery> queries) {
  std::string out = "# amici query trace v1\n";
  for (const SocialQuery& query : queries) {
    out += StringPrintf("user=%u k=%zu alpha=%.6f mode=%s tags=", query.user,
                        query.k, query.alpha,
                        query.mode == MatchMode::kAll ? "all" : "any");
    for (size_t i = 0; i < query.tags.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(query.tags[i]);
    }
    if (query.has_geo_filter) {
      out += StringPrintf(" geo=%.6f,%.6f,%.3f", query.latitude,
                          query.longitude, query.radius_km);
    }
    out += '\n';
  }
  return out;
}

Result<std::vector<SocialQuery>> ParseQueryTrace(const std::string& text) {
  std::vector<SocialQuery> queries;
  const std::vector<std::string> lines = Split(text, '\n');
  for (size_t n = 0; n < lines.size(); ++n) {
    const std::string_view line = Trim(lines[n]);
    if (line.empty() || line.front() == '#') continue;

    SocialQuery query;
    bool saw_user = false;
    bool saw_tags = false;
    for (const std::string& field : Split(std::string(line), ' ')) {
      if (field.empty()) continue;
      const size_t equals = field.find('=');
      if (equals == std::string::npos) {
        return LineError(n + 1, "field without '=': " + field);
      }
      const std::string key = field.substr(0, equals);
      const std::string value = field.substr(equals + 1);
      if (key == "user") {
        query.user = static_cast<UserId>(std::strtoul(value.c_str(),
                                                      nullptr, 10));
        saw_user = true;
      } else if (key == "k") {
        query.k = std::strtoul(value.c_str(), nullptr, 10);
      } else if (key == "alpha") {
        query.alpha = std::strtod(value.c_str(), nullptr);
      } else if (key == "mode") {
        if (value == "any") {
          query.mode = MatchMode::kAny;
        } else if (value == "all") {
          query.mode = MatchMode::kAll;
        } else {
          return LineError(n + 1, "unknown mode: " + value);
        }
      } else if (key == "tags") {
        for (const std::string& tag : Split(value, ',')) {
          if (tag.empty()) return LineError(n + 1, "empty tag entry");
          query.tags.push_back(static_cast<TagId>(
              std::strtoul(tag.c_str(), nullptr, 10)));
        }
        saw_tags = true;
      } else if (key == "geo") {
        const std::vector<std::string> parts = Split(value, ',');
        if (parts.size() != 3) {
          return LineError(n + 1, "geo needs lat,lon,radius");
        }
        query.has_geo_filter = true;
        query.latitude = std::strtof(parts[0].c_str(), nullptr);
        query.longitude = std::strtof(parts[1].c_str(), nullptr);
        query.radius_km = std::strtof(parts[2].c_str(), nullptr);
      } else {
        return LineError(n + 1, "unknown field: " + key);
      }
    }
    if (!saw_user || !saw_tags) {
      return LineError(n + 1, "missing required user=/tags= fields");
    }
    NormalizeQuery(&query);
    queries.push_back(std::move(query));
  }
  return queries;
}

Status SaveQueryTrace(std::span<const SocialQuery> queries,
                      const std::string& path) {
  return WriteStringToFile(SerializeQueryTrace(queries), path);
}

Result<std::vector<SocialQuery>> LoadQueryTrace(const std::string& path) {
  AMICI_ASSIGN_OR_RETURN(const std::string text, ReadFileToString(path));
  return ParseQueryTrace(text);
}

}  // namespace amici
