#include "workload/dataset_io.h"

#include "graph/graph_io.h"
#include "storage/item_store_io.h"

namespace amici {
namespace {

std::string GraphPath(const std::string& directory) {
  return directory + "/graph.amig";
}
std::string ItemsPath(const std::string& directory) {
  return directory + "/items.amis";
}
std::string TagsPath(const std::string& directory) {
  return directory + "/tags.amid";
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& directory) {
  AMICI_RETURN_IF_ERROR(SaveGraph(dataset.graph, GraphPath(directory)));
  AMICI_RETURN_IF_ERROR(SaveItemStore(dataset.store, ItemsPath(directory)));
  return SaveTagDictionary(dataset.tags, TagsPath(directory));
}

Result<Dataset> LoadDataset(const std::string& directory) {
  Dataset dataset;
  AMICI_ASSIGN_OR_RETURN(dataset.graph, LoadGraph(GraphPath(directory)));
  AMICI_ASSIGN_OR_RETURN(dataset.store, LoadItemStore(ItemsPath(directory)));
  AMICI_ASSIGN_OR_RETURN(dataset.tags,
                         LoadTagDictionary(TagsPath(directory)));
  dataset.config.name = "loaded:" + directory;

  // Cross-file consistency: items must reference users inside the graph.
  for (size_t i = 0; i < dataset.store.num_items(); ++i) {
    if (dataset.store.owner(static_cast<ItemId>(i)) >=
        dataset.graph.num_users()) {
      return Status::Corruption("item owner outside the loaded graph");
    }
  }
  return dataset;
}

}  // namespace amici
