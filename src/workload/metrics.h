#ifndef AMICI_WORKLOAD_METRICS_H_
#define AMICI_WORKLOAD_METRICS_H_

#include <cstddef>
#include <vector>

#include "storage/posting_list.h"
#include "util/ids.h"

namespace amici {

/// Quality metrics comparing a candidate ranking against a ground-truth
/// ranking (both best-first). Used by Figs 6–7 to quantify what the
/// approximate proximity models give up.

/// |top-k(candidate) ∩ top-k(truth)| / k. When truth has fewer than k
/// entries, its size is the denominator. Empty truth yields 1.
double PrecisionAtK(const std::vector<ScoredItem>& truth,
                    const std::vector<ScoredItem>& candidate, size_t k);

/// Fraction of the truth's top-k found anywhere in the candidate list.
double RecallAtK(const std::vector<ScoredItem>& truth,
                 const std::vector<ScoredItem>& candidate, size_t k);

/// Kendall rank correlation over the items both rankings share, in
/// [-1, 1]; 1 when the shared items appear in identical relative order.
/// Returns 1 when fewer than two items are shared.
double KendallTau(const std::vector<ScoredItem>& truth,
                  const std::vector<ScoredItem>& candidate);

/// Mean absolute difference between the scores of items present in both
/// rankings (0 when nothing is shared).
double MeanScoreError(const std::vector<ScoredItem>& truth,
                      const std::vector<ScoredItem>& candidate);

/// Normalized discounted cumulative gain at k. Relevance of an item is
/// its score in `truth` (0 if absent); the candidate's DCG over its top-k
/// is normalized by the ideal DCG of the truth's top-k. Empty truth
/// yields 1; returns a value in [0, 1] whenever truth scores are
/// non-negative and truth is ideally ordered.
double NdcgAtK(const std::vector<ScoredItem>& truth,
               const std::vector<ScoredItem>& candidate, size_t k);

}  // namespace amici

#endif  // AMICI_WORKLOAD_METRICS_H_
