#include "index/disk_inverted_index.h"

#include <cstring>
#include <utility>

#include "util/hash.h"
#include "util/string_util.h"
#include "util/varint.h"

namespace amici {
namespace {

constexpr char kMagic[4] = {'A', 'M', 'I', 'I'};
// Version 2: the embedded PostingList images moved to their v2 format
// (per-block max impact, split delta/impact payload).
constexpr uint32_t kVersion = 2;
constexpr size_t kBlock = BlockFile::kBlockSize;

struct Header {
  uint64_t num_tags;
  uint64_t toc_offset;       // byte offset of the TOC inside the payload
  uint64_t payload_length;   // total logical payload bytes
  uint64_t payload_checksum; // FNV-64 of the logical payload
};

void EncodeHeader(const Header& header, char* block) {
  std::memset(block, 0, kBlock);
  std::memcpy(block, kMagic, sizeof(kMagic));
  uint32_t version = kVersion;
  std::memcpy(block + 4, &version, sizeof(version));
  std::memcpy(block + 8, &header.num_tags, 8);
  std::memcpy(block + 16, &header.toc_offset, 8);
  std::memcpy(block + 24, &header.payload_length, 8);
  std::memcpy(block + 32, &header.payload_checksum, 8);
}

Status DecodeHeader(const char* block, Header* header) {
  if (std::memcmp(block, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad disk-index magic");
  }
  uint32_t version = 0;
  std::memcpy(&version, block + 4, sizeof(version));
  if (version != kVersion) {
    return Status::Corruption("unsupported disk-index version");
  }
  std::memcpy(&header->num_tags, block + 8, 8);
  std::memcpy(&header->toc_offset, block + 16, 8);
  std::memcpy(&header->payload_length, block + 24, 8);
  std::memcpy(&header->payload_checksum, block + 32, 8);
  return Status::Ok();
}

}  // namespace

Status DiskInvertedIndex::Write(const InvertedIndex& index,
                                const std::string& path) {
  // Build the logical payload: every list image, then the TOC.
  std::string payload;
  std::vector<TocEntry> toc(index.num_tags());
  for (size_t tag = 0; tag < index.num_tags(); ++tag) {
    toc[tag].offset = payload.size();
    index.Postings(static_cast<TagId>(tag)).SerializeTo(&payload);
    toc[tag].length = payload.size() - toc[tag].offset;
    toc[tag].count = index.Postings(static_cast<TagId>(tag)).size();
  }
  Header header;
  header.num_tags = index.num_tags();
  header.toc_offset = payload.size();
  for (const TocEntry& entry : toc) {
    PutVarint64(entry.offset, &payload);
    PutVarint64(entry.length, &payload);
    PutVarint64(entry.count, &payload);
  }
  header.payload_length = payload.size();
  header.payload_checksum = Fnv1a64(payload);

  AMICI_ASSIGN_OR_RETURN(BlockFile file, BlockFile::Create(path));
  char block[kBlock];
  EncodeHeader(header, block);
  AMICI_RETURN_IF_ERROR(file.AppendBlock(block).status());
  for (size_t offset = 0; offset < payload.size(); offset += kBlock) {
    const size_t chunk = std::min(kBlock, payload.size() - offset);
    std::memset(block, 0, kBlock);
    std::memcpy(block, payload.data() + offset, chunk);
    AMICI_RETURN_IF_ERROR(file.AppendBlock(block).status());
  }
  return file.Sync();
}

DiskInvertedIndex::DiskInvertedIndex(BlockFile file, size_t pool_blocks,
                                     std::vector<TocEntry> toc)
    : file_(std::move(file)),
      pool_(std::make_unique<BufferPool>(&file_, pool_blocks)),
      toc_(std::move(toc)) {}

Result<std::unique_ptr<DiskInvertedIndex>> DiskInvertedIndex::Open(
    const std::string& path, size_t pool_blocks) {
  AMICI_ASSIGN_OR_RETURN(BlockFile file, BlockFile::Open(path));
  if (file.num_blocks() == 0) {
    return Status::Corruption("disk index has no header block");
  }
  char block[kBlock];
  AMICI_RETURN_IF_ERROR(file.ReadBlock(0, block));
  Header header;
  AMICI_RETURN_IF_ERROR(DecodeHeader(block, &header));
  if (header.toc_offset > header.payload_length ||
      1 + (header.payload_length + kBlock - 1) / kBlock !=
          file.num_blocks()) {
    return Status::Corruption("disk index geometry mismatch");
  }

  // Read and verify the full payload once at open; steady-state reads go
  // through the pool afterwards.
  std::string payload;
  payload.reserve(header.payload_length);
  for (uint64_t b = 1; b < file.num_blocks(); ++b) {
    AMICI_RETURN_IF_ERROR(file.ReadBlock(b, block));
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(kBlock, header.payload_length - payload.size()));
    payload.append(block, want);
  }
  if (Fnv1a64(payload) != header.payload_checksum) {
    return Status::Corruption("disk index checksum mismatch");
  }

  std::vector<TocEntry> toc(header.num_tags);
  size_t offset = header.toc_offset;
  for (uint64_t tag = 0; tag < header.num_tags; ++tag) {
    if (!GetVarint64(payload, &offset, &toc[tag].offset) ||
        !GetVarint64(payload, &offset, &toc[tag].length) ||
        !GetVarint64(payload, &offset, &toc[tag].count)) {
      return Status::Corruption("truncated disk-index TOC");
    }
    if (toc[tag].offset + toc[tag].length > header.toc_offset) {
      return Status::Corruption("disk-index TOC entry out of range");
    }
  }
  return std::unique_ptr<DiskInvertedIndex>(new DiskInvertedIndex(
      std::move(file), pool_blocks, std::move(toc)));
}

size_t DiskInvertedIndex::DocumentFrequency(TagId tag) const {
  if (tag >= toc_.size()) return 0;
  return toc_[tag].count;
}

Result<std::string> DiskInvertedIndex::ReadPayload(uint64_t offset,
                                                   uint64_t length) const {
  std::string out;
  out.reserve(length);
  // Payload byte p lives in file block 1 + p / kBlock at p % kBlock.
  uint64_t remaining = length;
  uint64_t position = offset;
  while (remaining > 0) {
    const uint64_t block_id = 1 + position / kBlock;
    const size_t in_block = static_cast<size_t>(position % kBlock);
    const size_t take =
        static_cast<size_t>(std::min<uint64_t>(remaining, kBlock - in_block));
    AMICI_ASSIGN_OR_RETURN(const auto cached, pool_->Fetch(block_id));
    out.append(cached->data() + in_block, take);
    position += take;
    remaining -= take;
  }
  return out;
}

Result<PostingList> DiskInvertedIndex::ReadPostings(TagId tag) const {
  if (tag >= toc_.size()) return PostingList();
  AMICI_ASSIGN_OR_RETURN(
      const std::string bytes,
      ReadPayload(toc_[tag].offset, toc_[tag].length));
  size_t offset = 0;
  AMICI_ASSIGN_OR_RETURN(PostingList list,
                         PostingList::DeserializeFrom(bytes, &offset));
  if (offset != bytes.size() || list.size() != toc_[tag].count) {
    return Status::Corruption("disk posting list inconsistent with TOC");
  }
  return list;
}

}  // namespace amici
