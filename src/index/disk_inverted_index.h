#ifndef AMICI_INDEX_DISK_INVERTED_INDEX_H_
#define AMICI_INDEX_DISK_INVERTED_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "index/inverted_index.h"
#include "storage/block_file.h"
#include "storage/buffer_pool.h"
#include "storage/posting_list.h"
#include "util/ids.h"
#include "util/status.h"

namespace amici {

/// Immutable on-disk image of the document-ordered side of an
/// InvertedIndex, read through a buffer pool — how the index works when
/// the corpus outgrows memory.
///
/// File layout (4 KiB blocks):
///   block 0:        header (magic "AMII", version, num_tags,
///                   toc_offset_bytes, payload_byte_length, checksum of
///                   the logical payload)
///   blocks 1..N:    payload: the concatenated PostingList images,
///                   then the TOC (per tag: byte offset + byte length
///                   into the payload), padded to a block boundary
///
/// Readers materialize one PostingList at a time via ReadPostings();
/// block-granular caching in the BufferPool makes repeated and
/// neighbouring reads cheap. The file is self-validating (checksum over
/// the payload verified lazily per read via per-list parsing, and fully
/// during Open for the TOC).
class DiskInvertedIndex {
 public:
  /// Serializes the doc-ordered lists of `index` to `path`.
  static Status Write(const InvertedIndex& index, const std::string& path);

  /// Opens an index written by Write with a pool of `pool_blocks` cached
  /// blocks.
  static Result<std::unique_ptr<DiskInvertedIndex>> Open(
      const std::string& path, size_t pool_blocks);

  /// Number of tags covered.
  size_t num_tags() const { return toc_.size(); }

  /// Document frequency without touching the payload.
  size_t DocumentFrequency(TagId tag) const;

  /// Reads and decodes the posting list of `tag` (empty list for
  /// out-of-range tags). Thread-safe.
  Result<PostingList> ReadPostings(TagId tag) const;

  const BufferPool& pool() const { return *pool_; }

 private:
  struct TocEntry {
    uint64_t offset;  // into the logical payload byte stream
    uint64_t length;
    uint64_t count;  // postings (document frequency)
  };

  DiskInvertedIndex(BlockFile file, size_t pool_blocks,
                    std::vector<TocEntry> toc);

  /// Copies payload bytes [offset, offset+length) via the pool.
  Result<std::string> ReadPayload(uint64_t offset, uint64_t length) const;

  BlockFile file_;
  std::unique_ptr<BufferPool> pool_;
  std::vector<TocEntry> toc_;
};

}  // namespace amici

#endif  // AMICI_INDEX_DISK_INVERTED_INDEX_H_
