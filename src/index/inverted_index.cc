#include "index/inverted_index.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace amici {

Result<InvertedIndex> InvertedIndex::Build(ItemStoreView store) {
  return Build(store, Options());
}

Result<InvertedIndex> InvertedIndex::Build(ItemStoreView store,
                                           const Options& options) {
  InvertedIndex index;
  const size_t num_tags = store.TagUniverseSize();

  // Bucket postings per tag in one pass over the store; items are visited
  // in ascending id order, so each bucket is already document-ordered.
  std::vector<std::vector<ScoredItem>> buckets(num_tags);
  for (size_t i = 0; i < store.num_items(); ++i) {
    const ItemId item = static_cast<ItemId>(i);
    const float quality = store.quality(item);
    for (const TagId tag : store.tags(item)) {
      buckets[tag].push_back({item, quality});
    }
  }

  index.doc_ordered_.resize(num_tags);
  for (size_t tag = 0; tag < num_tags; ++tag) {
    if (buckets[tag].empty()) continue;  // null handle = empty list
    AMICI_ASSIGN_OR_RETURN(
        PostingList list,
        PostingList::Build(buckets[tag], options.posting_options));
    index.doc_ordered_[tag] =
        std::make_shared<const PostingList>(std::move(list));
  }

  index.has_impact_ordered_ = options.build_impact_ordered;
  if (options.build_impact_ordered) {
    index.impact_ordered_.resize(num_tags);
    for (size_t tag = 0; tag < num_tags; ++tag) {
      if (buckets[tag].empty()) continue;
      std::sort(buckets[tag].begin(), buckets[tag].end(), ScoreDescItemAsc);
      buckets[tag].shrink_to_fit();
      index.impact_ordered_[tag] =
          std::make_shared<const std::vector<ScoredItem>>(
              std::move(buckets[tag]));
    }
  }
  return index;
}

InvertedIndex InvertedIndex::Restore(
    std::vector<std::shared_ptr<const PostingList>> doc_ordered,
    std::vector<std::shared_ptr<const std::vector<ScoredItem>>> impact_ordered,
    bool has_impact_ordered) {
  InvertedIndex index;
  index.doc_ordered_ = std::move(doc_ordered);
  index.impact_ordered_ = std::move(impact_ordered);
  index.has_impact_ordered_ = has_impact_ordered;
  return index;
}

Result<InvertedIndex> InvertedIndex::MergeFrom(ItemStoreView store,
                                               ItemId base_horizon,
                                               const Options& options,
                                               uint64_t* lists_touched) const {
  if (static_cast<size_t>(base_horizon) > store.num_items()) {
    return Status::InvalidArgument("base horizon beyond the store view");
  }
  if (options.build_impact_ordered != has_impact_ordered_ &&
      base_horizon > 0) {
    // An engine's index options are immutable, so this only fires on
    // misuse; merging across the ablation knob would leave untouched
    // tags without (or with orphaned) impact arrays.
    return Status::InvalidArgument(
        "impact-ordered availability must match the base index");
  }
  const size_t num_tags = store.TagUniverseSize();

  // Bucket the tail per touched tag. Items are visited in ascending id
  // order and every tail id exceeds every indexed id, so each bucket is
  // the document-ordered continuation of the base list.
  std::unordered_map<TagId, std::vector<ScoredItem>> tail_buckets;
  for (size_t i = base_horizon; i < store.num_items(); ++i) {
    const ItemId item = static_cast<ItemId>(i);
    const float quality = store.quality(item);
    for (const TagId tag : store.tags(item)) {
      tail_buckets[tag].push_back({item, quality});
    }
  }

  InvertedIndex merged;
  merged.doc_ordered_ = doc_ordered_;  // O(num_tags) handle copies
  merged.doc_ordered_.resize(num_tags);
  merged.has_impact_ordered_ = options.build_impact_ordered;
  if (options.build_impact_ordered) {
    merged.impact_ordered_ = impact_ordered_;
    merged.impact_ordered_.resize(num_tags);
  }

  const auto score_of = [&store](ItemId item) { return store.quality(item); };
  for (auto& [tag, tail] : tail_buckets) {
    const ListHandle base =
        tag < doc_ordered_.size() ? doc_ordered_[tag] : nullptr;
    PostingList list;
    if (base != nullptr) {
      AMICI_ASSIGN_OR_RETURN(list, base->MergeFrom(tail, score_of));
    } else {
      AMICI_ASSIGN_OR_RETURN(list,
                             PostingList::Build(tail, options.posting_options));
    }
    merged.doc_ordered_[tag] =
        std::make_shared<const PostingList>(std::move(list));

    if (options.build_impact_ordered) {
      const std::span<const ScoredItem> base_impact = ImpactOrdered(tag);
      std::vector<ScoredItem> impact;
      impact.reserve(base_impact.size() + tail.size());
      impact.insert(impact.end(), base_impact.begin(), base_impact.end());
      impact.insert(impact.end(), tail.begin(), tail.end());
      std::sort(impact.begin(), impact.end(), ScoreDescItemAsc);
      merged.impact_ordered_[tag] =
          std::make_shared<const std::vector<ScoredItem>>(std::move(impact));
    }
    if (lists_touched != nullptr) ++*lists_touched;
  }
  return merged;
}

size_t InvertedIndex::DocumentFrequency(TagId tag) const {
  if (tag >= doc_ordered_.size() || doc_ordered_[tag] == nullptr) return 0;
  return doc_ordered_[tag]->size();
}

const PostingList& InvertedIndex::Postings(TagId tag) const {
  if (tag >= doc_ordered_.size() || doc_ordered_[tag] == nullptr) {
    return empty_list_;
  }
  return *doc_ordered_[tag];
}

std::shared_ptr<const PostingList> InvertedIndex::PostingsHandle(
    TagId tag) const {
  if (tag >= doc_ordered_.size()) return nullptr;
  return doc_ordered_[tag];
}

std::span<const ScoredItem> InvertedIndex::ImpactOrdered(TagId tag) const {
  if (!has_impact_ordered_ || tag >= impact_ordered_.size() ||
      impact_ordered_[tag] == nullptr) {
    return {};
  }
  return *impact_ordered_[tag];
}

size_t InvertedIndex::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& list : doc_ordered_) {
    if (list != nullptr) bytes += list->SizeBytes();
  }
  for (const auto& list : impact_ordered_) {
    if (list != nullptr) bytes += list->capacity() * sizeof(ScoredItem);
  }
  return bytes;
}

}  // namespace amici
