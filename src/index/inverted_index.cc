#include "index/inverted_index.h"

#include <algorithm>

namespace amici {

Result<InvertedIndex> InvertedIndex::Build(ItemStoreView store) {
  return Build(store, Options());
}

Result<InvertedIndex> InvertedIndex::Build(ItemStoreView store,
                                           const Options& options) {
  InvertedIndex index;
  const size_t num_tags = store.TagUniverseSize();

  // Bucket postings per tag in one pass over the store; items are visited
  // in ascending id order, so each bucket is already document-ordered.
  std::vector<std::vector<ScoredItem>> buckets(num_tags);
  for (size_t i = 0; i < store.num_items(); ++i) {
    const ItemId item = static_cast<ItemId>(i);
    const float quality = store.quality(item);
    for (const TagId tag : store.tags(item)) {
      buckets[tag].push_back({item, quality});
    }
  }

  index.doc_ordered_.reserve(num_tags);
  for (size_t tag = 0; tag < num_tags; ++tag) {
    AMICI_ASSIGN_OR_RETURN(
        PostingList list,
        PostingList::Build(buckets[tag], options.posting_options));
    index.doc_ordered_.push_back(std::move(list));
  }

  index.has_impact_ordered_ = options.build_impact_ordered;
  if (options.build_impact_ordered) {
    index.impact_ordered_ = std::move(buckets);
    for (auto& list : index.impact_ordered_) {
      std::sort(list.begin(), list.end(),
                [](const ScoredItem& a, const ScoredItem& b) {
                  if (a.score != b.score) return a.score > b.score;
                  return a.item < b.item;
                });
      list.shrink_to_fit();
    }
  }
  return index;
}

size_t InvertedIndex::DocumentFrequency(TagId tag) const {
  if (tag >= doc_ordered_.size()) return 0;
  return doc_ordered_[tag].size();
}

const PostingList& InvertedIndex::Postings(TagId tag) const {
  if (tag >= doc_ordered_.size()) return empty_list_;
  return doc_ordered_[tag];
}

std::span<const ScoredItem> InvertedIndex::ImpactOrdered(TagId tag) const {
  if (!has_impact_ordered_ || tag >= impact_ordered_.size()) return {};
  return impact_ordered_[tag];
}

size_t InvertedIndex::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& list : doc_ordered_) bytes += list.SizeBytes();
  for (const auto& list : impact_ordered_) {
    bytes += list.capacity() * sizeof(ScoredItem);
  }
  return bytes;
}

}  // namespace amici
