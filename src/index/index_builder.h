#ifndef AMICI_INDEX_INDEX_BUILDER_H_
#define AMICI_INDEX_INDEX_BUILDER_H_

#include <cstddef>
#include <cstdint>

#include "index/inverted_index.h"
#include "index/social_index.h"
#include "storage/item_store.h"
#include "util/ids.h"
#include "util/status.h"

namespace amici {

/// Timings and footprints reported by Table 2 (index construction).
struct IndexBuildStats {
  double inverted_build_ms = 0.0;
  double social_build_ms = 0.0;
  size_t inverted_bytes = 0;
  size_t social_bytes = 0;
};

/// Everything the query engine needs, built in one shot from the catalogue.
struct BuiltIndexes {
  InvertedIndex inverted;
  SocialIndex social;
  IndexBuildStats stats;
};

/// Builds the inverted and social indexes over the items visible in
/// `store` for a graph of `num_users` users, timing each phase. Passing a
/// bounded snapshot view makes the build safe to run concurrently with a
/// writer appending past the view's bound (off-hot-path compaction).
Result<BuiltIndexes> BuildIndexes(
    ItemStoreView store, size_t num_users,
    const InvertedIndex::Options& options = InvertedIndex::Options());

/// What one incremental merge actually rebuilt (the rest was shared).
struct IndexMergeStats {
  /// Posting lists + owner buckets rebuilt (grid cells are counted by
  /// the engine, which owns the grid).
  uint64_t lists_touched = 0;
  /// Tail items folded into the indexes.
  uint64_t items_merged = 0;
};

/// Incremental (LSM-style) counterpart of BuildIndexes: merges the
/// un-indexed tail (items >= base_horizon in `store`) into `base`,
/// rebuilding only the posting lists and owner buckets the tail touches
/// and structurally sharing every untouched list with `base`. The result
/// is bit-identical to BuildIndexes(store, num_users, options) — see
/// tests/core/compaction_invariance_test.cc — at O(tail + touched lists)
/// cost instead of O(catalogue). `base` must cover exactly
/// [0, base_horizon) and have been built with the same `options`.
Result<BuiltIndexes> MergeIndexes(const BuiltIndexes& base,
                                  ItemId base_horizon, ItemStoreView store,
                                  size_t num_users,
                                  const InvertedIndex::Options& options,
                                  IndexMergeStats* merge_stats);

}  // namespace amici

#endif  // AMICI_INDEX_INDEX_BUILDER_H_
