#ifndef AMICI_INDEX_INDEX_BUILDER_H_
#define AMICI_INDEX_INDEX_BUILDER_H_

#include <cstddef>

#include "index/inverted_index.h"
#include "index/social_index.h"
#include "storage/item_store.h"
#include "util/status.h"

namespace amici {

/// Timings and footprints reported by Table 2 (index construction).
struct IndexBuildStats {
  double inverted_build_ms = 0.0;
  double social_build_ms = 0.0;
  size_t inverted_bytes = 0;
  size_t social_bytes = 0;
};

/// Everything the query engine needs, built in one shot from the catalogue.
struct BuiltIndexes {
  InvertedIndex inverted;
  SocialIndex social;
  IndexBuildStats stats;
};

/// Builds the inverted and social indexes over the items visible in
/// `store` for a graph of `num_users` users, timing each phase. Passing a
/// bounded snapshot view makes the build safe to run concurrently with a
/// writer appending past the view's bound (off-hot-path compaction).
Result<BuiltIndexes> BuildIndexes(
    ItemStoreView store, size_t num_users,
    const InvertedIndex::Options& options = InvertedIndex::Options());

}  // namespace amici

#endif  // AMICI_INDEX_INDEX_BUILDER_H_
