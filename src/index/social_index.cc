#include "index/social_index.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace amici {

SocialIndex SocialIndex::Build(ItemStoreView store, size_t num_users) {
  SocialIndex index;
  index.per_user_.resize(num_users);

  std::vector<uint32_t> counts(num_users, 0);
  for (size_t i = 0; i < store.num_items(); ++i) {
    const UserId owner = store.owner(static_cast<ItemId>(i));
    if (owner < num_users) ++counts[owner];
  }

  std::vector<std::vector<ScoredItem>> buckets(num_users);
  for (size_t u = 0; u < num_users; ++u) {
    if (counts[u] > 0) buckets[u].reserve(counts[u]);
  }
  for (size_t i = 0; i < store.num_items(); ++i) {
    const ItemId item = static_cast<ItemId>(i);
    const UserId owner = store.owner(item);
    if (owner >= num_users) continue;
    buckets[owner].push_back({item, store.quality(item)});
    ++index.num_entries_;
  }
  for (size_t u = 0; u < num_users; ++u) {
    if (buckets[u].empty()) continue;  // null handle = no items
    std::sort(buckets[u].begin(), buckets[u].end(), ScoreDescItemAsc);
    index.per_user_[u] = std::make_shared<const std::vector<ScoredItem>>(
        std::move(buckets[u]));
  }
  return index;
}

SocialIndex SocialIndex::Restore(
    std::vector<std::shared_ptr<const std::vector<ScoredItem>>> per_user) {
  SocialIndex index;
  index.per_user_ = std::move(per_user);
  for (const auto& bucket : index.per_user_) {
    if (bucket != nullptr) index.num_entries_ += bucket->size();
  }
  return index;
}

SocialIndex SocialIndex::MergeFrom(ItemStoreView store, ItemId base_horizon,
                                   size_t num_users,
                                   uint64_t* lists_touched) const {
  SocialIndex merged;
  merged.per_user_ = per_user_;  // O(num_users) handle copies
  merged.per_user_.resize(num_users);
  merged.num_entries_ = num_entries_;

  // Bucket the tail per touched owner.
  std::unordered_map<UserId, std::vector<ScoredItem>> tail_buckets;
  for (size_t i = base_horizon; i < store.num_items(); ++i) {
    const ItemId item = static_cast<ItemId>(i);
    const UserId owner = store.owner(item);
    if (owner >= num_users) continue;
    tail_buckets[owner].push_back({item, store.quality(item)});
    ++merged.num_entries_;
  }

  for (auto& [owner, tail] : tail_buckets) {
    const std::span<const ScoredItem> base =
        owner < per_user_.size() && per_user_[owner] != nullptr
            ? std::span<const ScoredItem>(*per_user_[owner])
            : std::span<const ScoredItem>();
    std::vector<ScoredItem> bucket;
    bucket.reserve(base.size() + tail.size());
    bucket.insert(bucket.end(), base.begin(), base.end());
    bucket.insert(bucket.end(), tail.begin(), tail.end());
    std::sort(bucket.begin(), bucket.end(), ScoreDescItemAsc);
    merged.per_user_[owner] =
        std::make_shared<const std::vector<ScoredItem>>(std::move(bucket));
    if (lists_touched != nullptr) ++*lists_touched;
  }
  return merged;
}

}  // namespace amici
