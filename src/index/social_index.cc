#include "index/social_index.h"

#include <algorithm>

namespace amici {

SocialIndex SocialIndex::Build(ItemStoreView store, size_t num_users) {
  SocialIndex index;
  std::vector<uint64_t> counts(num_users + 1, 0);
  for (size_t i = 0; i < store.num_items(); ++i) {
    const UserId owner = store.owner(static_cast<ItemId>(i));
    if (owner < num_users) ++counts[owner + 1];
  }
  for (size_t u = 1; u < counts.size(); ++u) counts[u] += counts[u - 1];
  index.offsets_ = counts;

  index.items_.resize(index.offsets_.back());
  std::vector<uint64_t> cursor(index.offsets_.begin(),
                               index.offsets_.end() - 1);
  for (size_t i = 0; i < store.num_items(); ++i) {
    const ItemId item = static_cast<ItemId>(i);
    const UserId owner = store.owner(item);
    if (owner >= num_users) continue;
    index.items_[cursor[owner]++] = {item, store.quality(item)};
  }
  for (size_t u = 0; u < num_users; ++u) {
    auto begin = index.items_.begin() +
                 static_cast<ptrdiff_t>(index.offsets_[u]);
    auto end = index.items_.begin() +
               static_cast<ptrdiff_t>(index.offsets_[u + 1]);
    std::sort(begin, end, [](const ScoredItem& a, const ScoredItem& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.item < b.item;
    });
  }
  return index;
}

}  // namespace amici
