#ifndef AMICI_INDEX_SOCIAL_INDEX_H_
#define AMICI_INDEX_SOCIAL_INDEX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "storage/item_store.h"
#include "storage/posting_list.h"
#include "util/ids.h"

namespace amici {

/// Owner-to-items index: for every user, their items sorted by decreasing
/// quality. This is the access path of SocialFirst — walk friends in
/// proximity order, and within a friend take items best-first, so the
/// combined bound (proximity, per-user best quality) decreases
/// monotonically.
class SocialIndex {
 public:
  SocialIndex() = default;

  /// Builds the index for `num_users` users over every item visible in
  /// `store`. Items owned by users >= num_users are ignored (they cannot
  /// be reached by any social query).
  static SocialIndex Build(ItemStoreView store, size_t num_users);

  size_t num_users() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Items of `user`, quality-descending. Valid while the index lives.
  std::span<const ScoredItem> ItemsOf(UserId user) const {
    return {items_.data() + offsets_[user],
            items_.data() + offsets_[user + 1]};
  }

  /// Highest item quality of `user` (0 if the user owns nothing).
  float BestQuality(UserId user) const {
    const auto items = ItemsOf(user);
    return items.empty() ? 0.0f : items[0].score;
  }

  /// Total number of (user, item) entries.
  size_t num_entries() const { return items_.size(); }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const {
    return offsets_.capacity() * sizeof(uint64_t) +
           items_.capacity() * sizeof(ScoredItem);
  }

 private:
  std::vector<uint64_t> offsets_{0};
  std::vector<ScoredItem> items_;
};

}  // namespace amici

#endif  // AMICI_INDEX_SOCIAL_INDEX_H_
