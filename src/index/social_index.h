#ifndef AMICI_INDEX_SOCIAL_INDEX_H_
#define AMICI_INDEX_SOCIAL_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "storage/item_store.h"
#include "storage/posting_list.h"
#include "util/ids.h"

namespace amici {

/// Owner-to-items index: for every user, their items sorted by decreasing
/// quality. This is the access path of SocialFirst — walk friends in
/// proximity order, and within a friend take items best-first, so the
/// combined bound (proximity, per-user best quality) decreases
/// monotonically.
///
/// Buckets are held through shared, immutable handles (null = the user
/// owns nothing): MergeFrom() builds a successor index that rebuilds only
/// the buckets of users who own tail items and shares every other bucket
/// pointer-identically with this index (incremental compaction).
class SocialIndex {
 public:
  SocialIndex() = default;

  /// Builds the index for `num_users` users over every item visible in
  /// `store`. Items owned by users >= num_users are ignored (they cannot
  /// be reached by any social query).
  static SocialIndex Build(ItemStoreView store, size_t num_users);

  /// Incremental merge: the index over store[0, store.num_items()) given
  /// this index covers [0, base_horizon). Only buckets of owners with
  /// tail items are rebuilt; everything else is shared. Bit-identical to
  /// Build(store, num_users) — the (quality desc, item asc) order is a
  /// strict total order, so sorted buckets are unique. `lists_touched`,
  /// when non-null, is incremented per rebuilt bucket.
  SocialIndex MergeFrom(ItemStoreView store, ItemId base_horizon,
                        size_t num_users, uint64_t* lists_touched) const;

  /// Reassembles an index from persisted buckets (src/persist/), one
  /// handle per user (null = owns nothing), already quality-desc sorted.
  static SocialIndex Restore(
      std::vector<std::shared_ptr<const std::vector<ScoredItem>>> per_user);

  size_t num_users() const { return per_user_.size(); }

  /// Items of `user`, quality-descending. Valid while any index
  /// generation sharing the bucket lives. Requires user < num_users().
  std::span<const ScoredItem> ItemsOf(UserId user) const {
    const auto& bucket = per_user_[user];
    if (bucket == nullptr) return {};
    return {bucket->data(), bucket->size()};
  }

  /// The shared handle behind ItemsOf() — null when the user owns
  /// nothing. Exposed so tests can assert structural sharing across
  /// merged generations by pointer equality.
  std::shared_ptr<const std::vector<ScoredItem>> BucketHandle(
      UserId user) const {
    return user < per_user_.size() ? per_user_[user] : nullptr;
  }

  /// Highest item quality of `user` (0 if the user owns nothing).
  float BestQuality(UserId user) const {
    const auto items = ItemsOf(user);
    return items.empty() ? 0.0f : items[0].score;
  }

  /// Total number of (user, item) entries.
  size_t num_entries() const { return num_entries_; }

  /// Approximate heap footprint in bytes. Buckets shared with other index
  /// generations are counted here too (they are reachable from this one).
  size_t MemoryBytes() const {
    size_t bytes = per_user_.capacity() * sizeof(Bucket);
    for (const auto& bucket : per_user_) {
      if (bucket != nullptr) bytes += bucket->capacity() * sizeof(ScoredItem);
    }
    return bytes;
  }

 private:
  using Bucket = std::shared_ptr<const std::vector<ScoredItem>>;

  std::vector<Bucket> per_user_;  // null = user owns nothing
  size_t num_entries_ = 0;
};

}  // namespace amici

#endif  // AMICI_INDEX_SOCIAL_INDEX_H_
