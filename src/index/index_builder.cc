#include "index/index_builder.h"

#include <utility>

#include "util/stopwatch.h"

namespace amici {

Result<BuiltIndexes> BuildIndexes(ItemStoreView store, size_t num_users,
                                  const InvertedIndex::Options& options) {
  BuiltIndexes built;
  Stopwatch watch;
  AMICI_ASSIGN_OR_RETURN(built.inverted, InvertedIndex::Build(store, options));
  built.stats.inverted_build_ms = watch.ElapsedMillis();
  built.stats.inverted_bytes = built.inverted.MemoryBytes();

  watch.Restart();
  built.social = SocialIndex::Build(store, num_users);
  built.stats.social_build_ms = watch.ElapsedMillis();
  built.stats.social_bytes = built.social.MemoryBytes();
  return built;
}

Result<BuiltIndexes> MergeIndexes(const BuiltIndexes& base,
                                  ItemId base_horizon, ItemStoreView store,
                                  size_t num_users,
                                  const InvertedIndex::Options& options,
                                  IndexMergeStats* merge_stats) {
  if (static_cast<size_t>(base_horizon) > store.num_items()) {
    return Status::InvalidArgument("base horizon beyond the store view");
  }
  IndexMergeStats local;
  IndexMergeStats* stats = merge_stats != nullptr ? merge_stats : &local;
  stats->items_merged +=
      store.num_items() - static_cast<size_t>(base_horizon);

  BuiltIndexes built;
  Stopwatch watch;
  AMICI_ASSIGN_OR_RETURN(
      built.inverted,
      base.inverted.MergeFrom(store, base_horizon, options,
                              &stats->lists_touched));
  built.stats.inverted_build_ms = watch.ElapsedMillis();
  built.stats.inverted_bytes = built.inverted.MemoryBytes();

  watch.Restart();
  built.social = base.social.MergeFrom(store, base_horizon, num_users,
                                       &stats->lists_touched);
  built.stats.social_build_ms = watch.ElapsedMillis();
  built.stats.social_bytes = built.social.MemoryBytes();
  return built;
}

}  // namespace amici
