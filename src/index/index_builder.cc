#include "index/index_builder.h"

#include <utility>

#include "util/stopwatch.h"

namespace amici {

Result<BuiltIndexes> BuildIndexes(ItemStoreView store, size_t num_users,
                                  const InvertedIndex::Options& options) {
  BuiltIndexes built;
  Stopwatch watch;
  AMICI_ASSIGN_OR_RETURN(built.inverted, InvertedIndex::Build(store, options));
  built.stats.inverted_build_ms = watch.ElapsedMillis();
  built.stats.inverted_bytes = built.inverted.MemoryBytes();

  watch.Restart();
  built.social = SocialIndex::Build(store, num_users);
  built.stats.social_build_ms = watch.ElapsedMillis();
  built.stats.social_bytes = built.social.MemoryBytes();
  return built;
}

}  // namespace amici
