#ifndef AMICI_INDEX_INVERTED_INDEX_H_
#define AMICI_INDEX_INVERTED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "storage/item_store.h"
#include "storage/posting_list.h"
#include "util/ids.h"
#include "util/status.h"

namespace amici {

/// Dual-representation inverted tag index:
///
///  * a compressed, document-ordered PostingList per tag — candidate
///    enumeration and conjunctive merging (ExhaustiveScan, NRA);
///  * an impact-ordered array per tag (items sorted by decreasing static
///    quality) — the sorted-access stream consumed by ContentFirstTa.
///
/// The impact order is by item quality, which is exactly the per-tag
/// contribution to the content score (see Scorer), so impact-ordered
/// traversal yields monotonically non-increasing score bounds.
///
/// Both representations are held through shared, immutable list handles
/// (null = empty list): MergeFrom() builds a successor index that
/// REBUILDS only the lists the ingest tail touches and SHARES every
/// other list pointer-identically with this index — the structural
/// sharing that makes incremental (LSM-style) compaction O(tail +
/// touched lists) instead of O(catalogue).
class InvertedIndex {
 public:
  struct Options {
    PostingList::Options posting_options;
    /// When false, the impact-ordered arrays are not materialized
    /// (Table 3 ablation: TA then falls back to doc-ordered traversal).
    bool build_impact_ordered = true;
  };

  InvertedIndex() = default;

  /// Builds the index over every item visible in `store`. Tag universe
  /// size is taken from the view, so a bounded snapshot view yields an
  /// index over exactly that catalogue prefix.
  static Result<InvertedIndex> Build(ItemStoreView store,
                                     const Options& options);
  static Result<InvertedIndex> Build(ItemStoreView store);

  /// Incremental (LSM-style) merge: returns the index over
  /// store[0, store.num_items()) given that THIS index covers exactly
  /// [0, base_horizon). Only the lists of tags carried by tail items
  /// (ids >= base_horizon) are rebuilt — existing postings are decoded
  /// and re-scored through the store (qualities are immutable), tail
  /// postings appended — while every untouched tag shares its lists
  /// pointer-identically with this index. Bit-identical to
  /// Build(store, options). `lists_touched`, when non-null, is
  /// incremented by the number of tags whose lists were rebuilt.
  Result<InvertedIndex> MergeFrom(ItemStoreView store, ItemId base_horizon,
                                  const Options& options,
                                  uint64_t* lists_touched) const;

  /// Reassembles an index from persisted parts (src/persist/): per-tag
  /// doc-ordered list handles and impact-ordered arrays, null = tag with
  /// no postings. Both vectors must be tag-universe sized (impact vector
  /// empty when not materialized). The caller (SnapshotReader) has
  /// already checksum-verified and structurally validated every list.
  static InvertedIndex Restore(
      std::vector<std::shared_ptr<const PostingList>> doc_ordered,
      std::vector<std::shared_ptr<const std::vector<ScoredItem>>>
          impact_ordered,
      bool has_impact_ordered);

  /// Number of distinct tags covered (= tag universe size at build).
  size_t num_tags() const { return doc_ordered_.size(); }

  /// Number of items carrying `tag` (0 for out-of-range tags).
  size_t DocumentFrequency(TagId tag) const;

  /// Document-ordered compressed postings of `tag`; empty list for
  /// out-of-range tags.
  const PostingList& Postings(TagId tag) const;

  /// The shared handle behind Postings() — null for empty/out-of-range
  /// tags. Exposed so tests can assert structural sharing across merged
  /// generations by pointer equality.
  std::shared_ptr<const PostingList> PostingsHandle(TagId tag) const;

  /// Impact-ordered (quality-descending) postings of `tag`; empty span if
  /// not materialized or out of range.
  std::span<const ScoredItem> ImpactOrdered(TagId tag) const;

  bool has_impact_ordered() const { return has_impact_ordered_; }

  /// Approximate heap footprint in bytes. Lists shared with other index
  /// generations are counted here too (they are reachable from this one).
  size_t MemoryBytes() const;

 private:
  using ListHandle = std::shared_ptr<const PostingList>;
  using ImpactHandle = std::shared_ptr<const std::vector<ScoredItem>>;

  std::vector<ListHandle> doc_ordered_;     // null = no postings
  std::vector<ImpactHandle> impact_ordered_;  // null = no postings
  bool has_impact_ordered_ = false;
  PostingList empty_list_;
};

}  // namespace amici

#endif  // AMICI_INDEX_INVERTED_INDEX_H_
