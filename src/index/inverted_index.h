#ifndef AMICI_INDEX_INVERTED_INDEX_H_
#define AMICI_INDEX_INVERTED_INDEX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "storage/item_store.h"
#include "storage/posting_list.h"
#include "util/ids.h"
#include "util/status.h"

namespace amici {

/// Dual-representation inverted tag index:
///
///  * a compressed, document-ordered PostingList per tag — candidate
///    enumeration and conjunctive merging (ExhaustiveScan, NRA);
///  * an impact-ordered array per tag (items sorted by decreasing static
///    quality) — the sorted-access stream consumed by ContentFirstTa.
///
/// The impact order is by item quality, which is exactly the per-tag
/// contribution to the content score (see Scorer), so impact-ordered
/// traversal yields monotonically non-increasing score bounds.
class InvertedIndex {
 public:
  struct Options {
    PostingList::Options posting_options;
    /// When false, the impact-ordered arrays are not materialized
    /// (Table 3 ablation: TA then falls back to doc-ordered traversal).
    bool build_impact_ordered = true;
  };

  InvertedIndex() = default;

  /// Builds the index over every item visible in `store`. Tag universe
  /// size is taken from the view, so a bounded snapshot view yields an
  /// index over exactly that catalogue prefix.
  static Result<InvertedIndex> Build(ItemStoreView store,
                                     const Options& options);
  static Result<InvertedIndex> Build(ItemStoreView store);

  /// Number of distinct tags covered (= tag universe size at build).
  size_t num_tags() const { return doc_ordered_.size(); }

  /// Number of items carrying `tag` (0 for out-of-range tags).
  size_t DocumentFrequency(TagId tag) const;

  /// Document-ordered compressed postings of `tag`; empty list for
  /// out-of-range tags.
  const PostingList& Postings(TagId tag) const;

  /// Impact-ordered (quality-descending) postings of `tag`; empty span if
  /// not materialized or out of range.
  std::span<const ScoredItem> ImpactOrdered(TagId tag) const;

  bool has_impact_ordered() const { return has_impact_ordered_; }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const;

 private:
  std::vector<PostingList> doc_ordered_;
  std::vector<std::vector<ScoredItem>> impact_ordered_;
  bool has_impact_ordered_ = false;
  PostingList empty_list_;
};

}  // namespace amici

#endif  // AMICI_INDEX_INVERTED_INDEX_H_
