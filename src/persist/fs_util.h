#ifndef AMICI_PERSIST_FS_UTIL_H_
#define AMICI_PERSIST_FS_UTIL_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace amici {
namespace persist {

/// Durable filesystem primitives for the snapshot commit protocol.
/// Commit point = renaming CURRENT; everything referenced must be fully
/// on disk before that rename, so every write here fsyncs.

/// Creates `dir` (and parents) if missing.
Status EnsureDir(const std::string& dir);

/// Writes `data` to `path`, fsyncs the file before closing. Replaces any
/// existing file in place (NOT atomic — use WriteFileAtomic for files a
/// reader may hold open across the write).
Status WriteFileDurable(const std::string& path, std::string_view data);

/// Writes `data` to `path` via `<path>.tmp` + fsync + rename + directory
/// fsync — atomic replace, the manifest/CURRENT commit primitive.
Status WriteFileAtomic(const std::string& path, std::string_view data);

/// Best-effort fsync of a directory so renames/creates in it are durable.
Status SyncDir(const std::string& dir);

/// Removes a file; missing files are not an error.
Status RemoveFileIfExists(const std::string& path);

/// True when `path` exists (any file type).
bool FileExists(const std::string& path);

/// `dir` + "/" + `name`.
std::string JoinPath(const std::string& dir, std::string_view name);

}  // namespace persist
}  // namespace amici

#endif  // AMICI_PERSIST_FS_UTIL_H_
