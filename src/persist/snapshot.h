#ifndef AMICI_PERSIST_SNAPSHOT_H_
#define AMICI_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/engine_snapshot.h"
#include "graph/social_graph.h"
#include "persist/manifest.h"
#include "storage/item_store.h"
#include "storage/posting_list.h"
#include "util/status.h"

namespace amici {
namespace persist {

/// Engine-level snapshot save/load: the codecs between an immutable
/// EngineSnapshot and a directory of segment files + manifest.
///
/// Directory layout (bare engine; services add a root manifest, WAL and
/// shard-<i>/ subdirectories on top — see SearchService::SaveSnapshot):
///
///   CURRENT             -> names the live MANIFEST-<gen> (atomic commit)
///   MANIFEST-<gen>      checksummed root of trust (persist/manifest.h)
///   items-<gen>.seg     catalogue rows [first_id, first_id + count)
///   postings-<gen>.seg  per-tag posting-list v2 images + impact arrays
///   social-<gen>.seg    per-owner quality-ordered buckets
///   grid-<gen>.seg      per-cell item lists (only when geo items exist)
///   graph-<gen>.seg     CSR graph image (omitted for shard snapshots —
///                       the service owns ONE graph for all shards)
///
/// Posting segments embed the PostingList v2 serialized image VERBATIM,
/// so a loaded snapshot maps them and traverses blocks zero-copy —
/// block-max skipping and SIMD batched decode run against the page
/// cache, not a deserialized copy.
///
/// Incremental saves: because merge compaction is bit-identical to a
/// full rebuild, a key's serialized list changes ONLY when items in
/// [prev index_horizon, new index_horizon) touch it. A save against a
/// previous manifest therefore writes just those tags / owners / cells
/// (plus the new catalogue rows) as a new segment generation; readers
/// apply generations in order, latest wins per key, and untouched
/// segments stay live across saves.

struct SnapshotSaveOptions {
  enum class Mode {
    kAuto,         // incremental when a compatible previous manifest exists
    kFull,         // rewrite everything
    kIncremental,  // delta or fail (FailedPrecondition without a base)
  };
  Mode mode = Mode::kAuto;
  /// Shard snapshots set this false: the graph is saved once at the
  /// service root, not once per shard.
  bool include_graph = true;
  /// Set only when the caller KNOWS the live graph is byte-identical to
  /// the previous manifest's graph segment; an incremental save then
  /// carries that segment over instead of rewriting O(E) bytes. Graph
  /// version counters restart per process, so version equality with a
  /// manifest written by an earlier process proves nothing — the engine
  /// sets this from in-process save tracking, never from the manifest.
  bool graph_unchanged_since_prev = false;
};

struct SnapshotSaveReport {
  uint64_t generation = 0;
  bool incremental = false;
  uint64_t segments_written = 0;
  uint64_t lists_written = 0;  // posting lists + buckets + cells + item rows
  uint64_t bytes_written = 0;
};

struct SnapshotOpenOptions {
  /// Full payload checksum verification at open. Disabling defers page
  /// faults to first use (the cold-start bench's lazy path); header
  /// checksums and manifest cross-checks still run.
  bool verify_checksums = true;
  /// Specific manifest to open (a service root pins its shards' manifest
  /// generation). Empty = read CURRENT.
  std::string manifest_name;
};

/// What LoadEngineSnapshot reconstructs; the engine assembles it into a
/// live EngineSnapshot (the grid needs a view over the engine-owned
/// store, so GridIndex::Restore runs there, not here).
struct LoadedEngineState {
  Manifest manifest;
  ItemStore store;
  /// Null when the snapshot has no graph segment (shard snapshots).
  std::shared_ptr<const SocialGraph> graph;
  /// Tag-indexed handles for InvertedIndex::Restore. Posting lists VIEW
  /// the mapped segments (each holds its segment as keepalive).
  std::vector<std::shared_ptr<const PostingList>> doc_ordered;
  std::vector<std::shared_ptr<const std::vector<ScoredItem>>> impact_ordered;
  /// User-indexed buckets for SocialIndex::Restore.
  std::vector<std::shared_ptr<const std::vector<ScoredItem>>> social_buckets;
  /// Cell key -> ascending ids for GridIndex::Restore.
  std::vector<std::pair<uint64_t, std::shared_ptr<const std::vector<ItemId>>>>
      grid_cells;
};

/// Writes the segment files and MANIFEST-<generation> for `snap` into
/// `dir` (created if missing) — everything except the CURRENT commit,
/// which the caller performs (engines commit directly; services commit
/// one root CURRENT over many shard writes). `prev`, when non-null, is
/// the directory's live manifest and enables an incremental save.
Result<Manifest> WriteEngineSnapshot(const std::string& dir,
                                     const EngineSnapshot& snap,
                                     uint64_t generation, const Manifest* prev,
                                     const SnapshotSaveOptions& options,
                                     SnapshotSaveReport* report);

/// Graph segment payload codec: a raw CSR image
///   u64 num_users | u64 neighbor_slots
///   | offsets u64*(num_users+1) | neighbors u32*neighbor_slots
/// so restoring the shared graph is two bulk copies plus an O(V + E)
/// shape check, not a varint decode of every edge (graph_io's "AMIG"
/// wire format stays for export/import paths where bytes matter more
/// than restart latency).
///
/// A delta-overlay graph (base CSR + replacement-row patch; see
/// src/proximity_service/) appends its patch as a replayable tail after
/// the base arrays:
///   u64 num_rows | num_rows * (u64 user | u64 len | u32*len row)
/// — each entry replays as "replace user's row", exactly the operation
/// edits perform, so the restored provider adopts the patch unfolded.
/// A patch-free graph writes no tail and the payload is byte-identical
/// to the legacy pure-CSR image (old snapshots parse unchanged).
std::string BuildGraphSegmentPayload(const SocialGraph& graph);
Result<SocialGraph> ParseGraphSegmentPayload(std::string_view payload);

/// Loads the state a manifest describes: maps and verifies every live
/// segment, replays item generations into a fresh store, resolves
/// per-key latest-wins over list generations.
Result<LoadedEngineState> LoadEngineSnapshot(const std::string& dir,
                                             const SnapshotOpenOptions& options);

/// Deletes snapshot files in `dir` that `live` no longer references
/// (superseded segments, old manifests, stale WALs). Run after a
/// CURRENT commit; never required for correctness.
Status RemoveRetiredFiles(const std::string& dir, const Manifest& live);

}  // namespace persist
}  // namespace amici

#endif  // AMICI_PERSIST_SNAPSHOT_H_
