#include "persist/manifest.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "persist/codec.h"
#include "persist/fs_util.h"
#include "util/file_util.h"
#include "util/hash.h"

namespace amici {
namespace persist {

namespace {
constexpr char kManifestMagic[4] = {'A', 'M', 'I', 'M'};
constexpr uint16_t kManifestFormatVersion = 1;
constexpr std::string_view kCurrentFile = "CURRENT";
}  // namespace

std::string Manifest::Serialize() const {
  std::string out;
  out.append(kManifestMagic, sizeof(kManifestMagic));
  PutRaw<uint16_t>(kManifestFormatVersion, &out);
  PutRaw<uint64_t>(generation, &out);
  PutRaw<uint64_t>(num_users, &out);
  PutRaw<uint64_t>(num_items, &out);
  PutRaw<uint64_t>(index_horizon, &out);
  PutRaw<uint64_t>(num_tags, &out);
  PutRaw<uint64_t>(graph_version, &out);
  PutRaw<uint8_t>(has_impact_ordered, &out);
  PutRaw<uint8_t>(has_grid, &out);
  PutRaw<double>(grid_cell_size_deg, &out);
  PutRaw<uint32_t>(num_shards, &out);
  PutLengthPrefixed(wal_file, &out);
  PutRaw<uint32_t>(static_cast<uint32_t>(segments.size()), &out);
  for (const SegmentInfo& info : segments) {
    PutRaw<uint16_t>(static_cast<uint16_t>(info.kind), &out);
    PutRaw<uint64_t>(info.generation, &out);
    PutLengthPrefixed(info.file, &out);
    PutRaw<uint64_t>(info.payload_bytes, &out);
    PutRaw<uint64_t>(info.checksum, &out);
    PutRaw<uint64_t>(info.entries, &out);
  }
  PutRaw<uint64_t>(Fnv1a64(out), &out);
  return out;
}

Result<Manifest> Manifest::Parse(std::string_view data) {
  if (data.size() < sizeof(kManifestMagic) + sizeof(uint64_t) ||
      std::memcmp(data.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return Status::Corruption("manifest: bad magic");
  }
  const std::string_view body = data.substr(0, data.size() - sizeof(uint64_t));
  uint64_t checksum = 0;
  size_t tail = body.size();
  GetRaw(data, &tail, &checksum);
  if (Fnv1a64(body) != checksum) {
    return Status::Corruption("manifest: checksum mismatch");
  }
  size_t offset = sizeof(kManifestMagic);
  uint16_t version = 0;
  if (!GetRaw(body, &offset, &version)) {
    return Status::Corruption("manifest: truncated version");
  }
  if (version != kManifestFormatVersion) {
    return Status::Corruption("manifest: unsupported format version " +
                              std::to_string(version));
  }
  Manifest m;
  uint32_t num_segments = 0;
  if (!GetRaw(body, &offset, &m.generation) ||
      !GetRaw(body, &offset, &m.num_users) ||
      !GetRaw(body, &offset, &m.num_items) ||
      !GetRaw(body, &offset, &m.index_horizon) ||
      !GetRaw(body, &offset, &m.num_tags) ||
      !GetRaw(body, &offset, &m.graph_version) ||
      !GetRaw(body, &offset, &m.has_impact_ordered) ||
      !GetRaw(body, &offset, &m.has_grid) ||
      !GetRaw(body, &offset, &m.grid_cell_size_deg) ||
      !GetRaw(body, &offset, &m.num_shards) ||
      !GetLengthPrefixed(body, &offset, &m.wal_file) ||
      !GetRaw(body, &offset, &num_segments)) {
    return Status::Corruption("manifest: truncated header");
  }
  m.segments.reserve(num_segments);
  for (uint32_t i = 0; i < num_segments; ++i) {
    SegmentInfo info;
    uint16_t kind_raw = 0;
    if (!GetRaw(body, &offset, &kind_raw) ||
        !GetRaw(body, &offset, &info.generation) ||
        !GetLengthPrefixed(body, &offset, &info.file) ||
        !GetRaw(body, &offset, &info.payload_bytes) ||
        !GetRaw(body, &offset, &info.checksum) ||
        !GetRaw(body, &offset, &info.entries)) {
      return Status::Corruption("manifest: truncated segment entry");
    }
    if (kind_raw < static_cast<uint16_t>(SegmentKind::kItems) ||
        kind_raw > static_cast<uint16_t>(SegmentKind::kGraph)) {
      return Status::Corruption("manifest: unknown segment kind " +
                                std::to_string(kind_raw));
    }
    info.kind = static_cast<SegmentKind>(kind_raw);
    m.segments.push_back(std::move(info));
  }
  if (offset != body.size()) {
    return Status::Corruption("manifest: trailing bytes");
  }
  return m;
}

std::string ManifestFileName(uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "MANIFEST-%06" PRIu64, generation);
  return buf;
}

Status WriteManifestFile(const std::string& dir, const Manifest& manifest) {
  return WriteFileDurable(JoinPath(dir, ManifestFileName(manifest.generation)),
                          manifest.Serialize());
}

Result<Manifest> ReadManifestFile(const std::string& path) {
  AMICI_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  auto manifest = Manifest::Parse(data);
  if (!manifest.ok()) {
    return Status(manifest.status().code(),
                  path + ": " + manifest.status().message());
  }
  return manifest;
}

Status CommitCurrent(const std::string& dir, uint64_t generation) {
  return WriteFileAtomic(JoinPath(dir, kCurrentFile),
                         ManifestFileName(generation) + "\n");
}

Result<std::string> ReadCurrent(const std::string& dir) {
  AMICI_ASSIGN_OR_RETURN(std::string data,
                         ReadFileToString(JoinPath(dir, kCurrentFile)));
  while (!data.empty() && (data.back() == '\n' || data.back() == '\r')) {
    data.pop_back();
  }
  if (data.empty() || data.find('/') != std::string::npos) {
    return Status::Corruption(dir + "/CURRENT: malformed manifest name");
  }
  return data;
}

Result<Manifest> LoadCurrentManifest(const std::string& dir) {
  AMICI_ASSIGN_OR_RETURN(std::string name, ReadCurrent(dir));
  return ReadManifestFile(JoinPath(dir, name));
}

}  // namespace persist
}  // namespace amici
