#ifndef AMICI_PERSIST_SEGMENT_H_
#define AMICI_PERSIST_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "persist/mapped_file.h"
#include "util/status.h"

namespace amici {
namespace persist {

/// What a segment file holds. Stable on-disk values — append only.
enum class SegmentKind : uint16_t {
  kItems = 1,     // ItemStore rows [first_id, first_id + count)
  kPostings = 2,  // per-tag posting-list v2 images + impact arrays
  kSocial = 3,    // per-owner quality-ordered buckets
  kGrid = 4,      // per-cell ascending item-id lists
  kGraph = 5,     // CSR social graph (graph_io image)
};

/// Human-readable kind name ("items", "postings", ...), also the segment
/// file-name stem.
std::string_view SegmentKindName(SegmentKind kind);

/// Segment file layout:
///
///   [0,  4)  magic "AMSG"
///   [4,  6)  u16 format version (currently 1)
///   [6,  8)  u16 SegmentKind
///   [8, 16)  u64 payload size
///   [16,24)  u64 FNV-1a of the payload
///   [24,32)  u64 FNV-1a of bytes [0,24) (header checksum)
///   [32,..)  payload
///
/// Segments are immutable once written; durability across a save is
/// guaranteed by fsync-before-manifest-commit, integrity by the two
/// checksums.
inline constexpr size_t kSegmentHeaderSize = 32;
inline constexpr uint16_t kSegmentFormatVersion = 1;

/// Writes a complete segment file at `path` (replacing any existing
/// file) and fsyncs it, so a subsequent manifest commit cannot point at
/// bytes still in flight. The second form takes the payload's FNV-1a
/// checksum precomputed (callers that also record it in the manifest
/// hash the payload once, not twice).
Status WriteSegmentFile(const std::string& path, SegmentKind kind,
                        std::string_view payload);
Status WriteSegmentFile(const std::string& path, SegmentKind kind,
                        std::string_view payload, uint64_t payload_checksum);

/// A read-only, memory-mapped segment. Opening validates the header
/// (magic, version, kind, sizes) and — unless `verify_checksum` is false
/// (the lazy page-fault path the cold-start bench measures) — the full
/// payload checksum. Holders of payload() views keep the returned
/// shared_ptr alive.
class MappedSegment {
 public:
  static Result<std::shared_ptr<const MappedSegment>> Open(
      const std::string& path, SegmentKind expected_kind,
      bool verify_checksum = true);

  SegmentKind kind() const { return kind_; }
  uint64_t payload_checksum() const { return payload_checksum_; }
  std::string_view payload() const {
    return file_->view().substr(kSegmentHeaderSize);
  }
  /// The backing mapping — the keepalive for zero-copy views.
  std::shared_ptr<const MappedFile> file() const { return file_; }

 private:
  MappedSegment(std::shared_ptr<const MappedFile> file, SegmentKind kind,
                uint64_t payload_checksum)
      : file_(std::move(file)),
        kind_(kind),
        payload_checksum_(payload_checksum) {}

  std::shared_ptr<const MappedFile> file_;
  SegmentKind kind_;
  uint64_t payload_checksum_;
};

}  // namespace persist
}  // namespace amici

#endif  // AMICI_PERSIST_SEGMENT_H_
