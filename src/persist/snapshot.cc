#include "persist/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <future>
#include <map>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "persist/codec.h"
#include "persist/fs_util.h"
#include "util/hash.h"

namespace amici {
namespace persist {

namespace {

static_assert(sizeof(ScoredItem) == 8,
              "ScoredItem must be a packed (u32 item, f32 score) pair — the "
              "social/impact segment payloads memcpy arrays of it");

std::string SegmentFileName(SegmentKind kind, uint64_t generation) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "-%06llu.seg",
                static_cast<unsigned long long>(generation));
  return std::string(SegmentKindName(kind)) + buf;
}

void AppendScoredItems(std::span<const ScoredItem> items, std::string* out) {
  out->append(reinterpret_cast<const char*>(items.data()),
              items.size() * sizeof(ScoredItem));
}

// ---------------------------------------------------------------------------
// Payload builders. Every key table is sorted, so identical logical state
// always serializes to identical bytes (what the twin tests rely on).

// Items payload, ItemStore-column order so the loader bulk-appends whole
// columns instead of re-parsing rows:
//   u64 first | u64 count | u64 total_tags
//   | owner u32*count | quality f32*count | latitude f32*count
//   | longitude f32*count | tag_counts u32*count
//   | tag_data u32*total_tags | has_geo u8*count
// All 4-byte columns sit at 4-aligned payload offsets (24-byte header,
// 32-byte segment header, page-aligned mapping); the lone byte column
// goes last so it cannot misalign anything.
std::string BuildItemsPayload(const ItemStoreView& view, uint64_t first,
                              uint64_t count) {
  std::string payload;
  PutRaw<uint64_t>(first, &payload);
  PutRaw<uint64_t>(count, &payload);
  uint64_t total_tags = 0;
  for (uint64_t i = first; i < first + count; ++i) {
    total_tags += view.tags(static_cast<ItemId>(i)).size();
  }
  PutRaw<uint64_t>(total_tags, &payload);
  payload.reserve(payload.size() + count * 21 + total_tags * sizeof(TagId));
  for (uint64_t i = first; i < first + count; ++i) {
    PutRaw<UserId>(view.owner(static_cast<ItemId>(i)), &payload);
  }
  for (uint64_t i = first; i < first + count; ++i) {
    PutRaw<float>(view.quality(static_cast<ItemId>(i)), &payload);
  }
  // Geo fields of non-geo rows serialize as zero so identical logical
  // state is identical bytes regardless of what the ingest row carried.
  for (uint64_t i = first; i < first + count; ++i) {
    const ItemId item = static_cast<ItemId>(i);
    PutRaw<float>(view.has_geo(item) ? view.latitude(item) : 0.0f, &payload);
  }
  for (uint64_t i = first; i < first + count; ++i) {
    const ItemId item = static_cast<ItemId>(i);
    PutRaw<float>(view.has_geo(item) ? view.longitude(item) : 0.0f, &payload);
  }
  for (uint64_t i = first; i < first + count; ++i) {
    const auto tags = view.tags(static_cast<ItemId>(i));
    PutRaw<uint32_t>(static_cast<uint32_t>(tags.size()), &payload);
  }
  for (uint64_t i = first; i < first + count; ++i) {
    const auto tags = view.tags(static_cast<ItemId>(i));
    payload.append(reinterpret_cast<const char*>(tags.data()),
                   tags.size() * sizeof(TagId));
  }
  for (uint64_t i = first; i < first + count; ++i) {
    PutRaw<uint8_t>(view.has_geo(static_cast<ItemId>(i)) ? 1 : 0, &payload);
  }
  return payload;
}

// Postings payload: u64 num_entries | per entry {u32 tag, u64 list_offset,
// u64 list_bytes, u64 impact_offset, u64 impact_count} | blob. Offsets are
// relative to the blob, which starts right after the table.
std::string BuildPostingsPayload(const InvertedIndex& inverted,
                                 const std::vector<TagId>& tags,
                                 uint64_t* lists_written) {
  std::string table;
  std::string blob;
  PutRaw<uint64_t>(tags.size(), &table);
  for (const TagId tag : tags) {
    const auto handle = inverted.PostingsHandle(tag);
    PutRaw<uint32_t>(tag, &table);
    PutRaw<uint64_t>(blob.size(), &table);
    const size_t list_start = blob.size();
    if (handle != nullptr) handle->SerializeTo(&blob);
    PutRaw<uint64_t>(blob.size() - list_start, &table);
    // Impact arrays sit 4-aligned in the blob (the blob itself starts
    // 4-aligned after the fixed-width table), so the loader reads them
    // as ScoredItem directly from the mapping. Deterministic padding.
    blob.append((4 - blob.size() % 4) % 4, '\0');
    PutRaw<uint64_t>(blob.size(), &table);
    const auto impacts = inverted.ImpactOrdered(tag);
    PutRaw<uint64_t>(impacts.size(), &table);
    AppendScoredItems(impacts, &blob);
    ++*lists_written;
  }
  return table + blob;
}

// Social payload: u64 num_entries | per entry {u32 user, u64 offset,
// u64 count} | blob of ScoredItem.
std::string BuildSocialPayload(const SocialIndex& social,
                               const std::vector<UserId>& users,
                               uint64_t* lists_written) {
  std::string table;
  std::string blob;
  PutRaw<uint64_t>(users.size(), &table);
  for (const UserId user : users) {
    const auto items = social.ItemsOf(user);
    PutRaw<uint32_t>(user, &table);
    PutRaw<uint64_t>(blob.size() / sizeof(ScoredItem), &table);
    PutRaw<uint64_t>(items.size(), &table);
    AppendScoredItems(items, &blob);
    ++*lists_written;
  }
  return table + blob;
}

// Grid payload: f64 cell_size | u64 num_entries | per entry {u64 key,
// u64 offset, u64 count} | blob of u32 item ids.
std::string BuildGridPayload(const GridIndex& grid,
                             const std::vector<uint64_t>& keys,
                             uint64_t* lists_written) {
  std::unordered_map<uint64_t, const std::vector<ItemId>*> cells;
  grid.ForEachCell([&cells](uint64_t key, const std::vector<ItemId>& items) {
    cells[key] = &items;
  });
  std::string table;
  std::string blob;
  PutRaw<double>(grid.cell_size_deg(), &table);
  PutRaw<uint64_t>(keys.size(), &table);
  for (const uint64_t key : keys) {
    const auto it = cells.find(key);
    PutRaw<uint64_t>(key, &table);
    PutRaw<uint64_t>(blob.size() / sizeof(ItemId), &table);
    if (it == cells.end()) {
      PutRaw<uint64_t>(0, &table);  // cell emptied — cannot happen today
      continue;
    }
    PutRaw<uint64_t>(it->second->size(), &table);
    blob.append(reinterpret_cast<const char*>(it->second->data()),
                it->second->size() * sizeof(ItemId));
    ++*lists_written;
  }
  return table + blob;
}

// ---------------------------------------------------------------------------
// Reader-side appliers, one per kind, called in ascending generation
// order so later entries win per key.

Status ApplyItemsSegment(std::string_view payload, const SegmentInfo& info,
                         ItemStore* store) {
  size_t offset = 0;
  uint64_t first = 0;
  uint64_t count = 0;
  uint64_t total_tags = 0;
  if (!GetRaw(payload, &offset, &first) || !GetRaw(payload, &offset, &count) ||
      !GetRaw(payload, &offset, &total_tags)) {
    return Status::Corruption(info.file + ": truncated items header");
  }
  if (first != store->num_items()) {
    return Status::Corruption(info.file + ": items start at id " +
                              std::to_string(first) + ", store has " +
                              std::to_string(store->num_items()));
  }
  // Fixed column layout (see BuildItemsPayload): five 4-byte columns,
  // one byte column, and the tag blob = 21 bytes per row + 4 per tag.
  // Reject any size mismatch before handing raw column pointers to the
  // store (guards first so the exact check cannot overflow).
  if (count > (payload.size() - offset) / 21 ||
      total_tags > payload.size() / sizeof(TagId) ||
      offset + count * 21 + total_tags * sizeof(TagId) != payload.size()) {
    return Status::Corruption(info.file + ": items payload size mismatch");
  }
  const char* base = payload.data() + offset;
  const auto* owner = reinterpret_cast<const UserId*>(base);
  const auto* quality = reinterpret_cast<const float*>(base + 4 * count);
  const auto* latitude = reinterpret_cast<const float*>(base + 8 * count);
  const auto* longitude = reinterpret_cast<const float*>(base + 12 * count);
  const auto* tag_counts =
      reinterpret_cast<const uint32_t*>(base + 16 * count);
  const auto* tag_data = reinterpret_cast<const TagId*>(base + 20 * count);
  const auto* has_geo = reinterpret_cast<const uint8_t*>(
      base + 20 * count + total_tags * sizeof(TagId));
  const Status applied = store->AppendColumnarBlock(
      count, owner, quality, has_geo, latitude, longitude, tag_counts,
      tag_data, total_tags);
  if (!applied.ok()) {
    return Status::Corruption(info.file + ": block rejected by store: " +
                              applied.message());
  }
  return Status::Ok();
}

Status ApplyPostingsSegment(const std::shared_ptr<const MappedSegment>& seg,
                            const SegmentInfo& info, uint64_t num_tags,
                            bool has_impact_ordered,
                            LoadedEngineState* state) {
  const std::string_view payload = seg->payload();
  size_t offset = 0;
  uint64_t num_entries = 0;
  if (!GetRaw(payload, &offset, &num_entries) || num_entries != info.entries) {
    return Status::Corruption(info.file + ": postings entry count mismatch");
  }
  const size_t table_bytes =
      sizeof(uint64_t) +
      num_entries * (sizeof(uint32_t) + 4 * sizeof(uint64_t));
  if (payload.size() < table_bytes) {
    return Status::Corruption(info.file + ": truncated postings table");
  }
  const std::string_view blob = payload.substr(table_bytes);
  // Reserved up front: aliasing handles point INTO these arenas, so they
  // must never reallocate while being filled.
  auto lists = std::make_shared<std::vector<PostingList>>();
  lists->reserve(num_entries);
  auto impact_arena = std::make_shared<std::vector<std::vector<ScoredItem>>>();
  if (has_impact_ordered) impact_arena->reserve(num_entries);
  for (uint64_t i = 0; i < num_entries; ++i) {
    uint32_t tag = 0;
    uint64_t list_offset = 0, list_bytes = 0, impact_offset = 0,
             impact_count = 0;
    GetRaw(payload, &offset, &tag);
    GetRaw(payload, &offset, &list_offset);
    GetRaw(payload, &offset, &list_bytes);
    GetRaw(payload, &offset, &impact_offset);
    GetRaw(payload, &offset, &impact_count);
    if (tag >= num_tags) {
      return Status::Corruption(info.file + ": tag " + std::to_string(tag) +
                                " outside the manifest tag universe");
    }
    if (list_offset + list_bytes > blob.size() ||
        impact_offset + impact_count * sizeof(ScoredItem) > blob.size()) {
      return Status::Corruption(info.file + ": postings blob out of range");
    }
    size_t list_cursor = list_offset;
    auto list = PostingList::DeserializeView(blob, &list_cursor, seg);
    if (!list.ok()) {
      return Status::Corruption(info.file + ": tag " + std::to_string(tag) +
                                ": " + list.status().message());
    }
    if (list_cursor != list_offset + list_bytes) {
      return Status::Corruption(info.file + ": posting image length mismatch");
    }
    // Aliasing handles into per-segment arenas: ONE shared control block
    // for the whole segment instead of one per tag (a measurable slice
    // of restart latency with tens of thousands of tags).
    lists->push_back(std::move(list).value());
    state->doc_ordered[tag] =
        std::shared_ptr<const PostingList>(lists, &lists->back());
    if (has_impact_ordered) {
      // The writer 4-aligns impact arrays in the blob (and the mapping
      // is page-aligned), so they read as ScoredItem in place; the
      // range constructor writes each arena element exactly once.
      if ((reinterpret_cast<uintptr_t>(blob.data()) + impact_offset) %
              alignof(ScoredItem) !=
          0) {
        return Status::Corruption(info.file + ": misaligned impact array");
      }
      const auto* impacts =
          reinterpret_cast<const ScoredItem*>(blob.data() + impact_offset);
      impact_arena->emplace_back(impacts, impacts + impact_count);
      state->impact_ordered[tag] =
          std::shared_ptr<const std::vector<ScoredItem>>(
              impact_arena, &impact_arena->back());
    }
  }
  return Status::Ok();
}

Status ApplySocialSegment(std::string_view payload, const SegmentInfo& info,
                          uint64_t num_users, LoadedEngineState* state) {
  size_t offset = 0;
  uint64_t num_entries = 0;
  if (!GetRaw(payload, &offset, &num_entries) || num_entries != info.entries) {
    return Status::Corruption(info.file + ": social entry count mismatch");
  }
  const size_t table_bytes =
      sizeof(uint64_t) + num_entries * (sizeof(uint32_t) + 2 * sizeof(uint64_t));
  if (payload.size() < table_bytes) {
    return Status::Corruption(info.file + ": truncated social table");
  }
  const std::string_view blob = payload.substr(table_bytes);
  // Aliasing handles into one per-segment arena (reserved so it never
  // reallocates under the handles): one control block per segment, not
  // one make_shared per user.
  auto arena = std::make_shared<std::vector<std::vector<ScoredItem>>>();
  arena->reserve(num_entries);
  for (uint64_t i = 0; i < num_entries; ++i) {
    uint32_t user = 0;
    uint64_t item_offset = 0, count = 0;
    GetRaw(payload, &offset, &user);
    GetRaw(payload, &offset, &item_offset);
    GetRaw(payload, &offset, &count);
    if (user >= num_users) {
      return Status::Corruption(info.file + ": user " + std::to_string(user) +
                                " outside the manifest user universe");
    }
    if ((item_offset + count) * sizeof(ScoredItem) > blob.size()) {
      return Status::Corruption(info.file + ": social blob out of range");
    }
    // Bucket offsets are in whole ScoredItems and the blob starts
    // 4-aligned, so buckets read in place; range-construct (one touch).
    const auto* items = reinterpret_cast<const ScoredItem*>(
        blob.data() + item_offset * sizeof(ScoredItem));
    arena->emplace_back(items, items + count);
    state->social_buckets[user] =
        std::shared_ptr<const std::vector<ScoredItem>>(arena, &arena->back());
  }
  return Status::Ok();
}

Status ApplyGridSegment(
    std::string_view payload, const SegmentInfo& info, double cell_size_deg,
    std::unordered_map<uint64_t, std::shared_ptr<const std::vector<ItemId>>>*
        cells) {
  size_t offset = 0;
  double seg_cell_size = 0.0;
  uint64_t num_entries = 0;
  if (!GetRaw(payload, &offset, &seg_cell_size) ||
      !GetRaw(payload, &offset, &num_entries) || num_entries != info.entries) {
    return Status::Corruption(info.file + ": grid header mismatch");
  }
  if (seg_cell_size != cell_size_deg) {
    return Status::Corruption(info.file +
                              ": grid cell size differs from manifest");
  }
  const size_t table_bytes = sizeof(double) + sizeof(uint64_t) +
                             num_entries * (3 * sizeof(uint64_t));
  if (payload.size() < table_bytes) {
    return Status::Corruption(info.file + ": truncated grid table");
  }
  const std::string_view blob = payload.substr(table_bytes);
  // Same aliasing-arena trick as postings/social: one control block for
  // the whole segment's cells.
  auto arena = std::make_shared<std::vector<std::vector<ItemId>>>();
  arena->reserve(num_entries);
  for (uint64_t i = 0; i < num_entries; ++i) {
    uint64_t key = 0, item_offset = 0, count = 0;
    GetRaw(payload, &offset, &key);
    GetRaw(payload, &offset, &item_offset);
    GetRaw(payload, &offset, &count);
    if ((item_offset + count) * sizeof(ItemId) > blob.size()) {
      return Status::Corruption(info.file + ": grid blob out of range");
    }
    const auto* items = reinterpret_cast<const ItemId*>(
        blob.data() + item_offset * sizeof(ItemId));
    arena->emplace_back(items, items + count);
    (*cells)[key] =
        std::shared_ptr<const std::vector<ItemId>>(arena, &arena->back());
  }
  return Status::Ok();
}

}  // namespace

Result<Manifest> WriteEngineSnapshot(const std::string& dir,
                                     const EngineSnapshot& snap,
                                     uint64_t generation, const Manifest* prev,
                                     const SnapshotSaveOptions& options,
                                     SnapshotSaveReport* report) {
  AMICI_RETURN_IF_ERROR(EnsureDir(dir));
  const ItemStoreView& view = snap.store;
  const InvertedIndex& inverted = snap.indexes->inverted;
  const SocialIndex& social = snap.indexes->social;
  const uint64_t num_items = view.num_items();
  const uint64_t num_tags = inverted.num_tags();
  const uint64_t num_users = snap.graph->num_users();

  // An incremental save is sound only against a base this state strictly
  // extends: same universe shape, monotone item/index growth, identical
  // index knobs. Anything else falls back to (or fails for) a full save.
  std::string incompatible;
  if (prev == nullptr) {
    incompatible = "no previous manifest";
  } else if (prev->num_items > num_items ||
             prev->index_horizon > snap.index_horizon) {
    incompatible = "previous manifest covers more than the live state";
  } else if (prev->num_users != num_users) {
    incompatible = "user universe changed";
  } else if (prev->num_tags > num_tags) {
    incompatible = "tag universe shrank";
  } else if ((prev->has_impact_ordered != 0) != inverted.has_impact_ordered()) {
    incompatible = "impact-ordered materialization changed";
  } else if (prev->has_grid != 0 && snap.grid == nullptr) {
    incompatible = "grid disappeared";
  } else if (prev->has_grid != 0 && snap.grid != nullptr &&
             prev->grid_cell_size_deg != snap.grid->cell_size_deg()) {
    incompatible = "grid geometry changed";
  }
  bool incremental = false;
  switch (options.mode) {
    case SnapshotSaveOptions::Mode::kFull:
      break;
    case SnapshotSaveOptions::Mode::kAuto:
      incremental = incompatible.empty();
      break;
    case SnapshotSaveOptions::Mode::kIncremental:
      if (!incompatible.empty()) {
        return Status::FailedPrecondition("incremental save impossible: " +
                                          incompatible);
      }
      incremental = true;
      break;
  }

  // Delta keys. Items in [prev horizon, new horizon) are exactly the rows
  // compaction folded in since the last save; merge compaction being
  // bit-identical to rebuild means every untouched key's serialized list
  // is unchanged, so these keys are the complete dirty set — no dirty
  // tracking in the write path needed.
  std::vector<TagId> tags_to_write;
  std::vector<UserId> users_to_write;
  std::vector<uint64_t> cells_to_write;
  if (incremental) {
    std::set<TagId> dirty_tags;
    std::set<UserId> dirty_users;
    std::set<uint64_t> dirty_cells;
    for (uint64_t i = prev->index_horizon; i < snap.index_horizon; ++i) {
      const ItemId item = static_cast<ItemId>(i);
      for (const TagId tag : view.tags(item)) dirty_tags.insert(tag);
      if (view.owner(item) < num_users) dirty_users.insert(view.owner(item));
      if (view.has_geo(item) && snap.grid != nullptr) {
        dirty_cells.insert(
            snap.grid->CellKeyFor(view.latitude(item), view.longitude(item)));
      }
    }
    tags_to_write.assign(dirty_tags.begin(), dirty_tags.end());
    users_to_write.assign(dirty_users.begin(), dirty_users.end());
    cells_to_write.assign(dirty_cells.begin(), dirty_cells.end());
  } else {
    for (TagId tag = 0; tag < num_tags; ++tag) {
      if (inverted.PostingsHandle(tag) != nullptr) tags_to_write.push_back(tag);
    }
    for (UserId user = 0; user < num_users; ++user) {
      if (!social.ItemsOf(user).empty()) users_to_write.push_back(user);
    }
    if (snap.grid != nullptr) {
      snap.grid->ForEachCell([&cells_to_write](uint64_t key,
                                               const std::vector<ItemId>&) {
        cells_to_write.push_back(key);
      });
      std::sort(cells_to_write.begin(), cells_to_write.end());
    }
  }

  Manifest manifest;
  manifest.generation = generation;
  manifest.num_users = num_users;
  manifest.num_items = num_items;
  manifest.index_horizon = snap.index_horizon;
  manifest.num_tags = num_tags;
  manifest.graph_version = snap.graph_version;
  manifest.has_impact_ordered = inverted.has_impact_ordered() ? 1 : 0;
  manifest.has_grid = snap.grid != nullptr ? 1 : 0;
  manifest.grid_cell_size_deg =
      snap.grid != nullptr ? snap.grid->cell_size_deg() : 0.0;

  SnapshotSaveReport stats;
  stats.generation = generation;
  stats.incremental = incremental;

  // Graph handling decides which prev segments stay live: on an
  // incremental save every previous segment carries over EXCEPT a graph
  // superseded by a new generation.
  const bool graph_unchanged =
      incremental && options.graph_unchanged_since_prev &&
      std::any_of(prev->segments.begin(), prev->segments.end(),
                  [](const SegmentInfo& s) {
                    return s.kind == SegmentKind::kGraph;
                  });
  const bool write_graph = options.include_graph && !graph_unchanged;
  if (incremental) {
    for (const SegmentInfo& info : prev->segments) {
      if (info.kind == SegmentKind::kGraph && write_graph) continue;
      manifest.segments.push_back(info);
    }
  }

  const auto emit = [&](SegmentKind kind, std::string payload,
                        uint64_t entries) -> Status {
    SegmentInfo info;
    info.kind = kind;
    info.generation = generation;
    info.file = SegmentFileName(kind, generation);
    info.payload_bytes = payload.size();
    info.checksum = Fnv1a64(payload);
    info.entries = entries;
    AMICI_RETURN_IF_ERROR(WriteSegmentFile(JoinPath(dir, info.file), kind,
                                           payload, info.checksum));
    manifest.segments.push_back(std::move(info));
    ++stats.segments_written;
    stats.bytes_written += payload.size() + kSegmentHeaderSize;
    return Status::Ok();
  };

  // Item rows are deliberately NOT counted into lists_written: that
  // field reports per-key lists (tags / owners / cells) so callers can
  // judge how selective an incremental save was.
  const uint64_t first_item = incremental ? prev->num_items : 0;
  if (num_items > first_item) {
    const uint64_t count = num_items - first_item;
    AMICI_RETURN_IF_ERROR(emit(SegmentKind::kItems,
                               BuildItemsPayload(view, first_item, count),
                               count));
  }
  if (!tags_to_write.empty()) {
    AMICI_RETURN_IF_ERROR(
        emit(SegmentKind::kPostings,
             BuildPostingsPayload(inverted, tags_to_write, &stats.lists_written),
             tags_to_write.size()));
  }
  if (!users_to_write.empty()) {
    AMICI_RETURN_IF_ERROR(
        emit(SegmentKind::kSocial,
             BuildSocialPayload(social, users_to_write, &stats.lists_written),
             users_to_write.size()));
  }
  if (!cells_to_write.empty()) {
    AMICI_RETURN_IF_ERROR(
        emit(SegmentKind::kGrid,
             BuildGridPayload(*snap.grid, cells_to_write, &stats.lists_written),
             cells_to_write.size()));
  }
  if (write_graph) {
    AMICI_RETURN_IF_ERROR(emit(SegmentKind::kGraph,
                               BuildGraphSegmentPayload(*snap.graph),
                               snap.graph->num_edges()));
  }

  AMICI_RETURN_IF_ERROR(WriteManifestFile(dir, manifest));
  AMICI_RETURN_IF_ERROR(SyncDir(dir));
  if (report != nullptr) *report = stats;
  return manifest;
}

std::string BuildGraphSegmentPayload(const SocialGraph& graph) {
  const std::vector<uint64_t>& offsets = graph.offsets();
  const std::vector<UserId>& neighbors = graph.neighbors();
  std::string payload;
  payload.reserve(2 * sizeof(uint64_t) + offsets.size() * sizeof(uint64_t) +
                  neighbors.size() * sizeof(UserId));
  PutRaw<uint64_t>(graph.num_users(), &payload);
  PutRaw<uint64_t>(neighbors.size(), &payload);
  payload.append(reinterpret_cast<const char*>(offsets.data()),
                 offsets.size() * sizeof(uint64_t));
  payload.append(reinterpret_cast<const char*>(neighbors.data()),
                 neighbors.size() * sizeof(UserId));
  if (graph.has_overlay() && graph.overlay()->num_rows() > 0) {
    const GraphOverlay& overlay = *graph.overlay();
    PutRaw<uint64_t>(overlay.num_rows(), &payload);
    overlay.ForEachRow([&](UserId user, const GraphOverlay::Row& row) {
      PutRaw<uint64_t>(user, &payload);
      PutRaw<uint64_t>(row.size(), &payload);
      payload.append(reinterpret_cast<const char*>(row.data()),
                     row.size() * sizeof(UserId));
    });
  }
  return payload;
}

Result<SocialGraph> ParseGraphSegmentPayload(std::string_view payload) {
  size_t offset = 0;
  uint64_t num_users = 0;
  uint64_t slots = 0;
  if (!GetRaw(payload, &offset, &num_users) ||
      !GetRaw(payload, &offset, &slots)) {
    return Status::Corruption("truncated graph header");
  }
  if (num_users > (payload.size() - offset) / sizeof(uint64_t) ||
      slots > payload.size() / sizeof(UserId) ||
      offset + (num_users + 1) * sizeof(uint64_t) + slots * sizeof(UserId) >
          payload.size()) {
    return Status::Corruption("graph payload size mismatch");
  }
  std::vector<uint64_t> offsets(num_users + 1);
  std::memcpy(offsets.data(), payload.data() + offset,
              offsets.size() * sizeof(uint64_t));
  offset += offsets.size() * sizeof(uint64_t);
  std::vector<UserId> neighbors(slots);
  std::memcpy(neighbors.data(), payload.data() + offset,
              slots * sizeof(UserId));
  offset += slots * sizeof(UserId);
  // Shape check before the CSR arrays are trusted by O(1) accessors:
  // monotone offsets bounded by the neighbor array, rows sorted/unique,
  // endpoints in range.
  if (offsets[0] != 0 || offsets[num_users] != slots) {
    return Status::Corruption("graph offsets do not cover the neighbors");
  }
  for (uint64_t u = 0; u < num_users; ++u) {
    if (offsets[u] > offsets[u + 1]) {
      return Status::Corruption("graph offsets are not monotone");
    }
    for (uint64_t e = offsets[u]; e < offsets[u + 1]; ++e) {
      if (neighbors[e] >= num_users ||
          (e > offsets[u] && neighbors[e] <= neighbors[e - 1])) {
        return Status::Corruption("graph adjacency row is not a sorted "
                                  "set of valid users");
      }
    }
  }
  SocialGraph base(std::move(offsets), std::move(neighbors));
  if (offset == payload.size()) return base;  // legacy pure-CSR image

  // Overlay tail: replacement rows replayed over the base (see the codec
  // comment in snapshot.h). Validated with the same rigor as the CSR —
  // these rows are what Friends() serves for the patched users.
  uint64_t num_rows = 0;
  if (!GetRaw(payload, &offset, &num_rows)) {
    return Status::Corruption("truncated graph overlay tail");
  }
  auto rows = std::make_shared<GraphOverlay::RowMap>();
  int64_t slot_delta = 0;
  for (uint64_t r = 0; r < num_rows; ++r) {
    uint64_t user = 0;
    uint64_t len = 0;
    if (!GetRaw(payload, &offset, &user) || !GetRaw(payload, &offset, &len)) {
      return Status::Corruption("truncated graph overlay row header");
    }
    if (user >= num_users || rows->count(static_cast<UserId>(user)) > 0) {
      return Status::Corruption("graph overlay row user invalid or repeated");
    }
    if (len > (payload.size() - offset) / sizeof(UserId)) {
      return Status::Corruption("graph overlay row overruns the payload");
    }
    std::vector<UserId> row(len);
    std::memcpy(row.data(), payload.data() + offset, len * sizeof(UserId));
    offset += len * sizeof(UserId);
    for (uint64_t e = 0; e < len; ++e) {
      if (row[e] >= num_users || row[e] == user ||
          (e > 0 && row[e] <= row[e - 1])) {
        return Status::Corruption("graph overlay row is not a sorted set "
                                  "of valid users");
      }
    }
    slot_delta += static_cast<int64_t>(len) -
                  static_cast<int64_t>(base.Degree(static_cast<UserId>(user)));
    rows->emplace(static_cast<UserId>(user),
                  std::make_shared<const GraphOverlay::Row>(std::move(row)));
  }
  if (offset != payload.size()) {
    return Status::Corruption("graph overlay tail has trailing bytes");
  }
  if (rows->empty()) return base;
  std::vector<std::shared_ptr<const GraphOverlay::RowMap>> buckets;
  buckets.push_back(std::move(rows));
  return SocialGraph(base, std::make_shared<const GraphOverlay>(
                               std::move(buckets), slot_delta));
}

Result<LoadedEngineState> LoadEngineSnapshot(
    const std::string& dir, const SnapshotOpenOptions& options) {
  LoadedEngineState state;
  if (options.manifest_name.empty()) {
    AMICI_ASSIGN_OR_RETURN(state.manifest, LoadCurrentManifest(dir));
  } else {
    AMICI_ASSIGN_OR_RETURN(
        state.manifest,
        ReadManifestFile(JoinPath(dir, options.manifest_name)));
  }
  const Manifest& manifest = state.manifest;

  // Group by kind, ascending generation within a kind (later
  // generations apply last so they win per key). Kinds populate
  // DISJOINT state fields, so they map + verify + apply concurrently —
  // the restart critical path is the slowest kind, not the sum.
  std::map<SegmentKind, std::vector<const SegmentInfo*>> by_kind;
  for (const SegmentInfo& info : manifest.segments) {
    by_kind[info.kind].push_back(&info);
  }
  for (auto& [kind, infos] : by_kind) {
    std::stable_sort(infos.begin(), infos.end(),
                     [](const SegmentInfo* a, const SegmentInfo* b) {
                       return a->generation < b->generation;
                     });
  }

  state.doc_ordered.resize(manifest.num_tags);
  if (manifest.has_impact_ordered != 0) {
    state.impact_ordered.resize(manifest.num_tags);
  }
  state.social_buckets.resize(manifest.num_users);
  std::unordered_map<uint64_t, std::shared_ptr<const std::vector<ItemId>>>
      cells;

  const auto apply_kind =
      [&](const std::vector<const SegmentInfo*>& infos) -> Status {
    for (const SegmentInfo* info : infos) {
      auto opened = MappedSegment::Open(JoinPath(dir, info->file), info->kind,
                                        options.verify_checksums);
      AMICI_RETURN_IF_ERROR(opened.status());
      const std::shared_ptr<const MappedSegment> seg =
          std::move(opened).value();
      // The manifest is the root of trust: its recorded checksum must
      // match what the segment header claims (and, when verifying, what
      // the bytes hash to) — a swapped-in file from another snapshot
      // cannot pass.
      if (seg->payload_checksum() != info->checksum ||
          seg->payload().size() != info->payload_bytes) {
        return Status::Corruption(info->file +
                                  ": segment does not match manifest");
      }
      switch (info->kind) {
        case SegmentKind::kItems:
          AMICI_RETURN_IF_ERROR(
              ApplyItemsSegment(seg->payload(), *info, &state.store));
          break;
        case SegmentKind::kPostings:
          AMICI_RETURN_IF_ERROR(ApplyPostingsSegment(
              seg, *info, manifest.num_tags, manifest.has_impact_ordered != 0,
              &state));
          break;
        case SegmentKind::kSocial:
          AMICI_RETURN_IF_ERROR(ApplySocialSegment(
              seg->payload(), *info, manifest.num_users, &state));
          break;
        case SegmentKind::kGrid:
          AMICI_RETURN_IF_ERROR(ApplyGridSegment(
              seg->payload(), *info, manifest.grid_cell_size_deg, &cells));
          break;
        case SegmentKind::kGraph: {
          auto graph = ParseGraphSegmentPayload(seg->payload());
          if (!graph.ok()) {
            return Status::Corruption(info->file + ": " +
                                      graph.status().message());
          }
          state.graph = std::make_shared<const SocialGraph>(
              std::move(graph).value());
          break;
        }
      }
    }
    return Status::Ok();
  };

  // On multi-core machines each kind gets its own worker; on a single
  // core the threads would only interleave (and pay spawn/join), so
  // everything runs inline.
  std::vector<std::future<Status>> workers;
  if (std::thread::hardware_concurrency() > 1) {
    workers.reserve(by_kind.size());
    auto it = by_kind.begin();
    for (size_t i = 1; i < by_kind.size(); ++i) {
      ++it;
      workers.push_back(std::async(std::launch::async,
                                   [&apply_kind, infos = &it->second] {
                                     return apply_kind(*infos);
                                   }));
    }
  }
  // The first kind runs on this thread; join everything before touching
  // (or abandoning) `state`, even on error.
  Status first_error = Status::Ok();
  auto serial_it = by_kind.begin();
  if (serial_it != by_kind.end()) {
    first_error = apply_kind(serial_it->second);
    ++serial_it;
  }
  if (workers.empty()) {
    for (; serial_it != by_kind.end(); ++serial_it) {
      const Status status = apply_kind(serial_it->second);
      if (first_error.ok() && !status.ok()) first_error = status;
    }
  }
  for (std::future<Status>& worker : workers) {
    const Status status = worker.get();
    if (first_error.ok() && !status.ok()) first_error = status;
  }
  AMICI_RETURN_IF_ERROR(first_error);

  if (state.store.num_items() != manifest.num_items) {
    return Status::Corruption(
        "items segments reconstruct " + std::to_string(state.store.num_items()) +
        " items, manifest records " + std::to_string(manifest.num_items));
  }
  if (state.graph != nullptr && state.graph->num_users() != manifest.num_users) {
    return Status::Corruption("graph user count does not match manifest");
  }
  if (manifest.has_grid != 0) {
    state.grid_cells.reserve(cells.size());
    for (auto& [key, items] : cells) {
      state.grid_cells.emplace_back(key, std::move(items));
    }
  }
  return state;
}

Status RemoveRetiredFiles(const std::string& dir, const Manifest& live) {
  std::unordered_set<std::string> keep;
  keep.insert("CURRENT");
  keep.insert(ManifestFileName(live.generation));
  if (!live.wal_file.empty()) keep.insert(live.wal_file);
  for (const SegmentInfo& info : live.segments) keep.insert(info.file);

  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return Status::IoError("list " + dir + ": " + ec.message());
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    const bool snapshot_file = name.rfind("MANIFEST-", 0) == 0 ||
                               name.rfind("wal-", 0) == 0 ||
                               (name.size() > 4 &&
                                name.compare(name.size() - 4, 4, ".seg") == 0);
    if (snapshot_file && keep.find(name) == keep.end()) {
      AMICI_RETURN_IF_ERROR(RemoveFileIfExists(entry.path().string()));
    }
  }
  return Status::Ok();
}

}  // namespace persist
}  // namespace amici
