#ifndef AMICI_PERSIST_CODEC_H_
#define AMICI_PERSIST_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>

namespace amici {
namespace persist {

/// Raw little-endian fixed-width codec for the persist binary formats.
/// The snapshot format is declared little-endian (like the rest of the
/// repo's binary formats, it targets x86-64/aarch64-LE); values are
/// memcpy-ed, never type-punned.

template <typename T>
inline void PutRaw(T value, std::string* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

/// Reads a T from data[*offset]; advances *offset. False on truncation.
template <typename T>
inline bool GetRaw(std::string_view data, size_t* offset, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (*offset > data.size() || data.size() - *offset < sizeof(T)) return false;
  std::memcpy(value, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

/// Length-prefixed (u32) string.
inline void PutLengthPrefixed(std::string_view value, std::string* out) {
  PutRaw<uint32_t>(static_cast<uint32_t>(value.size()), out);
  out->append(value);
}

inline bool GetLengthPrefixed(std::string_view data, size_t* offset,
                              std::string* value) {
  uint32_t length = 0;
  if (!GetRaw(data, offset, &length)) return false;
  if (data.size() - *offset < length) return false;
  value->assign(data.data() + *offset, length);
  *offset += length;
  return true;
}

}  // namespace persist
}  // namespace amici

#endif  // AMICI_PERSIST_CODEC_H_
