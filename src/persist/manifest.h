#ifndef AMICI_PERSIST_MANIFEST_H_
#define AMICI_PERSIST_MANIFEST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "persist/segment.h"
#include "util/status.h"

namespace amici {
namespace persist {

/// One live segment file referenced by a manifest.
struct SegmentInfo {
  SegmentKind kind = SegmentKind::kItems;
  /// Save generation that wrote the file. Within a kind, readers apply
  /// segments in ascending generation order and later generations win
  /// per key (tag / owner / cell) — that is how an incremental save
  /// supersedes exactly the lists the tail touched.
  uint64_t generation = 0;
  std::string file;            // name within the snapshot directory
  uint64_t payload_bytes = 0;
  uint64_t checksum = 0;       // payload FNV-1a, must match segment header
  uint64_t entries = 0;        // items / lists / buckets / cells / edges
};

/// The snapshot directory's root metadata: what state the segments
/// jointly encode and which files are live. Serialized with a trailing
/// FNV-1a checksum; committed via MANIFEST-<gen> + atomic CURRENT
/// rename, so a crash mid-save always leaves the previous snapshot
/// fully intact.
struct Manifest {
  uint64_t generation = 0;

  // Engine-level state (meaningful when num_shards == 0).
  uint64_t num_users = 0;
  uint64_t num_items = 0;       // catalogue extent covered by segments
  uint64_t index_horizon = 0;   // items [index_horizon, num_items) are tail
  uint64_t num_tags = 0;        // inverted-index width at save
  uint64_t graph_version = 0;   // proximity provider generation at save
  uint8_t has_impact_ordered = 0;
  uint8_t has_grid = 0;
  double grid_cell_size_deg = 0.0;

  // Service-level state (root manifest of a SearchService snapshot):
  // shards live in shard-<i>/ subdirectories, each with its own
  // MANIFEST-<gen> of the same generation. 0 = bare engine snapshot.
  uint32_t num_shards = 0;
  std::string wal_file;  // ingest WAL name, empty = none

  std::vector<SegmentInfo> segments;

  std::string Serialize() const;
  static Result<Manifest> Parse(std::string_view data);
};

/// "MANIFEST-<6-digit generation>".
std::string ManifestFileName(uint64_t generation);

/// Writes dir/MANIFEST-<gen> durably (no commit — CURRENT still names
/// the old manifest until CommitCurrent).
Status WriteManifestFile(const std::string& dir, const Manifest& manifest);

/// Reads and checksum-verifies a manifest file.
Result<Manifest> ReadManifestFile(const std::string& path);

/// Atomically points dir/CURRENT at MANIFEST-<generation> — the commit
/// point of a save.
Status CommitCurrent(const std::string& dir, uint64_t generation);

/// Reads dir/CURRENT; returns the manifest file name it names.
Result<std::string> ReadCurrent(const std::string& dir);

/// Convenience: ReadCurrent + ReadManifestFile.
Result<Manifest> LoadCurrentManifest(const std::string& dir);

}  // namespace persist
}  // namespace amici

#endif  // AMICI_PERSIST_MANIFEST_H_
