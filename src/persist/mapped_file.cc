#include "persist/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace amici {

Result<std::shared_ptr<const MappedFile>> MappedFile::Map(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("fstat " + path + ": " + err);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* base = nullptr;
  if (size > 0) {
    base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base == MAP_FAILED) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IoError("mmap " + path + ": " + err);
    }
  }
  // The mapping survives the close; the fd is only needed to create it.
  ::close(fd);
  return std::shared_ptr<const MappedFile>(new MappedFile(path, base, size));
}

MappedFile::~MappedFile() {
  if (base_ != nullptr) ::munmap(base_, size_);
}

}  // namespace amici
