#include "persist/fs_util.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace amici {
namespace persist {

namespace {

std::string Errno(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

}  // namespace

Status EnsureDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IoError("mkdir " + dir + ": " + ec.message());
  return Status::Ok();
}

Status WriteFileDurable(const std::string& path, std::string_view data) {
  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IoError(Errno("open", path));
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written,
                              data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Status::IoError(Errno("write", path));
      ::close(fd);
      return status;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const Status status = Status::IoError(Errno("fsync", path));
    ::close(fd);
    return status;
  }
  if (::close(fd) != 0) return Status::IoError(Errno("close", path));
  return Status::Ok();
}

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  AMICI_RETURN_IF_ERROR(WriteFileDurable(tmp, data));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError(Errno("rename", path));
  }
  const std::string dir = std::filesystem::path(path).parent_path().string();
  return SyncDir(dir.empty() ? "." : dir);
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Status::IoError(Errno("open dir", dir));
  // Some filesystems refuse fsync on directories; treat that as success —
  // the data writes themselves were already synced.
  ::fsync(fd);
  ::close(fd);
  return Status::Ok();
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IoError(Errno("unlink", path));
  }
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  struct ::stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::string JoinPath(const std::string& dir, std::string_view name) {
  if (dir.empty()) return std::string(name);
  if (dir.back() == '/') return dir + std::string(name);
  return dir + "/" + std::string(name);
}

}  // namespace persist
}  // namespace amici
