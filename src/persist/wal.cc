#include "persist/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "persist/codec.h"
#include "persist/item_codec.h"
#include "util/file_util.h"
#include "util/hash.h"

namespace amici {
namespace persist {

namespace {

constexpr char kWalMagic[4] = {'A', 'M', 'I', 'W'};
constexpr uint8_t kRecordAddItems = 1;
constexpr uint8_t kRecordAddFriendship = 2;
constexpr uint8_t kRecordRemoveFriendship = 3;
// Frame overhead: type byte + u32 length up front, u64 checksum behind.
constexpr size_t kFramePrefix = 1 + sizeof(uint32_t);
constexpr size_t kFrameSuffix = sizeof(uint64_t);

std::string Errno(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

Status WriteAll(int fd, std::string_view data, const std::string& path) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written,
                              data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(Errno("write", path));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

std::string WalFileName(uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06" PRIu64 ".log", generation);
  return buf;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(
    const std::string& path, uint64_t snapshot_generation) {
  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_APPEND | O_CLOEXEC,
                        0644);
  if (fd < 0) return Status::IoError(Errno("open", path));
  std::string header;
  header.append(kWalMagic, sizeof(kWalMagic));
  PutRaw<uint16_t>(kWalFormatVersion, &header);
  PutRaw<uint64_t>(snapshot_generation, &header);
  std::unique_ptr<WalWriter> writer(new WalWriter(path, fd));
  AMICI_RETURN_IF_ERROR(WriteAll(fd, header, path));
  AMICI_RETURN_IF_ERROR(writer->Flush());
  return writer;
}

Result<std::unique_ptr<WalWriter>> WalWriter::OpenForAppend(
    const std::string& path, uint64_t committed_bytes) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) return Status::IoError(Errno("open", path));
  if (::ftruncate(fd, static_cast<off_t>(committed_bytes)) != 0) {
    const Status status = Status::IoError(Errno("ftruncate", path));
    ::close(fd);
    return status;
  }
  return std::unique_ptr<WalWriter>(new WalWriter(path, fd));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::AppendRecord(uint8_t type, std::string_view payload) {
  std::string frame;
  frame.reserve(kFramePrefix + payload.size() + kFrameSuffix);
  PutRaw<uint8_t>(type, &frame);
  PutRaw<uint32_t>(static_cast<uint32_t>(payload.size()), &frame);
  frame.append(payload);
  PutRaw<uint64_t>(Fnv1a64(frame), &frame);
  return WriteAll(fd_, frame, path_);
}

Status WalWriter::AppendAddItems(uint64_t first_item_id,
                                 std::span<const Item> items) {
  std::string payload;
  PutRaw<uint64_t>(first_item_id, &payload);
  PutRaw<uint32_t>(static_cast<uint32_t>(items.size()), &payload);
  for (const Item& item : items) AppendItemRecord(item, &payload);
  return AppendRecord(kRecordAddItems, payload);
}

Status WalWriter::AppendAddFriendship(UserId user_a, UserId user_b) {
  std::string payload;
  PutRaw<uint32_t>(user_a, &payload);
  PutRaw<uint32_t>(user_b, &payload);
  return AppendRecord(kRecordAddFriendship, payload);
}

Status WalWriter::AppendRemoveFriendship(UserId user_a, UserId user_b) {
  std::string payload;
  PutRaw<uint32_t>(user_a, &payload);
  PutRaw<uint32_t>(user_b, &payload);
  return AppendRecord(kRecordRemoveFriendship, payload);
}

Status WalWriter::Flush() {
  if (::fdatasync(fd_) != 0) {
    return Status::IoError(Errno("fdatasync", path_));
  }
  return Status::Ok();
}

namespace {

Result<WalReplayStats> ReplayWalImpl(const std::string& path,
                                     std::optional<uint64_t> expected_generation,
                                     const WalReplayHandlers* handlers) {
  AMICI_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  if (data.size() < kWalHeaderSize ||
      std::memcmp(data.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::Corruption("wal " + path + ": bad or truncated header");
  }
  size_t offset = sizeof(kWalMagic);
  uint16_t version = 0;
  uint64_t generation = 0;
  GetRaw<uint16_t>(data, &offset, &version);
  GetRaw<uint64_t>(data, &offset, &generation);
  if (version != kWalFormatVersion) {
    return Status::Corruption("wal " + path + ": unsupported version " +
                              std::to_string(version));
  }
  if (expected_generation.has_value() && generation != *expected_generation) {
    return Status::Corruption(
        "wal " + path + ": snapshot generation " + std::to_string(generation) +
        " does not extend manifest generation " +
        std::to_string(*expected_generation));
  }

  WalReplayStats stats;
  stats.snapshot_generation = generation;
  stats.committed_bytes = offset;
  while (offset < data.size()) {
    const size_t record_start = offset;
    uint8_t type = 0;
    uint32_t length = 0;
    if (!GetRaw(data, &offset, &type) || !GetRaw(data, &offset, &length) ||
        data.size() - offset < length + kFrameSuffix) {
      stats.torn_tail = true;  // incomplete frame — crash mid-append
      break;
    }
    const std::string_view frame =
        std::string_view(data).substr(record_start, kFramePrefix + length);
    const size_t payload_start = offset;
    offset += length;
    uint64_t checksum = 0;
    GetRaw(data, &offset, &checksum);
    if (Fnv1a64(frame) != checksum) {
      stats.torn_tail = true;  // bit-flipped or half-written record
      break;
    }
    const std::string_view payload =
        std::string_view(data).substr(payload_start, length);

    // The frame is intact from here on; malformed contents are format
    // corruption, not a recoverable torn tail.
    size_t p = 0;
    switch (type) {
      case kRecordAddItems: {
        uint64_t first_item_id = 0;
        uint32_t count = 0;
        if (!GetRaw(payload, &p, &first_item_id) ||
            !GetRaw(payload, &p, &count)) {
          return Status::Corruption("wal " + path +
                                    ": malformed AddItems record");
        }
        std::vector<Item> items(count);
        for (uint32_t i = 0; i < count; ++i) {
          if (!ParseItemRecord(payload, &p, &items[i])) {
            return Status::Corruption("wal " + path +
                                      ": malformed AddItems row");
          }
        }
        if (p != payload.size()) {
          return Status::Corruption("wal " + path +
                                    ": AddItems trailing bytes");
        }
        if (handlers != nullptr && handlers->add_items) {
          AMICI_RETURN_IF_ERROR(
              handlers->add_items(first_item_id, std::move(items)));
        }
        break;
      }
      case kRecordAddFriendship:
      case kRecordRemoveFriendship: {
        uint32_t user_a = 0;
        uint32_t user_b = 0;
        if (!GetRaw(payload, &p, &user_a) || !GetRaw(payload, &p, &user_b) ||
            p != payload.size()) {
          return Status::Corruption("wal " + path +
                                    ": malformed friendship record");
        }
        if (handlers != nullptr) {
          const auto& fn = type == kRecordAddFriendship
                               ? handlers->add_friendship
                               : handlers->remove_friendship;
          if (fn) AMICI_RETURN_IF_ERROR(fn(user_a, user_b));
        }
        break;
      }
      default:
        return Status::Corruption("wal " + path + ": unknown record type " +
                                  std::to_string(type));
    }
    ++stats.records_applied;
    stats.committed_bytes = offset;
  }
  return stats;
}

}  // namespace

Result<WalReplayStats> ReplayWal(const std::string& path,
                                 std::optional<uint64_t> expected_generation,
                                 const WalReplayHandlers& handlers) {
  return ReplayWalImpl(path, expected_generation, &handlers);
}

Result<WalReplayStats> ScanWal(const std::string& path,
                               std::optional<uint64_t> expected_generation) {
  return ReplayWalImpl(path, expected_generation, nullptr);
}

}  // namespace persist
}  // namespace amici
