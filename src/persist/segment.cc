#include "persist/segment.h"

#include <cstring>

#include "persist/codec.h"
#include "persist/fs_util.h"
#include "util/hash.h"

namespace amici {
namespace persist {

namespace {
constexpr char kSegmentMagic[4] = {'A', 'M', 'S', 'G'};
}  // namespace

std::string_view SegmentKindName(SegmentKind kind) {
  switch (kind) {
    case SegmentKind::kItems:
      return "items";
    case SegmentKind::kPostings:
      return "postings";
    case SegmentKind::kSocial:
      return "social";
    case SegmentKind::kGrid:
      return "grid";
    case SegmentKind::kGraph:
      return "graph";
  }
  return "unknown";
}

Status WriteSegmentFile(const std::string& path, SegmentKind kind,
                        std::string_view payload) {
  return WriteSegmentFile(path, kind, payload, Fnv1a64(payload));
}

Status WriteSegmentFile(const std::string& path, SegmentKind kind,
                        std::string_view payload, uint64_t payload_checksum) {
  std::string header;
  header.reserve(kSegmentHeaderSize);
  header.append(kSegmentMagic, sizeof(kSegmentMagic));
  PutRaw<uint16_t>(kSegmentFormatVersion, &header);
  PutRaw<uint16_t>(static_cast<uint16_t>(kind), &header);
  PutRaw<uint64_t>(payload.size(), &header);
  PutRaw<uint64_t>(payload_checksum, &header);
  PutRaw<uint64_t>(Fnv1a64(header), &header);

  std::string file;
  file.reserve(kSegmentHeaderSize + payload.size());
  file.append(header);
  file.append(payload);
  return WriteFileDurable(path, file);
}

Result<std::shared_ptr<const MappedSegment>> MappedSegment::Open(
    const std::string& path, SegmentKind expected_kind, bool verify_checksum) {
  AMICI_ASSIGN_OR_RETURN(std::shared_ptr<const MappedFile> file,
                         MappedFile::Map(path));
  const std::string_view bytes = file->view();
  if (bytes.size() < kSegmentHeaderSize) {
    return Status::Corruption("segment " + path + ": truncated header");
  }
  if (std::memcmp(bytes.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return Status::Corruption("segment " + path + ": bad magic");
  }
  size_t offset = sizeof(kSegmentMagic);
  uint16_t version = 0;
  uint16_t kind_raw = 0;
  uint64_t payload_size = 0;
  uint64_t payload_checksum = 0;
  uint64_t header_checksum = 0;
  GetRaw(bytes, &offset, &version);
  GetRaw(bytes, &offset, &kind_raw);
  GetRaw(bytes, &offset, &payload_size);
  GetRaw(bytes, &offset, &payload_checksum);
  GetRaw(bytes, &offset, &header_checksum);
  if (Fnv1a64(bytes.substr(0, kSegmentHeaderSize - sizeof(uint64_t))) !=
      header_checksum) {
    return Status::Corruption("segment " + path + ": header checksum mismatch");
  }
  if (version != kSegmentFormatVersion) {
    return Status::Corruption("segment " + path + ": unsupported version " +
                              std::to_string(version));
  }
  if (kind_raw != static_cast<uint16_t>(expected_kind)) {
    return Status::Corruption(
        "segment " + path + ": kind " + std::to_string(kind_raw) +
        ", expected " +
        std::string(SegmentKindName(expected_kind)));
  }
  if (payload_size != bytes.size() - kSegmentHeaderSize) {
    return Status::Corruption("segment " + path + ": payload size " +
                              std::to_string(payload_size) +
                              " does not match file size");
  }
  if (verify_checksum &&
      Fnv1a64(bytes.substr(kSegmentHeaderSize)) != payload_checksum) {
    return Status::Corruption("segment " + path +
                              ": payload checksum mismatch");
  }
  return std::shared_ptr<const MappedSegment>(new MappedSegment(
      std::move(file), expected_kind, payload_checksum));
}

}  // namespace persist
}  // namespace amici
