#ifndef AMICI_PERSIST_MAPPED_FILE_H_
#define AMICI_PERSIST_MAPPED_FILE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace amici {

/// A read-only memory-mapped file. The mapping lives as long as the
/// MappedFile object; consumers that view into it (mapped posting lists,
/// segment payloads) hold the owning shared_ptr as a keepalive, so the
/// bytes cannot disappear from under them.
///
/// This is the persist layer's whole "buffer manager": the OS page cache
/// decides residency, readahead, and eviction. The user-space BufferPool
/// and 4KiB BlockFile this replaces were retired with the snapshot
/// subsystem (see CHANGES.md).
class MappedFile {
 public:
  /// Maps `path` read-only. IoError when the file cannot be opened,
  /// stat-ed, or mapped. Empty files map to an empty view.
  static Result<std::shared_ptr<const MappedFile>> Map(const std::string& path);

  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const char* data() const { return static_cast<const char*>(base_); }
  size_t size() const { return size_; }
  std::string_view view() const { return {data(), size_}; }
  const std::string& path() const { return path_; }

 private:
  MappedFile(std::string path, void* base, size_t size)
      : path_(std::move(path)), base_(base), size_(size) {}

  std::string path_;
  void* base_ = nullptr;  // nullptr for empty files
  size_t size_ = 0;
};

}  // namespace amici

#endif  // AMICI_PERSIST_MAPPED_FILE_H_
