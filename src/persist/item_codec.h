#ifndef AMICI_PERSIST_ITEM_CODEC_H_
#define AMICI_PERSIST_ITEM_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "persist/codec.h"
#include "storage/item_store.h"

namespace amici {
namespace persist {

/// One catalogue row, as stored in items segments and AddItems WAL
/// records: owner u32 | quality f32 | has_geo u8 | lat f32 | lon f32 |
/// num_tags u32 | tags u32*. Tag sets are written as stored (sorted,
/// deduplicated), so replaying through ItemStore::Add reproduces the
/// columns byte-for-byte.

inline void AppendItemRecord(const Item& item, std::string* out) {
  PutRaw<uint32_t>(item.owner, out);
  PutRaw<float>(item.quality, out);
  PutRaw<uint8_t>(item.has_geo ? 1 : 0, out);
  PutRaw<float>(item.latitude, out);
  PutRaw<float>(item.longitude, out);
  PutRaw<uint32_t>(static_cast<uint32_t>(item.tags.size()), out);
  for (const TagId tag : item.tags) PutRaw<uint32_t>(tag, out);
}

inline bool ParseItemRecord(std::string_view data, size_t* offset,
                            Item* item) {
  uint8_t has_geo = 0;
  uint32_t num_tags = 0;
  if (!GetRaw(data, offset, &item->owner) ||
      !GetRaw(data, offset, &item->quality) ||
      !GetRaw(data, offset, &has_geo) ||
      !GetRaw(data, offset, &item->latitude) ||
      !GetRaw(data, offset, &item->longitude) ||
      !GetRaw(data, offset, &num_tags)) {
    return false;
  }
  item->has_geo = has_geo != 0;
  item->tags.clear();
  item->tags.reserve(num_tags);
  for (uint32_t i = 0; i < num_tags; ++i) {
    TagId tag = 0;
    if (!GetRaw(data, offset, &tag)) return false;
    item->tags.push_back(tag);
  }
  return true;
}

}  // namespace persist
}  // namespace amici

#endif  // AMICI_PERSIST_ITEM_CODEC_H_
