#ifndef AMICI_PERSIST_WAL_H_
#define AMICI_PERSIST_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "storage/item_store.h"
#include "util/ids.h"
#include "util/status.h"

namespace amici {
namespace persist {

/// Ingest write-ahead log. A snapshot directory's WAL captures every
/// mutation applied after its segments were written, so restart is "map
/// segments + replay tail" instead of re-ingest.
///
/// File layout:
///   header: magic "AMIW" | u16 version (1) | u64 snapshot generation
///   records: u8 type | u32 payload length | payload | u64 FNV-1a
///            (checksum covers type byte + length + payload)
///
/// Record types: 1 = AddItems (u64 first assigned item id, u32 count,
/// item rows — see item_codec.h), 2 = AddFriendship (u32, u32),
/// 3 = RemoveFriendship (u32, u32).
///
/// Recovery contract: replay applies the longest prefix of records whose
/// frames are complete and whose checksums verify — the COMMITTED
/// prefix — and reports where it ends. A torn or bit-flipped tail
/// (crash mid-append) is truncated by OpenForAppend, never half-applied.
inline constexpr uint16_t kWalFormatVersion = 1;
inline constexpr size_t kWalHeaderSize = 4 + 2 + 8;

/// "wal-<6-digit generation>.log".
std::string WalFileName(uint64_t generation);

/// Appender. Writes are O_APPEND + flushed per record; Flush() adds an
/// fdatasync barrier (the durability knob — callers that must not lose
/// acknowledged writes call it per batch).
class WalWriter {
 public:
  /// Creates a fresh WAL (truncating any existing file) whose header
  /// binds it to `snapshot_generation`.
  static Result<std::unique_ptr<WalWriter>> Create(
      const std::string& path, uint64_t snapshot_generation);

  /// Re-opens an existing WAL for appending after replay: truncates to
  /// `committed_bytes` (dropping a torn tail) and appends from there.
  static Result<std::unique_ptr<WalWriter>> OpenForAppend(
      const std::string& path, uint64_t committed_bytes);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// `first_item_id` is the id the first item of the batch was assigned;
  /// replay verifies it against the restored catalogue so a WAL can
  /// never silently apply against the wrong base snapshot.
  Status AppendAddItems(uint64_t first_item_id, std::span<const Item> items);
  Status AppendAddFriendship(UserId user_a, UserId user_b);
  Status AppendRemoveFriendship(UserId user_a, UserId user_b);

  /// fdatasync barrier.
  Status Flush();

  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  Status AppendRecord(uint8_t type, std::string_view payload);

  std::string path_;
  int fd_;
};

/// Replay callbacks; each returns a Status — a failure aborts replay
/// (the WAL recorded an op the restored state rejects, i.e. corruption
/// or a wrong base).
struct WalReplayHandlers {
  std::function<Status(uint64_t first_item_id, std::vector<Item>&& items)>
      add_items;
  std::function<Status(UserId, UserId)> add_friendship;
  std::function<Status(UserId, UserId)> remove_friendship;
};

struct WalReplayStats {
  uint64_t records_applied = 0;
  /// Byte length of the committed prefix (header included). OpenForAppend
  /// truncates to this.
  uint64_t committed_bytes = 0;
  /// True when a torn/corrupt tail was dropped.
  bool torn_tail = false;
  uint64_t snapshot_generation = 0;
};

/// Replays the committed prefix of the WAL at `path` through `handlers`.
/// When `expected_generation` is set, a header generation mismatch is
/// Corruption (the WAL does not extend this snapshot). Structural
/// header damage is Corruption; tail damage is recovered, not an error.
Result<WalReplayStats> ReplayWal(const std::string& path,
                                 std::optional<uint64_t> expected_generation,
                                 const WalReplayHandlers& handlers);

/// Integrity scan without applying anything (amici_snapshot verify).
Result<WalReplayStats> ScanWal(const std::string& path,
                               std::optional<uint64_t> expected_generation);

}  // namespace persist
}  // namespace amici

#endif  // AMICI_PERSIST_WAL_H_
