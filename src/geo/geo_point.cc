#include "geo/geo_point.h"

#include <algorithm>
#include <cmath>

namespace amici {
namespace {

constexpr double kPi = 3.14159265358979323846;

double Radians(double degrees) { return degrees * kPi / 180.0; }

}  // namespace

double DistanceKm(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = Radians(a.latitude);
  const double lat2 = Radians(b.latitude);
  const double dlat = lat2 - lat1;
  const double dlon = Radians(static_cast<double>(b.longitude) -
                              static_cast<double>(a.longitude));
  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlon = std::sin(dlon / 2.0);
  const double h = sin_dlat * sin_dlat +
                   std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double KmToLatitudeDegrees(double km) {
  return km / (kPi * kEarthRadiusKm / 180.0);
}

double KmToLongitudeDegrees(double km, double at_latitude) {
  const double cos_lat = std::cos(Radians(at_latitude));
  if (cos_lat < 1e-6) return 360.0;
  return std::min(360.0, km / (kPi * kEarthRadiusKm / 180.0 * cos_lat));
}

}  // namespace amici
