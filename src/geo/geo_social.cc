#include "geo/geo_social.h"

#include "core/scorer.h"
#include "topk/topk_heap.h"
#include "util/logging.h"

namespace amici {

Result<std::vector<ScoredItem>> GeoGridScan::Search(const QueryContext& ctx,
                                                    SearchStats* stats) const {
  const SocialQuery& query = *ctx.query;
  if (!query.has_geo_filter) {
    return Status::FailedPrecondition(
        "geo-grid executes only queries with a geo filter");
  }
  if (ctx.grid == nullptr) {
    return Status::FailedPrecondition(
        "geo-grid requires a grid index in the query context");
  }
  Scorer scorer(ctx.store, ctx.proximity, &query);
  TopKHeap heap(query.k);
  SearchStats local;
  CancellationTicker ticker(ctx.cancel);

  const GeoPoint center{query.latitude, query.longitude};
  // ForEachInRadius offers no early exit; once cancelled we skip the
  // scoring work per item (the residual cell iteration is cheap).
  ctx.grid->ForEachInRadius(center, query.radius_km, [&](ItemId item) {
    if (ticker.Check()) {
      local.truncated = true;
      return;
    }
    if (item >= ctx.index_horizon) return;
    ++local.items_considered;
    if (!scorer.Eligible(item)) return;
    // The radius predicate is already satisfied; apply any residual filter
    // the engine attached beyond the geo circle (none today, kept for
    // forward compatibility).
    const double score = scorer.Score(item);
    if (score > 0.0) heap.Push(item, score);
  });

  if (stats != nullptr) *stats = local;
  return heap.TakeSorted();
}

}  // namespace amici
