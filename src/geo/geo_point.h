#ifndef AMICI_GEO_GEO_POINT_H_
#define AMICI_GEO_GEO_POINT_H_

namespace amici {

/// A WGS84-ish coordinate. Latitude in [-90, 90], longitude in
/// [-180, 180]. The geo subsystem does not handle anti-meridian wrap —
/// synthetic workloads keep away from it (documented substitution;
/// DESIGN.md §5).
struct GeoPoint {
  float latitude = 0.0f;
  float longitude = 0.0f;
};

/// Mean Earth radius used throughout the geo subsystem (kilometres).
inline constexpr double kEarthRadiusKm = 6371.0088;

/// Great-circle distance between `a` and `b` in kilometres (haversine).
double DistanceKm(const GeoPoint& a, const GeoPoint& b);

/// Degrees of latitude spanning `km` kilometres (constant on a sphere).
double KmToLatitudeDegrees(double km);

/// Degrees of longitude spanning `km` kilometres at latitude `at_latitude`.
/// Grows towards the poles; clamped to 360 near them.
double KmToLongitudeDegrees(double km, double at_latitude);

}  // namespace amici

#endif  // AMICI_GEO_GEO_POINT_H_
