#ifndef AMICI_GEO_GEO_SOCIAL_H_
#define AMICI_GEO_GEO_SOCIAL_H_

#include <string_view>
#include <vector>

#include "core/search_algorithm.h"
#include "geo/grid_index.h"

namespace amici {

/// Geo-driven execution of geo-social queries: instead of filtering a
/// content- or social-ordered stream by the radius predicate, enumerate
/// the radius via the grid index first and score only those candidates.
/// Wins when the radius is selective (few items inside), loses to the
/// filtered TA algorithms as the radius grows — the Fig 8 crossover.
///
/// Requires the query to carry a geo filter and the context to carry a
/// grid index (ctx.grid, published with the engine snapshot); returns
/// FailedPrecondition otherwise.
class GeoGridScan final : public SearchAlgorithm {
 public:
  GeoGridScan() = default;

  std::string_view name() const override { return "geo-grid"; }

  Result<std::vector<ScoredItem>> Search(const QueryContext& ctx,
                                         SearchStats* stats) const override;
};

}  // namespace amici

#endif  // AMICI_GEO_GEO_SOCIAL_H_
