#ifndef AMICI_GEO_GEO_SOCIAL_H_
#define AMICI_GEO_GEO_SOCIAL_H_

#include <string_view>
#include <vector>

#include "core/search_algorithm.h"
#include "geo/grid_index.h"

namespace amici {

/// Geo-driven execution of geo-social queries: instead of filtering a
/// content- or social-ordered stream by the radius predicate, enumerate
/// the radius via the grid index first and score only those candidates.
/// Wins when the radius is selective (few items inside), loses to the
/// filtered TA algorithms as the radius grows — the Fig 8 crossover.
///
/// Requires the query to carry a geo filter; returns FailedPrecondition
/// otherwise.
class GeoGridScan final : public SearchAlgorithm {
 public:
  /// `grid` must outlive the algorithm and be built over the same store
  /// the engine queries.
  explicit GeoGridScan(const GridIndex* grid);

  std::string_view name() const override { return "geo-grid"; }

  Result<std::vector<ScoredItem>> Search(const QueryContext& ctx,
                                         SearchStats* stats) const override;

 private:
  const GridIndex* grid_;
};

}  // namespace amici

#endif  // AMICI_GEO_GEO_SOCIAL_H_
