#include "geo/grid_index.h"

#include <cmath>

#include "util/logging.h"

namespace amici {

GridIndex::CellKey GridIndex::KeyFor(float latitude, float longitude) const {
  // Shift into non-negative cell coordinates; 1e6 cells per axis is far
  // more than 360/cell_size for any sane cell size.
  const auto lat_cell = static_cast<int64_t>(
      std::floor((static_cast<double>(latitude) + 90.0) / cell_size_deg_));
  const auto lon_cell = static_cast<int64_t>(
      std::floor((static_cast<double>(longitude) + 180.0) / cell_size_deg_));
  return ComposeKey(lat_cell, lon_cell);
}

GridIndex::CellKey GridIndex::ComposeKey(int64_t lat_cell, int64_t lon_cell) {
  return static_cast<CellKey>(lat_cell) * 1000000ULL +
         static_cast<CellKey>(lon_cell);
}

GridIndex GridIndex::Build(ItemStoreView store, double cell_size_deg) {
  AMICI_CHECK(cell_size_deg > 0.0);
  GridIndex index;
  index.cell_size_deg_ = cell_size_deg;
  index.store_ = store;
  std::unordered_map<CellKey, std::vector<ItemId>> cells;
  for (size_t i = 0; i < store.num_items(); ++i) {
    const ItemId item = static_cast<ItemId>(i);
    if (!store.has_geo(item)) continue;
    cells[index.KeyFor(store.latitude(item), store.longitude(item))]
        .push_back(item);
    ++index.num_items_;
  }
  for (auto& [key, items] : cells) {
    items.shrink_to_fit();
    index.cells_[key] =
        std::make_shared<const std::vector<ItemId>>(std::move(items));
  }
  return index;
}

GridIndex GridIndex::Restore(
    double cell_size_deg,
    std::vector<std::pair<uint64_t, std::shared_ptr<const std::vector<ItemId>>>>
        cells,
    ItemStoreView store) {
  AMICI_CHECK(cell_size_deg > 0.0);
  GridIndex index;
  index.cell_size_deg_ = cell_size_deg;
  index.store_ = store;
  index.cells_.reserve(cells.size());
  for (auto& [key, items] : cells) {
    if (items == nullptr || items->empty()) continue;
    index.num_items_ += items->size();
    index.cells_[key] = std::move(items);
  }
  return index;
}

void GridIndex::ForEachCell(
    const std::function<void(uint64_t, const std::vector<ItemId>&)>& fn)
    const {
  for (const auto& [key, items] : cells_) {
    if (items != nullptr && !items->empty()) fn(key, *items);
  }
}

GridIndex GridIndex::MergeFrom(const GridIndex* base, ItemStoreView store,
                               ItemId base_horizon, double cell_size_deg,
                               uint64_t* cells_touched) {
  GridIndex merged;
  merged.cell_size_deg_ =
      base != nullptr ? base->cell_size_deg_ : cell_size_deg;
  AMICI_CHECK(merged.cell_size_deg_ > 0.0);
  merged.store_ = store;
  if (base != nullptr) {
    merged.cells_ = base->cells_;  // O(cells) handle copies
    merged.num_items_ = base->num_items_;
  }

  // Bucket the tail's geo items per touched cell; ascending id order
  // matches the full build's per-cell insertion order.
  std::unordered_map<CellKey, std::vector<ItemId>> tail_cells;
  for (size_t i = base_horizon; i < store.num_items(); ++i) {
    const ItemId item = static_cast<ItemId>(i);
    if (!store.has_geo(item)) continue;
    tail_cells[merged.KeyFor(store.latitude(item), store.longitude(item))]
        .push_back(item);
    ++merged.num_items_;
  }
  for (auto& [key, tail] : tail_cells) {
    std::vector<ItemId> items;
    const auto it = merged.cells_.find(key);
    if (it != merged.cells_.end()) {
      items.reserve(it->second->size() + tail.size());
      items.insert(items.end(), it->second->begin(), it->second->end());
    }
    items.insert(items.end(), tail.begin(), tail.end());
    items.shrink_to_fit();
    merged.cells_[key] =
        std::make_shared<const std::vector<ItemId>>(std::move(items));
    if (cells_touched != nullptr) ++*cells_touched;
  }
  return merged;
}

void GridIndex::ForEachInRadius(const GeoPoint& center, double radius_km,
                                const std::function<void(ItemId)>& fn) const {
  if (store_.store() == nullptr || radius_km <= 0.0) return;
  const double lat_span = KmToLatitudeDegrees(radius_km);
  const double lon_span = KmToLongitudeDegrees(radius_km, center.latitude);

  // Integer cell coordinates guarantee each cell is visited exactly once.
  const auto cell_of = [this](double shifted) {
    return static_cast<int64_t>(std::floor(shifted / cell_size_deg_));
  };
  const int64_t lat_lo =
      cell_of(static_cast<double>(center.latitude) - lat_span + 90.0);
  const int64_t lat_hi =
      cell_of(static_cast<double>(center.latitude) + lat_span + 90.0);
  const int64_t lon_lo =
      cell_of(static_cast<double>(center.longitude) - lon_span + 180.0);
  const int64_t lon_hi =
      cell_of(static_cast<double>(center.longitude) + lon_span + 180.0);

  for (int64_t lat = lat_lo; lat <= lat_hi; ++lat) {
    for (int64_t lon = lon_lo; lon <= lon_hi; ++lon) {
      const auto it = cells_.find(ComposeKey(lat, lon));
      if (it == cells_.end()) continue;
      for (const ItemId item : *it->second) {
        const GeoPoint p{store_.latitude(item), store_.longitude(item)};
        if (DistanceKm(center, p) <= radius_km) fn(item);
      }
    }
  }
}

std::vector<ItemId> GridIndex::ItemsInRadius(const GeoPoint& center,
                                             double radius_km) const {
  std::vector<ItemId> out;
  ForEachInRadius(center, radius_km, [&out](ItemId item) {
    out.push_back(item);
  });
  return out;
}

size_t GridIndex::MemoryBytes() const {
  size_t bytes = cells_.size() * (sizeof(CellKey) + sizeof(void*) * 2);
  for (const auto& [key, items] : cells_) {
    bytes += items->capacity() * sizeof(ItemId);
  }
  return bytes;
}

}  // namespace amici
