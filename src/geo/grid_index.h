#ifndef AMICI_GEO_GRID_INDEX_H_
#define AMICI_GEO_GRID_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "geo/geo_point.h"
#include "storage/item_store.h"
#include "util/ids.h"

namespace amici {

/// Uniform lat/lon grid over the geo-tagged items of an ItemStore. Cells
/// are `cell_size_deg` degrees on each side; a radius query scans the
/// bounding box of cells and verifies each candidate with the exact
/// haversine distance. Simple, cache-friendly, and adequate for the
/// city-scale extents the geo-social experiments use.
///
/// Cell item lists are held through shared, immutable handles so that
/// MergeFrom() can build a successor grid that rebuilds only the cells
/// the ingest tail lands in and shares every other cell with the
/// previous generation (incremental compaction).
class GridIndex {
 public:
  /// Builds the grid over every item visible in `store` that has a geo
  /// position. `cell_size_deg` > 0. The view is retained for the exact
  /// post-filter, so the underlying store must outlive the index.
  static GridIndex Build(ItemStoreView store, double cell_size_deg);

  /// Incremental merge: the grid over store[0, store.num_items()) given
  /// `base` covers [0, base_horizon) (null base = no geo items there).
  /// Scans only the tail: touched cells get a new list (base items
  /// followed by tail items — ascending id, exactly the full-build
  /// insertion order); untouched cells share the base's lists. When
  /// `base` is non-null its cell size wins over `cell_size_deg` (a
  /// grid's geometry is immutable). `cells_touched`, when non-null, is
  /// incremented per rebuilt cell.
  static GridIndex MergeFrom(const GridIndex* base, ItemStoreView store,
                             ItemId base_horizon, double cell_size_deg,
                             uint64_t* cells_touched);

  GridIndex() = default;

  /// Reassembles a grid from persisted cells (src/persist/). `store`
  /// must view the restored catalogue — the exact post-filter reads
  /// positions from it — and cell lists must be ascending by item id.
  static GridIndex Restore(
      double cell_size_deg,
      std::vector<std::pair<uint64_t, std::shared_ptr<const std::vector<ItemId>>>>
          cells,
      ItemStoreView store);

  /// Invokes `fn` for every cell (key, ascending item ids) in
  /// unspecified order — the snapshot writer's enumeration surface.
  void ForEachCell(
      const std::function<void(uint64_t, const std::vector<ItemId>&)>& fn)
      const;

  double cell_size_deg() const { return cell_size_deg_; }

  /// Cell key of a position under this grid's geometry — how the
  /// snapshot writer maps tail items to the cells they dirtied.
  uint64_t CellKeyFor(float latitude, float longitude) const {
    return KeyFor(latitude, longitude);
  }

  /// Invokes `fn` for every item within `radius_km` of the centre.
  /// Exact (post-filtered); items without geo positions never appear.
  void ForEachInRadius(const GeoPoint& center, double radius_km,
                       const std::function<void(ItemId)>& fn) const;

  /// Convenience wrapper collecting the ids.
  std::vector<ItemId> ItemsInRadius(const GeoPoint& center,
                                    double radius_km) const;

  size_t num_indexed_items() const { return num_items_; }
  size_t num_cells() const { return cells_.size(); }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const;

 private:
  using CellKey = uint64_t;
  using CellItems = std::shared_ptr<const std::vector<ItemId>>;

  CellKey KeyFor(float latitude, float longitude) const;
  static CellKey ComposeKey(int64_t lat_cell, int64_t lon_cell);

  double cell_size_deg_ = 1.0;
  std::unordered_map<CellKey, CellItems> cells_;
  ItemStoreView store_;
  size_t num_items_ = 0;
};

}  // namespace amici

#endif  // AMICI_GEO_GRID_INDEX_H_
