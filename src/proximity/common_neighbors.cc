#include "proximity/common_neighbors.h"

#include <cmath>
#include <unordered_map>
#include <vector>

namespace amici {

CommonNeighborsProximity::CommonNeighborsProximity(Weighting weighting)
    : weighting_(weighting) {}

ProximityVector CommonNeighborsProximity::Compute(const SocialGraph& graph,
                                                  UserId source) const {
  // Accumulate witness weight for every user reachable through one
  // intermediate friend; candidates are therefore the 1- and 2-hop
  // neighbourhood.
  std::unordered_map<UserId, double> weight;
  for (const UserId friend_id : graph.Friends(source)) {
    const double witness =
        weighting_ == Weighting::kCount
            ? 1.0
            : 1.0 / std::log(1.0 + static_cast<double>(
                                       graph.Degree(friend_id)));
    for (const UserId two_hop : graph.Friends(friend_id)) {
      if (two_hop == source) continue;
      weight[two_hop] += witness;
    }
  }
  // Edge bonus: being a direct friend is itself one unit of evidence.
  for (const UserId friend_id : graph.Friends(source)) {
    weight[friend_id] += 1.0;
  }

  std::vector<ProximityEntry> entries;
  entries.reserve(weight.size());
  for (const auto& [user, w] : weight) {
    entries.push_back({user, static_cast<float>(w)});
  }
  return ProximityVector::FromUnnormalized(std::move(entries));
}

}  // namespace amici
