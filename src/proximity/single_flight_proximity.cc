#include "proximity/single_flight_proximity.h"

#include <algorithm>

namespace amici {

SingleFlightProximity::SingleFlightProximity(const ProximityModel* model,
                                             size_t cache_capacity)
    : model_(model), cache_(model, std::max<size_t>(1, cache_capacity)) {}

std::shared_ptr<const ProximityVector> SingleFlightProximity::Get(
    const SocialGraph& graph, UserId source, uint64_t generation,
    ProximityOutcome* outcome) {
  if (auto cached = cache_.TryGet(source, generation)) {
    if (outcome != nullptr) *outcome = ProximityOutcome::kCacheHit;
    return cached;
  }

  // Single-flight: one computation per (generation, user) no matter how
  // many shards miss concurrently. The winner computes and publishes;
  // losers wait on the winner's flight instead of duplicating the work.
  const std::pair<uint64_t, UserId> key{generation, source};
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(flights_mutex_);
    auto it = flights_.find(key);
    if (it != flights_.end()) {
      flight = it->second;
    } else {
      // Re-check the cache before becoming leader: a previous leader
      // publishes to the cache BEFORE retiring its flight, so a miss
      // that raced into that window would otherwise recompute — and
      // "exactly one computation per (user, generation)" is the
      // defining guarantee here.
      if (auto cached = cache_.TryGet(source, generation)) {
        if (outcome != nullptr) *outcome = ProximityOutcome::kCacheHit;
        return cached;
      }
      flight = std::make_shared<Flight>();
      flights_.emplace(key, flight);
      leader = true;
    }
  }

  if (!leader) {
    {
      std::unique_lock<std::mutex> lock(flight->mutex);
      flight->cv.wait(lock, [&] { return flight->done; });
    }
    if (flight->vector == nullptr) {
      // The leader unwound on an exception without producing a vector
      // (the model is user-implementable; Compute may throw). The flight
      // is already retired, so retry from the top — some caller becomes
      // the new leader.
      return Get(graph, source, generation, outcome);
    }
    inflight_joins_.fetch_add(1, std::memory_order_relaxed);
    if (outcome != nullptr) *outcome = ProximityOutcome::kJoinedInFlight;
    return flight->vector;
  }

  // RAII flight retirement: on EVERY leader exit — success or exception —
  // remove the flight from the table and wake the waiters. Without this,
  // a throwing Compute would strand the flight and every future call for
  // this (user, generation) would block on it forever. `flight->vector`
  // stays null on failure, which is the waiters' retry signal.
  struct FlightRetirer {
    SingleFlightProximity* self;
    const std::pair<uint64_t, UserId>& key;
    const std::shared_ptr<Flight>& flight;
    ~FlightRetirer() {
      {
        std::lock_guard<std::mutex> lock(self->flights_mutex_);
        self->flights_.erase(key);
      }
      {
        std::lock_guard<std::mutex> lock(flight->mutex);
        flight->done = true;
      }
      flight->cv.notify_all();
    }
  } retirer{this, key, flight};

  // Compute OFF every lock: a long PPR run must block neither cache hits
  // for other users nor the edit path.
  auto vector =
      std::make_shared<const ProximityVector>(model_->Compute(graph, source));
  computations_.fetch_add(1, std::memory_order_relaxed);
  cache_.Put(source, generation, vector);
  {
    std::lock_guard<std::mutex> lock(flight->mutex);
    flight->vector = vector;  // done is set by the retirer, same mutex
  }
  if (outcome != nullptr) *outcome = ProximityOutcome::kComputed;
  return vector;
}

}  // namespace amici
