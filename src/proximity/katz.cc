#include "proximity/katz.h"

#include <unordered_map>
#include <vector>

#include "util/logging.h"

namespace amici {

KatzProximity::KatzProximity(double beta, uint16_t max_length)
    : beta_(beta), max_length_(max_length) {
  AMICI_CHECK(beta > 0.0 && beta < 1.0);
  AMICI_CHECK(max_length >= 1);
}

ProximityVector KatzProximity::Compute(const SocialGraph& graph,
                                       UserId source) const {
  // walk_count[v] = number of length-ℓ walks source → v, advanced one ℓ at
  // a time over the sparse frontier.
  std::unordered_map<UserId, double> walk_count{{source, 1.0}};
  std::unordered_map<UserId, double> katz;
  double beta_power = 1.0;
  for (uint16_t step = 1; step <= max_length_; ++step) {
    beta_power *= beta_;
    std::unordered_map<UserId, double> next;
    next.reserve(walk_count.size() * 4);
    for (const auto& [u, count] : walk_count) {
      for (const UserId v : graph.Friends(u)) {
        next[v] += count;
      }
    }
    for (const auto& [v, count] : next) {
      if (v == source) continue;
      katz[v] += beta_power * count;
    }
    walk_count = std::move(next);
    if (walk_count.empty()) break;
  }

  std::vector<ProximityEntry> entries;
  entries.reserve(katz.size());
  for (const auto& [user, score] : katz) {
    entries.push_back({user, static_cast<float>(score)});
  }
  return ProximityVector::FromUnnormalized(std::move(entries));
}

}  // namespace amici
