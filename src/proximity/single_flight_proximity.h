#ifndef AMICI_PROXIMITY_SINGLE_FLIGHT_PROXIMITY_H_
#define AMICI_PROXIMITY_SINGLE_FLIGHT_PROXIMITY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "proximity/proximity_cache.h"
#include "proximity/proximity_model.h"
#include "proximity/proximity_provider.h"

namespace amici {

/// The generation-keyed cache + single-flight computation core every
/// proximity serving unit is built from (extracted from the PR 4
/// SharedProximityProvider so the partitioned router can instantiate it
/// once PER PARTITION): concurrent Get() misses for the same (user,
/// generation) share ONE model computation — the losers wait on the
/// winner instead of redundantly recomputing.
///
/// Thread-safe: Get and the counter reads may be called from any number
/// of threads concurrently.
class SingleFlightProximity {
 public:
  /// `model` is not owned and must outlive this object.
  SingleFlightProximity(const ProximityModel* model, size_t cache_capacity);

  SingleFlightProximity(const SingleFlightProximity&) = delete;
  SingleFlightProximity& operator=(const SingleFlightProximity&) = delete;

  /// The proximity vector of `source` against `graph` / `generation`,
  /// cached per (source, generation); concurrent misses share one
  /// computation. `outcome`, when non-null, reports how the call was
  /// satisfied.
  std::shared_ptr<const ProximityVector> Get(const SocialGraph& graph,
                                             UserId source,
                                             uint64_t generation,
                                             ProximityOutcome* outcome);

  ProximityCache& cache() { return cache_; }
  const ProximityCache& cache() const { return cache_; }

  uint64_t computations() const {
    return computations_.load(std::memory_order_relaxed);
  }
  uint64_t inflight_joins() const {
    return inflight_joins_.load(std::memory_order_relaxed);
  }

 private:
  /// One in-flight computation; losers of the single-flight race wait on
  /// `cv` until the winner publishes `vector`.
  struct Flight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const ProximityVector> vector;
  };

  const ProximityModel* model_;
  ProximityCache cache_;

  std::mutex flights_mutex_;
  std::map<std::pair<uint64_t, UserId>, std::shared_ptr<Flight>> flights_;

  std::atomic<uint64_t> computations_{0};
  std::atomic<uint64_t> inflight_joins_{0};
};

}  // namespace amici

#endif  // AMICI_PROXIMITY_SINGLE_FLIGHT_PROXIMITY_H_
