#ifndef AMICI_PROXIMITY_SHARED_PROXIMITY_PROVIDER_H_
#define AMICI_PROXIMITY_SHARED_PROXIMITY_PROVIDER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "proximity/proximity_cache.h"
#include "proximity/proximity_model.h"
#include "proximity/proximity_provider.h"
#include "util/atomic_shared_ptr.h"

namespace amici {

/// The in-process ProximityProvider: one graph, one model, one
/// generation-keyed LRU cache — shared by every engine that consumes it.
/// An N-shard service constructs exactly one of these, which is what
/// collapses N graph replicas into one and N cache-miss proximity
/// computations into 1 per (user, generation).
///
/// On top of the plain cache it adds:
///  * single-flight: concurrent GetProximity misses for the same (user,
///    generation) share ONE model computation — the losers wait on the
///    winner instead of redundantly recomputing (without this, an N-shard
///    fan-out would compute the same vector N times on a cold user);
///  * warm-over: after a friendship edit publishes a new generation, a
///    background thread recomputes the top-`warm_top_n` hottest users
///    against the new graph, so the cache does not restart cold on every
///    edge churn (the ROADMAP "proximity cache warm-over" item).
class SharedProximityProvider final : public ProximityProvider {
 public:
  struct Options {
    /// Null selects forward-push PPR (restart 0.15, epsilon 1e-4) — the
    /// same default the engine always used.
    std::shared_ptr<const ProximityModel> model;
    /// LRU capacity of the shared score cache; clamped to >= 1.
    size_t cache_capacity = 4096;
    /// Hottest users recomputed in the background after a generation
    /// bump. 0 disables warm-over (useful for exact-count tests).
    size_t warm_top_n = 16;
  };

  /// Takes ownership of `graph` as generation 0.
  SharedProximityProvider(SocialGraph graph, Options options);

  /// Stops and joins the warm-over thread.
  ~SharedProximityProvider() override;

  SharedProximityProvider(const SharedProximityProvider&) = delete;
  SharedProximityProvider& operator=(const SharedProximityProvider&) = delete;

  GraphView Acquire() const override;
  std::shared_ptr<const ProximityVector> GetProximity(
      const SocialGraph& graph, UserId source, uint64_t generation,
      ProximityOutcome* outcome = nullptr) override;
  Status AddFriendship(UserId u, UserId v) override;
  Status RemoveFriendship(UserId u, UserId v) override;
  Status ValidateEdit(UserId u, UserId v, bool adding,
                      bool check_existence) const override;
  const ProximityModel& model() const override { return *model_; }
  ProximityProviderStats stats() const override;

  /// Blocks until every warm-over task queued so far has been applied.
  /// Tests use it to make warm-over observable deterministically.
  void WaitForWarmup();

 private:
  /// One in-flight computation; losers of the single-flight race wait on
  /// `cv` until the winner publishes `vector`.
  struct Flight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const ProximityVector> vector;
  };

  /// One queued warm-over round: recompute `users` against `view`.
  struct WarmTask {
    GraphView view;
    std::vector<UserId> users;
  };

  /// Shared edit path: validates, rebuilds with {u, v} toggled, publishes
  /// the next generation, and queues the warm-over round.
  Status EditEdge(UserId u, UserId v, bool insert);

  void WarmLoop();

  std::shared_ptr<const ProximityModel> model_;
  Options options_;
  ProximityCache cache_;

  /// The published (graph, generation) pair — readers load lock-free,
  /// edits store under writer_mutex_ (RCU-style, like engine snapshots).
  AtomicSharedPtr<const GraphView> state_;
  std::mutex writer_mutex_;

  std::mutex flights_mutex_;
  std::map<std::pair<uint64_t, UserId>, std::shared_ptr<Flight>> flights_;

  std::atomic<uint64_t> computations_{0};
  std::atomic<uint64_t> inflight_joins_{0};
  std::atomic<uint64_t> warmed_{0};
  std::atomic<uint64_t> generations_{0};

  // Warm-over worker. Newer tasks supersede queued ones (only the newest
  // generation is worth warming), so the backlog is at most one task.
  std::mutex warm_mutex_;
  std::condition_variable warm_cv_;
  bool warm_stop_ = false;        // guarded by warm_mutex_
  bool warm_busy_ = false;        // guarded by warm_mutex_
  std::unique_ptr<WarmTask> warm_pending_;  // guarded by warm_mutex_
  std::thread warm_thread_;       // joined in the destructor
};

}  // namespace amici

#endif  // AMICI_PROXIMITY_SHARED_PROXIMITY_PROVIDER_H_
