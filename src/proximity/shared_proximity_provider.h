#ifndef AMICI_PROXIMITY_SHARED_PROXIMITY_PROVIDER_H_
#define AMICI_PROXIMITY_SHARED_PROXIMITY_PROVIDER_H_

#include <cstddef>
#include <memory>

#include "graph/social_graph.h"
#include "proximity/proximity_model.h"
#include "proximity_service/overlay_fold_policy.h"
#include "proximity_service/proximity_router.h"

namespace amici {

/// The single-node ProximityProvider: one graph, one model, one
/// generation-keyed LRU cache — shared by every engine that consumes it.
/// An N-shard service constructs exactly one of these, which is what
/// collapses N graph replicas into one and N cache-miss proximity
/// computations into 1 per (user, generation).
///
/// Implemented as a one-partition ProximityServiceRouter, so it is the
/// same machinery the partitioned proximity service runs per partition:
///  * single-flight: concurrent GetProximity misses for the same (user,
///    generation) share ONE model computation;
///  * warm-over: after a friendship edit publishes a new generation, a
///    background thread recomputes the top-`warm_top_n` hottest users
///    against the new graph;
///  * delta-overlay edits: AddFriendship/RemoveFriendship replace the two
///    endpoint adjacency rows in a patch over the immutable base CSR —
///    O(deg(u) + deg(v)) per edit, where this provider historically
///    rebuilt the whole CSR in O(E) — and the patch is folded into a
///    fresh base off-lock when the fold policy triggers (amortizing the
///    O(E) cost over many edits instead of paying it on every one).
class SharedProximityProvider final : public ProximityServiceRouter {
 public:
  struct Options {
    /// Null selects forward-push PPR (restart 0.15, epsilon 1e-4) — the
    /// same default the engine always used.
    std::shared_ptr<const ProximityModel> model;
    /// LRU capacity of the shared score cache; clamped to >= 1.
    size_t cache_capacity = 4096;
    /// Hottest users recomputed in the background after a generation
    /// bump. 0 disables warm-over (useful for exact-count tests).
    size_t warm_top_n = 16;
    /// When to fold the overlay patch into a fresh base CSR; null
    /// selects AdaptiveOverlayFoldPolicy defaults.
    std::shared_ptr<const OverlayFoldPolicy> fold_policy;
  };

  /// Takes ownership of `graph` as generation 0.
  SharedProximityProvider(SocialGraph graph, Options options);
};

}  // namespace amici

#endif  // AMICI_PROXIMITY_SHARED_PROXIMITY_PROVIDER_H_
