#ifndef AMICI_PROXIMITY_KATZ_H_
#define AMICI_PROXIMITY_KATZ_H_

#include <cstdint>
#include <string_view>

#include "proximity/proximity_model.h"

namespace amici {

/// Truncated Katz proximity: score(v) = Σ_{ℓ=1..L} β^ℓ · paths_ℓ(u → v),
/// where paths_ℓ counts walks of length ℓ. Computed by L rounds of sparse
/// frontier expansion, so cost is bounded by the L-hop ball around the
/// source. β must satisfy β < 1/deg_max for the untruncated series to
/// converge; the truncated form is always finite but small β keeps long
/// walks from dominating.
class KatzProximity : public ProximityModel {
 public:
  /// `beta` in (0, 1); `max_length` >= 1 (values above 4 get expensive on
  /// dense graphs).
  explicit KatzProximity(double beta = 0.05, uint16_t max_length = 3);

  std::string_view name() const override { return "katz"; }
  ProximityVector Compute(const SocialGraph& graph,
                          UserId source) const override;

 private:
  double beta_;
  uint16_t max_length_;
};

}  // namespace amici

#endif  // AMICI_PROXIMITY_KATZ_H_
