#include "proximity/hop_decay.h"

#include <cmath>
#include <vector>

#include "graph/graph_algorithms.h"
#include "util/logging.h"

namespace amici {

HopDecayProximity::HopDecayProximity(double decay, uint16_t max_hops)
    : decay_(decay), max_hops_(max_hops) {
  AMICI_CHECK(decay > 0.0 && decay <= 1.0);
  AMICI_CHECK(max_hops >= 1);
}

ProximityVector HopDecayProximity::Compute(const SocialGraph& graph,
                                           UserId source) const {
  const std::vector<uint16_t> dist = BfsDistances(graph, source, max_hops_);
  std::vector<ProximityEntry> entries;
  for (size_t u = 0; u < dist.size(); ++u) {
    if (u == source || dist[u] == kUnreachable || dist[u] == 0) continue;
    const float score =
        static_cast<float>(std::pow(decay_, dist[u] - 1));
    entries.push_back({static_cast<UserId>(u), score});
  }
  return ProximityVector::FromUnnormalized(std::move(entries));
}

}  // namespace amici
