#include "proximity/proximity_cache.h"

#include <utility>

#include "util/logging.h"

namespace amici {

ProximityCache::ProximityCache(const ProximityModel* model, size_t capacity)
    : model_(model), capacity_(capacity) {
  AMICI_CHECK(model != nullptr);
  AMICI_CHECK(capacity >= 1);
}

std::shared_ptr<const ProximityVector> ProximityCache::Get(
    const SocialGraph& graph, UserId source, uint64_t graph_version) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(source);
    if (it != entries_.end() && it->second.graph_version == graph_version) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_position);
      return it->second.vector;
    }
    ++misses_;
  }

  // Compute outside the lock: concurrent misses may duplicate work for the
  // same user, but never block each other on a long PPR computation.
  auto vector = std::make_shared<const ProximityVector>(
      model_->Compute(graph, source));

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(source);
  if (it != entries_.end()) {
    if (it->second.graph_version == graph_version) {
      // Another thread inserted while we computed; reuse its entry.
      lru_.splice(lru_.begin(), lru_, it->second.lru_position);
      return it->second.vector;
    }
    if (it->second.graph_version < graph_version) {
      // The cached entry is from an older generation: replace in place.
      it->second.vector = vector;
      it->second.graph_version = graph_version;
      lru_.splice(lru_.begin(), lru_, it->second.lru_position);
    }
    // Otherwise this caller is pinned to an OLD generation while a newer
    // one is already cached — serve the computed vector without clobbering
    // the fresher entry.
    return vector;
  }
  lru_.push_front(source);
  entries_.emplace(source, Entry{vector, lru_.begin(), graph_version});
  if (entries_.size() > capacity_) {
    const UserId victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
  }
  return vector;
}

void ProximityCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  entries_.clear();
}

size_t ProximityCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace amici
