#include "proximity/proximity_cache.h"

#include <utility>

#include "util/logging.h"

namespace amici {

ProximityCache::ProximityCache(const ProximityModel* model, size_t capacity)
    : model_(model), capacity_(capacity) {
  AMICI_CHECK(capacity >= 1);
}

std::shared_ptr<const ProximityVector> ProximityCache::TryGet(
    UserId source, uint64_t graph_version) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(source);
  if (it != entries_.end() && it->second.graph_version == graph_version) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    lru_.splice(lru_.begin(), lru_, it->second.lru_position);
    return it->second.vector;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void ProximityCache::Put(UserId source, uint64_t graph_version,
                         std::shared_ptr<const ProximityVector> vector) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(source);
  if (it != entries_.end()) {
    if (it->second.graph_version < graph_version) {
      // The cached entry is from an older generation: replace in place.
      it->second.vector = std::move(vector);
      it->second.graph_version = graph_version;
      lru_.splice(lru_.begin(), lru_, it->second.lru_position);
    }
    // Same or newer generation already cached: keep it (a straggler
    // pinned to an old generation must not clobber fresher state).
    return;
  }
  lru_.push_front(source);
  entries_.emplace(source,
                   Entry{std::move(vector), lru_.begin(), graph_version});
  if (entries_.size() > capacity_) {
    const UserId victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
  }
}

std::vector<UserId> ProximityCache::HottestUsers(size_t n) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<UserId> users;
  users.reserve(std::min(n, entries_.size()));
  for (const UserId user : lru_) {
    if (users.size() >= n) break;
    users.push_back(user);
  }
  return users;
}

std::shared_ptr<const ProximityVector> ProximityCache::Get(
    const SocialGraph& graph, UserId source, uint64_t graph_version) {
  AMICI_CHECK(model_ != nullptr)
      << "compute-through Get requires a model; use TryGet/Put otherwise";
  if (auto cached = TryGet(source, graph_version)) return cached;

  // Compute outside the lock: concurrent misses may duplicate work for the
  // same user, but never block each other on a long PPR computation.
  // (ProximityProvider adds single-flight de-duplication on top.)
  auto vector = std::make_shared<const ProximityVector>(
      model_->Compute(graph, source));
  Put(source, graph_version, vector);
  return vector;
}

void ProximityCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  entries_.clear();
}

size_t ProximityCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace amici
