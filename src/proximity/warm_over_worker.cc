#include "proximity/warm_over_worker.h"

#include <utility>

namespace amici {

WarmOverWorker::WarmOverWorker(WarmFn warm) : warm_(std::move(warm)) {
  thread_ = std::thread(&WarmOverWorker::Loop, this);
}

WarmOverWorker::~WarmOverWorker() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void WarmOverWorker::Submit(ProximityProvider::GraphView view,
                            std::vector<UserId> users) {
  if (users.empty()) return;
  auto task = std::make_unique<Task>();
  task->view = std::move(view);
  task->users = std::move(users);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Supersede any queued round: warming a generation that is no longer
    // current would be wasted model runs.
    pending_ = std::move(task);
  }
  cv_.notify_all();
}

void WarmOverWorker::WaitForWarmup() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return pending_ == nullptr && !busy_; });
}

void WarmOverWorker::Loop() {
  while (true) {
    std::unique_ptr<Task> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      busy_ = false;
      cv_.notify_all();  // wake WaitForWarmup watchers
      cv_.wait(lock, [&] { return stop_ || pending_ != nullptr; });
      if (stop_) return;
      task = std::move(pending_);
      busy_ = true;
    }
    for (const UserId user : task->users) {
      {
        // A newer generation superseded this round mid-way: abandon it.
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_ || pending_ != nullptr) break;
      }
      warm_(task->view, user);
    }
  }
}

}  // namespace amici
