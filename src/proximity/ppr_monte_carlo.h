#ifndef AMICI_PROXIMITY_PPR_MONTE_CARLO_H_
#define AMICI_PROXIMITY_PPR_MONTE_CARLO_H_

#include <cstdint>
#include <string_view>

#include "proximity/proximity_model.h"

namespace amici {

/// Monte-Carlo personalized PageRank: runs `num_walks` random walks with
/// restart from the source and estimates π[v] as the fraction of *visits*
/// (every step counts, weighted by restart_prob) landing on v. Unbiased,
/// trivially parallel, accuracy ∝ 1/√num_walks — the classic
/// latency/quality dial swept in Fig 7.
///
/// Determinism: the sampler derives its per-call RNG from (seed, source),
/// so Compute is reproducible and safe to call concurrently.
class PprMonteCarlo : public ProximityModel {
 public:
  explicit PprMonteCarlo(double restart_prob = 0.15,
                         uint32_t num_walks = 2048, uint64_t seed = 42);

  std::string_view name() const override { return "ppr-mc"; }
  ProximityVector Compute(const SocialGraph& graph,
                          UserId source) const override;

  uint32_t num_walks() const { return num_walks_; }

 private:
  double restart_prob_;
  uint32_t num_walks_;
  uint64_t seed_;
};

}  // namespace amici

#endif  // AMICI_PROXIMITY_PPR_MONTE_CARLO_H_
