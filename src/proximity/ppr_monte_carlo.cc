#include "proximity/ppr_monte_carlo.h"

#include <unordered_map>
#include <vector>

#include "util/hash.h"
#include "util/logging.h"
#include "util/rng.h"

namespace amici {

PprMonteCarlo::PprMonteCarlo(double restart_prob, uint32_t num_walks,
                             uint64_t seed)
    : restart_prob_(restart_prob), num_walks_(num_walks), seed_(seed) {
  AMICI_CHECK(restart_prob > 0.0 && restart_prob < 1.0);
  AMICI_CHECK(num_walks >= 1);
}

ProximityVector PprMonteCarlo::Compute(const SocialGraph& graph,
                                       UserId source) const {
  AMICI_CHECK(source < graph.num_users());
  Rng rng(HashCombine(seed_, source));
  std::unordered_map<UserId, uint64_t> visits;
  uint64_t total_visits = 0;

  for (uint32_t w = 0; w < num_walks_; ++w) {
    UserId current = source;
    // Visit-count estimator: every position of the walk (including the
    // source) is a sample of the stationary distribution.
    while (true) {
      ++visits[current];
      ++total_visits;
      if (rng.Bernoulli(restart_prob_)) break;
      const auto friends = graph.Friends(current);
      if (friends.empty()) break;  // dangling: walk restarts
      current = friends[rng.UniformIndex(friends.size())];
    }
  }

  std::vector<ProximityEntry> entries;
  entries.reserve(visits.size());
  for (const auto& [user, count] : visits) {
    if (user == source) continue;
    entries.push_back({user, static_cast<float>(static_cast<double>(count) /
                                                static_cast<double>(
                                                    total_visits))});
  }
  return ProximityVector::FromUnnormalized(std::move(entries));
}

}  // namespace amici
