#ifndef AMICI_PROXIMITY_PROXIMITY_PROVIDER_H_
#define AMICI_PROXIMITY_PROXIMITY_PROVIDER_H_

#include <cstdint>
#include <memory>

#include "graph/social_graph.h"
#include "proximity/proximity_model.h"
#include "util/ids.h"
#include "util/status.h"

namespace amici {

/// How one GetProximity call was satisfied (per-request observability:
/// the engine folds this into SearchStats, so SearchResponse reports how
/// much proximity work a request actually caused).
enum class ProximityOutcome {
  /// Served from the shared generation-keyed cache.
  kCacheHit,
  /// This call ran the model (the expensive path).
  kComputed,
  /// A concurrent call for the same (user, generation) was already
  /// computing; this call waited for its result instead of duplicating
  /// the work (single-flight).
  kJoinedInFlight,
};

/// Cumulative counters of one provider instance. `computations` is the
/// number the whole redesign exists to minimize: with one provider shared
/// across N shards, a cache-missed user costs 1 computation per (user,
/// generation) — not N.
struct ProximityProviderStats {
  /// ProximityModel::Compute calls (queries + warm-over).
  uint64_t computations = 0;
  /// GetProximity calls served from the cache.
  uint64_t cache_hits = 0;
  /// GetProximity calls that joined a concurrent in-flight computation.
  uint64_t inflight_joins = 0;
  /// Entries precomputed by the background warm-over after a generation
  /// bump (a subset of `computations`).
  uint64_t warmed = 0;
  /// Graph generations published by friendship edits (0 = initial graph).
  /// Folds do NOT bump this — a fold changes the representation, not the
  /// graph.
  uint64_t generations_published = 0;
  /// Vectors currently resident in the cache (summed across partitions).
  size_t cache_entries = 0;

  // Delta-overlay / partitioned-service counters (all 0 for providers
  // without an overlay or partitions).
  /// User partitions behind this provider (1 = unpartitioned).
  size_t partitions = 1;
  /// Replacement rows currently overlaying the base CSR.
  size_t overlay_rows = 0;
  /// Folds performed (patch merged into a fresh base CSR).
  uint64_t overlay_folds = 0;
  /// Cross-partition edit halves routed through the partition boundary.
  uint64_t boundary_crossings = 0;
  /// Remote endpoints materialized as partition frontiers (summed).
  size_t frontier_users = 0;
};

/// The one shared graph + proximity surface behind every engine and
/// shard.
///
/// The provider owns the social graph (publishing new generations
/// RCU-style, exactly like engine snapshots), the proximity model, and a
/// single generation-keyed score cache. Engines CONSUME it: they pin a
/// (graph, generation) pair into each EngineSnapshot and ask the provider
/// for proximity vectors against that pinned pair, so a query racing a
/// friendship edit is always scored against one consistent generation.
///
/// Thread-safety contract (all implementations):
///  * Acquire / GetProximity / stats are safe from any number of threads,
///    concurrently with each other AND with friendship edits;
///  * AddFriendship / RemoveFriendship serialize among themselves and
///    publish atomically — readers holding an older generation keep it
///    alive via the shared_ptr and are never invalidated mid-query.
class ProximityProvider {
 public:
  /// One published (graph, generation) pair. Holding `graph` pins that
  /// generation for as long as the caller keeps the pointer.
  struct GraphView {
    std::shared_ptr<const SocialGraph> graph;
    uint64_t generation = 0;
  };

  virtual ~ProximityProvider() = default;

  /// The current graph generation (lock-free load).
  virtual GraphView Acquire() const = 0;

  /// Returns the proximity vector of `source` computed against `graph` /
  /// `generation` — normally the pair the caller pinned via Acquire() (or
  /// an EngineSnapshot). Cached per (source, generation); concurrent
  /// misses for the same key share ONE computation. `outcome`, when
  /// non-null, reports how the call was satisfied.
  virtual std::shared_ptr<const ProximityVector> GetProximity(
      const SocialGraph& graph, UserId source, uint64_t generation,
      ProximityOutcome* outcome = nullptr) = 0;

  /// Edits one undirected edge and publishes a new graph generation.
  /// Validation happens here — the single place the graph lives:
  /// endpoints outside the graph and self-edges are InvalidArgument,
  /// duplicate adds are AlreadyExists, missing removes are NotFound; no
  /// rebuild happens on any rejected edit.
  virtual Status AddFriendship(UserId u, UserId v) = 0;
  virtual Status RemoveFriendship(UserId u, UserId v) = 0;

  /// Validation-only preview of Add/RemoveFriendship against the CURRENT
  /// generation — the same rules the edit itself applies, with no
  /// rebuild and no publish. `check_existence` false limits it to the
  /// structural rules (endpoint range, self-edge), for callers that must
  /// not judge edge existence against a graph that queued edits may
  /// still change (see SearchService::EnqueueAddFriendship).
  virtual Status ValidateEdit(UserId u, UserId v, bool adding,
                              bool check_existence) const = 0;

  /// The proximity model scores are computed with (pure and stateless).
  virtual const ProximityModel& model() const = 0;

  /// Counter snapshot (internally consistent enough for tests: counters
  /// are monotone and quiesced reads are exact).
  virtual ProximityProviderStats stats() const = 0;

  /// Blocks until every background warm-over round queued so far has
  /// been applied or superseded. No-op for providers without warm-over.
  virtual void WaitForWarmup() {}

  /// Forces the delta-overlay patch (if any) to fold into a fresh base
  /// CSR, regardless of the fold policy; returns the number of patch
  /// rows folded away. Representation-only: the published graph content
  /// and generation are unchanged. No-op (0) for providers without an
  /// overlay.
  virtual size_t FoldOverlay() { return 0; }

  /// Users in the current graph generation (graphs never change their
  /// vertex set — edits rewire edges only).
  size_t num_users() const { return Acquire().graph->num_users(); }
};

}  // namespace amici

#endif  // AMICI_PROXIMITY_PROXIMITY_PROVIDER_H_
