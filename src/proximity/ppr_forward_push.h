#ifndef AMICI_PROXIMITY_PPR_FORWARD_PUSH_H_
#define AMICI_PROXIMITY_PPR_FORWARD_PUSH_H_

#include <string_view>

#include "proximity/proximity_model.h"

namespace amici {

/// Local forward push (Andersen, Chung & Lang 2006): maintains per-user
/// estimates p and residuals r; repeatedly pushes any residual with
/// r[u] > epsilon · deg(u), settling restart_prob of it into p[u] and
/// spreading the rest over u's friends. Touches only the vicinity of the
/// source — cost is O(1 / (restart_prob · epsilon)) independent of graph
/// size, which is what makes per-query PPR practical.
///
/// Guarantee: |p[v] − π[v]| ≤ epsilon · deg(v) for every v.
class PprForwardPush : public ProximityModel {
 public:
  /// `restart_prob` in (0, 1); `epsilon` > 0 controls the accuracy/cost
  /// trade-off (smaller = more accurate, slower).
  explicit PprForwardPush(double restart_prob = 0.15, double epsilon = 1e-4);

  std::string_view name() const override { return "ppr-push"; }
  ProximityVector Compute(const SocialGraph& graph,
                          UserId source) const override;

  double epsilon() const { return epsilon_; }

 private:
  double restart_prob_;
  double epsilon_;
};

}  // namespace amici

#endif  // AMICI_PROXIMITY_PPR_FORWARD_PUSH_H_
