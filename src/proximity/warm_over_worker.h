#ifndef AMICI_PROXIMITY_WARM_OVER_WORKER_H_
#define AMICI_PROXIMITY_WARM_OVER_WORKER_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "proximity/proximity_provider.h"
#include "util/ids.h"

namespace amici {

/// The background warm-over thread a proximity serving unit runs after a
/// friendship edit publishes a new generation: recompute the hottest
/// users against the new graph so the cache does not restart cold on
/// every edge churn. Extracted from the PR 4 SharedProximityProvider so
/// the partitioned router can run one per partition.
///
/// Newer tasks supersede queued ones (only the newest generation is worth
/// warming), so the backlog is at most one task, and a round is abandoned
/// mid-way when a newer one arrives.
class WarmOverWorker {
 public:
  /// Called once per (view, user) warm candidate, on the worker thread;
  /// typically wraps SingleFlightProximity::Get and counts computed
  /// outcomes. Must be safe to call until the destructor returns.
  using WarmFn =
      std::function<void(const ProximityProvider::GraphView&, UserId)>;

  /// Starts the worker thread.
  explicit WarmOverWorker(WarmFn warm);

  /// Stops and joins the worker thread.
  ~WarmOverWorker();

  WarmOverWorker(const WarmOverWorker&) = delete;
  WarmOverWorker& operator=(const WarmOverWorker&) = delete;

  /// Queues one warm-over round: recompute `users` against `view`.
  /// Supersedes any not-yet-finished round.
  void Submit(ProximityProvider::GraphView view, std::vector<UserId> users);

  /// Blocks until every round queued so far has been applied or
  /// superseded. Tests use it to make warm-over observable
  /// deterministically.
  void WaitForWarmup();

 private:
  /// One queued warm-over round.
  struct Task {
    ProximityProvider::GraphView view;
    std::vector<UserId> users;
  };

  void Loop();

  WarmFn warm_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;                 // guarded by mutex_
  bool busy_ = false;                 // guarded by mutex_
  std::unique_ptr<Task> pending_;     // guarded by mutex_
  std::thread thread_;                // joined in the destructor
};

}  // namespace amici

#endif  // AMICI_PROXIMITY_WARM_OVER_WORKER_H_
