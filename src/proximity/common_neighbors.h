#ifndef AMICI_PROXIMITY_COMMON_NEIGHBORS_H_
#define AMICI_PROXIMITY_COMMON_NEIGHBORS_H_

#include <string_view>

#include "proximity/proximity_model.h"

namespace amici {

/// Structural-overlap proximity over the 2-hop neighbourhood. Two flavours:
///
///  * kCount       — raw common-neighbour count |N(u) ∩ N(v)|
///  * kAdamicAdar  — Σ_{w ∈ N(u) ∩ N(v)} 1 / ln(1 + deg(w)), which
///                   down-weights hub-mediated overlap
///
/// Direct friends additionally receive a +1 edge bonus (resp. the maximal
/// single-witness weight) so that friendship itself counts as evidence.
class CommonNeighborsProximity : public ProximityModel {
 public:
  enum class Weighting { kCount, kAdamicAdar };

  explicit CommonNeighborsProximity(Weighting weighting = Weighting::kCount);

  std::string_view name() const override {
    return weighting_ == Weighting::kCount ? "common-neighbors"
                                           : "adamic-adar";
  }
  ProximityVector Compute(const SocialGraph& graph,
                          UserId source) const override;

 private:
  Weighting weighting_;
};

}  // namespace amici

#endif  // AMICI_PROXIMITY_COMMON_NEIGHBORS_H_
