#include "proximity/ppr_forward_push.h"

#include <deque>
#include <unordered_map>
#include <vector>

#include "util/logging.h"

namespace amici {

PprForwardPush::PprForwardPush(double restart_prob, double epsilon)
    : restart_prob_(restart_prob), epsilon_(epsilon) {
  AMICI_CHECK(restart_prob > 0.0 && restart_prob < 1.0);
  AMICI_CHECK(epsilon > 0.0);
}

ProximityVector PprForwardPush::Compute(const SocialGraph& graph,
                                        UserId source) const {
  AMICI_CHECK(source < graph.num_users());
  std::unordered_map<UserId, double> estimate;
  std::unordered_map<UserId, double> residual;
  residual[source] = 1.0;
  std::deque<UserId> queue{source};
  std::unordered_map<UserId, bool> queued;
  queued[source] = true;

  while (!queue.empty()) {
    const UserId u = queue.front();
    queue.pop_front();
    queued[u] = false;
    const double r = residual[u];
    const size_t degree = graph.Degree(u);
    const double threshold =
        epsilon_ * static_cast<double>(degree == 0 ? 1 : degree);
    if (r < threshold) continue;

    residual[u] = 0.0;
    estimate[u] += restart_prob_ * r;
    if (degree == 0) {
      // Dangling user: the walk restarts, residual returns to the source.
      residual[source] += (1.0 - restart_prob_) * r;
      if (!queued[source]) {
        queue.push_back(source);
        queued[source] = true;
      }
      continue;
    }
    const double share =
        (1.0 - restart_prob_) * r / static_cast<double>(degree);
    for (const UserId v : graph.Friends(u)) {
      residual[v] += share;
      const size_t deg_v = graph.Degree(v);
      if (residual[v] >= epsilon_ * static_cast<double>(deg_v == 0 ? 1 : deg_v)
          && !queued[v]) {
        queue.push_back(v);
        queued[v] = true;
      }
    }
  }

  std::vector<ProximityEntry> entries;
  entries.reserve(estimate.size());
  for (const auto& [user, score] : estimate) {
    if (user == source) continue;
    entries.push_back({user, static_cast<float>(score)});
  }
  return ProximityVector::FromUnnormalized(std::move(entries));
}

}  // namespace amici
