#ifndef AMICI_PROXIMITY_PROXIMITY_CACHE_H_
#define AMICI_PROXIMITY_PROXIMITY_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "graph/social_graph.h"
#include "proximity/proximity_model.h"
#include "util/ids.h"

namespace amici {

/// Thread-safe LRU cache of proximity vectors keyed by source user. Query
/// workloads are heavily skewed towards active users, so caching the
/// per-user proximity vector amortizes the dominant query-time cost; the
/// ablation in Table 3 quantifies the effect.
class ProximityCache {
 public:
  /// Wraps `model` (not owned; must outlive the cache). Holds at most
  /// `capacity` vectors.
  ProximityCache(const ProximityModel* model, size_t capacity);

  ProximityCache(const ProximityCache&) = delete;
  ProximityCache& operator=(const ProximityCache&) = delete;

  /// Returns the (possibly cached) proximity vector of `source`. The
  /// shared_ptr keeps the vector alive even if it is evicted while in use.
  ///
  /// `graph_version` tags the entry with the graph generation it was
  /// computed from: a cached entry only hits when the caller's version
  /// matches, so a reader racing a friendship mutation can never be served
  /// (or poison the cache with) a vector from the wrong graph generation.
  /// Callers with an unversioned graph may leave it 0.
  std::shared_ptr<const ProximityVector> Get(const SocialGraph& graph,
                                             UserId source,
                                             uint64_t graph_version = 0);

  /// Drops all cached entries.
  void Clear();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  using LruList = std::list<UserId>;

  struct Entry {
    std::shared_ptr<const ProximityVector> vector;
    LruList::iterator lru_position;
    uint64_t graph_version = 0;
  };

  const ProximityModel* model_;
  size_t capacity_;

  mutable std::mutex mutex_;
  LruList lru_;  // front = most recent
  std::unordered_map<UserId, Entry> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace amici

#endif  // AMICI_PROXIMITY_PROXIMITY_CACHE_H_
