#ifndef AMICI_PROXIMITY_PROXIMITY_CACHE_H_
#define AMICI_PROXIMITY_PROXIMITY_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/social_graph.h"
#include "proximity/proximity_model.h"
#include "util/ids.h"

namespace amici {

/// Thread-safe LRU cache of proximity vectors keyed by source user. Query
/// workloads are heavily skewed towards active users, so caching the
/// per-user proximity vector amortizes the dominant query-time cost; the
/// ablation in Table 3 quantifies the effect.
///
/// Two usage styles:
///  * the classic compute-through Get() (requires a model), and
///  * the split TryGet()/Put() surface a ProximityProvider uses to wrap
///    the cache in single-flight computation de-duplication.
class ProximityCache {
 public:
  /// Wraps `model` (not owned; must outlive the cache; may be null when
  /// only the TryGet/Put surface is used). Holds at most `capacity`
  /// vectors.
  ProximityCache(const ProximityModel* model, size_t capacity);

  ProximityCache(const ProximityCache&) = delete;
  ProximityCache& operator=(const ProximityCache&) = delete;

  /// Returns the (possibly cached) proximity vector of `source`. The
  /// shared_ptr keeps the vector alive even if it is evicted while in use.
  ///
  /// `graph_version` tags the entry with the graph generation it was
  /// computed from: a cached entry only hits when the caller's version
  /// matches, so a reader racing a friendship mutation can never be served
  /// (or poison the cache with) a vector from the wrong graph generation.
  /// Callers with an unversioned graph may leave it 0.
  std::shared_ptr<const ProximityVector> Get(const SocialGraph& graph,
                                             UserId source,
                                             uint64_t graph_version = 0);

  /// Lookup-only: the cached vector of `source` for exactly
  /// `graph_version`, or null on miss. Counts a hit/miss and touches the
  /// LRU position on hit. Never computes.
  std::shared_ptr<const ProximityVector> TryGet(UserId source,
                                                uint64_t graph_version);

  /// Inserts a computed vector. An existing entry for `source` is
  /// replaced only when it is from an OLDER generation (a newer cached
  /// generation is never clobbered by a straggler); the LRU evicts when
  /// over capacity. Does not count a hit or miss.
  void Put(UserId source, uint64_t graph_version,
           std::shared_ptr<const ProximityVector> vector);

  /// The `n` most-recently-used cached users, hottest first — the
  /// warm-over candidate set a provider recomputes after a generation
  /// bump.
  std::vector<UserId> HottestUsers(size_t n) const;

  /// Drops all cached entries.
  void Clear();

  /// Counter reads are safe concurrently with lookups (atomic: stats
  /// surfaces poll them while queries run).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  using LruList = std::list<UserId>;

  struct Entry {
    std::shared_ptr<const ProximityVector> vector;
    LruList::iterator lru_position;
    uint64_t graph_version = 0;
  };

  const ProximityModel* model_;
  size_t capacity_;

  mutable std::mutex mutex_;
  LruList lru_;  // front = most recent
  std::unordered_map<UserId, Entry> entries_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace amici

#endif  // AMICI_PROXIMITY_PROXIMITY_CACHE_H_
