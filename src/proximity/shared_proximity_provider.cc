#include "proximity/shared_proximity_provider.h"

#include <algorithm>
#include <utility>

#include "graph/graph_builder.h"
#include "proximity/ppr_forward_push.h"
#include "util/logging.h"

namespace amici {

namespace {

/// Rebuilds a CSR graph with one edge toggled. `insert` adds {u, v};
/// otherwise the edge is dropped. O(E) — adequate for the low edge churn
/// of social workloads (the delta-overlay graph remains a ROADMAP item).
SocialGraph RebuildWithEdge(const SocialGraph& graph, UserId u, UserId v,
                            bool insert) {
  GraphBuilder builder(graph.num_users());
  for (size_t a = 0; a < graph.num_users(); ++a) {
    for (const UserId b : graph.Friends(static_cast<UserId>(a))) {
      if (b <= a) continue;  // each undirected edge once
      if (!insert && ((a == u && b == v) || (a == v && b == u))) continue;
      AMICI_CHECK_OK(builder.AddEdge(static_cast<UserId>(a), b));
    }
  }
  if (insert) AMICI_CHECK_OK(builder.AddEdge(u, v));
  return builder.Build();
}

}  // namespace

SharedProximityProvider::SharedProximityProvider(SocialGraph graph,
                                                 Options options)
    : model_(options.model != nullptr
                 ? options.model
                 : std::make_shared<PprForwardPush>(/*restart_prob=*/0.15,
                                                    /*epsilon=*/1e-4)),
      options_(std::move(options)),
      cache_(model_.get(), std::max<size_t>(1, options_.cache_capacity)) {
  auto initial = std::make_shared<const GraphView>(
      GraphView{std::make_shared<const SocialGraph>(std::move(graph)), 0});
  state_.store(std::move(initial));
  if (options_.warm_top_n > 0) {
    warm_thread_ = std::thread(&SharedProximityProvider::WarmLoop, this);
  }
}

SharedProximityProvider::~SharedProximityProvider() {
  if (warm_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(warm_mutex_);
      warm_stop_ = true;
    }
    warm_cv_.notify_all();
    warm_thread_.join();
  }
}

ProximityProvider::GraphView SharedProximityProvider::Acquire() const {
  return *state_.load();
}

std::shared_ptr<const ProximityVector> SharedProximityProvider::GetProximity(
    const SocialGraph& graph, UserId source, uint64_t generation,
    ProximityOutcome* outcome) {
  if (auto cached = cache_.TryGet(source, generation)) {
    if (outcome != nullptr) *outcome = ProximityOutcome::kCacheHit;
    return cached;
  }

  // Single-flight: one computation per (generation, user) no matter how
  // many shards miss concurrently. The winner computes and publishes;
  // losers wait on the winner's flight instead of duplicating the work.
  const std::pair<uint64_t, UserId> key{generation, source};
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(flights_mutex_);
    auto it = flights_.find(key);
    if (it != flights_.end()) {
      flight = it->second;
    } else {
      // Re-check the cache before becoming leader: a previous leader
      // publishes to the cache BEFORE retiring its flight, so a miss
      // that raced into that window would otherwise recompute — and
      // "exactly one computation per (user, generation)" is the
      // provider's defining guarantee.
      if (auto cached = cache_.TryGet(source, generation)) {
        if (outcome != nullptr) *outcome = ProximityOutcome::kCacheHit;
        return cached;
      }
      flight = std::make_shared<Flight>();
      flights_.emplace(key, flight);
      leader = true;
    }
  }

  if (!leader) {
    {
      std::unique_lock<std::mutex> lock(flight->mutex);
      flight->cv.wait(lock, [&] { return flight->done; });
    }
    if (flight->vector == nullptr) {
      // The leader unwound on an exception without producing a vector
      // (the model is user-implementable; Compute may throw). The flight
      // is already retired, so retry from the top — some caller becomes
      // the new leader.
      return GetProximity(graph, source, generation, outcome);
    }
    inflight_joins_.fetch_add(1, std::memory_order_relaxed);
    if (outcome != nullptr) *outcome = ProximityOutcome::kJoinedInFlight;
    return flight->vector;
  }

  // RAII flight retirement: on EVERY leader exit — success or exception —
  // remove the flight from the table and wake the waiters. Without this,
  // a throwing Compute would strand the flight and every future call for
  // this (user, generation) would block on it forever. `flight->vector`
  // stays null on failure, which is the waiters' retry signal.
  struct FlightRetirer {
    SharedProximityProvider* provider;
    const std::pair<uint64_t, UserId>& key;
    const std::shared_ptr<Flight>& flight;
    ~FlightRetirer() {
      {
        std::lock_guard<std::mutex> lock(provider->flights_mutex_);
        provider->flights_.erase(key);
      }
      {
        std::lock_guard<std::mutex> lock(flight->mutex);
        flight->done = true;
      }
      flight->cv.notify_all();
    }
  } retirer{this, key, flight};

  // Compute OFF every lock: a long PPR run must block neither cache hits
  // for other users nor the edit path.
  auto vector =
      std::make_shared<const ProximityVector>(model_->Compute(graph, source));
  computations_.fetch_add(1, std::memory_order_relaxed);
  cache_.Put(source, generation, vector);
  {
    std::lock_guard<std::mutex> lock(flight->mutex);
    flight->vector = vector;  // done is set by the retirer, same mutex
  }
  if (outcome != nullptr) *outcome = ProximityOutcome::kComputed;
  return vector;
}

namespace {

/// The one statement of the edit-validation rules; EditEdge and the
/// ValidateEdit preview both apply exactly this.
Status ValidateEditAgainst(const SocialGraph& graph, UserId u, UserId v,
                           bool adding, bool check_existence) {
  if (u >= graph.num_users() || v >= graph.num_users()) {
    return Status::InvalidArgument("friendship endpoint outside the graph");
  }
  if (u == v) return Status::InvalidArgument("self-friendship is not a thing");
  if (!check_existence) return Status::Ok();
  if (adding && graph.HasEdge(u, v)) {
    return Status::AlreadyExists("friendship already present");
  }
  if (!adding && !graph.HasEdge(u, v)) {
    return Status::NotFound("no such friendship");
  }
  return Status::Ok();
}

}  // namespace

Status SharedProximityProvider::ValidateEdit(UserId u, UserId v, bool adding,
                                             bool check_existence) const {
  const std::shared_ptr<const GraphView> cur = state_.load();
  return ValidateEditAgainst(*cur->graph, u, v, adding, check_existence);
}

Status SharedProximityProvider::EditEdge(UserId u, UserId v, bool insert) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const std::shared_ptr<const GraphView> cur = state_.load();
  AMICI_RETURN_IF_ERROR(ValidateEditAgainst(*cur->graph, u, v, insert,
                                            /*check_existence=*/true));

  // Snapshot the warm-over candidates BEFORE publishing: the hottest
  // users of the RETIRING generation are exactly the ones worth paying
  // for against the new graph.
  std::vector<UserId> hottest;
  if (options_.warm_top_n > 0) {
    hottest = cache_.HottestUsers(options_.warm_top_n);
  }

  auto next = std::make_shared<const GraphView>(GraphView{
      std::make_shared<const SocialGraph>(
          RebuildWithEdge(*cur->graph, u, v, insert)),
      cur->generation + 1});
  state_.store(next);
  generations_.fetch_add(1, std::memory_order_relaxed);
  // No cache flush: entries are keyed by generation, so stale vectors can
  // neither hit nor survive the first new-generation access.

  if (!hottest.empty()) {
    auto task = std::make_unique<WarmTask>();
    task->view = *next;
    task->users = std::move(hottest);
    {
      std::lock_guard<std::mutex> warm_lock(warm_mutex_);
      // Supersede any queued round: warming a generation that is no
      // longer current would be wasted model runs.
      warm_pending_ = std::move(task);
    }
    warm_cv_.notify_all();
  }
  return Status::Ok();
}

Status SharedProximityProvider::AddFriendship(UserId u, UserId v) {
  return EditEdge(u, v, /*insert=*/true);
}

Status SharedProximityProvider::RemoveFriendship(UserId u, UserId v) {
  return EditEdge(u, v, /*insert=*/false);
}

ProximityProviderStats SharedProximityProvider::stats() const {
  ProximityProviderStats stats;
  stats.computations = computations_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_.hits();
  stats.inflight_joins = inflight_joins_.load(std::memory_order_relaxed);
  stats.warmed = warmed_.load(std::memory_order_relaxed);
  stats.generations_published =
      generations_.load(std::memory_order_relaxed);
  stats.cache_entries = cache_.size();
  return stats;
}

void SharedProximityProvider::WaitForWarmup() {
  std::unique_lock<std::mutex> lock(warm_mutex_);
  warm_cv_.wait(lock,
                [&] { return warm_pending_ == nullptr && !warm_busy_; });
}

void SharedProximityProvider::WarmLoop() {
  while (true) {
    std::unique_ptr<WarmTask> task;
    {
      std::unique_lock<std::mutex> lock(warm_mutex_);
      warm_busy_ = false;
      warm_cv_.notify_all();  // wake WaitForWarmup watchers
      warm_cv_.wait(lock,
                    [&] { return warm_stop_ || warm_pending_ != nullptr; });
      if (warm_stop_) return;
      task = std::move(warm_pending_);
      warm_busy_ = true;
    }
    for (const UserId user : task->users) {
      {
        // A newer generation superseded this round mid-way: abandon it.
        std::lock_guard<std::mutex> lock(warm_mutex_);
        if (warm_stop_ || warm_pending_ != nullptr) break;
      }
      ProximityOutcome outcome;
      (void)GetProximity(*task->view.graph, user, task->view.generation,
                         &outcome);
      if (outcome == ProximityOutcome::kComputed) {
        warmed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

}  // namespace amici
