#include "proximity/shared_proximity_provider.h"

#include <utility>

namespace amici {

namespace {

ProximityServiceRouter::Options AsRouterOptions(
    SharedProximityProvider::Options options) {
  ProximityServiceRouter::Options router_options;
  router_options.num_partitions = 1;
  router_options.model = std::move(options.model);
  router_options.cache_capacity = options.cache_capacity;
  router_options.warm_top_n = options.warm_top_n;
  router_options.fold_policy = std::move(options.fold_policy);
  return router_options;
}

}  // namespace

SharedProximityProvider::SharedProximityProvider(SocialGraph graph,
                                                 Options options)
    : ProximityServiceRouter(std::move(graph),
                             AsRouterOptions(std::move(options))) {}

}  // namespace amici
