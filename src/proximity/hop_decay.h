#ifndef AMICI_PROXIMITY_HOP_DECAY_H_
#define AMICI_PROXIMITY_HOP_DECAY_H_

#include <cstdint>
#include <string_view>

#include "proximity/proximity_model.h"

namespace amici {

/// The simplest proximity model: direct friends have proximity 1, users at
/// hop distance h have decay^(h-1), users beyond `max_hops` have 0. Cheap
/// (one truncated BFS) but coarse — every friend looks equally close.
class HopDecayProximity : public ProximityModel {
 public:
  /// `decay` in (0, 1]; `max_hops` >= 1.
  explicit HopDecayProximity(double decay = 0.5, uint16_t max_hops = 2);

  std::string_view name() const override { return "hop-decay"; }
  ProximityVector Compute(const SocialGraph& graph,
                          UserId source) const override;

  double decay() const { return decay_; }
  uint16_t max_hops() const { return max_hops_; }

 private:
  double decay_;
  uint16_t max_hops_;
};

}  // namespace amici

#endif  // AMICI_PROXIMITY_HOP_DECAY_H_
