#include "proximity/proximity_model.h"

#include <algorithm>

namespace amici {

ProximityVector ProximityVector::FromUnnormalized(
    std::vector<ProximityEntry> entries) {
  ProximityVector out;
  entries.erase(std::remove_if(entries.begin(), entries.end(),
                               [](const ProximityEntry& e) {
                                 return !(e.score > 0.0f);
                               }),
                entries.end());
  if (entries.empty()) return out;

  float max_score = 0.0f;
  for (const auto& e : entries) max_score = std::max(max_score, e.score);
  for (auto& e : entries) e.score /= max_score;

  std::sort(entries.begin(), entries.end(),
            [](const ProximityEntry& a, const ProximityEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.user < b.user;
            });
  out.lookup_.reserve(entries.size() * 2);
  for (const auto& e : entries) out.lookup_.emplace(e.user, e.score);
  out.ranked_ = std::move(entries);
  return out;
}

}  // namespace amici
