#ifndef AMICI_PROXIMITY_PPR_POWER_ITERATION_H_
#define AMICI_PROXIMITY_PPR_POWER_ITERATION_H_

#include <cstdint>
#include <string_view>

#include "proximity/proximity_model.h"

namespace amici {

/// Personalized PageRank by dense power iteration:
///
///   π ← restart_prob · e_source + (1 − restart_prob) · Wᵀ π
///
/// with W the row-stochastic random-walk matrix. This is the *exact*
/// reference model (up to `tolerance`): O(num_users + num_edges) per
/// iteration, so it is the ground truth the approximate models (forward
/// push, Monte-Carlo) are measured against in Fig 7 — not what a latency-
/// sensitive engine would run per query.
class PprPowerIteration : public ProximityModel {
 public:
  /// `restart_prob` in (0, 1); iteration stops after `max_iterations` or
  /// when the L1 change drops below `tolerance`.
  explicit PprPowerIteration(double restart_prob = 0.15,
                             uint32_t max_iterations = 100,
                             double tolerance = 1e-9,
                             double min_score = 1e-7);

  std::string_view name() const override { return "ppr-exact"; }
  ProximityVector Compute(const SocialGraph& graph,
                          UserId source) const override;

  double restart_prob() const { return restart_prob_; }

 private:
  double restart_prob_;
  uint32_t max_iterations_;
  double tolerance_;
  double min_score_;  // entries below this are dropped from the result
};

}  // namespace amici

#endif  // AMICI_PROXIMITY_PPR_POWER_ITERATION_H_
