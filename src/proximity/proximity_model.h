#ifndef AMICI_PROXIMITY_PROXIMITY_MODEL_H_
#define AMICI_PROXIMITY_PROXIMITY_MODEL_H_

#include <cstddef>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/social_graph.h"
#include "util/ids.h"

namespace amici {

/// One (user, proximity) pair; proximity is normalized to (0, 1].
struct ProximityEntry {
  UserId user;
  float score;
};

/// Sparse social-proximity vector for one source user.
///
/// Normalization contract: scores lie in (0, 1] with the strongest
/// neighbour at exactly 1.0; the source itself is excluded; users absent
/// from the vector have proximity 0. Entries are ordered by decreasing
/// score (ties by ascending user id), which is exactly the "ranked access"
/// order SocialFirst consumes; `Proximity()` provides the "random access"
/// path ContentFirstTa needs.
class ProximityVector {
 public:
  ProximityVector() = default;

  /// Takes raw (possibly unsorted, unnormalized) entries; drops
  /// non-positive scores, normalizes the max to 1, sorts, and builds the
  /// lookup table.
  static ProximityVector FromUnnormalized(std::vector<ProximityEntry> entries);

  /// Entries in decreasing-score order.
  const std::vector<ProximityEntry>& ranked() const { return ranked_; }

  /// Proximity of `u`, or 0 when u is not in the vector.
  float Proximity(UserId u) const {
    const auto it = lookup_.find(u);
    return it == lookup_.end() ? 0.0f : it->second;
  }

  bool empty() const { return ranked_.empty(); }
  size_t size() const { return ranked_.size(); }

  /// Largest score (1.0 by contract) or 0 for an empty vector.
  float MaxScore() const { return ranked_.empty() ? 0.0f : ranked_[0].score; }

 private:
  std::vector<ProximityEntry> ranked_;
  std::unordered_map<UserId, float> lookup_;
};

/// Strategy interface for social proximity. Implementations are pure
/// functions of (graph, source) and must be safe for concurrent use from
/// multiple threads.
class ProximityModel {
 public:
  virtual ~ProximityModel() = default;

  /// Short stable identifier used in bench output (e.g. "ppr-push").
  virtual std::string_view name() const = 0;

  /// Computes the proximity vector of `source` over `graph`.
  virtual ProximityVector Compute(const SocialGraph& graph,
                                  UserId source) const = 0;
};

}  // namespace amici

#endif  // AMICI_PROXIMITY_PROXIMITY_MODEL_H_
