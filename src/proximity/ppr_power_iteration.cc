#include "proximity/ppr_power_iteration.h"

#include <cmath>
#include <vector>

#include "util/logging.h"

namespace amici {

PprPowerIteration::PprPowerIteration(double restart_prob,
                                     uint32_t max_iterations, double tolerance,
                                     double min_score)
    : restart_prob_(restart_prob),
      max_iterations_(max_iterations),
      tolerance_(tolerance),
      min_score_(min_score) {
  AMICI_CHECK(restart_prob > 0.0 && restart_prob < 1.0);
  AMICI_CHECK(max_iterations >= 1);
}

ProximityVector PprPowerIteration::Compute(const SocialGraph& graph,
                                           UserId source) const {
  const size_t n = graph.num_users();
  AMICI_CHECK(source < n);
  std::vector<double> pi(n, 0.0);
  std::vector<double> next(n, 0.0);
  pi[source] = 1.0;

  for (uint32_t iter = 0; iter < max_iterations_; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling_mass = 0.0;
    for (size_t u = 0; u < n; ++u) {
      if (pi[u] == 0.0) continue;
      const auto friends = graph.Friends(static_cast<UserId>(u));
      if (friends.empty()) {
        // Dangling users restart; mass returns to the source.
        dangling_mass += pi[u];
        continue;
      }
      const double share =
          (1.0 - restart_prob_) * pi[u] / static_cast<double>(friends.size());
      for (const UserId v : friends) next[v] += share;
    }
    next[source] += restart_prob_ + (1.0 - restart_prob_) * dangling_mass;
    // Note: restart mass is Σ_u restart_prob·π[u] = restart_prob because π
    // sums to 1.
    double mass = 0.0;
    for (const double x : next) mass += x;
    // Renormalize against drift (restart bookkeeping above keeps mass ≈ 1).
    if (mass > 0) {
      for (double& x : next) x /= mass;
    }
    double l1_change = 0.0;
    for (size_t u = 0; u < n; ++u) l1_change += std::abs(next[u] - pi[u]);
    pi.swap(next);
    if (l1_change < tolerance_) break;
  }

  std::vector<ProximityEntry> entries;
  for (size_t u = 0; u < n; ++u) {
    if (u == source || pi[u] < min_score_) continue;
    entries.push_back({static_cast<UserId>(u), static_cast<float>(pi[u])});
  }
  return ProximityVector::FromUnnormalized(std::move(entries));
}

}  // namespace amici
