#ifndef AMICI_UTIL_HASH_H_
#define AMICI_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace amici {

/// 64-bit FNV-1a over arbitrary bytes; stable across platforms, used for
/// dictionary hashing and checksums in the binary formats.
inline uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Strong 64-bit finalizer (MurmurHash3 fmix64); good avalanche for integer
/// keys.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Boost-style combiner for composing hashes of struct fields.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

}  // namespace amici

#endif  // AMICI_UTIL_HASH_H_
