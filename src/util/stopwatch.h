#ifndef AMICI_UTIL_STOPWATCH_H_
#define AMICI_UTIL_STOPWATCH_H_

#include <chrono>

namespace amici {

/// Monotonic wall-clock stopwatch used by benches and engine statistics.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace amici

#endif  // AMICI_UTIL_STOPWATCH_H_
