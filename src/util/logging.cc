#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace amici {
namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kInfo};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

// Strips the directory part so log lines stay short.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash == nullptr ? path : slash + 1;
}

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t tt = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf;
  localtime_r(&tt, &tm_buf);
  char ts[32];
  std::strftime(ts, sizeof(ts), "%H:%M:%S", &tm_buf);
  std::fprintf(stderr, "%s %s %s:%d] %s\n", LevelTag(level), ts,
               Basename(file), line, msg.c_str());
}

}  // namespace

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(level, std::memory_order_relaxed);
}

LogLevel MinLogLevel() { return g_min_level.load(std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() { Emit(level_, file_, line_, stream_.str()); }

FatalMessage::FatalMessage(const char* file, int line, const char* condition)
    : file_(file), line_(line) {
  stream_ << "Check failed: " << condition << " ";
}

FatalMessage::~FatalMessage() {
  Emit(LogLevel::kError, file_, line_, stream_.str());
  std::abort();
}

}  // namespace internal
}  // namespace amici
