#include "util/zipf.h"

#include <cmath>

#include "util/logging.h"

namespace amici {

// Rejection-inversion sampling after Hörmann & Derflinger (1996),
// "Rejection-inversion to generate variates from monotone discrete
// distributions". The integral H of the density envelope admits a closed
// form for f(x) = x^-s, and its inverse is cheap; rejection fixes up the
// discretization.

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  AMICI_CHECK(n >= 1) << "ZipfSampler needs a non-empty domain";
  AMICI_CHECK(s >= 0.0) << "Zipf exponent must be non-negative";
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  spole_ = h_x1_;
}

double ZipfSampler::H(double x) const {
  if (s_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfSampler::HInverse(double x) const {
  if (s_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  if (n_ == 1) return 1;
  while (true) {
    const double u = spole_ + rng->UniformDouble() * (h_n_ - spole_);
    const double x = HInverse(u);
    // Candidate rank: nearest integer, clamped to the valid domain.
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    // Accept iff u falls inside the bar of rank k.
    if (u >= H(kd + 0.5) - std::pow(kd, -s_)) return k;
  }
}

}  // namespace amici
