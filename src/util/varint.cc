#include "util/varint.h"

namespace amici {

void PutVarint32(uint32_t value, std::string* out) {
  PutVarint64(value, out);
}

void PutVarint64(uint64_t value, std::string* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

bool GetVarint64(const std::string& data, size_t* offset, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  size_t pos = *offset;
  while (pos < data.size() && shift <= 63) {
    const uint8_t byte = static_cast<uint8_t>(data[pos++]);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *offset = pos;
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;  // Truncated or over-long encoding.
}

bool GetVarint32(const std::string& data, size_t* offset, uint32_t* value) {
  uint64_t wide = 0;
  if (!GetVarint64(data, offset, &wide)) return false;
  if (wide > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(wide);
  return true;
}

size_t VarintLength(uint64_t value) {
  size_t len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

uint64_t ZigZagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

int64_t ZigZagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

bool DeltaEncode(const std::vector<uint32_t>& values, std::string* out) {
  uint32_t previous = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i == 0) {
      PutVarint32(values[0], out);
    } else {
      if (values[i] <= previous) return false;
      PutVarint32(values[i] - previous, out);
    }
    previous = values[i];
  }
  return true;
}

bool DeltaDecode(const std::string& data, size_t count,
                 std::vector<uint32_t>* values) {
  values->clear();
  values->reserve(count);
  size_t offset = 0;
  uint64_t current = 0;
  for (size_t i = 0; i < count; ++i) {
    uint32_t delta = 0;
    if (!GetVarint32(data, &offset, &delta)) return false;
    current = (i == 0) ? delta : current + delta;
    if (current > UINT32_MAX) return false;
    values->push_back(static_cast<uint32_t>(current));
  }
  return true;
}

}  // namespace amici
