#include "util/varint.h"

#if defined(__x86_64__) || defined(_M_X64)
#define AMICI_VARINT_X86_64 1
#include <immintrin.h>
#endif

namespace amici {
namespace {

// Decodes one varint32 gap from [*p, end). Mirrors GetVarint32's limits
// (at most 5 bytes for a 32-bit value) but works on raw pointers so the
// block kernels can share it without std::string indirection.
inline bool DecodeOneGap(const uint8_t** p, const uint8_t* end,
                         uint32_t* gap) {
  const uint8_t* cursor = *p;
  uint32_t value = 0;
  for (int shift = 0; shift <= 28; shift += 7) {
    if (cursor >= end) return false;
    const uint8_t byte = *cursor++;
    value |= static_cast<uint32_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *p = cursor;
      *gap = value;
      return true;
    }
  }
  return false;  // Over-long encoding; PutVarint32 never emits one.
}

// Shared scalar core: decode `count` gaps starting from running value
// `current` (the i==0 absolute-value case is base 0 + gap).
inline bool ScalarDecodeRange(const uint8_t** p, const uint8_t* end,
                              size_t count, uint32_t current,
                              uint32_t* out) {
  for (size_t i = 0; i < count; ++i) {
    uint32_t gap = 0;
    if (!DecodeOneGap(p, end, &gap)) return false;
    current += gap;
    out[i] = current;
  }
  return true;
}

#ifdef AMICI_VARINT_X86_64

// Widens 16 single-byte gaps to four u32x4 lanes, inclusive-prefix-sums
// them, and adds the running base. Returns the new base (last absolute
// value). SSE2-only intrinsics — safe on any x86-64.
inline uint32_t Sum16SingleByteGaps(const __m128i raw, uint32_t base,
                                    uint32_t* out) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i lo16 = _mm_unpacklo_epi8(raw, zero);
  const __m128i hi16 = _mm_unpackhi_epi8(raw, zero);
  const __m128i groups[4] = {
      _mm_unpacklo_epi16(lo16, zero), _mm_unpackhi_epi16(lo16, zero),
      _mm_unpacklo_epi16(hi16, zero), _mm_unpackhi_epi16(hi16, zero)};
  for (int g = 0; g < 4; ++g) {
    __m128i v = groups[g];
    v = _mm_add_epi32(v, _mm_slli_si128(v, 4));
    v = _mm_add_epi32(v, _mm_slli_si128(v, 8));
    v = _mm_add_epi32(v, _mm_set1_epi32(static_cast<int>(base)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 4 * g), v);
    base = static_cast<uint32_t>(
        _mm_cvtsi128_si32(_mm_shuffle_epi32(v, _MM_SHUFFLE(3, 3, 3, 3))));
  }
  return base;
}

bool DecodeDeltaBlockSse2(const char* data, size_t limit, size_t* offset,
                          size_t count, uint32_t* out) {
  if (*offset > limit) return false;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data) + *offset;
  const uint8_t* end = reinterpret_cast<const uint8_t*>(data) + limit;
  uint32_t current = 0;
  size_t i = 0;
  while (i + 16 <= count && p + 16 <= end) {
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    if (_mm_movemask_epi8(raw) != 0) {
      // A continuation byte in the window: peel one gap and re-probe.
      uint32_t gap = 0;
      if (!DecodeOneGap(&p, end, &gap)) return false;
      current += gap;
      out[i++] = current;
      continue;
    }
    current = Sum16SingleByteGaps(raw, current, out + i);
    p += 16;
    i += 16;
  }
  if (!ScalarDecodeRange(&p, end, count - i, current, out + i)) return false;
  *offset = static_cast<size_t>(p - reinterpret_cast<const uint8_t*>(data));
  return true;
}

#if defined(__GNUC__) || defined(__clang__)
#define AMICI_VARINT_AVX2 1

// AVX2 variant of Sum16SingleByteGaps: two 8-lane prefix sums per
// 16-byte window. Compiled with the avx2 target attribute and only
// reached when __builtin_cpu_supports("avx2") at dispatch time.
__attribute__((target("avx2"))) inline uint32_t Sum16SingleByteGapsAvx2(
    const __m128i raw, uint32_t base, uint32_t* out) {
  const __m256i pick_last = _mm256_setr_epi32(0, 0, 0, 0, 3, 3, 3, 3);
  const __m256i upper_lane =
      _mm256_setr_epi32(0, 0, 0, 0, -1, -1, -1, -1);
  for (int half = 0; half < 2; ++half) {
    const __m128i bytes8 =
        half == 0 ? raw : _mm_unpackhi_epi64(raw, raw);
    __m256i v = _mm256_cvtepu8_epi32(bytes8);
    v = _mm256_add_epi32(v, _mm256_slli_si256(v, 4));
    v = _mm256_add_epi32(v, _mm256_slli_si256(v, 8));
    // Carry lane 0's total into lane 1 to complete the 8-wide scan.
    const __m256i carry = _mm256_and_si256(
        _mm256_permutevar8x32_epi32(v, pick_last), upper_lane);
    v = _mm256_add_epi32(v, carry);
    v = _mm256_add_epi32(v, _mm256_set1_epi32(static_cast<int>(base)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8 * half), v);
    base = static_cast<uint32_t>(_mm256_extract_epi32(v, 7));
  }
  return base;
}

__attribute__((target("avx2"))) bool DecodeDeltaBlockAvx2(
    const char* data, size_t limit, size_t* offset, size_t count,
    uint32_t* out) {
  if (*offset > limit) return false;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data) + *offset;
  const uint8_t* end = reinterpret_cast<const uint8_t*>(data) + limit;
  uint32_t current = 0;
  size_t i = 0;
  while (i + 16 <= count && p + 16 <= end) {
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    if (_mm_movemask_epi8(raw) != 0) {
      uint32_t gap = 0;
      if (!DecodeOneGap(&p, end, &gap)) return false;
      current += gap;
      out[i++] = current;
      continue;
    }
    current = Sum16SingleByteGapsAvx2(raw, current, out + i);
    p += 16;
    i += 16;
  }
  if (!ScalarDecodeRange(&p, end, count - i, current, out + i)) return false;
  *offset = static_cast<size_t>(p - reinterpret_cast<const uint8_t*>(data));
  return true;
}
#endif  // __GNUC__ || __clang__

enum class Kernel { kScalar, kSse2, kAvx2 };

Kernel PickKernel() {
#ifdef AMICI_VARINT_AVX2
  if (__builtin_cpu_supports("avx2")) return Kernel::kAvx2;
#endif
  return Kernel::kSse2;
}

const Kernel kKernel = PickKernel();

#endif  // AMICI_VARINT_X86_64

}  // namespace

void PutVarint32(uint32_t value, std::string* out) {
  PutVarint64(value, out);
}

void PutVarint64(uint64_t value, std::string* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

bool GetVarint64(std::string_view data, size_t* offset, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  size_t pos = *offset;
  while (pos < data.size() && shift <= 63) {
    const uint8_t byte = static_cast<uint8_t>(data[pos++]);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *offset = pos;
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;  // Truncated or over-long encoding.
}

bool GetVarint32(std::string_view data, size_t* offset, uint32_t* value) {
  uint64_t wide = 0;
  if (!GetVarint64(data, offset, &wide)) return false;
  if (wide > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(wide);
  return true;
}

size_t VarintLength(uint64_t value) {
  size_t len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

uint64_t ZigZagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

int64_t ZigZagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

bool DeltaEncode(const std::vector<uint32_t>& values, std::string* out) {
  uint32_t previous = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i == 0) {
      PutVarint32(values[0], out);
    } else {
      if (values[i] <= previous) return false;
      PutVarint32(values[i] - previous, out);
    }
    previous = values[i];
  }
  return true;
}

bool DecodeDeltaBlockScalar(const char* data, size_t limit, size_t* offset,
                            size_t count, uint32_t* out) {
  if (*offset > limit) return false;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data) + *offset;
  const uint8_t* end = reinterpret_cast<const uint8_t*>(data) + limit;
  if (!ScalarDecodeRange(&p, end, count, 0, out)) return false;
  *offset = static_cast<size_t>(p - reinterpret_cast<const uint8_t*>(data));
  return true;
}

bool DecodeDeltaBlock(const char* data, size_t limit, size_t* offset,
                      size_t count, uint32_t* out) {
#ifdef AMICI_VARINT_X86_64
#ifdef AMICI_VARINT_AVX2
  if (kKernel == Kernel::kAvx2) {
    return DecodeDeltaBlockAvx2(data, limit, offset, count, out);
  }
#endif
  return DecodeDeltaBlockSse2(data, limit, offset, count, out);
#else
  return DecodeDeltaBlockScalar(data, limit, offset, count, out);
#endif
}

const char* DeltaBlockKernelName() {
#ifdef AMICI_VARINT_X86_64
#ifdef AMICI_VARINT_AVX2
  if (kKernel == Kernel::kAvx2) return "avx2";
#endif
  return "sse2";
#else
  return "scalar";
#endif
}

bool DeltaDecode(const std::string& data, size_t count,
                 std::vector<uint32_t>* values) {
  values->clear();
  values->reserve(count);
  size_t offset = 0;
  uint64_t current = 0;
  for (size_t i = 0; i < count; ++i) {
    uint32_t delta = 0;
    if (!GetVarint32(data, &offset, &delta)) return false;
    current = (i == 0) ? delta : current + delta;
    if (current > UINT32_MAX) return false;
    values->push_back(static_cast<uint32_t>(current));
  }
  return true;
}

}  // namespace amici
