#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace amici {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "UnknownCode";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "FATAL: Result::value() on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace amici
