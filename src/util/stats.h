#ifndef AMICI_UTIL_STATS_H_
#define AMICI_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace amici {

/// Numerically stable streaming moments (Welford). O(1) memory; used for
/// aggregate counters where storing samples would be too costly.
class OnlineStats {
 public:
  OnlineStats() = default;

  /// Folds one observation into the accumulator.
  void Add(double x);

  /// Merges another accumulator (parallel reduction).
  void Merge(const OnlineStats& other);

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile summary of a latency (or any scalar) sample set.
struct LatencySummary {
  uint64_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Collects raw samples and produces percentile summaries. Used by the
/// bench harnesses; stores all samples, so bound the sample count.
class LatencyRecorder {
 public:
  LatencyRecorder() = default;

  void Record(double value) { samples_.push_back(value); }
  void Clear() { samples_.clear(); }
  size_t size() const { return samples_.size(); }

  /// Computes the summary; sorts an internal copy, leaving samples intact.
  LatencySummary Summarize() const;

 private:
  std::vector<double> samples_;
};

/// Linear-interpolation percentile of a *sorted* sample vector,
/// q in [0, 100].
double PercentileOfSorted(const std::vector<double>& sorted, double q);

/// Fixed-boundary histogram with exponentially growing buckets
/// [0,1), [1,2), [2,4), [4,8)... in the recorder's unit. Compact textual
/// rendering for engine statistics dumps.
class ExponentialHistogram {
 public:
  explicit ExponentialHistogram(int num_buckets = 32);

  void Add(double value);
  uint64_t TotalCount() const { return total_; }

  /// Count in bucket `b` (see class comment for boundaries).
  uint64_t BucketCount(int b) const;
  int num_buckets() const { return static_cast<int>(buckets_.size()); }

  /// One-line rendering: "[0,1):12 [1,2):3 ...", omitting empty buckets.
  std::string ToString() const;

 private:
  std::vector<uint64_t> buckets_;
  uint64_t total_ = 0;
};

}  // namespace amici

#endif  // AMICI_UTIL_STATS_H_
