#include "util/file_util.h"

#include <cstdio>

#include "util/string_util.h"

namespace amici {

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError(StringPrintf("cannot open %s", path.c_str()));
  }
  std::string data;
  char buffer[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    data.append(buffer, n);
  }
  const bool had_error = std::ferror(f) != 0;
  std::fclose(f);
  if (had_error) {
    return Status::IoError(StringPrintf("read error on %s", path.c_str()));
  }
  return data;
}

Status WriteStringToFile(const std::string& data, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(
        StringPrintf("cannot open %s for writing", path.c_str()));
  }
  const size_t written = std::fwrite(data.data(), 1, data.size(), f);
  const int close_error = std::fclose(f);
  if (written != data.size() || close_error != 0) {
    return Status::IoError(StringPrintf("short write to %s", path.c_str()));
  }
  return Status::Ok();
}

}  // namespace amici
