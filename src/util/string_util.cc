#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace amici {

std::vector<std::string> Split(std::string_view text, char separator) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string WithThousandsSeparators(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) {
      out.push_back(',');
    }
    out.push_back(digits[i]);
  }
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < sizeof(kUnits) / sizeof(kUnits[0])) {
    value /= 1024.0;
    ++unit;
  }
  return unit == 0 ? StringPrintf("%llu B",
                                  static_cast<unsigned long long>(bytes))
                   : StringPrintf("%.2f %s", value, kUnits[unit]);
}

std::string StringPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace amici
