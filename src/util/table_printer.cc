#include "util/table_printer.h"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

#include "util/logging.h"

namespace amici {
namespace {

bool LooksNumeric(const std::string& cell) {
  if (cell.empty()) return false;
  bool any_digit = false;
  for (const char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      any_digit = true;
    } else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' &&
               c != ',' && c != '%' && c != 'x') {
      return false;
    }
  }
  return any_digit;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  AMICI_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  AMICI_CHECK(cells.size() == headers_.size())
      << "row has " << cells.size() << " cells, expected " << headers_.size();
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_cell = [&](const std::string& cell, size_t width,
                       bool right_align) {
    const size_t pad = width - cell.size();
    if (right_align) os << std::string(pad, ' ') << cell;
    else os << cell << std::string(pad, ' ');
  };

  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) os << "  ";
    emit_cell(headers_[c], widths[c], false);
  }
  os << '\n';
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) os << "  ";
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << "  ";
      emit_cell(row[c], widths[c], LooksNumeric(row[c]));
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace amici
