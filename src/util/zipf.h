#ifndef AMICI_UTIL_ZIPF_H_
#define AMICI_UTIL_ZIPF_H_

#include <cstdint>

#include "util/rng.h"

namespace amici {

/// Samples from a Zipf distribution over ranks {1, ..., n} with exponent
/// `s >= 0`: P(rank = r) ∝ r^-s. Uses Hörmann & Derflinger's
/// rejection-inversion method, which needs O(1) memory and O(1) expected
/// time per sample — suitable for vocabularies of millions of tags.
///
/// s = 0 degenerates to the uniform distribution over {1, ..., n}.
class ZipfSampler {
 public:
  /// Requires n >= 1 and s >= 0.
  ZipfSampler(uint64_t n, double s);

  /// Draws one rank in [1, n] using `rng`.
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double spole_;  // cached h(1.5) - 1 shift constant
};

}  // namespace amici

#endif  // AMICI_UTIL_ZIPF_H_
