#ifndef AMICI_UTIL_ATOMIC_SHARED_PTR_H_
#define AMICI_UTIL_ATOMIC_SHARED_PTR_H_

#include <atomic>
#include <memory>
#include <mutex>

namespace amici {

/// An atomically replaceable shared_ptr — the publication point of the
/// engine's RCU-style snapshots (readers load, writers store).
///
/// Normally this is std::atomic<std::shared_ptr<T>> (lock-free reader
/// fast path in libstdc++: one CAS on the control-block word). Under
/// ThreadSanitizer we substitute a mutex-guarded copy: libstdc++'s
/// _Sp_atomic releases its internal spin-lock with memory_order_relaxed
/// after a read-only critical section, which is mutually exclusive at
/// machine level but has no happens-before edge in the formal model, so
/// TSan reports every load()/store() pair as a race on _M_ptr. The
/// substitution keeps sanitizer runs focused on OUR protocol instead of
/// that known-benign libstdc++ report.
// GCC defines __SANITIZE_THREAD__; Clang only exposes TSan through
// __has_feature.
#if !defined(AMICI_SANITIZE_THREAD)
#if defined(__SANITIZE_THREAD__)
#define AMICI_SANITIZE_THREAD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define AMICI_SANITIZE_THREAD 1
#endif
#endif
#endif

template <typename T>
class AtomicSharedPtr {
 public:
  AtomicSharedPtr() = default;

  AtomicSharedPtr(const AtomicSharedPtr&) = delete;
  AtomicSharedPtr& operator=(const AtomicSharedPtr&) = delete;

#if defined(AMICI_SANITIZE_THREAD)
  std::shared_ptr<T> load() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return ptr_;
  }

  void store(std::shared_ptr<T> next) {
    std::lock_guard<std::mutex> lock(mutex_);
    ptr_ = std::move(next);
  }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<T> ptr_;
#else
  std::shared_ptr<T> load() const {
    return ptr_.load(std::memory_order_acquire);
  }

  void store(std::shared_ptr<T> next) {
    ptr_.store(std::move(next), std::memory_order_release);
  }

 private:
  std::atomic<std::shared_ptr<T>> ptr_;
#endif
};

}  // namespace amici

#endif  // AMICI_UTIL_ATOMIC_SHARED_PTR_H_
