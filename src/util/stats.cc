#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace amici {

void OnlineStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double PercentileOfSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  AMICI_DCHECK(q >= 0.0 && q <= 100.0);
  if (sorted.size() == 1) return sorted[0];
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

LatencySummary LatencyRecorder::Summarize() const {
  LatencySummary summary;
  if (samples_.empty()) return summary;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  summary.count = sorted.size();
  double sum = 0.0;
  for (const double s : sorted) sum += s;
  summary.mean = sum / static_cast<double>(sorted.size());
  summary.min = sorted.front();
  summary.max = sorted.back();
  summary.p50 = PercentileOfSorted(sorted, 50.0);
  summary.p90 = PercentileOfSorted(sorted, 90.0);
  summary.p99 = PercentileOfSorted(sorted, 99.0);
  return summary;
}

ExponentialHistogram::ExponentialHistogram(int num_buckets)
    : buckets_(static_cast<size_t>(num_buckets), 0) {
  AMICI_CHECK(num_buckets >= 2);
}

void ExponentialHistogram::Add(double value) {
  ++total_;
  if (value < 1.0) {
    ++buckets_[0];
    return;
  }
  // Bucket b >= 1 holds [2^(b-1), 2^b).
  int b = 1 + static_cast<int>(std::log2(value));
  if (b >= num_buckets()) b = num_buckets() - 1;
  ++buckets_[static_cast<size_t>(b)];
}

uint64_t ExponentialHistogram::BucketCount(int b) const {
  AMICI_CHECK(b >= 0 && b < num_buckets());
  return buckets_[static_cast<size_t>(b)];
}

std::string ExponentialHistogram::ToString() const {
  std::string out;
  char buf[64];
  for (int b = 0; b < num_buckets(); ++b) {
    if (buckets_[static_cast<size_t>(b)] == 0) continue;
    const double lo = b == 0 ? 0.0 : std::pow(2.0, b - 1);
    const double hi = std::pow(2.0, b);
    std::snprintf(buf, sizeof(buf), "[%.0f,%.0f):%llu ", lo, hi,
                  static_cast<unsigned long long>(
                      buckets_[static_cast<size_t>(b)]));
    out += buf;
  }
  if (!out.empty()) out.pop_back();
  return out;
}

}  // namespace amici
