#ifndef AMICI_UTIL_LOGGING_H_
#define AMICI_UTIL_LOGGING_H_

#include <sstream>
#include <string_view>

#include "util/status.h"

namespace amici {

/// Log severities, in increasing order of urgency.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum severity; messages below it are dropped.
/// Thread-safe. Defaults to kInfo.
void SetMinLogLevel(LogLevel level);

/// Returns the current global minimum severity.
LogLevel MinLogLevel();

namespace internal {

/// Stream-collecting helper behind AMICI_LOG; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Aborts after streaming the failure context; used by AMICI_CHECK.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace amici

/// Streams a message at the given severity:
///   AMICI_LOG(kInfo) << "built index in " << secs << "s";
#define AMICI_LOG(severity)                                              \
  if (::amici::LogLevel::severity < ::amici::MinLogLevel()) {            \
  } else                                                                 \
    ::amici::internal::LogMessage(::amici::LogLevel::severity, __FILE__, \
                                  __LINE__)                              \
        .stream()

/// Aborts the process with a diagnostic when `condition` is false. Active in
/// all build modes: these guard invariants whose violation means memory
/// corruption or an unrecoverable logic bug.
#define AMICI_CHECK(condition)                                             \
  if (condition) {                                                         \
  } else                                                                   \
    ::amici::internal::FatalMessage(__FILE__, __LINE__, #condition).stream()

/// AMICI_CHECK for Status values; prints the status on failure.
#define AMICI_CHECK_OK(expr)                                            \
  do {                                                                  \
    ::amici::Status amici_check_status_ = (expr);                       \
    AMICI_CHECK(amici_check_status_.ok())                               \
        << "status: " << amici_check_status_.ToString();                \
  } while (false)

/// Debug-only check; compiles away in NDEBUG builds.
#ifdef NDEBUG
#define AMICI_DCHECK(condition) AMICI_CHECK(true)
#else
#define AMICI_DCHECK(condition) AMICI_CHECK(condition)
#endif

#endif  // AMICI_UTIL_LOGGING_H_
