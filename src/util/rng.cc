#include "util/rng.h"

#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace amici {
namespace {

// SplitMix64: expands one seed into well-distributed state words.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
  // All-zero state would be a fixed point; SplitMix64 cannot produce four
  // zero words from any seed, but keep the guard cheap and explicit.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformIndex(uint64_t n) {
  AMICI_DCHECK(n > 0);
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  uint64_t low = static_cast<uint64_t>(m);
  if (low < n) {
    const uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  AMICI_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformIndex(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u;
  double v;
  double s;
  do {
    u = UniformDouble(-1.0, 1.0);
    v = UniformDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_gaussian_ = true;
  return u * factor;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double rate) {
  AMICI_DCHECK(rate > 0.0);
  // 1 - U avoids log(0).
  return -std::log(1.0 - UniformDouble()) / rate;
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  std::vector<uint64_t> out;
  if (k >= n) {
    out.resize(n);
    for (uint64_t i = 0; i < n; ++i) out[i] = i;
    Shuffle(&out);
    return out;
  }
  out.reserve(k);
  if (k * 3 >= n) {
    // Dense regime: partial Fisher-Yates over an index array.
    std::vector<uint64_t> pool(n);
    for (uint64_t i = 0; i < n; ++i) pool[i] = i;
    for (uint64_t i = 0; i < k; ++i) {
      const uint64_t j = i + UniformIndex(n - i);
      std::swap(pool[i], pool[j]);
      out.push_back(pool[i]);
    }
    return out;
  }
  // Sparse regime: rejection sampling with a hash set.
  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(k) * 2);
  while (out.size() < k) {
    const uint64_t candidate = UniformIndex(n);
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

Rng Rng::Fork() { return Rng(NextUint64() ^ 0xa5a5a5a5a5a5a5a5ULL); }

}  // namespace amici
