#ifndef AMICI_UTIL_FILE_UTIL_H_
#define AMICI_UTIL_FILE_UTIL_H_

#include <string>

#include "util/status.h"

namespace amici {

/// Reads the whole file at `path`. IoError if it cannot be opened/read.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `data` to `path`, replacing any existing file. IoError on a
/// short write or close failure.
Status WriteStringToFile(const std::string& data, const std::string& path);

}  // namespace amici

#endif  // AMICI_UTIL_FILE_UTIL_H_
