#ifndef AMICI_UTIL_IDS_H_
#define AMICI_UTIL_IDS_H_

#include <cstdint>
#include <limits>

namespace amici {

/// Dense identifiers shared across subsystems. Users, items, and tags are
/// each numbered contiguously from 0, which lets every index use flat
/// arrays instead of hash maps.
using UserId = uint32_t;
using ItemId = uint32_t;
using TagId = uint32_t;

/// Sentinels for "no such entity".
inline constexpr UserId kInvalidUserId = std::numeric_limits<UserId>::max();
inline constexpr ItemId kInvalidItemId = std::numeric_limits<ItemId>::max();
inline constexpr TagId kInvalidTagId = std::numeric_limits<TagId>::max();

}  // namespace amici

#endif  // AMICI_UTIL_IDS_H_
