#ifndef AMICI_UTIL_RNG_H_
#define AMICI_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace amici {

/// Deterministic, fast pseudo-random number generator (xoshiro256**),
/// seeded through SplitMix64. Not cryptographically secure; intended for
/// workload generation, sampling, and randomized tests where run-to-run
/// reproducibility from a single seed matters.
class Rng {
 public:
  /// Seeds the generator; the same seed yields the same stream on every
  /// platform.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64 random bits.
  uint64_t NextUint64();

  /// Next 32 random bits.
  uint32_t NextUint32() { return static_cast<uint32_t>(NextUint64() >> 32); }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  uint64_t UniformIndex(uint64_t n);

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller (caches the spare deviate).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Geometric-ish exponential deviate with the given rate (> 0).
  double Exponential(double rate);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(UniformIndex(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) uniformly; returns fewer than
  /// `k` only when k > n. Output is in sampling order (not sorted).
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  /// Forks an independent generator deterministically derived from this
  /// stream; handy for giving each thread its own RNG.
  Rng Fork();

 private:
  uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace amici

#endif  // AMICI_UTIL_RNG_H_
