#ifndef AMICI_UTIL_STATUS_H_
#define AMICI_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace amici {

/// Canonical error space for the library. Amici does not use C++ exceptions;
/// every fallible operation returns a Status (or a Result<T>, below).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kCorruption,
  kIoError,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
};

/// Returns a stable, human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type carrying either success (`ok()`) or an error code with
/// a human-readable message. Modeled after absl::Status, reduced to what the
/// library needs.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers for the common error categories.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Corruption(std::string message) {
    return Status(StatusCode::kCorruption, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing `value()` on an
/// error Result aborts the process (Amici treats that as a programming bug,
/// consistent with the no-exceptions policy).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `return some_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status: `return Status::NotFound(..)`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {}

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; the Result must be ok().
  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
/// Aborts the process, printing `status`. Out-of-line to keep Result light.
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadResultAccess(status_);
}

}  // namespace amici

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define AMICI_RETURN_IF_ERROR(expr)                   \
  do {                                                \
    ::amici::Status amici_status_ = (expr);           \
    if (!amici_status_.ok()) return amici_status_;    \
  } while (false)

#define AMICI_STATUS_CONCAT_INNER_(x, y) x##y
#define AMICI_STATUS_CONCAT_(x, y) AMICI_STATUS_CONCAT_INNER_(x, y)

/// Evaluates `rexpr` (a Result<T> expression); on error returns its status,
/// otherwise assigns the value to `lhs` (which may include a declaration).
#define AMICI_ASSIGN_OR_RETURN(lhs, rexpr)                                   \
  auto AMICI_STATUS_CONCAT_(amici_result_, __LINE__) = (rexpr);              \
  if (!AMICI_STATUS_CONCAT_(amici_result_, __LINE__).ok())                   \
    return AMICI_STATUS_CONCAT_(amici_result_, __LINE__).status();           \
  lhs = std::move(AMICI_STATUS_CONCAT_(amici_result_, __LINE__)).value()

#endif  // AMICI_UTIL_STATUS_H_
