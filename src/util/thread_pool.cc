#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/logging.h"

namespace amici {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  AMICI_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    AMICI_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  const size_t chunks = std::min(count, num_threads() * 4);
  const size_t chunk_size = (count + chunks - 1) / chunks;
  auto next = std::make_shared<std::atomic<size_t>>(0);
  for (size_t c = 0; c < chunks; ++c) {
    Submit([next, count, chunk_size, &fn] {
      while (true) {
        const size_t begin = next->fetch_add(chunk_size);
        if (begin >= count) return;
        const size_t end = std::min(begin + chunk_size, count);
        for (size_t i = begin; i < end; ++i) fn(i);
      }
    });
  }
  WaitIdle();
}

}  // namespace amici
