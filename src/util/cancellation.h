#ifndef AMICI_UTIL_CANCELLATION_H_
#define AMICI_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <memory>

namespace amici {

/// Cooperative cancellation for one request: a deadline, an external
/// cancel flag, or both. Copies share the same state (shared_ptr), so the
/// fan-out side can hand a token to N shard queries and cancel all of
/// them with one RequestCancel() — or simply let the embedded deadline
/// expire inside each of them.
///
/// A default-constructed token never cancels and costs nothing to check
/// (null state). Checking an armed token reads one relaxed atomic and —
/// only when a deadline is set — the steady clock; the search algorithms
/// amortize even that through CancellationTicker below, checking once per
/// posting-list block / candidate batch.
///
/// Cancellation is STRICTLY an early-exit: until the first positive
/// Expired() observation a cancelled query does exactly the work an
/// uncancelled twin does, and a token that never fires changes no
/// observable behavior at all (bit-identical results — see
/// tests/service/deadline_test.cc's invariance case).
class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never cancels; Expired() is false forever.
  CancellationToken() = default;

  /// Expires when `deadline` passes (and on RequestCancel).
  static CancellationToken WithDeadline(Clock::time_point deadline) {
    CancellationToken token;
    token.state_ = std::make_shared<State>();
    token.state_->has_deadline = true;
    token.state_->deadline = deadline;
    return token;
  }

  /// Expires `timeout_ms` after `start` — the SearchRequest::timeout_ms
  /// mapping. timeout_ms <= 0 returns the never-cancelling token.
  static CancellationToken FromTimeout(double timeout_ms,
                                       Clock::time_point start) {
    if (timeout_ms <= 0.0) return CancellationToken();
    return WithDeadline(
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(timeout_ms)));
  }

  /// Cancels only on RequestCancel (no deadline).
  static CancellationToken Cancellable() {
    CancellationToken token;
    token.state_ = std::make_shared<State>();
    return token;
  }

  /// Cancels every holder of this token's state. Idempotent; safe from
  /// any thread.
  void RequestCancel() const {
    if (state_ != nullptr) {
      state_->cancelled.store(true, std::memory_order_relaxed);
    }
  }

  /// True once cancelled or past the deadline. Latches the deadline into
  /// the flag so later checks skip the clock read.
  bool Expired() const {
    if (state_ == nullptr) return false;
    if (state_->cancelled.load(std::memory_order_relaxed)) return true;
    if (state_->has_deadline && Clock::now() >= state_->deadline) {
      state_->cancelled.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// True when this token can ever expire (armed). A never-cancelling
  /// token lets hot paths skip per-batch bookkeeping entirely.
  bool armed() const { return state_ != nullptr; }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    bool has_deadline = false;
    Clock::time_point deadline{};
  };

  std::shared_ptr<State> state_;  // null = never cancels
};

/// Amortized per-item cancellation probe for tight loops: Check() consults
/// the token only every `stride` calls (default: one posting-list block's
/// worth of entries), and always re-returns true once expired. With a
/// null/unarmed token every Check() is a single predictable branch.
class CancellationTicker {
 public:
  static constexpr uint32_t kDefaultStride = 128;  // PostingList block size

  explicit CancellationTicker(const CancellationToken* token,
                              uint32_t stride = kDefaultStride)
      : token_(token != nullptr && token->armed() ? token : nullptr),
        stride_(stride) {}

  /// True once the underlying token expired. Reads the clock at most once
  /// per `stride` calls.
  bool Check() {
    if (token_ == nullptr) return false;
    if (expired_) return true;
    if (++calls_ < stride_) return false;
    calls_ = 0;
    expired_ = token_->Expired();
    return expired_;
  }

  /// Unamortized probe for coarse loop boundaries (per block, per round).
  bool CheckNow() {
    if (token_ == nullptr) return false;
    if (!expired_) expired_ = token_->Expired();
    return expired_;
  }

 private:
  const CancellationToken* token_;
  uint32_t stride_;
  uint32_t calls_ = 0;
  bool expired_ = false;
};

}  // namespace amici

#endif  // AMICI_UTIL_CANCELLATION_H_
