#ifndef AMICI_UTIL_VARINT_H_
#define AMICI_UTIL_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace amici {

/// LEB128-style variable-length integer codec, plus zig-zag and delta
/// helpers. Used by posting lists and the binary graph format.
///
/// Encoding: 7 payload bits per byte, high bit set on continuation bytes.

/// Appends the varint encoding of `value` to `out`.
void PutVarint32(uint32_t value, std::string* out);
void PutVarint64(uint64_t value, std::string* out);

/// Decodes a varint starting at data[*offset]; advances *offset past it.
/// Returns false (leaving *offset unspecified) on truncated or >max-width
/// input.
bool GetVarint32(const std::string& data, size_t* offset, uint32_t* value);
bool GetVarint64(const std::string& data, size_t* offset, uint64_t* value);

/// Number of bytes PutVarint64 would write for `value`.
size_t VarintLength(uint64_t value);

/// Zig-zag mapping of signed to unsigned so small magnitudes stay short.
uint64_t ZigZagEncode(int64_t value);
int64_t ZigZagDecode(uint64_t value);

/// Delta-encodes a strictly increasing sequence: first value verbatim, then
/// gaps (value[i] - value[i-1]). Returns false if `values` is not strictly
/// increasing.
bool DeltaEncode(const std::vector<uint32_t>& values, std::string* out);

/// Inverse of DeltaEncode; expects exactly `count` values. Returns false on
/// malformed input (truncation or overflow).
bool DeltaDecode(const std::string& data, size_t count,
                 std::vector<uint32_t>* values);

}  // namespace amici

#endif  // AMICI_UTIL_VARINT_H_
