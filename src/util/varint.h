#ifndef AMICI_UTIL_VARINT_H_
#define AMICI_UTIL_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace amici {

/// LEB128-style variable-length integer codec, plus zig-zag and delta
/// helpers. Used by posting lists and the binary graph format.
///
/// Encoding: 7 payload bits per byte, high bit set on continuation bytes.

/// Appends the varint encoding of `value` to `out`.
void PutVarint32(uint32_t value, std::string* out);
void PutVarint64(uint64_t value, std::string* out);

/// Decodes a varint starting at data[*offset]; advances *offset past it.
/// Returns false (leaving *offset unspecified) on truncated or >max-width
/// input. Accepts any contiguous bytes (std::string converts implicitly);
/// the view form is what lets the persist layer parse mmap-ed segments
/// without copying them into strings first.
bool GetVarint32(std::string_view data, size_t* offset, uint32_t* value);
bool GetVarint64(std::string_view data, size_t* offset, uint64_t* value);

/// Number of bytes PutVarint64 would write for `value`.
size_t VarintLength(uint64_t value);

/// Zig-zag mapping of signed to unsigned so small magnitudes stay short.
uint64_t ZigZagEncode(int64_t value);
int64_t ZigZagDecode(uint64_t value);

/// Delta-encodes a strictly increasing sequence: first value verbatim, then
/// gaps (value[i] - value[i-1]). Returns false if `values` is not strictly
/// increasing.
bool DeltaEncode(const std::vector<uint32_t>& values, std::string* out);

/// Inverse of DeltaEncode; expects exactly `count` values. Returns false on
/// malformed input (truncation or overflow).
bool DeltaDecode(const std::string& data, size_t count,
                 std::vector<uint32_t>* values);

/// Batched delta-varint block decode — the posting-list hot path.
///
/// Decodes exactly `count` delta-coded varint32 values from
/// data[*offset, limit): the first decoded value is absolute, each later
/// one is the previous plus the decoded gap. Writes the absolute values
/// to out[0, count) (caller-owned, at least `count` slots) and advances
/// *offset past the last consumed byte. Returns false on truncated input
/// (out and *offset are then unspecified).
///
/// Inputs are expected in PutVarint32's canonical form, as Build writes
/// them; additions use wrapping uint32 arithmetic, so even adversarial
/// bytes yield defined (if meaningless) output rather than UB.
///
/// DecodeDeltaBlock dispatches once per process to the widest available
/// kernel: AVX2 when the CPU supports it, SSE2 on any x86-64, otherwise
/// the portable scalar loop. The SIMD kernels fast-path 16-byte windows
/// of single-byte gaps — the overwhelmingly common case for dense
/// posting blocks — and defer to the scalar loop for multi-byte gaps.
/// Every kernel produces bit-identical output on every input;
/// DecodeDeltaBlockScalar is the reference the fuzz tests compare
/// against.
bool DecodeDeltaBlock(const char* data, size_t limit, size_t* offset,
                      size_t count, uint32_t* out);
bool DecodeDeltaBlockScalar(const char* data, size_t limit, size_t* offset,
                            size_t count, uint32_t* out);

/// Name of the kernel DecodeDeltaBlock dispatches to on this machine:
/// "avx2", "sse2", or "scalar". For bench labels and test diagnostics.
const char* DeltaBlockKernelName();

}  // namespace amici

#endif  // AMICI_UTIL_VARINT_H_
