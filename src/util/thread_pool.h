#ifndef AMICI_UTIL_THREAD_POOL_H_
#define AMICI_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace amici {

/// Fixed-size worker pool with a FIFO task queue. Used for parallel index
/// builds and the concurrent-query throughput benchmark. The destructor
/// drains outstanding tasks before joining.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Waits for all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, count) across the pool and waits for
  /// completion. Work is chunked to limit queue traffic.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  size_t active_ = 0;
  bool shutting_down_ = false;
};

}  // namespace amici

#endif  // AMICI_UTIL_THREAD_POOL_H_
