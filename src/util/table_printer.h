#ifndef AMICI_UTIL_TABLE_PRINTER_H_
#define AMICI_UTIL_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace amici {

/// Renders aligned, plain-text tables — the output format of every bench
/// binary, so that a table/figure from the paper corresponds to one printed
/// block.
///
///   TablePrinter t({"k", "exhaustive(ms)", "hybrid(ms)"});
///   t.AddRow({"10", "12.1", "0.42"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Writes the table: header, separator rule, then rows; columns padded to
  /// the widest cell. Numeric-looking cells are right-aligned.
  void Print(std::ostream& os) const;

  /// The table rendered to a string (same format as Print).
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace amici

#endif  // AMICI_UTIL_TABLE_PRINTER_H_
