#ifndef AMICI_UTIL_STRING_UTIL_H_
#define AMICI_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace amici {

/// Splits `text` on `separator`; empty fields are preserved
/// ("a,,b" -> {"a", "", "b"}). An empty input yields a single empty field.
std::vector<std::string> Split(std::string_view text, char separator);

/// Joins `parts` with `separator` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// ASCII lower-casing (no locale).
std::string ToLower(std::string_view text);

/// "1234567" -> "1,234,567"; used by table output.
std::string WithThousandsSeparators(uint64_t value);

/// Human-readable byte size, e.g. "1.50 MiB".
std::string HumanBytes(uint64_t bytes);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace amici

#endif  // AMICI_UTIL_STRING_UTIL_H_
