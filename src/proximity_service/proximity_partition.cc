#include "proximity_service/proximity_partition.h"

#include <utility>

#include "util/logging.h"

namespace amici {

ProximityPartition::ProximityPartition(uint32_t id, DeltaOverlayGraph* delta,
                                       const ProximityModel* model,
                                       size_t cache_capacity,
                                       size_t warm_top_n)
    : id_(id),
      delta_(delta),
      warm_top_n_(warm_top_n),
      flight_(model, cache_capacity) {
  if (warm_top_n_ > 0) {
    warm_ = std::make_unique<WarmOverWorker>(
        [this](const ProximityProvider::GraphView& view, UserId user) {
          ProximityOutcome outcome;
          (void)flight_.Get(*view.graph, user, view.generation, &outcome);
          if (outcome == ProximityOutcome::kComputed) {
            warmed_.fetch_add(1, std::memory_order_relaxed);
          }
        });
  }
}

void ProximityPartition::SeedFrontier(
    std::unordered_map<UserId, uint32_t> refs) {
  std::lock_guard<std::mutex> lock(frontier_mutex_);
  frontier_ = std::move(refs);
}

std::shared_ptr<const ProximityVector> ProximityPartition::GetProximity(
    const SocialGraph& graph, UserId source, uint64_t generation,
    ProximityOutcome* outcome) {
  return flight_.Get(graph, source, generation, outcome);
}

void ProximityPartition::ApplyResidentEdit(UserId u, UserId v, bool insert,
                                           PartitionBoundary& boundary) {
  AMICI_CHECK(boundary.PartitionOf(u) == id_);
  ApplyHalfLocal(u, v, insert);
  if (boundary.PartitionOf(v) == id_) {
    ApplyHalfLocal(v, u, insert);
  } else {
    boundary_out_.fetch_add(1, std::memory_order_relaxed);
    boundary.ApplyRemoteHalf(v, u, insert);
  }
}

void ProximityPartition::ApplyRemoteHalf(UserId resident, UserId other,
                                         bool insert) {
  boundary_in_.fetch_add(1, std::memory_order_relaxed);
  ApplyHalfLocal(resident, other, insert);
}

void ProximityPartition::ApplyHalfLocal(UserId resident, UserId other,
                                        bool insert) {
  delta_->ApplyHalf(resident, other, insert);
  if (GraphPartitionOf(other, delta_->num_buckets()) == id_) return;
  std::lock_guard<std::mutex> lock(frontier_mutex_);
  if (insert) {
    ++frontier_[other];
  } else {
    const auto it = frontier_.find(other);
    AMICI_CHECK(it != frontier_.end()) << "frontier refcount underflow";
    if (--it->second == 0) frontier_.erase(it);
  }
}

std::vector<UserId> ProximityPartition::HottestUsers() const {
  if (warm_top_n_ == 0) return {};
  return flight_.cache().HottestUsers(warm_top_n_);
}

void ProximityPartition::SubmitWarm(ProximityProvider::GraphView view,
                                    std::vector<UserId> users) {
  if (warm_ == nullptr) return;
  warm_->Submit(std::move(view), std::move(users));
}

void ProximityPartition::WaitForWarmup() {
  if (warm_ != nullptr) warm_->WaitForWarmup();
}

ProximityPartitionStats ProximityPartition::stats(size_t patch_rows) const {
  ProximityPartitionStats stats;
  stats.partition = id_;
  stats.residents = residents_;
  stats.patch_rows = patch_rows;
  {
    std::lock_guard<std::mutex> lock(frontier_mutex_);
    stats.frontier_users = frontier_.size();
  }
  stats.boundary_out = boundary_out_.load(std::memory_order_relaxed);
  stats.boundary_in = boundary_in_.load(std::memory_order_relaxed);
  stats.computations = flight_.computations();
  stats.cache_hits = flight_.cache().hits();
  stats.inflight_joins = flight_.inflight_joins();
  stats.warmed = warmed_.load(std::memory_order_relaxed);
  stats.cache_entries = flight_.cache().size();
  return stats;
}

}  // namespace amici
