#ifndef AMICI_PROXIMITY_SERVICE_PROXIMITY_PARTITION_H_
#define AMICI_PROXIMITY_SERVICE_PROXIMITY_PARTITION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "proximity/proximity_provider.h"
#include "proximity/single_flight_proximity.h"
#include "proximity/warm_over_worker.h"
#include "proximity_service/delta_overlay_graph.h"
#include "proximity_service/partition_boundary.h"

namespace amici {

/// One user partition of the proximity service: the serving machinery
/// (generation-keyed cache + single-flight + warm-over, one instance per
/// partition) plus ownership of its residents' graph state — the
/// partition's bucket of replacement rows in the shared DeltaOverlayGraph
/// and a refcounted frontier of the remote endpoints its residents link
/// to. Everything a resident edit needs from another partition goes
/// through the PartitionBoundary it is handed, never a sibling pointer.
///
/// Thread-safety: GetProximity / SubmitWarm / WaitForWarmup / stats are
/// safe from any thread; the edit methods (ApplyResidentEdit,
/// ApplyRemoteHalf) must be serialized by the owning router's writer
/// mutex, which also guards the shared DeltaOverlayGraph.
class ProximityPartition {
 public:
  /// `delta` and `model` are not owned and must outlive the partition.
  /// `warm_top_n` 0 disables the warm-over worker.
  ProximityPartition(uint32_t id, DeltaOverlayGraph* delta,
                     const ProximityModel* model, size_t cache_capacity,
                     size_t warm_top_n);

  ProximityPartition(const ProximityPartition&) = delete;
  ProximityPartition& operator=(const ProximityPartition&) = delete;

  uint32_t id() const { return id_; }

  /// Build-time seeding (router constructor, single-threaded): resident
  /// head-count and the initial frontier refcounts scanned from the
  /// starting graph.
  void SeedResidents(size_t residents) { residents_ = residents; }
  void SeedFrontier(std::unordered_map<UserId, uint32_t> refs);

  /// Serves a resident's proximity vector (single-flight + cache).
  std::shared_ptr<const ProximityVector> GetProximity(
      const SocialGraph& graph, UserId source, uint64_t generation,
      ProximityOutcome* outcome);

  /// Applies a full undirected edit whose FIRST endpoint `u` is resident
  /// here: u's half locally, v's half locally when v is also resident,
  /// otherwise across `boundary` to v's owner.
  void ApplyResidentEdit(UserId u, UserId v, bool insert,
                         PartitionBoundary& boundary);

  /// The boundary entry point: applies resident `resident`'s half of an
  /// edit initiated by another partition.
  void ApplyRemoteHalf(UserId resident, UserId other, bool insert);

  /// The warm-over candidates of the retiring generation (hottest cached
  /// residents), respecting warm_top_n; empty when warm-over is off.
  std::vector<UserId> HottestUsers() const;

  /// Queues a warm-over round against `view` on this partition's worker.
  void SubmitWarm(ProximityProvider::GraphView view,
                  std::vector<UserId> users);
  void WaitForWarmup();

  /// `patch_rows` is this partition's bucket row count, read by the
  /// caller under the writer mutex (the one piece of partition state
  /// that lives in the shared DeltaOverlayGraph).
  ProximityPartitionStats stats(size_t patch_rows) const;

  uint64_t computations() const { return flight_.computations(); }
  uint64_t inflight_joins() const { return flight_.inflight_joins(); }
  uint64_t warmed() const {
    return warmed_.load(std::memory_order_relaxed);
  }

 private:
  /// Applies one half (resident's row ± other) and maintains the
  /// frontier refcount when `other` is remote.
  void ApplyHalfLocal(UserId resident, UserId other, bool insert);

  const uint32_t id_;
  DeltaOverlayGraph* const delta_;
  const size_t warm_top_n_;
  size_t residents_ = 0;

  SingleFlightProximity flight_;
  std::atomic<uint64_t> warmed_{0};
  std::atomic<uint64_t> boundary_out_{0};
  std::atomic<uint64_t> boundary_in_{0};

  /// remote user -> number of resident adjacencies referencing it.
  /// Guarded by frontier_mutex_ (edits are serialized by the router, but
  /// stats() reads concurrently).
  mutable std::mutex frontier_mutex_;
  std::unordered_map<UserId, uint32_t> frontier_;

  /// Declared after flight_ so the worker thread (which calls into
  /// flight_) is joined before the flight machinery dies.
  std::unique_ptr<WarmOverWorker> warm_;
};

}  // namespace amici

#endif  // AMICI_PROXIMITY_SERVICE_PROXIMITY_PARTITION_H_
