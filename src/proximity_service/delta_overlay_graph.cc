#include "proximity_service/delta_overlay_graph.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace amici {

DeltaOverlayGraph::DeltaOverlayGraph(SocialGraph graph, size_t num_buckets)
    : base_(graph.BaseGraph()),
      buckets_(std::max<size_t>(1, num_buckets)) {
  if (!graph.has_overlay()) return;
  // Re-bucket an inherited patch (snapshot restore) under OUR bucket
  // count; the rows themselves are shared, not copied.
  std::vector<std::shared_ptr<GraphOverlay::RowMap>> maps(buckets_.size());
  graph.overlay()->ForEachRow([&](UserId u, const GraphOverlay::Row& row) {
    const size_t b = GraphPartitionOf(u, buckets_.size());
    if (maps[b] == nullptr) {
      maps[b] = std::make_shared<GraphOverlay::RowMap>();
    }
    maps[b]->emplace(u, std::make_shared<const GraphOverlay::Row>(row));
    row_seq_[u] = ++last_seq_;
    ++patch_rows_;
    patch_slots_ += row.size();
    slot_delta_ += static_cast<int64_t>(row.size()) -
                   static_cast<int64_t>(base_.Degree(u));
  });
  for (size_t b = 0; b < buckets_.size(); ++b) {
    buckets_[b].rows = std::move(maps[b]);
  }
}

std::vector<UserId> DeltaOverlayGraph::CurrentRow(UserId u) const {
  const Bucket& bucket = buckets_[GraphPartitionOf(u, buckets_.size())];
  if (bucket.rows != nullptr) {
    const auto it = bucket.rows->find(u);
    if (it != bucket.rows->end()) return *it->second;
  }
  const auto base_row = base_.Friends(u);
  return {base_row.begin(), base_row.end()};
}

void DeltaOverlayGraph::ApplyHalf(UserId u, UserId v, bool insert) {
  std::vector<UserId> row = CurrentRow(u);
  const auto it = std::lower_bound(row.begin(), row.end(), v);
  if (insert) {
    AMICI_CHECK(it == row.end() || *it != v) << "edge already present";
    row.insert(it, v);
  } else {
    AMICI_CHECK(it != row.end() && *it == v) << "no such edge";
    row.erase(it);
  }

  Bucket& bucket = buckets_[GraphPartitionOf(u, buckets_.size())];
  const bool patched_before =
      bucket.rows != nullptr && bucket.rows->count(u) > 0;
  auto next = bucket.rows != nullptr
                  ? std::make_shared<GraphOverlay::RowMap>(*bucket.rows)
                  : std::make_shared<GraphOverlay::RowMap>();
  if (patched_before) {
    patch_slots_ += row.size();
    patch_slots_ -= (*next)[u]->size();
  } else {
    ++patch_rows_;
    patch_slots_ += row.size();
  }
  (*next)[u] = std::make_shared<const GraphOverlay::Row>(std::move(row));
  bucket.rows = std::move(next);
  slot_delta_ += insert ? 1 : -1;
  row_seq_[u] = ++last_seq_;
}

SocialGraph DeltaOverlayGraph::Compose() const {
  if (patch_rows_ == 0) return base_;
  std::vector<std::shared_ptr<const GraphOverlay::RowMap>> maps;
  maps.reserve(buckets_.size());
  for (const Bucket& bucket : buckets_) maps.push_back(bucket.rows);
  return SocialGraph(
      base_, std::make_shared<const GraphOverlay>(std::move(maps),
                                                  slot_delta_));
}

DeltaOverlayGraph::FoldPin DeltaOverlayGraph::PinForFold() const {
  return FoldPin{last_seq_, Compose()};
}

size_t DeltaOverlayGraph::AdoptFolded(const FoldPin& pin,
                                      SocialGraph folded_base) {
  AMICI_CHECK(!folded_base.has_overlay());
  AMICI_CHECK(folded_base.num_users() == base_.num_users());
  base_ = std::move(folded_base);

  size_t folded = 0;
  patch_rows_ = 0;
  patch_slots_ = 0;
  slot_delta_ = 0;
  for (Bucket& bucket : buckets_) {
    if (bucket.rows == nullptr) continue;
    auto kept = std::make_shared<GraphOverlay::RowMap>();
    for (const auto& [user, row] : *bucket.rows) {
      // A row edited after the pin is NOT covered by the folded base;
      // keep it (it is a complete replacement, valid over any base).
      if (row_seq_.at(user) > pin.seq) {
        kept->emplace(user, row);
        ++patch_rows_;
        patch_slots_ += row->size();
        slot_delta_ += static_cast<int64_t>(row->size()) -
                       static_cast<int64_t>(base_.Degree(user));
      } else {
        ++folded;
      }
    }
    bucket.rows = kept->empty() ? nullptr : std::move(kept);
  }
  for (auto it = row_seq_.begin(); it != row_seq_.end();) {
    it = it->second <= pin.seq ? row_seq_.erase(it) : std::next(it);
  }
  return folded;
}

}  // namespace amici
