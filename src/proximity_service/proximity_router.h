#ifndef AMICI_PROXIMITY_SERVICE_PROXIMITY_ROUTER_H_
#define AMICI_PROXIMITY_SERVICE_PROXIMITY_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "proximity/proximity_model.h"
#include "proximity/proximity_provider.h"
#include "proximity_service/delta_overlay_graph.h"
#include "proximity_service/overlay_fold_policy.h"
#include "proximity_service/partition_boundary.h"
#include "proximity_service/proximity_partition.h"
#include "util/atomic_shared_ptr.h"

namespace amici {

/// The partitioned proximity service: users are hash-partitioned
/// (GraphPartitionOf) across N ProximityPartitions, each with its own
/// generation-keyed cache, single-flight table, and warm-over worker; the
/// router implements the plain ProximityProvider interface on top, so
/// engines and services consume a partitioned graph service exactly the
/// way they consume the single shared provider.
///
///  * Queries route by querying user: GetProximity(source) is served by
///    the partition owning `source`.
///  * Edits route by first endpoint; the half belonging to a remote
///    endpoint crosses the PartitionBoundary to its owner, which keeps a
///    refcounted frontier of remote endpoints its residents link to.
///  * Graph storage is the delta-overlay representation: an edit replaces
///    the two endpoint rows in the owners' patch buckets — O(deg(u) +
///    deg(v)), NOT the O(E) CSR rebuild this replaces — and publishes the
///    next generation as base + overlay. A fold policy (the
///    compaction-scheduler shape from src/ingest/) decides when the patch
///    is folded into a fresh base CSR; the O(E) flatten runs OFF the
///    writer lock and republishes the SAME generation (representation
///    change only), so concurrent edits and readers never wait on it.
///
/// The boundary is in-process today (virtual calls under the writer
/// lock), but the partition state split is real: a partition only ever
/// holds its residents' patch rows plus the frontier refcounts, and every
/// cross-partition touch is an explicit PartitionBoundary call — the seam
/// a multi-node deployment would cut along. Proximity models still score
/// against the full stitched SocialGraph view (ProximityModel::Compute
/// takes the whole graph); distributing the model computation itself is
/// deliberately out of scope.
class ProximityServiceRouter : public ProximityProvider,
                               private PartitionBoundary {
 public:
  struct Options {
    /// User partitions (clamped to >= 1).
    size_t num_partitions = 2;
    /// Null selects forward-push PPR (restart 0.15, epsilon 1e-4) — the
    /// same default the engine always used.
    std::shared_ptr<const ProximityModel> model;
    /// LRU capacity of EACH partition's score cache; clamped to >= 1.
    size_t cache_capacity = 4096;
    /// Hottest users recomputed per partition in the background after a
    /// generation bump. 0 disables warm-over (useful for exact-count
    /// tests).
    size_t warm_top_n = 16;
    /// When to fold the overlay patch into a fresh base CSR; null
    /// selects AdaptiveOverlayFoldPolicy defaults.
    std::shared_ptr<const OverlayFoldPolicy> fold_policy;
  };

  /// Takes ownership of `graph` as generation 0 (any overlay it carries,
  /// e.g. restored from a snapshot's overlay tail, is adopted as the
  /// starting patch).
  ProximityServiceRouter(SocialGraph graph, Options options);

  /// Joins every partition's warm-over worker.
  ~ProximityServiceRouter() override = default;

  ProximityServiceRouter(const ProximityServiceRouter&) = delete;
  ProximityServiceRouter& operator=(const ProximityServiceRouter&) = delete;

  // ProximityProvider:
  GraphView Acquire() const override;
  std::shared_ptr<const ProximityVector> GetProximity(
      const SocialGraph& graph, UserId source, uint64_t generation,
      ProximityOutcome* outcome = nullptr) override;
  Status AddFriendship(UserId u, UserId v) override;
  Status RemoveFriendship(UserId u, UserId v) override;
  Status ValidateEdit(UserId u, UserId v, bool adding,
                      bool check_existence) const override;
  const ProximityModel& model() const override { return *model_; }
  ProximityProviderStats stats() const override;
  void WaitForWarmup() override;
  size_t FoldOverlay() override;

  // PartitionBoundary (routing surface; the edit entry point stays
  // private — partitions reach it through the boundary reference they
  // are handed under the writer lock):
  size_t num_partitions() const override { return partitions_.size(); }
  uint32_t PartitionOf(UserId u) const override {
    return GraphPartitionOf(u, partitions_.size());
  }

  /// Per-partition observability (residents, frontier, boundary
  /// traffic, serving counters).
  std::vector<ProximityPartitionStats> partition_stats() const;

 private:
  /// Shared edit path: validates, applies both halves through the
  /// owning partitions, publishes the next generation, queues warm-over
  /// rounds, and triggers a fold when the policy says so.
  Status EditEdge(UserId u, UserId v, bool insert);

  void ApplyRemoteHalf(UserId remote_user, UserId other,
                       bool insert) override;

  std::shared_ptr<const ProximityModel> model_;
  Options options_;
  std::shared_ptr<const OverlayFoldPolicy> fold_policy_;

  /// Writer-side graph state — guarded by writer_mutex_, except that the
  /// fold's O(E) flatten runs between two critical sections (see
  /// DeltaOverlayGraph's fold protocol).
  DeltaOverlayGraph delta_;
  std::vector<std::unique_ptr<ProximityPartition>> partitions_;

  /// The published (graph, generation) pair — readers load lock-free,
  /// edits store under writer_mutex_ (RCU-style, like engine snapshots).
  AtomicSharedPtr<const GraphView> state_;
  mutable std::mutex writer_mutex_;

  std::atomic<uint64_t> generations_{0};
  std::atomic<uint64_t> folds_{0};
};

}  // namespace amici

#endif  // AMICI_PROXIMITY_SERVICE_PROXIMITY_ROUTER_H_
