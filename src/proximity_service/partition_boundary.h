#ifndef AMICI_PROXIMITY_SERVICE_PARTITION_BOUNDARY_H_
#define AMICI_PROXIMITY_SERVICE_PARTITION_BOUNDARY_H_

#include <cstddef>
#include <cstdint>

#include "graph/social_graph.h"
#include "util/ids.h"

namespace amici {

/// Per-partition observability (ProximityServiceRouter::partition_stats).
struct ProximityPartitionStats {
  uint32_t partition = 0;
  /// Users this partition owns (routing-wise).
  size_t residents = 0;
  /// Resident replacement rows currently overlaying the base.
  size_t patch_rows = 0;
  /// Distinct REMOTE users adjacent to at least one resident — the
  /// frontier this partition materializes beyond its residents' rows.
  size_t frontier_users = 0;
  /// Edit halves this partition sent across the boundary (a resident
  /// edge whose other endpoint lives elsewhere).
  uint64_t boundary_out = 0;
  /// Edit halves applied here on behalf of another partition.
  uint64_t boundary_in = 0;
  // Serving counters (the per-partition single-flight + cache + warm
  // machinery).
  uint64_t computations = 0;
  uint64_t cache_hits = 0;
  uint64_t inflight_joins = 0;
  uint64_t warmed = 0;
  size_t cache_entries = 0;
};

/// The one surface through which a proximity partition touches state it
/// does not own. A partition materializes its residents' adjacency (their
/// patch rows + base-CSR rows) plus a frontier of remote endpoints; every
/// operation on a non-resident user goes through this interface instead
/// of reaching into the sibling partition directly.
///
/// In-process today — the router implements it by forwarding to the
/// owning ProximityPartition under the writer lock — but deliberately
/// RPC-shaped: the methods carry plain ids and flags only, so a
/// multi-node deployment can put a stub behind the same calls.
class PartitionBoundary {
 public:
  virtual ~PartitionBoundary() = default;

  virtual size_t num_partitions() const = 0;

  /// The partition owning `u` (GraphPartitionOf).
  virtual uint32_t PartitionOf(UserId u) const = 0;

  /// Applies the half of an undirected edge edit that belongs to
  /// `remote_user`'s partition: replace remote_user's row with
  /// (row ± other). Called by the endpoint-owning partition for the
  /// endpoint it does NOT own.
  virtual void ApplyRemoteHalf(UserId remote_user, UserId other,
                               bool insert) = 0;
};

}  // namespace amici

#endif  // AMICI_PROXIMITY_SERVICE_PARTITION_BOUNDARY_H_
