#include "proximity_service/overlay_fold_policy.h"

#include <algorithm>

namespace amici {

bool AdaptiveOverlayFoldPolicy::ShouldFold(
    const OverlaySignals& signals) const {
  if (signals.patch_rows == 0) return false;
  if (signals.patch_rows >= options_.max_patch_rows) return true;
  const double floor = static_cast<double>(
      std::max(signals.base_slots, options_.min_base_slots));
  return static_cast<double>(signals.patch_slots) >
         options_.max_slot_ratio * floor;
}

}  // namespace amici
