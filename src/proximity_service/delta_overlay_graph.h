#ifndef AMICI_PROXIMITY_SERVICE_DELTA_OVERLAY_GRAPH_H_
#define AMICI_PROXIMITY_SERVICE_DELTA_OVERLAY_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "graph/social_graph.h"
#include "proximity_service/overlay_fold_policy.h"

namespace amici {

/// The WRITER-side state of a delta-overlay graph: an immutable base CSR
/// plus, per partition bucket, the copy-on-write map of replacement rows
/// edits have produced since the last fold. One friendship edit costs
/// O(deg(u) + deg(v)) row rebuilds plus an O(rows-in-bucket) shallow map
/// clone — NOT the O(E) full-CSR rebuild the provider used to pay — and
/// Compose() publishes the result as an ordinary (immutable, shareable)
/// SocialGraph.
///
/// Concurrency contract: this class has NO internal synchronization. The
/// owner (a ProximityServiceRouter / SharedProximityProvider) serializes
/// every call under its writer mutex; readers only ever touch the
/// immutable SocialGraph objects Compose() hands out. The one deliberate
/// exception is the fold protocol, designed so the O(E) rebuild runs with
/// the writer mutex RELEASED:
///
///   pin = delta.PinForFold();        // under the writer mutex, O(1)
///   flat = pin.view.Flatten();       // OFF the mutex, O(U + E)
///   delta.AdoptFolded(pin, flat);    // under the mutex again, O(rows)
///
/// Edits that land between Pin and Adopt are safe: every row carries the
/// sequence number of its last edit, and AdoptFolded keeps exactly the
/// rows edited after the pin (a replacement row is the user's COMPLETE
/// adjacency, so it stays correct over any base).
class DeltaOverlayGraph {
 public:
  /// Adopts `graph` as the starting state, splitting any overlay it
  /// already carries (e.g. restored from a snapshot's overlay tail)
  /// across `num_buckets` buckets keyed by GraphPartitionOf.
  DeltaOverlayGraph(SocialGraph graph, size_t num_buckets);

  DeltaOverlayGraph(const DeltaOverlayGraph&) = delete;
  DeltaOverlayGraph& operator=(const DeltaOverlayGraph&) = delete;

  /// Replaces u's row with (current row ± v): `insert` adds v, otherwise
  /// removes it. One undirected edit is two halves — ApplyHalf(u, v) and
  /// ApplyHalf(v, u) — which a partitioned owner routes to the buckets
  /// owning u and v respectively. The caller has already validated the
  /// edit (this CHECKs instead of returning Status).
  void ApplyHalf(UserId u, UserId v, bool insert);

  /// The current base + patch composed as an immutable SocialGraph
  /// (pure CSR when the patch is empty). O(num_buckets).
  SocialGraph Compose() const;

  /// Fold protocol — see the class comment.
  struct FoldPin {
    uint64_t seq = 0;
    SocialGraph view;
  };
  FoldPin PinForFold() const;
  /// Installs `folded_base` (the pin's view flattened to a pure CSR) as
  /// the new base, dropping every row whose last edit is covered by the
  /// pin. Returns the number of rows folded away.
  size_t AdoptFolded(const FoldPin& pin, SocialGraph folded_base);

  /// Fold-policy signals for the current patch.
  OverlaySignals signals() const {
    OverlaySignals s;
    s.patch_rows = patch_rows_;
    s.patch_slots = patch_slots_;
    s.base_slots = base_.neighbors().size();
    return s;
  }

  size_t num_buckets() const { return buckets_.size(); }
  size_t num_users() const { return base_.num_users(); }
  /// Replacement rows currently held by one bucket.
  size_t bucket_rows(size_t b) const {
    return buckets_[b].rows == nullptr ? 0 : buckets_[b].rows->size();
  }

 private:
  struct Bucket {
    /// Published map (shared with composed graphs); cloned on write.
    std::shared_ptr<const GraphOverlay::RowMap> rows;
  };

  /// u's current row content (overlay row if patched, else base row).
  std::vector<UserId> CurrentRow(UserId u) const;

  SocialGraph base_;  // always pure CSR
  std::vector<Bucket> buckets_;
  /// Last-edit sequence per patched row (writer bookkeeping only; pruned
  /// by AdoptFolded alongside the rows).
  std::unordered_map<UserId, uint64_t> row_seq_;
  uint64_t last_seq_ = 0;
  size_t patch_rows_ = 0;
  size_t patch_slots_ = 0;
  int64_t slot_delta_ = 0;
};

}  // namespace amici

#endif  // AMICI_PROXIMITY_SERVICE_DELTA_OVERLAY_GRAPH_H_
