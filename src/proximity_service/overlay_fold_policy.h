#ifndef AMICI_PROXIMITY_SERVICE_OVERLAY_FOLD_POLICY_H_
#define AMICI_PROXIMITY_SERVICE_OVERLAY_FOLD_POLICY_H_

#include <cstddef>
#include <string_view>

namespace amici {

/// The trigger inputs a fold policy observes for one delta-overlay graph
/// (the graph-side analogue of CompactionSignals in src/ingest/): how much
/// patch is riding on top of the base CSR right now.
struct OverlaySignals {
  /// Replacement rows currently overlaying the base.
  size_t patch_rows = 0;
  /// Adjacency entries across those rows (the per-query indirection cost
  /// proxy: every Friends() call on a patched user walks this storage).
  size_t patch_slots = 0;
  /// Adjacency entries in the base CSR (the fold cost proxy — folding
  /// rewrites the whole base).
  size_t base_slots = 0;
};

/// Decides when a delta-overlay graph's patch should be folded into a
/// fresh base CSR. Implementations must be stateless const objects: one
/// policy instance is shared by every provider/partition that consults it,
/// concurrently (same contract as CompactionPolicy).
class OverlayFoldPolicy {
 public:
  virtual ~OverlayFoldPolicy() = default;

  /// Stable identifier for logs and bench output.
  virtual std::string_view name() const = 0;

  /// True when `signals` warrants folding now.
  virtual bool ShouldFold(const OverlaySignals& signals) const = 0;
};

/// The default policy: fold when the patch is large in absolute terms
/// (row count) OR large relative to the base (patch slots exceed a
/// fraction of the base, floored so small test graphs do not fold on
/// every edit). An empty patch never triggers.
class AdaptiveOverlayFoldPolicy final : public OverlayFoldPolicy {
 public:
  struct Options {
    /// Row-count trigger: fold once this many users carry replacement
    /// rows (bounds per-edit copy-on-write cost, which is linear in the
    /// touched bucket's row count).
    size_t max_patch_rows = 1024;
    /// Ratio trigger: fold once patch slots exceed this fraction of the
    /// base adjacency...
    double max_slot_ratio = 0.25;
    /// ...where the base is treated as at least this many slots (keeps
    /// tiny graphs from folding on every edit).
    size_t min_base_slots = 8192;
  };

  AdaptiveOverlayFoldPolicy() = default;
  explicit AdaptiveOverlayFoldPolicy(Options options) : options_(options) {}

  std::string_view name() const override { return "adaptive"; }
  bool ShouldFold(const OverlaySignals& signals) const override;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace amici

#endif  // AMICI_PROXIMITY_SERVICE_OVERLAY_FOLD_POLICY_H_
