#include "proximity_service/proximity_router.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "proximity/ppr_forward_push.h"
#include "util/logging.h"

namespace amici {

namespace {

/// The one statement of the edit-validation rules; EditEdge and the
/// ValidateEdit preview both apply exactly this.
Status ValidateEditAgainst(const SocialGraph& graph, UserId u, UserId v,
                           bool adding, bool check_existence) {
  if (u >= graph.num_users() || v >= graph.num_users()) {
    return Status::InvalidArgument("friendship endpoint outside the graph");
  }
  if (u == v) return Status::InvalidArgument("self-friendship is not a thing");
  if (!check_existence) return Status::Ok();
  if (adding && graph.HasEdge(u, v)) {
    return Status::AlreadyExists("friendship already present");
  }
  if (!adding && !graph.HasEdge(u, v)) {
    return Status::NotFound("no such friendship");
  }
  return Status::Ok();
}

}  // namespace

ProximityServiceRouter::ProximityServiceRouter(SocialGraph graph,
                                               Options options)
    : model_(options.model != nullptr
                 ? options.model
                 : std::make_shared<PprForwardPush>(/*restart_prob=*/0.15,
                                                    /*epsilon=*/1e-4)),
      options_(std::move(options)),
      fold_policy_(options_.fold_policy != nullptr
                       ? options_.fold_policy
                       : std::make_shared<AdaptiveOverlayFoldPolicy>()),
      delta_(std::move(graph), std::max<size_t>(1, options_.num_partitions)) {
  const size_t n = delta_.num_buckets();
  partitions_.reserve(n);
  for (size_t p = 0; p < n; ++p) {
    partitions_.push_back(std::make_unique<ProximityPartition>(
        static_cast<uint32_t>(p), &delta_, model_.get(),
        options_.cache_capacity, options_.warm_top_n));
  }

  auto initial = std::make_shared<const GraphView>(
      GraphView{std::make_shared<const SocialGraph>(delta_.Compose()), 0});

  // Seed resident counts and frontier refcounts from the starting graph:
  // partition p's frontier is every remote endpoint its residents'
  // adjacency reaches. One O(U + E) pass at construction; edits maintain
  // it incrementally from here.
  const SocialGraph& view = *initial->graph;
  std::vector<size_t> residents(n, 0);
  std::vector<std::unordered_map<UserId, uint32_t>> frontiers(n);
  for (size_t u = 0; u < view.num_users(); ++u) {
    const uint32_t p = PartitionOf(static_cast<UserId>(u));
    ++residents[p];
    if (n == 1) continue;  // a single partition has no remote endpoints
    for (const UserId v : view.Friends(static_cast<UserId>(u))) {
      if (PartitionOf(v) != p) ++frontiers[p][v];
    }
  }
  for (size_t p = 0; p < n; ++p) {
    partitions_[p]->SeedResidents(residents[p]);
    if (!frontiers[p].empty()) {
      partitions_[p]->SeedFrontier(std::move(frontiers[p]));
    }
  }

  state_.store(std::move(initial));
}

ProximityProvider::GraphView ProximityServiceRouter::Acquire() const {
  return *state_.load();
}

std::shared_ptr<const ProximityVector> ProximityServiceRouter::GetProximity(
    const SocialGraph& graph, UserId source, uint64_t generation,
    ProximityOutcome* outcome) {
  return partitions_[PartitionOf(source)]->GetProximity(graph, source,
                                                        generation, outcome);
}

Status ProximityServiceRouter::ValidateEdit(UserId u, UserId v, bool adding,
                                            bool check_existence) const {
  const std::shared_ptr<const GraphView> cur = state_.load();
  return ValidateEditAgainst(*cur->graph, u, v, adding, check_existence);
}

Status ProximityServiceRouter::EditEdge(UserId u, UserId v, bool insert) {
  bool should_fold = false;
  {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    const std::shared_ptr<const GraphView> cur = state_.load();
    AMICI_RETURN_IF_ERROR(ValidateEditAgainst(*cur->graph, u, v, insert,
                                              /*check_existence=*/true));

    // Snapshot the warm-over candidates BEFORE publishing: the hottest
    // users of each partition's RETIRING generation are exactly the ones
    // worth paying for against the new graph.
    std::vector<std::vector<UserId>> hottest(partitions_.size());
    for (size_t p = 0; p < partitions_.size(); ++p) {
      hottest[p] = partitions_[p]->HottestUsers();
    }

    // O(deg(u) + deg(v)): replace the two endpoint rows in their owners'
    // patch buckets (the remote half crossing the boundary when the
    // endpoints live on different partitions).
    partitions_[PartitionOf(u)]->ApplyResidentEdit(u, v, insert, *this);

    auto next = std::make_shared<const GraphView>(
        GraphView{std::make_shared<const SocialGraph>(delta_.Compose()),
                  cur->generation + 1});
    state_.store(next);
    generations_.fetch_add(1, std::memory_order_relaxed);
    // No cache flush: entries are keyed by generation, so stale vectors
    // can neither hit nor survive the first new-generation access.

    for (size_t p = 0; p < partitions_.size(); ++p) {
      partitions_[p]->SubmitWarm(*next, std::move(hottest[p]));
    }

    should_fold = fold_policy_->ShouldFold(delta_.signals());
  }
  if (should_fold) FoldOverlay();
  return Status::Ok();
}

void ProximityServiceRouter::ApplyRemoteHalf(UserId remote_user, UserId other,
                                             bool insert) {
  partitions_[PartitionOf(remote_user)]->ApplyRemoteHalf(remote_user, other,
                                                         insert);
}

Status ProximityServiceRouter::AddFriendship(UserId u, UserId v) {
  return EditEdge(u, v, /*insert=*/true);
}

Status ProximityServiceRouter::RemoveFriendship(UserId u, UserId v) {
  return EditEdge(u, v, /*insert=*/false);
}

size_t ProximityServiceRouter::FoldOverlay() {
  std::unique_lock<std::mutex> lock(writer_mutex_);
  if (delta_.signals().patch_rows == 0) return 0;
  const DeltaOverlayGraph::FoldPin pin = delta_.PinForFold();
  lock.unlock();
  // The O(U + E) rebuild runs off the writer lock: concurrent edits keep
  // landing (their rows outlive the fold via the pin's sequence number)
  // and readers keep serving the published view.
  SocialGraph folded = pin.view.Flatten();
  lock.lock();
  const size_t rows = delta_.AdoptFolded(pin, std::move(folded));
  // Republish the CURRENT generation over the folded representation —
  // the graph content is unchanged, so this must not look like an edit
  // to generation-keyed caches or pinned snapshots.
  const std::shared_ptr<const GraphView> cur = state_.load();
  state_.store(std::make_shared<const GraphView>(
      GraphView{std::make_shared<const SocialGraph>(delta_.Compose()),
                cur->generation}));
  folds_.fetch_add(1, std::memory_order_relaxed);
  return rows;
}

ProximityProviderStats ProximityServiceRouter::stats() const {
  ProximityProviderStats stats;
  stats.partitions = partitions_.size();
  stats.generations_published =
      generations_.load(std::memory_order_relaxed);
  stats.overlay_folds = folds_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    stats.overlay_rows = delta_.signals().patch_rows;
  }
  for (size_t p = 0; p < partitions_.size(); ++p) {
    const ProximityPartitionStats part = partitions_[p]->stats(0);
    stats.computations += part.computations;
    stats.cache_hits += part.cache_hits;
    stats.inflight_joins += part.inflight_joins;
    stats.warmed += part.warmed;
    stats.cache_entries += part.cache_entries;
    stats.boundary_crossings += part.boundary_out;
    stats.frontier_users += part.frontier_users;
  }
  return stats;
}

std::vector<ProximityPartitionStats>
ProximityServiceRouter::partition_stats() const {
  std::vector<ProximityPartitionStats> out;
  out.reserve(partitions_.size());
  std::lock_guard<std::mutex> lock(writer_mutex_);
  for (size_t p = 0; p < partitions_.size(); ++p) {
    out.push_back(partitions_[p]->stats(delta_.bucket_rows(p)));
  }
  return out;
}

void ProximityServiceRouter::WaitForWarmup() {
  for (const auto& partition : partitions_) partition->WaitForWarmup();
}

}  // namespace amici
