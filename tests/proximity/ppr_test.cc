#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/graph_generators.h"
#include "gtest/gtest.h"
#include "proximity/ppr_forward_push.h"
#include "proximity/ppr_monte_carlo.h"
#include "proximity/ppr_power_iteration.h"
#include "util/rng.h"
#include "workload/metrics.h"

namespace amici {
namespace {

SocialGraph SmallWorld(size_t n, uint64_t seed) {
  Rng rng(seed);
  return GenerateWattsStrogatz(n, 8, 0.2, &rng);
}

TEST(PprExactTest, DirectFriendBeatsStranger) {
  const SocialGraph graph = SmallWorld(200, 1);
  const PprPowerIteration model;
  const ProximityVector vector = model.Compute(graph, 0);
  const auto friends = graph.Friends(0);
  ASSERT_FALSE(friends.empty());
  // Every direct friend must outrank the median far user.
  float min_friend = 1.0f;
  for (const UserId f : friends) {
    min_friend = std::min(min_friend, vector.Proximity(f));
  }
  EXPECT_GT(min_friend, 0.0f);
}

TEST(PprExactTest, StarCenterSymmetric) {
  GraphBuilder builder(5);
  for (UserId v = 1; v < 5; ++v) ASSERT_TRUE(builder.AddEdge(0, v).ok());
  const PprPowerIteration model;
  const ProximityVector vector = model.Compute(builder.Build(), 0);
  // All leaves are symmetric -> identical normalized proximity 1.
  for (UserId v = 1; v < 5; ++v) {
    EXPECT_FLOAT_EQ(vector.Proximity(v), 1.0f);
  }
}

TEST(PprExactTest, DisconnectedComponentUnreachable) {
  GraphBuilder builder(4);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(2, 3).ok());
  const PprPowerIteration model;
  const ProximityVector vector = model.Compute(builder.Build(), 0);
  EXPECT_EQ(vector.Proximity(2), 0.0f);
  EXPECT_EQ(vector.Proximity(3), 0.0f);
  EXPECT_GT(vector.Proximity(1), 0.0f);
}

TEST(PprPushTest, ApproximatesExactTopK) {
  const SocialGraph graph = SmallWorld(500, 2);
  const PprPowerIteration exact;
  const PprForwardPush push(0.15, 1e-6);
  for (const UserId source : {0u, 17u, 99u}) {
    const ProximityVector exact_vector = exact.Compute(graph, source);
    const ProximityVector push_vector = push.Compute(graph, source);
    // Compare the top-10 neighbour sets.
    std::vector<ScoredItem> exact_top;
    std::vector<ScoredItem> push_top;
    for (size_t i = 0; i < 10 && i < exact_vector.ranked().size(); ++i) {
      exact_top.push_back({exact_vector.ranked()[i].user,
                           exact_vector.ranked()[i].score});
    }
    for (size_t i = 0; i < 10 && i < push_vector.ranked().size(); ++i) {
      push_top.push_back({push_vector.ranked()[i].user,
                          push_vector.ranked()[i].score});
    }
    EXPECT_GE(PrecisionAtK(exact_top, push_top, 10), 0.8)
        << "source " << source;
  }
}

TEST(PprPushTest, SmallerEpsilonNeverWorse) {
  const SocialGraph graph = SmallWorld(300, 3);
  const PprPowerIteration exact;
  const ProximityVector truth = exact.Compute(graph, 5);
  std::vector<ScoredItem> truth_top;
  for (size_t i = 0; i < 10 && i < truth.ranked().size(); ++i) {
    truth_top.push_back({truth.ranked()[i].user, truth.ranked()[i].score});
  }
  auto precision_for = [&](double epsilon) {
    const PprForwardPush push(0.15, epsilon);
    const ProximityVector approx = push.Compute(graph, 5);
    std::vector<ScoredItem> top;
    for (size_t i = 0; i < 10 && i < approx.ranked().size(); ++i) {
      top.push_back({approx.ranked()[i].user, approx.ranked()[i].score});
    }
    return PrecisionAtK(truth_top, top, 10);
  };
  EXPECT_GE(precision_for(1e-7) + 1e-9, precision_for(1e-2) - 0.3);
  EXPECT_GE(precision_for(1e-7), 0.9);
}

TEST(PprMonteCarloTest, DeterministicPerSeed) {
  const SocialGraph graph = SmallWorld(200, 4);
  const PprMonteCarlo model(0.15, 512, 77);
  const ProximityVector a = model.Compute(graph, 3);
  const ProximityVector b = model.Compute(graph, 3);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.ranked().size(); ++i) {
    EXPECT_EQ(a.ranked()[i].user, b.ranked()[i].user);
    EXPECT_FLOAT_EQ(a.ranked()[i].score, b.ranked()[i].score);
  }
}

TEST(PprMonteCarloTest, MoreWalksTrackExactBetter) {
  const SocialGraph graph = SmallWorld(300, 5);
  const PprPowerIteration exact;
  const ProximityVector truth = exact.Compute(graph, 11);
  std::vector<ScoredItem> truth_top;
  for (size_t i = 0; i < 10 && i < truth.ranked().size(); ++i) {
    truth_top.push_back({truth.ranked()[i].user, truth.ranked()[i].score});
  }
  auto precision_for = [&](uint32_t walks) {
    const PprMonteCarlo mc(0.15, walks, 123);
    const ProximityVector approx = mc.Compute(graph, 11);
    std::vector<ScoredItem> top;
    for (size_t i = 0; i < 10 && i < approx.ranked().size(); ++i) {
      top.push_back({approx.ranked()[i].user, approx.ranked()[i].score});
    }
    return PrecisionAtK(truth_top, top, 10);
  };
  EXPECT_GE(precision_for(16384), 0.7);
  // Weak monotonicity with generous slack (Monte-Carlo noise).
  EXPECT_GE(precision_for(16384) + 0.25, precision_for(64));
}

TEST(PprAllModelsTest, IsolatedSourceYieldsEmptyVector) {
  GraphBuilder builder(5);
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  const SocialGraph graph = builder.Build();
  EXPECT_TRUE(PprPowerIteration().Compute(graph, 0).empty());
  EXPECT_TRUE(PprForwardPush().Compute(graph, 0).empty());
  EXPECT_TRUE(PprMonteCarlo().Compute(graph, 0).empty());
}

TEST(PprNamesTest, Stable) {
  EXPECT_EQ(PprPowerIteration().name(), "ppr-exact");
  EXPECT_EQ(PprForwardPush().name(), "ppr-push");
  EXPECT_EQ(PprMonteCarlo().name(), "ppr-mc");
}

}  // namespace
}  // namespace amici
