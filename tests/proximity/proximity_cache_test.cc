#include "proximity/proximity_cache.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "graph/graph_generators.h"
#include "gtest/gtest.h"
#include "proximity/hop_decay.h"
#include "util/rng.h"

namespace amici {
namespace {

class CountingModel : public ProximityModel {
 public:
  explicit CountingModel(const ProximityModel* inner) : inner_(inner) {}
  std::string_view name() const override { return "counting"; }
  ProximityVector Compute(const SocialGraph& graph,
                          UserId source) const override {
    computations_.fetch_add(1);
    return inner_->Compute(graph, source);
  }
  int computations() const { return computations_.load(); }

 private:
  const ProximityModel* inner_;
  mutable std::atomic<int> computations_{0};
};

class ProximityCacheTest : public ::testing::Test {
 protected:
  ProximityCacheTest() : inner_(), model_(&inner_) {
    Rng rng(9);
    graph_ = GenerateErdosRenyi(200, 6.0, &rng);
  }

  HopDecayProximity inner_;
  CountingModel model_;
  SocialGraph graph_;
};

TEST_F(ProximityCacheTest, HitAvoidsRecomputation) {
  ProximityCache cache(&model_, 10);
  const auto first = cache.Get(graph_, 5);
  const auto second = cache.Get(graph_, 5);
  EXPECT_EQ(model_.computations(), 1);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(ProximityCacheTest, CapacityEvictsLeastRecentlyUsed) {
  ProximityCache cache(&model_, 2);
  cache.Get(graph_, 1);
  cache.Get(graph_, 2);
  cache.Get(graph_, 1);  // 1 is now most recent
  cache.Get(graph_, 3);  // evicts 2
  EXPECT_EQ(cache.size(), 2u);
  cache.Get(graph_, 1);  // hit
  EXPECT_EQ(cache.hits(), 2u);
  cache.Get(graph_, 2);  // miss again (was evicted)
  EXPECT_EQ(model_.computations(), 4);
}

TEST_F(ProximityCacheTest, EvictedVectorSurvivesViaSharedPtr) {
  ProximityCache cache(&model_, 1);
  const auto kept = cache.Get(graph_, 1);
  cache.Get(graph_, 2);  // evicts 1
  // The shared_ptr must still be usable.
  EXPECT_GE(kept->size(), 0u);
}

TEST_F(ProximityCacheTest, ClearDropsEverything) {
  ProximityCache cache(&model_, 10);
  cache.Get(graph_, 1);
  cache.Get(graph_, 2);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  cache.Get(graph_, 1);
  EXPECT_EQ(model_.computations(), 3);
}

TEST_F(ProximityCacheTest, ConcurrentAccessIsSafeAndCoherent) {
  ProximityCache cache(&model_, 64);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([this, &cache, &failures, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < 200; ++i) {
        const UserId user = static_cast<UserId>(rng.UniformIndex(32));
        const auto vector = cache.Get(graph_, user);
        if (vector == nullptr) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(cache.size(), 64u);
  // Far fewer computations than lookups proves the cache works under
  // concurrency (duplicate computation on racing misses is permitted).
  EXPECT_LT(model_.computations(), 200);
}

TEST(ProximityCacheDeathTest, RequiresModelAndCapacity) {
  HopDecayProximity model;
  EXPECT_DEATH(ProximityCache(&model, 0), "");
  // A model-less cache is legal (the TryGet/Put surface a provider
  // wraps), but the compute-through Get must die on it.
  SocialGraph graph;
  ProximityCache model_less(nullptr, 4);
  EXPECT_DEATH((void)model_less.Get(graph, 0), "");
}

TEST(ProximityCacheSplitSurfaceTest, TryGetPutSurface) {
  ProximityCache cache(nullptr, 2);
  EXPECT_EQ(cache.TryGet(7, 1), nullptr);  // counts a miss
  auto vector = std::make_shared<const ProximityVector>();
  cache.Put(7, 1, vector);
  EXPECT_EQ(cache.TryGet(7, 1), vector);
  EXPECT_EQ(cache.TryGet(7, 2), nullptr);  // wrong generation
  // An older-generation Put must not clobber the fresher entry.
  auto stale = std::make_shared<const ProximityVector>();
  cache.Put(7, 0, stale);
  EXPECT_EQ(cache.TryGet(7, 1), vector);
  // A newer generation replaces in place.
  auto fresh = std::make_shared<const ProximityVector>();
  cache.Put(7, 2, fresh);
  EXPECT_EQ(cache.TryGet(7, 2), fresh);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 2u);
  // Hottest-first: most recently touched leads.
  cache.Put(9, 2, fresh);
  EXPECT_EQ(cache.TryGet(9, 2), fresh);
  const std::vector<UserId> hottest = cache.HottestUsers(8);
  ASSERT_EQ(hottest.size(), 2u);
  EXPECT_EQ(hottest[0], 9u);
  EXPECT_EQ(hottest[1], 7u);
}

}  // namespace
}  // namespace amici
