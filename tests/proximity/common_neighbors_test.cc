#include "proximity/common_neighbors.h"

#include "graph/graph_builder.h"
#include "gtest/gtest.h"

namespace amici {
namespace {

/// 0 and 1 share two witnesses (2, 3); 0-4 is a plain edge; 5 is two hops
/// away through 4 only.
SocialGraph WitnessGraph() {
  GraphBuilder builder(6);
  EXPECT_TRUE(builder.AddEdge(0, 2).ok());
  EXPECT_TRUE(builder.AddEdge(0, 3).ok());
  EXPECT_TRUE(builder.AddEdge(1, 2).ok());
  EXPECT_TRUE(builder.AddEdge(1, 3).ok());
  EXPECT_TRUE(builder.AddEdge(0, 4).ok());
  EXPECT_TRUE(builder.AddEdge(4, 5).ok());
  return builder.Build();
}

TEST(CommonNeighborsTest, TwoWitnessesBeatOne) {
  const CommonNeighborsProximity model;
  const ProximityVector vector = model.Compute(WitnessGraph(), 0);
  // User 1: two common neighbours (2, 3), no direct edge -> raw 2.
  // User 5: one witness (4), no edge -> raw 1.
  EXPECT_GT(vector.Proximity(1), vector.Proximity(5));
  EXPECT_GT(vector.Proximity(5), 0.0f);
}

TEST(CommonNeighborsTest, DirectEdgeGetsBonus) {
  const CommonNeighborsProximity model;
  const ProximityVector vector = model.Compute(WitnessGraph(), 0);
  // Users 2 and 3 are direct friends of 0 and also share witnesses with 0
  // (through 1? no - through each other? 2's friends = {0,1}; 0's = {2,3,4};
  // no overlap) -> raw 1 (edge bonus). User 5 raw 1 as well.
  EXPECT_GT(vector.Proximity(2), 0.0f);
  EXPECT_FLOAT_EQ(vector.Proximity(2), vector.Proximity(5));
}

TEST(CommonNeighborsTest, SourceExcluded) {
  const CommonNeighborsProximity model;
  EXPECT_EQ(model.Compute(WitnessGraph(), 0).Proximity(0), 0.0f);
}

TEST(CommonNeighborsTest, BeyondTwoHopsIsZero) {
  GraphBuilder builder(4);  // path 0-1-2-3
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  ASSERT_TRUE(builder.AddEdge(2, 3).ok());
  const CommonNeighborsProximity model;
  const ProximityVector vector = model.Compute(builder.Build(), 0);
  EXPECT_EQ(vector.Proximity(3), 0.0f);
}

TEST(AdamicAdarTest, DownWeightsHubWitnesses) {
  // 0-1 share hub 2 (high degree); 0-3 share leaf-ish witness 4.
  GraphBuilder builder(10);
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  // Inflate 2's degree.
  for (UserId v = 5; v < 10; ++v) ASSERT_TRUE(builder.AddEdge(2, v).ok());
  ASSERT_TRUE(builder.AddEdge(0, 4).ok());
  ASSERT_TRUE(builder.AddEdge(3, 4).ok());
  const SocialGraph graph = builder.Build();

  const CommonNeighborsProximity adamic(
      CommonNeighborsProximity::Weighting::kAdamicAdar);
  const ProximityVector vector = adamic.Compute(graph, 0);
  // Same witness count, but 4 has lower degree -> 3 closer than 1.
  EXPECT_GT(vector.Proximity(3), vector.Proximity(1));
}

TEST(AdamicAdarTest, NamesDifferByWeighting) {
  EXPECT_EQ(CommonNeighborsProximity().name(), "common-neighbors");
  EXPECT_EQ(CommonNeighborsProximity(
                CommonNeighborsProximity::Weighting::kAdamicAdar)
                .name(),
            "adamic-adar");
}

TEST(CommonNeighborsTest, IsolatedSourceEmpty) {
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  const CommonNeighborsProximity model;
  EXPECT_TRUE(model.Compute(builder.Build(), 0).empty());
}

}  // namespace
}  // namespace amici
