// SharedProximityProvider: the one graph + proximity surface behind every
// engine. Covers the RCU-style generation publishes, edge-edit
// validation, single-flight computation de-duplication (the property the
// sharded fan-out relies on: 1 computation per (user, generation), not
// N), and the background warm-over after a generation bump.

#include "proximity/shared_proximity_provider.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/graph_generators.h"
#include "gtest/gtest.h"
#include "proximity/hop_decay.h"
#include "util/rng.h"

namespace amici {
namespace {

/// Counts Compute calls; optionally stalls them so a test can force the
/// single-flight race window open.
class CountingModel : public ProximityModel {
 public:
  CountingModel() = default;
  std::string_view name() const override { return "counting"; }
  ProximityVector Compute(const SocialGraph& graph,
                          UserId source) const override {
    computations_.fetch_add(1);
    while (stalled_.load()) {
      std::this_thread::yield();
    }
    return inner_.Compute(graph, source);
  }
  int computations() const { return computations_.load(); }
  void set_stalled(bool stalled) { stalled_.store(stalled); }

 private:
  HopDecayProximity inner_;
  mutable std::atomic<int> computations_{0};
  mutable std::atomic<bool> stalled_{false};
};

SharedProximityProvider::Options TestOptions(
    std::shared_ptr<const ProximityModel> model, size_t warm_top_n = 0) {
  SharedProximityProvider::Options options;
  options.model = std::move(model);
  options.cache_capacity = 64;
  options.warm_top_n = warm_top_n;
  return options;
}

SocialGraph TestGraph(size_t num_users = 100) {
  Rng rng(7);
  return GenerateErdosRenyi(num_users, 5.0, &rng);
}

TEST(SharedProximityProviderTest, CachesPerUserAndGeneration) {
  auto model = std::make_shared<CountingModel>();
  SharedProximityProvider provider(TestGraph(), TestOptions(model));

  const auto view = provider.Acquire();
  EXPECT_EQ(view.generation, 0u);

  ProximityOutcome outcome;
  const auto first =
      provider.GetProximity(*view.graph, 3, view.generation, &outcome);
  EXPECT_EQ(outcome, ProximityOutcome::kComputed);
  const auto second =
      provider.GetProximity(*view.graph, 3, view.generation, &outcome);
  EXPECT_EQ(outcome, ProximityOutcome::kCacheHit);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(model->computations(), 1);

  const ProximityProviderStats stats = provider.stats();
  EXPECT_EQ(stats.computations, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.generations_published, 0u);
  EXPECT_EQ(stats.cache_entries, 1u);
}

TEST(SharedProximityProviderTest, EditsPublishNewGenerationsRcuStyle) {
  auto model = std::make_shared<CountingModel>();
  SharedProximityProvider provider(TestGraph(4), TestOptions(model));
  // A 4-user graph from the generator may have arbitrary edges; work with
  // an explicit pair instead.
  GraphBuilder builder(4);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  SharedProximityProvider explicit_provider(builder.Build(),
                                            TestOptions(model));

  const auto before = explicit_provider.Acquire();
  ASSERT_TRUE(explicit_provider.AddFriendship(1, 2).ok());
  const auto after = explicit_provider.Acquire();

  // The old view is pinned and untouched; the new one has the edge.
  EXPECT_FALSE(before.graph->HasEdge(1, 2));
  EXPECT_TRUE(after.graph->HasEdge(1, 2));
  EXPECT_EQ(before.generation, 0u);
  EXPECT_EQ(after.generation, 1u);
  EXPECT_EQ(explicit_provider.stats().generations_published, 1u);

  ASSERT_TRUE(explicit_provider.RemoveFriendship(1, 2).ok());
  EXPECT_EQ(explicit_provider.Acquire().generation, 2u);
  EXPECT_FALSE(explicit_provider.Acquire().graph->HasEdge(1, 2));
}

TEST(SharedProximityProviderTest, ValidatesEditsWithoutRebuilding) {
  auto model = std::make_shared<CountingModel>();
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  SharedProximityProvider provider(builder.Build(), TestOptions(model));

  EXPECT_EQ(provider.AddFriendship(0, 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(provider.AddFriendship(0, 9).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(provider.AddFriendship(0, 1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(provider.AddFriendship(1, 0).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(provider.RemoveFriendship(0, 2).code(), StatusCode::kNotFound);
  EXPECT_EQ(provider.RemoveFriendship(2, 2).code(),
            StatusCode::kInvalidArgument);
  // None of the rejected edits published anything.
  EXPECT_EQ(provider.Acquire().generation, 0u);
  EXPECT_EQ(provider.stats().generations_published, 0u);
}

TEST(SharedProximityProviderTest, SingleFlightSharesOneComputation) {
  auto model = std::make_shared<CountingModel>();
  SharedProximityProvider provider(TestGraph(), TestOptions(model));
  const auto view = provider.Acquire();

  // Stall the model so every thread reaches the miss path before the
  // leader can publish, maximizing the chance of a genuine race.
  model->set_stalled(true);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> started{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      started.fetch_add(1);
      (void)provider.GetProximity(*view.graph, 42, view.generation);
    });
  }
  while (started.load() < kThreads) std::this_thread::yield();
  model->set_stalled(false);
  for (auto& thread : threads) thread.join();

  // The defining property: ONE computation, everyone else either hit the
  // cache or joined the in-flight computation.
  EXPECT_EQ(model->computations(), 1);
  const ProximityProviderStats stats = provider.stats();
  EXPECT_EQ(stats.computations, 1u);
  EXPECT_EQ(stats.cache_hits + stats.inflight_joins,
            static_cast<uint64_t>(kThreads - 1));
}

TEST(SharedProximityProviderTest, WarmOverRecomputesHotUsersInBackground) {
  auto model = std::make_shared<CountingModel>();
  SharedProximityProvider provider(TestGraph(),
                                   TestOptions(model, /*warm_top_n=*/4));
  const auto view = provider.Acquire();

  // Make users 1..3 hot (3 hottest = the warm candidates), user 9 cold
  // enough to matter less (still within top 4 here).
  for (const UserId user : {UserId{1}, UserId{2}, UserId{3}, UserId{9}}) {
    (void)provider.GetProximity(*view.graph, user, view.generation);
  }
  const int cold_computations = model->computations();
  EXPECT_EQ(cold_computations, 4);

  // Bump the generation via an edge that is definitely absent.
  UserId other = 1;
  while (view.graph->HasEdge(0, other)) ++other;
  ASSERT_TRUE(provider.AddFriendship(0, other).ok());
  provider.WaitForWarmup();

  // The warm-over recomputed the hot users against the NEW generation...
  const ProximityProviderStats stats = provider.stats();
  EXPECT_EQ(stats.warmed, 4u);
  EXPECT_EQ(model->computations(), cold_computations + 4);

  // ... so their next query on that generation is a pure cache hit.
  const auto fresh = provider.Acquire();
  ASSERT_EQ(fresh.generation, 1u);
  ProximityOutcome outcome;
  (void)provider.GetProximity(*fresh.graph, 2, fresh.generation, &outcome);
  EXPECT_EQ(outcome, ProximityOutcome::kCacheHit);
  EXPECT_EQ(model->computations(), cold_computations + 4);
}

}  // namespace
}  // namespace amici
