#include "proximity/katz.h"

#include "graph/graph_builder.h"
#include "gtest/gtest.h"

namespace amici {
namespace {

SocialGraph Path4() {
  GraphBuilder builder(4);
  EXPECT_TRUE(builder.AddEdge(0, 1).ok());
  EXPECT_TRUE(builder.AddEdge(1, 2).ok());
  EXPECT_TRUE(builder.AddEdge(2, 3).ok());
  return builder.Build();
}

TEST(KatzTest, CloserUsersScoreHigher) {
  const KatzProximity model(0.1, 3);
  const ProximityVector vector = model.Compute(Path4(), 0);
  EXPECT_GT(vector.Proximity(1), vector.Proximity(2));
  EXPECT_GT(vector.Proximity(2), vector.Proximity(3));
  EXPECT_GT(vector.Proximity(3), 0.0f);
}

TEST(KatzTest, TruncationLimitsReach) {
  const KatzProximity model(0.1, 2);
  const ProximityVector vector = model.Compute(Path4(), 0);
  EXPECT_GT(vector.Proximity(2), 0.0f);
  EXPECT_EQ(vector.Proximity(3), 0.0f);
}

TEST(KatzTest, MultiplePathsBeatSinglePath) {
  // Two disjoint 2-paths 0->a->3 versus one 2-path 0->b->4.
  GraphBuilder builder(6);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 3).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  ASSERT_TRUE(builder.AddEdge(2, 3).ok());
  ASSERT_TRUE(builder.AddEdge(0, 5).ok());
  ASSERT_TRUE(builder.AddEdge(5, 4).ok());
  const KatzProximity model(0.05, 2);
  const ProximityVector vector = model.Compute(builder.Build(), 0);
  EXPECT_GT(vector.Proximity(3), vector.Proximity(4));
}

TEST(KatzTest, SourceExcluded) {
  const KatzProximity model(0.1, 3);
  EXPECT_EQ(model.Compute(Path4(), 1).Proximity(1), 0.0f);
}

TEST(KatzTest, IsolatedSourceEmpty) {
  GraphBuilder builder(2);
  const KatzProximity model(0.1, 3);
  EXPECT_TRUE(model.Compute(builder.Build(), 0).empty());
}

TEST(KatzTest, NameIsStable) { EXPECT_EQ(KatzProximity().name(), "katz"); }

TEST(KatzDeathTest, RejectsBadParameters) {
  EXPECT_DEATH(KatzProximity(0.0, 2), "");
  EXPECT_DEATH(KatzProximity(1.0, 2), "");
  EXPECT_DEATH(KatzProximity(0.1, 0), "");
}

}  // namespace
}  // namespace amici
