#include "proximity/hop_decay.h"

#include "graph/graph_builder.h"
#include "gtest/gtest.h"

namespace amici {
namespace {

/// Path 0-1-2-3.
SocialGraph Path4() {
  GraphBuilder builder(4);
  EXPECT_TRUE(builder.AddEdge(0, 1).ok());
  EXPECT_TRUE(builder.AddEdge(1, 2).ok());
  EXPECT_TRUE(builder.AddEdge(2, 3).ok());
  return builder.Build();
}

TEST(HopDecayTest, DirectFriendsScoreOne) {
  const SocialGraph graph = Path4();
  const HopDecayProximity model(0.5, 3);
  const ProximityVector vector = model.Compute(graph, 0);
  EXPECT_FLOAT_EQ(vector.Proximity(1), 1.0f);
}

TEST(HopDecayTest, GeometricDecayByHop) {
  const SocialGraph graph = Path4();
  const HopDecayProximity model(0.5, 3);
  const ProximityVector vector = model.Compute(graph, 0);
  EXPECT_FLOAT_EQ(vector.Proximity(2), 0.5f);
  EXPECT_FLOAT_EQ(vector.Proximity(3), 0.25f);
}

TEST(HopDecayTest, TruncatesBeyondMaxHops) {
  const SocialGraph graph = Path4();
  const HopDecayProximity model(0.5, 2);
  const ProximityVector vector = model.Compute(graph, 0);
  EXPECT_GT(vector.Proximity(2), 0.0f);
  EXPECT_EQ(vector.Proximity(3), 0.0f);
}

TEST(HopDecayTest, ExcludesSourceItself) {
  const SocialGraph graph = Path4();
  const HopDecayProximity model;
  EXPECT_EQ(model.Compute(graph, 1).Proximity(1), 0.0f);
}

TEST(HopDecayTest, IsolatedUserHasEmptyVector) {
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  const HopDecayProximity model;
  EXPECT_TRUE(model.Compute(builder.Build(), 0).empty());
}

TEST(HopDecayTest, DecayOneKeepsAllEqual) {
  const SocialGraph graph = Path4();
  const HopDecayProximity model(1.0, 3);
  const ProximityVector vector = model.Compute(graph, 0);
  EXPECT_FLOAT_EQ(vector.Proximity(1), 1.0f);
  EXPECT_FLOAT_EQ(vector.Proximity(3), 1.0f);
}

TEST(HopDecayTest, NameIsStable) {
  EXPECT_EQ(HopDecayProximity().name(), "hop-decay");
}

TEST(HopDecayDeathTest, RejectsBadParameters) {
  EXPECT_DEATH(HopDecayProximity(0.0, 2), "");
  EXPECT_DEATH(HopDecayProximity(1.5, 2), "");
  EXPECT_DEATH(HopDecayProximity(0.5, 0), "");
}

}  // namespace
}  // namespace amici
