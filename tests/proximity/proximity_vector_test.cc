#include "proximity/proximity_model.h"

#include "gtest/gtest.h"

namespace amici {
namespace {

TEST(ProximityVectorTest, EmptyVector) {
  const ProximityVector vector = ProximityVector::FromUnnormalized({});
  EXPECT_TRUE(vector.empty());
  EXPECT_EQ(vector.size(), 0u);
  EXPECT_EQ(vector.MaxScore(), 0.0f);
  EXPECT_EQ(vector.Proximity(7), 0.0f);
}

TEST(ProximityVectorTest, NormalizesMaxToOne) {
  const ProximityVector vector = ProximityVector::FromUnnormalized(
      {{1, 0.2f}, {2, 0.4f}, {3, 0.1f}});
  EXPECT_FLOAT_EQ(vector.MaxScore(), 1.0f);
  EXPECT_FLOAT_EQ(vector.Proximity(2), 1.0f);
  EXPECT_FLOAT_EQ(vector.Proximity(1), 0.5f);
  EXPECT_FLOAT_EQ(vector.Proximity(3), 0.25f);
}

TEST(ProximityVectorTest, RankedIsDescendingWithIdTieBreak) {
  const ProximityVector vector = ProximityVector::FromUnnormalized(
      {{5, 0.3f}, {1, 0.3f}, {9, 0.6f}, {2, 0.1f}});
  const auto& ranked = vector.ranked();
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_EQ(ranked[0].user, 9u);
  EXPECT_EQ(ranked[1].user, 1u);  // ties by ascending id
  EXPECT_EQ(ranked[2].user, 5u);
  EXPECT_EQ(ranked[3].user, 2u);
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].score, ranked[i].score);
  }
}

TEST(ProximityVectorTest, DropsNonPositiveScores) {
  const ProximityVector vector = ProximityVector::FromUnnormalized(
      {{1, 0.0f}, {2, -0.5f}, {3, 0.25f}});
  EXPECT_EQ(vector.size(), 1u);
  EXPECT_EQ(vector.Proximity(1), 0.0f);
  EXPECT_EQ(vector.Proximity(2), 0.0f);
  EXPECT_FLOAT_EQ(vector.Proximity(3), 1.0f);
}

TEST(ProximityVectorTest, LookupMatchesRanked) {
  const ProximityVector vector = ProximityVector::FromUnnormalized(
      {{10, 1.0f}, {20, 2.0f}, {30, 3.0f}});
  for (const auto& entry : vector.ranked()) {
    EXPECT_FLOAT_EQ(vector.Proximity(entry.user), entry.score);
  }
}

}  // namespace
}  // namespace amici
