// ProximityServiceRouter: the partitioned service must be observationally
// identical to the single shared provider — same published graphs, same
// generations, same validation verdicts, bit-identical proximity vectors —
// while actually routing queries and edits to per-user partitions and
// keeping its cross-partition traffic on the explicit boundary.

#include "proximity_service/proximity_router.h"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/graph_generators.h"
#include "gtest/gtest.h"
#include "proximity/hop_decay.h"
#include "proximity/shared_proximity_provider.h"
#include "util/rng.h"

namespace amici {
namespace {

SocialGraph TestGraph(size_t num_users = 80, uint64_t seed = 7) {
  Rng rng(seed);
  return GenerateErdosRenyi(num_users, 5.0, &rng);
}

ProximityServiceRouter::Options RouterOptions(size_t partitions) {
  ProximityServiceRouter::Options options;
  options.num_partitions = partitions;
  options.model = std::make_shared<HopDecayProximity>();
  options.cache_capacity = 64;
  options.warm_top_n = 0;  // exact computation counts
  return options;
}

void ExpectSameVector(const std::shared_ptr<const ProximityVector>& got,
                      const std::shared_ptr<const ProximityVector>& want) {
  ASSERT_NE(got, nullptr);
  ASSERT_NE(want, nullptr);
  const auto& g = got->ranked();
  const auto& w = want->ranked();
  ASSERT_EQ(g.size(), w.size());
  for (size_t i = 0; i < w.size(); ++i) {
    ASSERT_EQ(g[i].user, w[i].user) << "entry " << i;
    ASSERT_EQ(g[i].score, w[i].score) << "entry " << i;
  }
}

class ProximityRouterTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ProximityRouterTest, MirrorsSingleProviderThroughChurn) {
  SharedProximityProvider::Options single_options;
  single_options.model = std::make_shared<HopDecayProximity>();
  single_options.cache_capacity = 64;
  single_options.warm_top_n = 0;
  SharedProximityProvider reference(TestGraph(), single_options);
  ProximityServiceRouter router(TestGraph(), RouterOptions(GetParam()));

  Rng rng(99);
  const size_t kUsers = 80;
  for (int step = 0; step < 60; ++step) {
    const UserId u = static_cast<UserId>(rng.UniformIndex(kUsers));
    UserId v = static_cast<UserId>(rng.UniformIndex(kUsers));
    if (u == v) v = (v + 1) % kUsers;
    const bool adding = !reference.Acquire().graph->HasEdge(u, v);
    const Status ref_status = adding ? reference.AddFriendship(u, v)
                                     : reference.RemoveFriendship(u, v);
    const Status router_status =
        adding ? router.AddFriendship(u, v) : router.RemoveFriendship(u, v);
    ASSERT_EQ(ref_status.code(), router_status.code()) << "step " << step;

    const auto ref_view = reference.Acquire();
    const auto router_view = router.Acquire();
    ASSERT_EQ(ref_view.generation, router_view.generation);
    ASSERT_EQ(ref_view.graph->num_edges(), router_view.graph->num_edges());

    // Probe a few users: adjacency and proximity must agree exactly.
    for (int probe = 0; probe < 3; ++probe) {
      const UserId user = static_cast<UserId>(rng.UniformIndex(kUsers));
      const auto ref_friends = ref_view.graph->Friends(user);
      const auto router_friends = router_view.graph->Friends(user);
      ASSERT_EQ(ref_friends.size(), router_friends.size());
      ASSERT_TRUE(std::equal(ref_friends.begin(), ref_friends.end(),
                             router_friends.begin()));
      ExpectSameVector(
          router.GetProximity(*router_view.graph, user,
                              router_view.generation),
          reference.GetProximity(*ref_view.graph, user, ref_view.generation));
    }
  }
}

TEST_P(ProximityRouterTest, FoldsMidChurnAreInvisible) {
  SharedProximityProvider::Options single_options;
  single_options.model = std::make_shared<HopDecayProximity>();
  single_options.warm_top_n = 0;
  SharedProximityProvider reference(TestGraph(60, 3), single_options);

  auto options = RouterOptions(GetParam());
  // Aggressive policy: fold after a handful of patched rows.
  AdaptiveOverlayFoldPolicy::Options fold;
  fold.max_patch_rows = 4;
  options.fold_policy = std::make_shared<AdaptiveOverlayFoldPolicy>(fold);
  ProximityServiceRouter router(TestGraph(60, 3), options);

  Rng rng(5);
  for (int step = 0; step < 40; ++step) {
    const UserId u = static_cast<UserId>(rng.UniformIndex(60));
    UserId v = static_cast<UserId>(rng.UniformIndex(60));
    if (u == v) v = (v + 1) % 60;
    const bool adding = !reference.Acquire().graph->HasEdge(u, v);
    ASSERT_EQ((adding ? reference.AddFriendship(u, v)
                      : reference.RemoveFriendship(u, v))
                  .code(),
              (adding ? router.AddFriendship(u, v)
                      : router.RemoveFriendship(u, v))
                  .code());
    if (step % 7 == 0) router.FoldOverlay();  // explicit fold on top

    const auto ref_view = reference.Acquire();
    const auto router_view = router.Acquire();
    // Folds change representation, NOT the published generation.
    ASSERT_EQ(ref_view.generation, router_view.generation);
    const UserId probe = static_cast<UserId>(rng.UniformIndex(60));
    ExpectSameVector(
        router.GetProximity(*router_view.graph, probe, router_view.generation),
        reference.GetProximity(*ref_view.graph, probe, ref_view.generation));
  }
  EXPECT_GT(router.stats().overlay_folds, 0u);
  // A final quiescent fold leaves no patch behind.
  router.FoldOverlay();
  EXPECT_EQ(router.stats().overlay_rows, 0u);
  EXPECT_FALSE(router.Acquire().graph->has_overlay());
}

TEST_P(ProximityRouterTest, ValidationMatchesSingleProviderRules) {
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ProximityServiceRouter router(builder.Build(), RouterOptions(GetParam()));

  EXPECT_EQ(router.AddFriendship(0, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(router.AddFriendship(0, 9).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(router.AddFriendship(0, 1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(router.AddFriendship(1, 0).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(router.RemoveFriendship(0, 2).code(), StatusCode::kNotFound);
  EXPECT_EQ(router.RemoveFriendship(2, 2).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(router.Acquire().generation, 0u);
  EXPECT_EQ(router.stats().generations_published, 0u);
}

TEST_P(ProximityRouterTest, QueriesLandOnTheOwningPartition) {
  ProximityServiceRouter router(TestGraph(), RouterOptions(GetParam()));
  const auto view = router.Acquire();

  const UserId user = 17;
  const uint32_t owner = router.PartitionOf(user);
  (void)router.GetProximity(*view.graph, user, view.generation);
  (void)router.GetProximity(*view.graph, user, view.generation);

  const auto stats = router.partition_stats();
  ASSERT_EQ(stats.size(), std::max<size_t>(GetParam(), 1));
  for (const auto& p : stats) {
    if (p.partition == owner) {
      EXPECT_EQ(p.computations, 1u);
      EXPECT_EQ(p.cache_hits, 1u);
    } else {
      EXPECT_EQ(p.computations, 0u);
      EXPECT_EQ(p.cache_hits, 0u);
    }
  }
}

TEST(ProximityRouterTest, CrossPartitionEditsCrossTheBoundary) {
  // With 2 partitions and enough random edits, some edge must span
  // partitions; each such edit's remote half is boundary traffic.
  ProximityServiceRouter router(TestGraph(), RouterOptions(2));
  UserId remote = 1;
  while (remote < 80 && router.PartitionOf(remote) == router.PartitionOf(0)) {
    ++remote;
  }
  ASSERT_LT(remote, 80u) << "hash put all 80 users in one partition?";
  UserId local = remote + 1;
  while (local < 80 && router.PartitionOf(local) != router.PartitionOf(0)) {
    ++local;
  }
  ASSERT_LT(local, 80u);

  const auto before = router.stats();
  const auto graph = router.Acquire().graph;

  // A same-partition edit crosses nothing...
  const bool same_adding = !graph->HasEdge(0, local);
  ASSERT_TRUE((same_adding ? router.AddFriendship(0, local)
                           : router.RemoveFriendship(0, local))
                  .ok());
  EXPECT_EQ(router.stats().boundary_crossings, before.boundary_crossings);

  // ... a cross-partition edit crosses exactly once (the remote half).
  const bool cross_adding = !graph->HasEdge(0, remote);
  ASSERT_TRUE((cross_adding ? router.AddFriendship(0, remote)
                            : router.RemoveFriendship(0, remote))
                  .ok());
  EXPECT_EQ(router.stats().boundary_crossings,
            before.boundary_crossings + 1);

  // Frontier sanity: partitions report remote endpoints their residents
  // link to; with cross edges present, some frontier must exist.
  EXPECT_GT(router.stats().frontier_users, 0u);
  uint64_t total_out = 0;
  uint64_t total_in = 0;
  for (const auto& p : router.partition_stats()) {
    total_out += p.boundary_out;
    total_in += p.boundary_in;
  }
  EXPECT_EQ(total_out, total_in);
  EXPECT_EQ(total_out, router.stats().boundary_crossings);
}

TEST(ProximityRouterTest, SinglePartitionRouterReportsNoBoundary) {
  ProximityServiceRouter router(TestGraph(), RouterOptions(1));
  ASSERT_TRUE(router.AddFriendship(0, 1).ok() ||
              router.RemoveFriendship(0, 1).ok());
  const auto stats = router.stats();
  EXPECT_EQ(stats.partitions, 1u);
  EXPECT_EQ(stats.boundary_crossings, 0u);
  EXPECT_EQ(stats.frontier_users, 0u);
}

TEST_P(ProximityRouterTest, WarmupRecomputesHotUsersPerPartition) {
  auto options = RouterOptions(GetParam());
  options.warm_top_n = 2;
  ProximityServiceRouter router(TestGraph(), options);
  const auto view = router.Acquire();
  for (const UserId user : {UserId{1}, UserId{2}, UserId{3}, UserId{4}}) {
    (void)router.GetProximity(*view.graph, user, view.generation);
  }

  UserId other = 1;
  while (view.graph->HasEdge(0, other)) ++other;
  ASSERT_TRUE(router.AddFriendship(0, other).ok());
  router.WaitForWarmup();

  const auto fresh = router.Acquire();
  ASSERT_EQ(fresh.generation, 1u);
  EXPECT_GT(router.stats().warmed, 0u);
  // Warmed users hit the cache on the new generation without recomputing.
  const auto stats_before = router.stats();
  bool found_warm_hit = false;
  for (const UserId user : {UserId{1}, UserId{2}, UserId{3}, UserId{4}}) {
    ProximityOutcome outcome;
    (void)router.GetProximity(*fresh.graph, user, fresh.generation, &outcome);
    found_warm_hit |= outcome == ProximityOutcome::kCacheHit;
  }
  EXPECT_TRUE(found_warm_hit);
  (void)stats_before;
}

TEST(ProximityRouterTest, SharedProviderIsTheOnePartitionRouter) {
  // The compatibility subclass must behave as a 1-partition router and
  // expose the service counters through the same stats surface.
  SharedProximityProvider::Options options;
  options.model = std::make_shared<HopDecayProximity>();
  options.warm_top_n = 0;
  SharedProximityProvider provider(TestGraph(), options);
  EXPECT_EQ(provider.num_partitions(), 1u);
  EXPECT_EQ(provider.stats().partitions, 1u);
  ASSERT_TRUE(provider.AddFriendship(0, 79).ok() ||
              provider.RemoveFriendship(0, 79).ok());
  EXPECT_GT(provider.stats().overlay_rows, 0u);
  EXPECT_EQ(provider.FoldOverlay() > 0, true);
  EXPECT_EQ(provider.stats().overlay_rows, 0u);
}

INSTANTIATE_TEST_SUITE_P(Partitions, ProximityRouterTest,
                         ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace amici
