// DeltaOverlayGraph: the writer-side patch behind the proximity service.
// The load-bearing properties: a toggled edit stream composes to exactly
// the graph a from-scratch rebuild produces, folds are representation
// changes only, and the pin/adopt protocol keeps rows edited between the
// pin and the adopt (the off-lock-fold race).

#include "proximity_service/delta_overlay_graph.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/graph_generators.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace amici {
namespace {

using Edge = std::pair<UserId, UserId>;

Edge Canonical(UserId u, UserId v) {
  return {std::min(u, v), std::max(u, v)};
}

/// Applies one undirected edit as its two routed halves.
void ApplyEdit(DeltaOverlayGraph* delta, UserId u, UserId v, bool insert) {
  delta->ApplyHalf(u, v, insert);
  delta->ApplyHalf(v, u, insert);
}

SocialGraph Rebuild(size_t num_users, const std::set<Edge>& edges) {
  GraphBuilder builder(num_users);
  for (const auto& [u, v] : edges) EXPECT_TRUE(builder.AddEdge(u, v).ok());
  return builder.Build();
}

void ExpectSameGraph(const SocialGraph& got, const SocialGraph& want) {
  ASSERT_EQ(got.num_users(), want.num_users());
  ASSERT_EQ(got.num_edges(), want.num_edges());
  for (UserId u = 0; u < want.num_users(); ++u) {
    const auto g = got.Friends(u);
    const auto w = want.Friends(u);
    ASSERT_EQ(g.size(), w.size()) << "user " << u;
    for (size_t i = 0; i < w.size(); ++i) {
      ASSERT_EQ(g[i], w[i]) << "user " << u << " slot " << i;
    }
  }
}

std::set<Edge> EdgeSet(const SocialGraph& graph) {
  std::set<Edge> edges;
  for (UserId u = 0; u < graph.num_users(); ++u) {
    for (const UserId v : graph.Friends(u)) edges.insert(Canonical(u, v));
  }
  return edges;
}

class DeltaOverlayGraphTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DeltaOverlayGraphTest, RandomToggleTwinMatchesRebuild) {
  Rng rng(11);
  const size_t kUsers = 60;
  const SocialGraph seed = GenerateErdosRenyi(kUsers, 4.0, &rng);
  std::set<Edge> edges = EdgeSet(seed);

  DeltaOverlayGraph delta(seed, GetParam());
  for (int step = 0; step < 400; ++step) {
    const UserId u = static_cast<UserId>(rng.UniformIndex(kUsers));
    UserId v = static_cast<UserId>(rng.UniformIndex(kUsers));
    if (u == v) v = (v + 1) % kUsers;
    const Edge e = Canonical(u, v);
    const bool insert = edges.find(e) == edges.end();
    ApplyEdit(&delta, u, v, insert);
    if (insert) {
      edges.insert(e);
    } else {
      edges.erase(e);
    }
    if (step % 25 == 0 || step == 399) {
      ExpectSameGraph(delta.Compose(), Rebuild(kUsers, edges));
    }
  }
  EXPECT_GT(delta.signals().patch_rows, 0u);
}

TEST_P(DeltaOverlayGraphTest, QuiescentFoldEmptiesPatchAndPreservesGraph) {
  Rng rng(23);
  const size_t kUsers = 40;
  const SocialGraph seed = GenerateErdosRenyi(kUsers, 3.0, &rng);
  std::set<Edge> edges = EdgeSet(seed);

  DeltaOverlayGraph delta(seed, GetParam());
  ApplyEdit(&delta, 1, 2, edges.insert(Canonical(1, 2)).second);
  ApplyEdit(&delta, 3, 4, edges.insert(Canonical(3, 4)).second);
  ASSERT_GE(delta.signals().patch_rows, 2u);

  const auto pin = delta.PinForFold();
  const SocialGraph flat = pin.view.Flatten();
  EXPECT_FALSE(flat.has_overlay());
  const size_t folded = delta.AdoptFolded(pin, flat);
  EXPECT_GE(folded, 2u);

  // Nothing happened between pin and adopt, so the patch is fully gone
  // and the composed graph is now pure CSR with identical adjacency.
  EXPECT_EQ(delta.signals().patch_rows, 0u);
  const SocialGraph after = delta.Compose();
  EXPECT_FALSE(after.has_overlay());
  ExpectSameGraph(after, Rebuild(kUsers, edges));
}

TEST_P(DeltaOverlayGraphTest, EditsBetweenPinAndAdoptSurviveTheFold) {
  const size_t kUsers = 30;
  GraphBuilder builder(kUsers);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(2, 3).ok());
  std::set<Edge> edges = {{0, 1}, {2, 3}};

  DeltaOverlayGraph delta(builder.Build(), GetParam());
  ApplyEdit(&delta, 5, 6, true);
  edges.insert({5, 6});

  // Pin (as the fold's first critical section would)...
  const auto pin = delta.PinForFold();

  // ... then land edits "while the flatten runs off-lock". One touches a
  // row the pin already covers (5), one a fresh row pair.
  ApplyEdit(&delta, 5, 7, true);
  edges.insert({5, 7});
  ApplyEdit(&delta, 0, 1, false);
  edges.erase({0, 1});

  const SocialGraph flat = pin.view.Flatten();
  delta.AdoptFolded(pin, flat);

  // The post-pin edits must still be present as patch rows over the new
  // base, and the composed adjacency must match the reference exactly.
  EXPECT_GT(delta.signals().patch_rows, 0u);
  ExpectSameGraph(delta.Compose(), Rebuild(kUsers, edges));

  // A second quiescent fold clears the remainder.
  const auto pin2 = delta.PinForFold();
  delta.AdoptFolded(pin2, pin2.view.Flatten());
  EXPECT_EQ(delta.signals().patch_rows, 0u);
  ExpectSameGraph(delta.Compose(), Rebuild(kUsers, edges));
}

TEST_P(DeltaOverlayGraphTest, AdoptsInheritedOverlayAndRebuckets) {
  Rng rng(31);
  const size_t kUsers = 50;
  const SocialGraph seed = GenerateErdosRenyi(kUsers, 3.0, &rng);
  std::set<Edge> edges = EdgeSet(seed);

  // Produce an overlaid graph with one delta...
  DeltaOverlayGraph first(seed, 1);
  for (const UserId u : {UserId{10}, UserId{20}, UserId{30}}) {
    const Edge e = Canonical(u, u + 1);
    const bool insert = edges.find(e) == edges.end();
    ApplyEdit(&first, u, u + 1, insert);
    if (insert) {
      edges.insert(e);
    } else {
      edges.erase(e);
    }
  }
  const SocialGraph overlaid = first.Compose();
  ASSERT_TRUE(overlaid.has_overlay());

  // ... and adopt it in a second with a DIFFERENT bucket count (the
  // restart-into-different-partitioning path).
  DeltaOverlayGraph second(overlaid, GetParam());
  EXPECT_EQ(second.num_buckets(), std::max<size_t>(GetParam(), 1));
  EXPECT_EQ(second.signals().patch_rows, first.signals().patch_rows);
  ExpectSameGraph(second.Compose(), Rebuild(kUsers, edges));

  // The adopted patch keeps editing and folding normally.
  ApplyEdit(&second, 40, 41, !overlaid.HasEdge(40, 41));
  if (!overlaid.HasEdge(40, 41)) {
    edges.insert({40, 41});
  } else {
    edges.erase({40, 41});
  }
  const auto pin = second.PinForFold();
  second.AdoptFolded(pin, pin.view.Flatten());
  ExpectSameGraph(second.Compose(), Rebuild(kUsers, edges));
}

TEST_P(DeltaOverlayGraphTest, SignalsTrackPatchGrowth) {
  GraphBuilder builder(16);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  DeltaOverlayGraph delta(builder.Build(), GetParam());

  OverlaySignals s = delta.signals();
  EXPECT_EQ(s.patch_rows, 0u);
  EXPECT_EQ(s.patch_slots, 0u);
  EXPECT_EQ(s.base_slots, 2u);

  ApplyEdit(&delta, 0, 2, true);
  s = delta.signals();
  // Rows 0 and 2 are patched: row 0 = {1, 2}, row 2 = {0}.
  EXPECT_EQ(s.patch_rows, 2u);
  EXPECT_EQ(s.patch_slots, 3u);

  ApplyEdit(&delta, 0, 1, false);
  s = delta.signals();
  // Row 1 joins the patch (now empty); row 0 shrinks to {2}.
  EXPECT_EQ(s.patch_rows, 3u);
  EXPECT_EQ(s.patch_slots, 2u);
  EXPECT_EQ(delta.Compose().num_edges(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Buckets, DeltaOverlayGraphTest,
                         ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace amici
