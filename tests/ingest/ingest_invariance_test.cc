// The ingest subsystem's acceptance property: a corpus ingested through
// the MPSC queue by CONCURRENT producers — with friendship edits in the
// stream and background compaction firing mid-run — yields bit-identical
// query results to the same corpus ingested by serial AddItems calls
// followed by a manual Compact(), on the local and 1/2/4-shard backends.
//
// Method: every produced item carries a unique MARKER tag, so after
// Flush() the actual (nondeterministic) interleave the queue admitted can
// be reconstructed from the final catalogue; a baseline service then
// replays exactly that order synchronously. Identical corpus + identical
// ids => identical scores at every rank (ties may legally reorder, which
// the boundary-aware comparison below accounts for).
//
// Run under -fsanitize=thread (tools/run_tier1.sh --tsan): producers,
// the writer thread, the compaction scheduler and a query thread all
// overlap here.

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "ingest/compaction_policy.h"
#include "service/local_search_service.h"
#include "service/sharded_search_service.h"
#include "util/rng.h"
#include "workload/dataset_generator.h"
#include "workload/query_workload.h"

namespace amici {
namespace {

constexpr size_t kNumTags = 200;
constexpr TagId kMarkerBase = kNumTags;  // one unique marker per produced item
constexpr size_t kProducers = 4;
constexpr size_t kItemsPerProducer = 120;
constexpr size_t kTotalProduced = kProducers * kItemsPerProducer;
constexpr size_t kEdits = 8;

DatasetConfig TestConfig(uint64_t seed) {
  DatasetConfig config = SmallDataset();
  config.num_users = 300;
  config.items_per_user = 3.0;
  config.num_tags = kNumTags;
  config.geo_fraction = 0.3;
  config.seed = seed;
  return config;
}

std::unique_ptr<SearchService> BuildBackend(const DatasetConfig& config,
                                            size_t shards) {
  Dataset dataset = GenerateDataset(config).value();
  if (shards == 0) {
    return LocalSearchService::Build(std::move(dataset.graph),
                                     std::move(dataset.store))
        .value();
  }
  ShardedSearchService::Options options;
  options.num_shards = shards;
  return ShardedSearchService::Build(std::move(dataset.graph),
                                     std::move(dataset.store),
                                     std::move(options))
      .value();
}

/// The item produced for global marker index `index` — a pure function,
/// so the baseline can regenerate exactly what the producers enqueued.
Item ProducedItem(size_t index, size_t num_users) {
  Rng rng(0xC0FFEE + index);
  Item item;
  item.owner = static_cast<UserId>(rng.UniformIndex(num_users));
  item.tags = {static_cast<TagId>(rng.UniformIndex(kNumTags)),
               static_cast<TagId>(kMarkerBase + index)};
  if (rng.Bernoulli(0.4)) {
    item.tags.push_back(static_cast<TagId>(rng.UniformIndex(kNumTags)));
  }
  item.quality = static_cast<float>(rng.UniformDouble());
  if (rng.Bernoulli(0.25)) {
    item.has_geo = true;
    item.latitude = static_cast<float>(rng.UniformDouble() - 0.5);
    item.longitude = static_cast<float>(rng.UniformDouble() - 0.5);
  }
  return item;
}

/// Disjoint, not-initially-present edges: deterministic, so the baseline
/// applies the exact same set.
std::vector<std::pair<UserId, UserId>> EditList(const SearchService& service) {
  std::vector<std::pair<UserId, UserId>> edits;
  const size_t num_users = service.num_users();
  for (UserId u = 1; edits.size() < kEdits && u + 1 < num_users; u += 2) {
    const UserId v = static_cast<UserId>(u + 1);
    bool exists = false;
    for (const UserId f : service.FriendsOf(u)) exists |= (f == v);
    if (!exists) edits.push_back({u, v});
  }
  return edits;
}

/// Same boundary-aware comparison as the sharded invariance test: scores
/// must match bit-for-bit at every rank; item ids must match wherever the
/// score is untied and above the k-th-score tie class (membership and
/// order WITHIN an exact tie class are algorithm-discretionary).
void ExpectSameResponse(const Result<SearchResponse>& expected,
                        const Result<SearchResponse>& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.ok(), actual.ok())
      << label << ": " << expected.status().ToString() << " vs "
      << actual.status().ToString();
  if (!expected.ok()) {
    EXPECT_EQ(expected.status().code(), actual.status().code()) << label;
    return;
  }
  const auto& want = expected.value().items;
  const auto& got = actual.value().items;
  ASSERT_EQ(want.size(), got.size()) << label;
  const float boundary = want.empty() ? 0.0f : want.back().score;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].score, got[i].score) << label << " rank " << i;
    const bool tied =
        (i > 0 && want[i - 1].score == want[i].score) ||
        (i + 1 < want.size() && want[i + 1].score == want[i].score);
    if (!tied && want[i].score != boundary) {
      EXPECT_EQ(want[i].item, got[i].item) << label << " rank " << i;
    }
  }
}

std::vector<SearchRequest> BuildRequests(const DatasetConfig& config) {
  Dataset workload_view = GenerateDataset(config).value();
  QueryWorkloadConfig workload;
  workload.num_queries = 12;
  workload.k = 10;
  workload.seed = config.seed * 31 + 7;
  const std::vector<SocialQuery> queries =
      GenerateQueries(workload_view, workload).value();

  std::vector<SearchRequest> requests;
  Rng rng(config.seed * 31 + 8);
  for (const SocialQuery& query : queries) {
    SearchRequest request;
    request.query = query;
    request.query.alpha = 0.2 + 0.6 * rng.UniformDouble();
    requests.push_back(request);
    if (rng.Bernoulli(0.3)) {
      SearchRequest diverse = request;
      diverse.max_per_owner = 1 + rng.UniformIndex(2);
      requests.push_back(diverse);
    }
  }
  // A couple of tag-less pure-social feeds.
  for (const UserId user : {UserId{2}, UserId{77}}) {
    SearchRequest feed;
    feed.query.user = user;
    feed.query.alpha = 1.0;
    feed.query.k = 8;
    requests.push_back(feed);
  }
  return requests;
}

void RunScenario(size_t shards, BackpressureMode mode, uint64_t seed) {
  const DatasetConfig config = TestConfig(seed);
  auto service = BuildBackend(config, shards);
  const size_t initial_items = service->num_items();
  const size_t num_users = service->num_users();
  const auto edits = EditList(*service);
  ASSERT_GE(edits.size(), 4u);

  // Queued ingest + aggressive background compaction, so compactions
  // actually land WHILE producers and queries run.
  IngestPipeline::Options pipeline_options;
  pipeline_options.queue.capacity = 8;  // small: exercises backpressure
  pipeline_options.queue.backpressure = mode;
  ASSERT_TRUE(service->StartIngest(pipeline_options).ok());
  CompactionScheduler::Options compaction_options;
  compaction_options.policy = std::make_shared<AdaptiveCompactionPolicy>(
      AdaptiveCompactionPolicy::Options{/*max_tail_items=*/60,
                                        /*max_tail_scan_ms=*/1e9,
                                        /*min_tail_items=*/10});
  compaction_options.poll_interval_ms = 1.0;
  ASSERT_TRUE(service->StartAutoCompaction(compaction_options).ok());

  // Producers enqueue their disjoint marker ranges in random-size
  // batches; one of them interleaves the friendship edits.
  std::atomic<bool> done{false};
  std::atomic<int> enqueue_errors{0};
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(seed * 97 + p);
      std::vector<IngestTicket> tickets;
      size_t next = p * kItemsPerProducer;
      const size_t end = next + kItemsPerProducer;
      size_t edit = 0;
      while (next < end) {
        const size_t batch_size = std::min<size_t>(
            end - next, static_cast<size_t>(1 + rng.UniformIndex(12)));
        std::vector<Item> batch;
        for (size_t i = 0; i < batch_size; ++i) {
          batch.push_back(ProducedItem(next++, num_users));
        }
        auto ticket = service->EnqueueItems(std::move(batch));
        if (!ticket.ok()) {
          enqueue_errors.fetch_add(1);
        } else {
          tickets.push_back(std::move(ticket).value());
        }
        if (p == 0 && edit < edits.size() && rng.Bernoulli(0.3)) {
          const auto edit_ticket = service->EnqueueAddFriendship(
              edits[edit].first, edits[edit].second);
          if (!edit_ticket.ok()) enqueue_errors.fetch_add(1);
          ++edit;
        }
      }
      // Producer 0 flushes any edits it did not get to probabilistically.
      if (p == 0) {
        for (; edit < edits.size(); ++edit) {
          const auto edit_ticket = service->EnqueueAddFriendship(
              edits[edit].first, edits[edit].second);
          if (!edit_ticket.ok()) enqueue_errors.fetch_add(1);
        }
      }
      // Every batch this producer enqueued must eventually apply cleanly.
      for (const IngestTicket& ticket : tickets) {
        if (!ticket.Wait().ok()) enqueue_errors.fetch_add(1);
      }
    });
  }
  // A reader hammers the query path throughout (mid-run results are
  // checked for well-formedness only; exactness is asserted post-hoc).
  std::thread reader([&] {
    SearchRequest request;
    request.query.user = 11;
    request.query.tags = {5};
    request.query.k = 10;
    request.query.alpha = 0.5;
    while (!done.load(std::memory_order_acquire)) {
      const auto response = service->Search(request);
      if (!response.ok()) {
        enqueue_errors.fetch_add(1);
        continue;
      }
      EXPECT_LE(response.value().items.size(), 10u);
    }
  });

  for (auto& producer : producers) producer.join();
  ASSERT_TRUE(service->Flush().ok());
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(enqueue_errors.load(), 0);
  ASSERT_EQ(service->num_items(), initial_items + kTotalProduced);

  // Reconstruct the admitted interleave from the markers: catalogue
  // position -> which produced item landed there. Every marker must
  // appear exactly once.
  std::vector<size_t> order;
  std::vector<char> seen(kTotalProduced, 0);
  order.reserve(kTotalProduced);
  for (size_t id = initial_items; id < initial_items + kTotalProduced;
       ++id) {
    size_t marker = kTotalProduced;  // invalid
    for (const TagId tag : service->TagsOf(static_cast<ItemId>(id))) {
      if (tag >= kMarkerBase) marker = tag - kMarkerBase;
    }
    ASSERT_LT(marker, kTotalProduced) << "item " << id << " has no marker";
    ASSERT_FALSE(seen[marker]) << "marker " << marker << " appears twice";
    seen[marker] = 1;
    order.push_back(marker);
  }

  // Baseline: the same corpus ingested SERIALLY in exactly that order,
  // same edges, manual Compact() — the reference semantics.
  auto baseline = BuildBackend(config, shards);
  std::vector<Item> replay;
  replay.reserve(kTotalProduced);
  for (const size_t marker : order) {
    replay.push_back(ProducedItem(marker, num_users));
  }
  const auto replay_ids = baseline->AddItems(replay);
  ASSERT_TRUE(replay_ids.ok()) << replay_ids.status().ToString();
  for (const auto& [u, v] : edits) {
    ASSERT_TRUE(baseline->AddFriendship(u, v).ok());
  }
  ASSERT_TRUE(baseline->Compact().ok());

  // Quiesce the pipeline (keeps the comparison free of in-flight state;
  // the background compactor may have compacted SOME shards of `service`
  // — results must not depend on that).
  ASSERT_TRUE(service->StopAutoCompaction().ok());
  ASSERT_TRUE(service->StopIngest().ok());

  const std::string label = "shards=" + std::to_string(shards) +
                            " mode=" + std::to_string(static_cast<int>(mode));
  const std::vector<SearchRequest> requests = BuildRequests(config);
  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectSameResponse(baseline->Search(requests[i]),
                       service->Search(requests[i]),
                       label + " request " + std::to_string(i));
  }
  // And once more after the queued service compacts fully: still
  // identical, now with zero tail everywhere.
  ASSERT_TRUE(service->Compact().ok());
  EXPECT_EQ(service->unindexed_items(), 0u);
  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectSameResponse(baseline->Search(requests[i]),
                       service->Search(requests[i]),
                       label + " post-compact request " + std::to_string(i));
  }
}

TEST(IngestInvarianceTest, LocalBackendBlockingQueue) {
  RunScenario(/*shards=*/0, BackpressureMode::kBlock, /*seed=*/21);
}

TEST(IngestInvarianceTest, OneShardCoalescingQueue) {
  RunScenario(/*shards=*/1, BackpressureMode::kCoalesce, /*seed=*/22);
}

TEST(IngestInvarianceTest, TwoShardsBlockingQueue) {
  RunScenario(/*shards=*/2, BackpressureMode::kBlock, /*seed=*/23);
}

TEST(IngestInvarianceTest, FourShardsCoalescingQueue) {
  RunScenario(/*shards=*/4, BackpressureMode::kCoalesce, /*seed=*/24);
}

}  // namespace
}  // namespace amici
