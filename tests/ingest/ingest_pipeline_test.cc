// IngestPipeline tests: the drain/coalesce logic (driven deterministically
// through ApplyIngestOps with a recording sink), ticket semantics, the
// Flush() read-your-writes barrier against a real service, and error
// routing when a bad batch shares a drain cycle with healthy ones.

#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "ingest/ingest_pipeline.h"
#include "service/local_search_service.h"
#include "workload/dataset_generator.h"

namespace amici {
namespace {

Item TestItem(UserId owner, TagId tag, float quality = 0.5f) {
  Item item;
  item.owner = owner;
  item.tags = {tag};
  item.quality = quality;
  return item;
}

/// Records every sink call; items are accepted with densely assigned ids
/// unless the owner is >= user_limit (mimicking engine validation).
class RecordingSink final : public IngestSink {
 public:
  explicit RecordingSink(UserId user_limit = 1000) : user_limit_(user_limit) {}

  Result<std::vector<ItemId>> AddItems(std::span<const Item> items) override {
    ++add_calls_;
    for (const Item& item : items) {
      if (item.owner >= user_limit_) {
        return Status::InvalidArgument("owner outside the social graph");
      }
    }
    std::vector<ItemId> ids;
    for (const Item& item : items) {
      ids.push_back(static_cast<ItemId>(accepted_.size()));
      accepted_.push_back(item);
    }
    batch_sizes_.push_back(items.size());
    return ids;
  }

  Status AddFriendship(UserId u, UserId v) override {
    edits_.push_back({u, v});
    return Status::Ok();
  }

  Status RemoveFriendship(UserId /*u*/, UserId /*v*/) override {
    return Status::NotFound("no such friendship");
  }

  int add_calls() const { return add_calls_; }
  const std::vector<Item>& accepted() const { return accepted_; }
  const std::vector<size_t>& batch_sizes() const { return batch_sizes_; }
  const std::vector<std::pair<UserId, UserId>>& edits() const {
    return edits_;
  }

 private:
  UserId user_limit_;
  int add_calls_ = 0;
  std::vector<Item> accepted_;
  std::vector<size_t> batch_sizes_;
  std::vector<std::pair<UserId, UserId>> edits_;
};

std::vector<IngestOp> DrainQueue(IngestQueue* queue) { return queue->PopAll(); }

TEST(ApplyIngestOpsTest, CoalescesAdjacentBatchesIntoOneSinkCall) {
  IngestQueue queue({/*capacity=*/16, BackpressureMode::kBlock});
  const auto t1 = queue.PushItems({TestItem(1, 1), TestItem(1, 2)});
  const auto t2 = queue.PushItems({TestItem(2, 3)});
  const auto t3 = queue.PushItems({TestItem(3, 4), TestItem(3, 5)});
  ASSERT_TRUE(t1.ok() && t2.ok() && t3.ok());

  RecordingSink sink;
  ApplyStats stats;
  ApplyIngestOps(&sink, DrainQueue(&queue), &stats);

  // Three enqueued batches, ONE AddItems call (one snapshot publish).
  EXPECT_EQ(sink.add_calls(), 1);
  EXPECT_EQ(stats.apply_calls, 1u);
  EXPECT_EQ(stats.items_applied, 5u);
  EXPECT_EQ(stats.errors, 0u);
  ASSERT_EQ(sink.batch_sizes().size(), 1u);
  EXPECT_EQ(sink.batch_sizes()[0], 5u);

  // Ids are split back per ticket, in admission order.
  EXPECT_EQ(t1.value().ids(), (std::vector<ItemId>{0, 1}));
  EXPECT_EQ(t2.value().ids(), (std::vector<ItemId>{2}));
  EXPECT_EQ(t3.value().ids(), (std::vector<ItemId>{3, 4}));
  EXPECT_TRUE(t1.value().Wait().ok());
  EXPECT_TRUE(t3.value().Wait().ok());
}

TEST(ApplyIngestOpsTest, EditsSplitTheCoalescingRun) {
  IngestQueue queue({/*capacity=*/16, BackpressureMode::kBlock});
  ASSERT_TRUE(queue.PushItems({TestItem(1, 1)}).ok());
  const auto edit = queue.PushAddFriendship(7, 8);
  ASSERT_TRUE(edit.ok());
  ASSERT_TRUE(queue.PushItems({TestItem(2, 2)}).ok());

  RecordingSink sink;
  ApplyStats stats;
  ApplyIngestOps(&sink, DrainQueue(&queue), &stats);

  // The edit is an ordering barrier: two AddItems calls, edit between.
  EXPECT_EQ(sink.add_calls(), 2);
  EXPECT_EQ(stats.edits_applied, 1u);
  ASSERT_EQ(sink.edits().size(), 1u);
  EXPECT_EQ(sink.edits()[0], (std::pair<UserId, UserId>{7, 8}));
  EXPECT_TRUE(edit.value().Wait().ok());
}

TEST(ApplyIngestOpsTest, BadBatchFailsAloneHealthyNeighboursSurvive) {
  IngestQueue queue({/*capacity=*/16, BackpressureMode::kBlock});
  const auto good1 = queue.PushItems({TestItem(1, 1)});
  const auto bad = queue.PushItems({TestItem(/*owner=*/9999, 2)});
  const auto good2 = queue.PushItems({TestItem(2, 3)});
  ASSERT_TRUE(good1.ok() && bad.ok() && good2.ok());

  RecordingSink sink(/*user_limit=*/100);
  ApplyStats stats;
  ApplyIngestOps(&sink, DrainQueue(&queue), &stats);

  // The combined call is rejected; the per-batch fallback lands the
  // error on the bad ticket only, and the good batches still apply.
  EXPECT_TRUE(good1.value().Wait().ok());
  EXPECT_TRUE(good2.value().Wait().ok());
  const Status bad_status = bad.value().Wait();
  ASSERT_FALSE(bad_status.ok());
  EXPECT_EQ(bad_status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(stats.errors, 1u);
  ASSERT_EQ(sink.accepted().size(), 2u);
  EXPECT_EQ(sink.accepted()[0].owner, 1u);
  EXPECT_EQ(sink.accepted()[1].owner, 2u);
  // Ids stay dense across the skipped batch.
  EXPECT_EQ(good1.value().ids(), (std::vector<ItemId>{0}));
  EXPECT_EQ(good2.value().ids(), (std::vector<ItemId>{1}));
}

TEST(ApplyIngestOpsTest, EditErrorsLandOnTheirTickets) {
  IngestQueue queue({/*capacity=*/16, BackpressureMode::kBlock});
  const auto remove = queue.PushRemoveFriendship(1, 2);
  ASSERT_TRUE(remove.ok());
  RecordingSink sink;
  ApplyStats stats;
  ApplyIngestOps(&sink, DrainQueue(&queue), &stats);
  EXPECT_EQ(remove.value().Wait().code(), StatusCode::kNotFound);
  EXPECT_EQ(stats.errors, 1u);
}

// --- Pipeline-with-writer-thread tests against a real service ----------

std::unique_ptr<LocalSearchService> BuildService() {
  DatasetConfig config = SmallDataset();
  config.num_users = 200;
  config.num_tags = 100;
  config.items_per_user = 2.0;
  Dataset dataset = GenerateDataset(config).value();
  auto service = LocalSearchService::Build(std::move(dataset.graph),
                                           std::move(dataset.store));
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(service).value();
}

TEST(IngestPipelineTest, FlushIsAReadYourWritesBarrier) {
  auto service = BuildService();
  const size_t initial = service->num_items();
  ASSERT_TRUE(service->StartIngest().ok());
  EXPECT_TRUE(service->ingest_running());

  constexpr TagId kFreshTag = 99;
  std::vector<IngestTicket> tickets;
  for (int b = 0; b < 10; ++b) {
    std::vector<Item> batch;
    for (int i = 0; i < 5; ++i) {
      batch.push_back(TestItem(static_cast<UserId>(b * 5 + i), kFreshTag,
                               0.9f));
    }
    auto ticket = service->EnqueueItems(std::move(batch));
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    tickets.push_back(std::move(ticket).value());
  }
  ASSERT_TRUE(service->Flush().ok());

  // Everything enqueued before the Flush is applied and queryable.
  EXPECT_EQ(service->num_items(), initial + 50);
  for (const IngestTicket& ticket : tickets) {
    EXPECT_TRUE(ticket.done());
    EXPECT_TRUE(ticket.Wait().ok());
    EXPECT_EQ(ticket.ids().size(), 5u);
  }
  SearchRequest request;
  request.query.user = 3;
  request.query.tags = {kFreshTag};
  request.query.k = 60;
  request.query.alpha = 0.2;
  const auto response = service->Search(request);
  ASSERT_TRUE(response.ok());
  EXPECT_GE(response.value().items.size(), 50u);
  // The tail scan the fresh items cost is visible in the response stats.
  EXPECT_GT(response.value().stats.tail_items_scanned, 0u);

  const IngestCounters counters = service->ingest_counters();
  EXPECT_EQ(counters.batches_enqueued, 10u);
  EXPECT_EQ(counters.items_applied, 50u);
  EXPECT_GE(counters.drain_cycles, 1u);
  EXPECT_LE(counters.apply_calls, counters.batches_enqueued);
  // Items flowed through the drain, so the ingest-rate EWMA is live (its
  // exact value depends on wall-clock timing; sign is the invariant).
  EXPECT_GT(counters.items_per_sec_ewma, 0.0);
  ASSERT_TRUE(service->StopIngest().ok());
  EXPECT_FALSE(service->ingest_running());
}

TEST(IngestPipelineTest, RateEwmaIsZeroWithoutAppliedItems) {
  auto service = BuildService();
  // No pipeline at all: the zeroed counters include a zero rate.
  EXPECT_EQ(service->ingest_counters().items_per_sec_ewma, 0.0);
  ASSERT_TRUE(service->StartIngest().ok());
  // Running but idle: still zero until a drain cycle applies items.
  EXPECT_EQ(service->ingest_counters().items_per_sec_ewma, 0.0);
  ASSERT_TRUE(service->StopIngest().ok());
}

TEST(IngestPipelineTest, FriendshipEditsFlowThroughTheQueue) {
  auto service = BuildService();
  ASSERT_TRUE(service->StartIngest().ok());

  // Find a non-edge to add.
  UserId u = 0, v = 0;
  [&] {
    for (u = 0; u < 10; ++u) {
      const auto friends = service->FriendsOf(u);
      for (v = u + 1; v < 100; ++v) {
        bool is_friend = false;
        for (const UserId f : friends) is_friend |= (f == v);
        if (!is_friend) return;
      }
    }
  }();
  const auto add = service->EnqueueAddFriendship(u, v);
  ASSERT_TRUE(add.ok());
  ASSERT_TRUE(service->Flush().ok());
  EXPECT_TRUE(add.value().Wait().ok());
  bool now_friends = false;
  for (const UserId f : service->FriendsOf(u)) now_friends |= (f == v);
  EXPECT_TRUE(now_friends);

  // Structural rejections (self-edge, out-of-range endpoint) never reach
  // the queue, pipeline or not — no queued edit could make them valid.
  EXPECT_EQ(service->EnqueueAddFriendship(u, u).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service
                ->EnqueueAddFriendship(
                    u, static_cast<UserId>(service->num_users()))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service->EnqueueRemoveFriendship(v, v).status().code(),
            StatusCode::kInvalidArgument);
  // With the pipeline RUNNING, a duplicate add's verdict rides the
  // ticket: a queued Remove could legitimately precede it, so the edge
  // cannot reject it against the published graph without breaking the
  // queue's ordering contract...
  const auto dup = service->EnqueueAddFriendship(u, v);
  ASSERT_TRUE(dup.ok());
  ASSERT_TRUE(service->Flush().ok());
  EXPECT_EQ(dup.value().Wait().code(), StatusCode::kAlreadyExists);
  // ... and the ordered sequence the edge must NOT break: Remove then
  // re-Add of the same edge, back to back, both succeed on their tickets.
  const auto ordered_remove = service->EnqueueRemoveFriendship(u, v);
  const auto ordered_re_add = service->EnqueueAddFriendship(u, v);
  ASSERT_TRUE(ordered_remove.ok());
  ASSERT_TRUE(ordered_re_add.ok());
  ASSERT_TRUE(service->Flush().ok());
  EXPECT_TRUE(ordered_remove.value().Wait().ok());
  EXPECT_TRUE(ordered_re_add.value().Wait().ok());

  const auto remove = service->EnqueueRemoveFriendship(u, v);
  ASSERT_TRUE(remove.ok());
  ASSERT_TRUE(service->Flush().ok());
  EXPECT_TRUE(remove.value().Wait().ok());
  ASSERT_TRUE(service->StopIngest().ok());

  // Synchronous path (no pipeline): no queued edit can reorder ahead, so
  // existence verdicts are exact and come back AT THE EDGE — no ticket.
  EXPECT_EQ(service->EnqueueRemoveFriendship(u, v).status().code(),
            StatusCode::kNotFound);
  const auto sync_add = service->EnqueueAddFriendship(u, v);
  ASSERT_TRUE(sync_add.ok());  // applied synchronously
  EXPECT_EQ(service->EnqueueAddFriendship(u, v).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(IngestPipelineTest, SynchronousFallbackWithoutPipeline) {
  auto service = BuildService();
  const size_t initial = service->num_items();
  // No StartIngest: EnqueueItems applies synchronously and the ticket is
  // already complete — callers speak one API in both deployment modes.
  const auto ticket = service->EnqueueItems({TestItem(1, 5), TestItem(2, 6)});
  ASSERT_TRUE(ticket.ok());
  EXPECT_TRUE(ticket.value().done());
  EXPECT_TRUE(ticket.value().Wait().ok());
  EXPECT_EQ(ticket.value().ids().size(), 2u);
  EXPECT_EQ(service->num_items(), initial + 2);
  EXPECT_TRUE(service->Flush().ok());

  const auto bad = service->EnqueueItems({TestItem(kInvalidUserId, 1)});
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad.value().Wait().ok());
}

TEST(IngestPipelineTest, StopDrainsEverythingAlreadyQueued) {
  auto service = BuildService();
  const size_t initial = service->num_items();
  ASSERT_TRUE(service->StartIngest().ok());
  std::vector<IngestTicket> tickets;
  for (int b = 0; b < 20; ++b) {
    auto ticket = service->EnqueueItems({TestItem(static_cast<UserId>(b), 7)});
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(std::move(ticket).value());
  }
  ASSERT_TRUE(service->StopIngest().ok());
  for (const IngestTicket& ticket : tickets) {
    EXPECT_TRUE(ticket.Wait().ok());
  }
  EXPECT_EQ(service->num_items(), initial + 20);
  // Enqueue after stop falls back to the synchronous path.
  EXPECT_TRUE(service->EnqueueItems({TestItem(1, 8)}).ok());
  EXPECT_EQ(service->num_items(), initial + 21);
}

TEST(IngestPipelineTest, StartTwiceIsRejected) {
  auto service = BuildService();
  ASSERT_TRUE(service->StartIngest().ok());
  EXPECT_EQ(service->StartIngest().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(service->StopIngest().ok());
  ASSERT_TRUE(service->StartIngest().ok());  // restart after stop is fine
}

}  // namespace
}  // namespace amici
