// CompactionPolicy decision table, CompactionScheduler behaviour against
// a fake target (deterministic via PollOnce), and the end-to-end
// background path against real Local / Sharded services: tails fold away
// without anyone calling Compact(), per shard, and the EngineStats
// trigger inputs reset afterwards.

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "ingest/compaction_policy.h"
#include "ingest/compaction_scheduler.h"
#include "service/local_search_service.h"
#include "service/sharded_search_service.h"
#include "workload/dataset_generator.h"

namespace amici {
namespace {

TEST(AdaptiveCompactionPolicyTest, DecisionTable) {
  AdaptiveCompactionPolicy::Options options;
  options.max_tail_items = 100;
  options.max_tail_scan_ms = 2.0;
  options.min_tail_items = 10;
  const AdaptiveCompactionPolicy policy(options);

  // An empty tail never triggers, whatever the (stale) latency says.
  EXPECT_FALSE(policy.ShouldCompact({0, 1000, 50.0}));
  // Tail-size trigger, latency irrelevant.
  EXPECT_TRUE(policy.ShouldCompact({100, 1000, 0.0}));
  EXPECT_TRUE(policy.ShouldCompact({5000, 0, 0.0}));
  // Latency trigger requires the minimum tail...
  EXPECT_TRUE(policy.ShouldCompact({10, 1000, 2.5, 10}));
  EXPECT_FALSE(policy.ShouldCompact({9, 1000, 2.5, 9}));
  // ...and an actual overrun.
  EXPECT_FALSE(policy.ShouldCompact({50, 1000, 2.0, 50}));
  // Small quiet tail: leave it alone.
  EXPECT_FALSE(policy.ShouldCompact({50, 1000, 0.1, 50}));
  // A STALE latency observation — taken against a bigger, pre-compaction
  // tail (a query pinned to the old snapshot wrote its measurement after
  // the compaction reset) — must not re-trigger against the small new
  // tail; tail-size still triggers regardless.
  EXPECT_FALSE(policy.ShouldCompact({70, 1000, 50.0, 50000}));
  EXPECT_TRUE(policy.ShouldCompact({100, 1000, 50.0, 50000}));
  // An observation of a PREFIX of the current (grown) tail is live.
  EXPECT_TRUE(policy.ShouldCompact({80, 1000, 2.5, 70}));
}

/// A compactable fleet where the test scripts every shard's signals.
class FakeTarget final : public CompactionTarget {
 public:
  explicit FakeTarget(size_t shards) : signals_(shards), compacted_(shards) {}

  size_t num_shards() const override { return signals_.size(); }
  CompactionSignals ShardSignals(size_t shard) const override {
    return signals_[shard];
  }
  Status CompactShard(size_t shard, CompactionOutcome* outcome) override {
    if (fail_) return Status::Internal("injected failure");
    ++compacted_[shard];
    if (outcome != nullptr) {
      *outcome = CompactionOutcome{};
      outcome->published = true;
      outcome->merged = merge_mode_;
      outcome->items_merged = signals_[shard].tail_items;
    }
    signals_[shard] = CompactionSignals{};  // compaction empties the tail
    return Status::Ok();
  }

  std::vector<CompactionSignals> signals_;
  std::vector<int> compacted_;
  bool fail_ = false;
  bool merge_mode_ = false;  // mode the fake reports to the scheduler
};

TEST(CompactionSchedulerTest, PollOnceCompactsExactlyTheFiringShards) {
  FakeTarget target(3);
  auto policy = std::make_shared<AdaptiveCompactionPolicy>(
      AdaptiveCompactionPolicy::Options{/*max_tail_items=*/100,
                                        /*max_tail_scan_ms=*/2.0,
                                        /*min_tail_items=*/10});
  CompactionScheduler::Options options;
  options.policy = policy;
  options.poll_interval_ms = 1e6;  // effectively: only PollOnce acts
  CompactionScheduler scheduler(&target, options);

  target.signals_[0] = {200, 0, 0.0};  // fires on tail size
  target.signals_[1] = {50, 0, 0.5};   // healthy: stays put
  target.signals_[2] = {20, 0, 9.0};   // fires on scan latency
  EXPECT_EQ(scheduler.PollOnce(), 2u);
  EXPECT_EQ(target.compacted_, (std::vector<int>{1, 0, 1}));
  EXPECT_EQ(scheduler.compactions_triggered(), 2u);
  EXPECT_EQ(scheduler.merge_compactions_triggered(), 0u);
  EXPECT_EQ(scheduler.rebuild_compactions_triggered(), 2u);

  // Signals were reset by the compaction: a second poll is a no-op —
  // per-shard triggering, not fleet-wide drumbeats.
  EXPECT_EQ(scheduler.PollOnce(), 0u);
  EXPECT_EQ(scheduler.compactions_triggered(), 2u);

  // The scheduler records which MODE each triggered compaction took.
  target.merge_mode_ = true;
  target.signals_[1] = {500, 0, 0.0};
  EXPECT_EQ(scheduler.PollOnce(), 1u);
  EXPECT_EQ(scheduler.merge_compactions_triggered(), 1u);
  EXPECT_EQ(scheduler.rebuild_compactions_triggered(), 2u);
  scheduler.Stop();
}

TEST(CompactionSchedulerTest, CountsErrorsAndKeepsGoing) {
  FakeTarget target(2);
  CompactionScheduler::Options options;
  options.poll_interval_ms = 1e6;
  CompactionScheduler scheduler(&target, options);
  target.signals_[0] = {100000, 0, 0.0};
  target.fail_ = true;
  EXPECT_EQ(scheduler.PollOnce(), 0u);
  EXPECT_EQ(scheduler.compaction_errors(), 1u);
  target.fail_ = false;
  EXPECT_EQ(scheduler.PollOnce(), 1u);
  scheduler.Stop();
}

TEST(CompactionSchedulerTest, BackgroundThreadPollsOnItsOwn) {
  FakeTarget target(1);
  // Over the default AdaptiveCompactionPolicy's tail-size threshold.
  target.signals_[0] = {100000, 0, 0.0};
  CompactionScheduler::Options options;
  options.poll_interval_ms = 1.0;
  CompactionScheduler scheduler(&target, options);
  // No PollOnce from the test: the scheduler thread must find the tail.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (scheduler.compactions_triggered() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  scheduler.Stop();
  EXPECT_GE(scheduler.compactions_triggered(), 1u);
  EXPECT_EQ(target.compacted_[0], 1);  // signals reset: fired exactly once
}

// --- End-to-end against real services ---------------------------------

Item RandomishItem(int i) {
  Item item;
  item.owner = static_cast<UserId>(i % 150);
  item.tags = {static_cast<TagId>(i % 80)};
  item.quality = 0.25f + 0.5f * static_cast<float>(i % 7) / 7.0f;
  return item;
}

template <typename ServiceT>
std::unique_ptr<ServiceT> BuildRealService(size_t shards);

template <>
std::unique_ptr<LocalSearchService> BuildRealService(size_t) {
  DatasetConfig config = SmallDataset();
  config.num_users = 150;
  config.num_tags = 80;
  Dataset dataset = GenerateDataset(config).value();
  return LocalSearchService::Build(std::move(dataset.graph),
                                   std::move(dataset.store))
      .value();
}

template <>
std::unique_ptr<ShardedSearchService> BuildRealService(size_t shards) {
  DatasetConfig config = SmallDataset();
  config.num_users = 150;
  config.num_tags = 80;
  Dataset dataset = GenerateDataset(config).value();
  ShardedSearchService::Options options;
  options.num_shards = shards;
  return ShardedSearchService::Build(std::move(dataset.graph),
                                     std::move(dataset.store),
                                     std::move(options))
      .value();
}

template <typename ServiceT>
void RunAutoCompactionScenario(size_t shards) {
  auto service = BuildRealService<ServiceT>(shards);
  auto policy = std::make_shared<AdaptiveCompactionPolicy>(
      AdaptiveCompactionPolicy::Options{/*max_tail_items=*/40,
                                        /*max_tail_scan_ms=*/1e9,
                                        /*min_tail_items=*/10});
  CompactionScheduler::Options options;
  options.policy = policy;
  options.poll_interval_ms = 1.0;
  ASSERT_TRUE(service->StartAutoCompaction(options).ok());
  EXPECT_TRUE(service->auto_compaction_running());
  EXPECT_EQ(service->StartAutoCompaction(options).code(),
            StatusCode::kFailedPrecondition);

  // Ingest well past the tail threshold; the scheduler must fold the
  // tails away without any manual Compact() call.
  std::vector<Item> batch;
  for (int i = 0; i < 600; ++i) batch.push_back(RandomishItem(i));
  ASSERT_TRUE(service->AddItems(batch).ok());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    // Every shard's tail must drop below the trigger; with the whole
    // corpus ingested up front it goes to ZERO once each triggered
    // shard's compaction lands.
    size_t worst = 0;
    for (size_t s = 0; s < service->num_shards(); ++s) {
      worst = std::max(worst, service->ShardSignals(s).tail_items);
    }
    if (worst < 40 && service->auto_compactions() > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(service->auto_compactions(), 1u);
  size_t worst = 0;
  for (size_t s = 0; s < service->num_shards(); ++s) {
    worst = std::max(worst, service->ShardSignals(s).tail_items);
  }
  EXPECT_LT(worst, 40u);
  ASSERT_TRUE(service->StopAutoCompaction().ok());
  EXPECT_FALSE(service->auto_compaction_running());
  // The counter survives the scheduler's retirement.
  EXPECT_GE(service->auto_compactions(), 1u);

  // Queries still work and agree with the corpus size.
  SearchRequest request;
  request.query.user = 5;
  request.query.tags = {3};
  request.query.k = 10;
  request.query.alpha = 0.5;
  EXPECT_TRUE(service->Search(request).ok());
}

TEST(AutoCompactionTest, LocalBackendCompactsInTheBackground) {
  RunAutoCompactionScenario<LocalSearchService>(1);
}

TEST(AutoCompactionTest, ShardedBackendCompactsPerShard) {
  RunAutoCompactionScenario<ShardedSearchService>(3);
}

}  // namespace
}  // namespace amici
