// IngestQueue unit tests: admission order, tickets, and the three
// backpressure modes — all deterministic (no consumer thread; the test IS
// the consumer).

#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "ingest/ingest_queue.h"

namespace amici {
namespace {

Item TestItem(UserId owner, TagId tag) {
  Item item;
  item.owner = owner;
  item.tags = {tag};
  item.quality = 0.5f;
  return item;
}

std::vector<Item> TestBatch(UserId owner, TagId tag, size_t count) {
  return std::vector<Item>(count, TestItem(owner, tag));
}

TEST(IngestQueueTest, PreservesAdmissionOrderAcrossOpKinds) {
  IngestQueue queue({/*capacity=*/16, BackpressureMode::kBlock});
  const auto t1 = queue.PushItems(TestBatch(1, 10, 3));
  const auto t2 = queue.PushAddFriendship(4, 5);
  const auto t3 = queue.PushItems(TestBatch(2, 20, 2));
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(t3.ok());
  EXPECT_LT(t1.value().sequence(), t2.value().sequence());
  EXPECT_LT(t2.value().sequence(), t3.value().sequence());
  EXPECT_EQ(queue.last_sequence(), t3.value().sequence());
  EXPECT_EQ(queue.pending_ops(), 3u);

  const std::vector<IngestOp> ops = queue.PopAll();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].kind, IngestOp::Kind::kItems);
  EXPECT_EQ(ops[0].items.size(), 3u);
  EXPECT_EQ(ops[1].kind, IngestOp::Kind::kAddFriendship);
  EXPECT_EQ(ops[1].u, 4u);
  EXPECT_EQ(ops[1].v, 5u);
  EXPECT_EQ(ops[2].kind, IngestOp::Kind::kItems);
  EXPECT_EQ(ops[2].items.size(), 2u);
  EXPECT_EQ(queue.pending_ops(), 0u);

  const IngestCounters counters = queue.counters();
  EXPECT_EQ(counters.batches_enqueued, 2u);
  EXPECT_EQ(counters.items_enqueued, 5u);
  EXPECT_EQ(counters.edits_enqueued, 1u);
  EXPECT_EQ(counters.max_queue_depth, 3u);
}

TEST(IngestQueueTest, EmptyBatchCompletesWithoutQueueing) {
  IngestQueue queue({/*capacity=*/4, BackpressureMode::kBlock});
  const auto ticket = queue.PushItems({});
  ASSERT_TRUE(ticket.ok());
  EXPECT_TRUE(ticket.value().done());
  EXPECT_TRUE(ticket.value().Wait().ok());
  EXPECT_EQ(queue.pending_ops(), 0u);
}

TEST(IngestQueueTest, RejectModeShedsLoadAtCapacity) {
  IngestQueue queue({/*capacity=*/2, BackpressureMode::kReject});
  EXPECT_TRUE(queue.PushItems(TestBatch(1, 1, 1)).ok());
  EXPECT_TRUE(queue.PushItems(TestBatch(1, 2, 1)).ok());
  const auto rejected = queue.PushItems(TestBatch(1, 3, 1));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  // Edits shed exactly the same way.
  const auto edit = queue.PushAddFriendship(0, 1);
  ASSERT_FALSE(edit.ok());
  EXPECT_EQ(edit.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(queue.counters().rejected, 2u);

  // Draining frees the slots again.
  EXPECT_EQ(queue.PopAll().size(), 2u);
  EXPECT_TRUE(queue.PushItems(TestBatch(1, 4, 1)).ok());
}

TEST(IngestQueueTest, CoalesceModeFoldsBatchesIntoTheTailOp) {
  IngestQueue queue({/*capacity=*/2, BackpressureMode::kCoalesce});
  const auto t1 = queue.PushItems(TestBatch(1, 1, 2));
  const auto t2 = queue.PushItems(TestBatch(2, 2, 3));
  const auto t3 = queue.PushItems(TestBatch(3, 3, 4));  // folds into t2's op
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(t3.ok());
  EXPECT_EQ(queue.pending_ops(), 2u);
  EXPECT_EQ(queue.counters().batches_coalesced, 1u);

  const std::vector<IngestOp> ops = queue.PopAll();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].items.size(), 2u);
  ASSERT_EQ(ops[1].slices.size(), 2u);
  EXPECT_EQ(ops[1].items.size(), 7u);
  EXPECT_EQ(ops[1].slices[0].count, 3u);
  EXPECT_EQ(ops[1].slices[1].count, 4u);
  // Fold order preserved: t2's items precede t3's.
  EXPECT_EQ(ops[1].items[0].owner, 2u);
  EXPECT_EQ(ops[1].items[3].owner, 3u);
}

TEST(IngestQueueTest, CoalesceModeNeverFoldsAcrossAnEdit) {
  IngestQueue queue({/*capacity=*/2, BackpressureMode::kCoalesce});
  ASSERT_TRUE(queue.PushItems(TestBatch(1, 1, 1)).ok());
  ASSERT_TRUE(queue.PushAddFriendship(0, 1).ok());  // fills the queue
  // The tail is now an edit: the batch must NOT fold into the earlier
  // items op (that would reorder it before the edit) — the producer
  // blocks until the consumer drains instead.
  std::thread producer([&] {
    ASSERT_TRUE(queue.PushItems(TestBatch(2, 2, 1)).ok());
  });
  while (queue.counters().producer_waits == 0) std::this_thread::yield();
  std::vector<IngestOp> ops = queue.PopAll();
  while (ops.size() < 3) {
    for (IngestOp& op : queue.PopAll()) ops.push_back(std::move(op));
  }
  producer.join();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].kind, IngestOp::Kind::kItems);
  EXPECT_EQ(ops[1].kind, IngestOp::Kind::kAddFriendship);
  EXPECT_EQ(ops[2].kind, IngestOp::Kind::kItems);
  EXPECT_EQ(queue.counters().batches_coalesced, 0u);
}

TEST(IngestQueueTest, CoalesceModeStopsAbsorbingAtTheItemCap) {
  IngestQueue::Options options;
  options.capacity = 1;
  options.backpressure = BackpressureMode::kCoalesce;
  options.max_coalesced_items = 5;
  IngestQueue queue(options);
  ASSERT_TRUE(queue.PushItems(TestBatch(1, 1, 3)).ok());
  ASSERT_TRUE(queue.PushItems(TestBatch(2, 2, 2)).ok());  // folds: 5 items
  // The tail batch is at max_coalesced_items: the next producer BLOCKS
  // (bounded backlog) instead of growing it without limit.
  std::thread producer([&] {
    ASSERT_TRUE(queue.PushItems(TestBatch(3, 3, 1)).ok());
  });
  while (queue.counters().producer_waits == 0) std::this_thread::yield();
  std::vector<IngestOp> ops = queue.PopAll();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].items.size(), 5u);
  while (queue.PopAll().empty()) {
  }
  producer.join();
  EXPECT_EQ(queue.counters().batches_coalesced, 1u);
}

TEST(IngestQueueTest, BlockModeWaitsForTheConsumer) {
  IngestQueue queue({/*capacity=*/1, BackpressureMode::kBlock});
  ASSERT_TRUE(queue.PushItems(TestBatch(1, 1, 1)).ok());

  std::thread producer([&] {
    // Blocks until the main thread drains, then succeeds.
    const auto ticket = queue.PushItems(TestBatch(2, 2, 1));
    EXPECT_TRUE(ticket.ok());
  });
  // The queue is at capacity, so the producer MUST register a wait
  // before anything else can happen; only then drain.
  while (queue.counters().producer_waits == 0) std::this_thread::yield();
  size_t seen = 0;
  while (seen < 2) seen += queue.PopAll().size();
  producer.join();
  EXPECT_EQ(seen, 2u);
  EXPECT_EQ(queue.counters().producer_waits, 1u);
}

TEST(IngestQueueTest, CloseRejectsProducersAndDrainsTheRest) {
  IngestQueue queue({/*capacity=*/8, BackpressureMode::kBlock});
  ASSERT_TRUE(queue.PushItems(TestBatch(1, 1, 1)).ok());
  queue.Close();
  const auto after = queue.PushItems(TestBatch(2, 2, 1));
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(queue.PopAll().size(), 1u);  // the pre-close op
  EXPECT_TRUE(queue.PopAll().empty());   // closed and drained
}

TEST(IngestQueueTest, ManyProducersAllOpsArriveExactlyOnce) {
  IngestQueue queue({/*capacity=*/16, BackpressureMode::kBlock});
  constexpr int kProducers = 4;
  constexpr int kBatchesPerProducer = 50;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int b = 0; b < kBatchesPerProducer; ++b) {
        const auto ticket = queue.PushItems(
            TestBatch(static_cast<UserId>(p), static_cast<TagId>(b), 2));
        EXPECT_TRUE(ticket.ok());
      }
    });
  }
  size_t batches = 0;
  size_t items = 0;
  while (batches < kProducers * kBatchesPerProducer) {
    for (const IngestOp& op : queue.PopAll()) {
      batches += op.slices.size();
      items += op.items.size();
    }
  }
  for (auto& producer : producers) producer.join();
  EXPECT_EQ(batches, static_cast<size_t>(kProducers * kBatchesPerProducer));
  EXPECT_EQ(items, batches * 2);
}

}  // namespace
}  // namespace amici
