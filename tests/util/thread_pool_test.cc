#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace amici {
namespace {

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  pool.WaitIdle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&concurrent, &peak] {
      const int now = concurrent.fetch_add(1) + 1;
      int expected = peak.load();
      while (expected < now &&
             !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      concurrent.fetch_sub(1);
    });
  }
  pool.WaitIdle();
  EXPECT_GT(peak.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(1000, [&touched](size_t i) {
    touched[i].fetch_add(1);
  });
  for (size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroCount) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&called](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSmallerThanPool) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.ParallelFor(3, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

}  // namespace
}  // namespace amici
