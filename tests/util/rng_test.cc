#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace amici {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIndexStaysInRange) {
  Rng rng(7);
  for (uint64_t n : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 500; ++i) {
      EXPECT_LT(rng.UniformIndex(n), n);
    }
  }
}

TEST(RngTest, UniformIndexCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformIndex(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsCentered) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRateApproximatesP) {
  Rng rng(29);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(31);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParametersShiftsAndScales) {
  Rng rng(37);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(41);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(43);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(47);
  for (uint64_t n : {10ULL, 100ULL, 1000ULL}) {
    for (uint64_t k : {1ULL, 5ULL, 9ULL}) {
      const auto sample = rng.SampleWithoutReplacement(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<uint64_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (const uint64_t v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullPopulation) {
  Rng rng(53);
  const auto sample = rng.SampleWithoutReplacement(6, 6);
  EXPECT_EQ(sample.size(), 6u);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(RngTest, SampleWithoutReplacementMoreThanPopulationClamps) {
  Rng rng(59);
  const auto sample = rng.SampleWithoutReplacement(4, 10);
  EXPECT_EQ(sample.size(), 4u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(61);
  Rng child = parent.Fork();
  // Parent and child must not mirror each other.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace amici
