#include "util/string_util.h"

#include "gtest/gtest.h"

namespace amici {
namespace {

TEST(SplitTest, BasicFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, PreservesEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(SplitTest, EmptyInputYieldsSingleEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  const std::vector<std::string> parts{"alpha", "beta", "gamma"};
  EXPECT_EQ(Join(parts, ","), "alpha,beta,gamma");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(JoinTest, EmptyAndSingleton) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ", "), "only");
}

TEST(TrimTest, StripsAsciiWhitespace) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("MiXeD 123 Case"), "mixed 123 case");
}

TEST(ThousandsTest, GroupsDigits) {
  EXPECT_EQ(WithThousandsSeparators(0), "0");
  EXPECT_EQ(WithThousandsSeparators(999), "999");
  EXPECT_EQ(WithThousandsSeparators(1000), "1,000");
  EXPECT_EQ(WithThousandsSeparators(1234567), "1,234,567");
  EXPECT_EQ(WithThousandsSeparators(1000000000ULL), "1,000,000,000");
}

TEST(HumanBytesTest, PicksUnits) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.50 KiB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.00 MiB");
}

TEST(StringPrintfTest, FormatsLikePrintf) {
  EXPECT_EQ(StringPrintf("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StringPrintf("no args"), "no args");
}

TEST(StringPrintfTest, LongOutputsAreNotTruncated) {
  const std::string big(500, 'a');
  const std::string out = StringPrintf("%s%s", big.c_str(), big.c_str());
  EXPECT_EQ(out.size(), 1000u);
}

}  // namespace
}  // namespace amici
