#include "util/hash.h"

#include <set>
#include <string>

#include "gtest/gtest.h"

namespace amici {
namespace {

TEST(Fnv1aTest, KnownVectors) {
  // Reference values for 64-bit FNV-1a.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1aTest, SensitiveToEveryByte) {
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("cba"));
  EXPECT_NE(Fnv1a64(std::string("a\0b", 3)), Fnv1a64(std::string("ab", 2)));
}

TEST(Mix64Test, ZeroIsNotFixedPoint) { EXPECT_EQ(Mix64(0), 0u); }

TEST(Mix64Test, SequentialInputsScatter) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 1; i <= 1000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
  // Consecutive outputs should differ in roughly half their bits.
  int total_flips = 0;
  for (uint64_t i = 1; i < 100; ++i) {
    total_flips += __builtin_popcountll(Mix64(i) ^ Mix64(i + 1));
  }
  EXPECT_GT(total_flips / 99, 20);
  EXPECT_LT(total_flips / 99, 44);
}

TEST(HashCombineTest, OrderMatters) {
  EXPECT_NE(HashCombine(HashCombine(0, 1), 2),
            HashCombine(HashCombine(0, 2), 1));
}

TEST(HashCombineTest, DistinctPairsDistinctHashes) {
  std::set<uint64_t> outputs;
  for (uint64_t a = 0; a < 30; ++a) {
    for (uint64_t b = 0; b < 30; ++b) {
      outputs.insert(HashCombine(a, b));
    }
  }
  EXPECT_EQ(outputs.size(), 900u);
}

}  // namespace
}  // namespace amici
