#include "util/zipf.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace amici {
namespace {

TEST(ZipfTest, SamplesStayInDomain) {
  Rng rng(1);
  const ZipfSampler zipf(100, 1.2);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = zipf.Sample(&rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
  }
}

TEST(ZipfTest, SingletonDomain) {
  Rng rng(2);
  const ZipfSampler zipf(1, 1.5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(&rng), 1u);
}

TEST(ZipfTest, RankOneIsMostFrequent) {
  Rng rng(3);
  const ZipfSampler zipf(1000, 1.1);
  std::vector<int> counts(1001, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  for (size_t r = 2; r <= 10; ++r) {
    EXPECT_GE(counts[1], counts[r]) << "rank " << r;
  }
}

TEST(ZipfTest, FrequencyRatioMatchesExponent) {
  // P(1)/P(4) should be ~4^s for Zipf with exponent s.
  Rng rng(5);
  const double s = 1.0;
  const ZipfSampler zipf(10000, s);
  int count1 = 0;
  int count4 = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = zipf.Sample(&rng);
    if (v == 1) ++count1;
    if (v == 4) ++count4;
  }
  ASSERT_GT(count4, 0);
  const double ratio = static_cast<double>(count1) / count4;
  EXPECT_NEAR(ratio, std::pow(4.0, s), 0.8);
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  Rng rng(7);
  const ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(11, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (size_t r = 1; r <= 10; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, 0.1, 0.02)
        << "rank " << r;
  }
}

TEST(ZipfTest, ExponentOneUsesLogBranch) {
  Rng rng(11);
  const ZipfSampler zipf(500, 1.0);
  uint64_t max_seen = 0;
  for (int i = 0; i < 20000; ++i) {
    max_seen = std::max(max_seen, zipf.Sample(&rng));
  }
  // The tail must be reachable.
  EXPECT_GT(max_seen, 50u);
}

TEST(ZipfTest, LargeDomainConstantMemory) {
  Rng rng(13);
  const ZipfSampler zipf(100000000ULL, 1.3);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = zipf.Sample(&rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100000000ULL);
  }
}

TEST(ZipfDeathTest, RejectsEmptyDomain) {
  EXPECT_DEATH(ZipfSampler(0, 1.0), "non-empty");
}

TEST(ZipfDeathTest, RejectsNegativeExponent) {
  EXPECT_DEATH(ZipfSampler(10, -0.5), "non-negative");
}

}  // namespace
}  // namespace amici
