#include "util/file_util.h"

#include <cstdio>
#include <string>

#include "gtest/gtest.h"

namespace amici {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(FileUtilTest, WriteThenReadRoundTrips) {
  const std::string path = TempPath("file_util_roundtrip.bin");
  const std::string full("hello\0world\nbinary\xff", 19);
  ASSERT_TRUE(WriteStringToFile(full, path).ok());
  const auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), full);
  std::remove(path.c_str());
}

TEST(FileUtilTest, EmptyFileRoundTrips) {
  const std::string path = TempPath("file_util_empty.bin");
  ASSERT_TRUE(WriteStringToFile("", path).ok());
  const auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().empty());
  std::remove(path.c_str());
}

TEST(FileUtilTest, OverwriteReplacesContent) {
  const std::string path = TempPath("file_util_overwrite.bin");
  ASSERT_TRUE(WriteStringToFile("long original content", path).ok());
  ASSERT_TRUE(WriteStringToFile("short", path).ok());
  const auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "short");
  std::remove(path.c_str());
}

TEST(FileUtilTest, MissingFileIsIoError) {
  const auto read = ReadFileToString("/nonexistent/deeply/nested/file");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST(FileUtilTest, UnwritablePathIsIoError) {
  EXPECT_EQ(WriteStringToFile("x", "/nonexistent/dir/file").code(),
            StatusCode::kIoError);
}

TEST(FileUtilTest, LargePayloadRoundTrips) {
  const std::string path = TempPath("file_util_large.bin");
  std::string payload;
  payload.reserve(1 << 20);
  for (int i = 0; i < (1 << 20); ++i) {
    payload.push_back(static_cast<char>(i * 31));
  }
  ASSERT_TRUE(WriteStringToFile(payload, path).ok());
  const auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), payload);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace amici
