#include "util/table_printer.h"

#include <sstream>

#include "gtest/gtest.h"

namespace amici {
namespace {

TEST(TablePrinterTest, RendersHeaderRuleAndRows) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"beta", "23"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  // 2 header lines + 2 rows = 4 newline-terminated lines.
  size_t lines = 0;
  for (const char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4u);
}

TEST(TablePrinterTest, ColumnsAlignToWidestCell) {
  TablePrinter table({"h", "x"});
  table.AddRow({"longer-cell", "1"});
  const std::string out = table.ToString();
  std::istringstream stream(out);
  std::string header_line;
  std::string rule_line;
  std::getline(stream, header_line);
  std::getline(stream, rule_line);
  // The rule under the first column must span the widest cell.
  EXPECT_GE(rule_line.find("  "), std::string("longer-cell").size());
}

TEST(TablePrinterTest, NumericCellsRightAligned) {
  TablePrinter table({"metric", "count"});
  table.AddRow({"queries", "5"});
  const std::string out = table.ToString();
  // "count" is 5 wide; the numeric cell "5" must be right-aligned:
  // the row therefore contains four spaces before the digit.
  EXPECT_NE(out.find("    5"), std::string::npos);
}

TEST(TablePrinterTest, PrintMatchesToString) {
  TablePrinter table({"a"});
  table.AddRow({"b"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_EQ(os.str(), table.ToString());
}

TEST(TablePrinterTest, NumRowsTracksAdds) {
  TablePrinter table({"a", "b"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow({"1", "2"});
  table.AddRow({"3", "4"});
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TablePrinterDeathTest, MismatchedRowWidthAborts) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "cells");
}

}  // namespace
}  // namespace amici
