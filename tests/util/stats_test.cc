#include "util/stats.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace amici {
namespace {

TEST(OnlineStatsTest, EmptyAccumulator) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 0.0);
  EXPECT_EQ(stats.max(), 0.0);
}

TEST(OnlineStatsTest, KnownMoments) {
  OnlineStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(x);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
  EXPECT_NEAR(stats.sum(), 40.0, 1e-12);
}

TEST(OnlineStatsTest, MergeEqualsSequential) {
  Rng rng(5);
  OnlineStats all;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Gaussian(3.0, 2.0);
    all.Add(x);
    if (i % 2 == 0) {
      left.Add(x);
    } else {
      right.Add(x);
    }
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(OnlineStatsTest, MergeWithEmptySides) {
  OnlineStats filled;
  filled.Add(1.0);
  filled.Add(3.0);
  OnlineStats empty;
  filled.Merge(empty);
  EXPECT_EQ(filled.count(), 2u);
  empty.Merge(filled);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenSamples) {
  const std::vector<double> sorted{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 50.0), 25.0);
}

TEST(PercentileTest, DegenerateInputs) {
  EXPECT_EQ(PercentileOfSorted({}, 50.0), 0.0);
  EXPECT_EQ(PercentileOfSorted({7.0}, 99.0), 7.0);
}

TEST(LatencyRecorderTest, SummaryOfUniformRamp) {
  LatencyRecorder recorder;
  for (int i = 1; i <= 100; ++i) recorder.Record(static_cast<double>(i));
  const LatencySummary summary = recorder.Summarize();
  EXPECT_EQ(summary.count, 100u);
  EXPECT_DOUBLE_EQ(summary.min, 1.0);
  EXPECT_DOUBLE_EQ(summary.max, 100.0);
  EXPECT_NEAR(summary.mean, 50.5, 1e-9);
  EXPECT_NEAR(summary.p50, 50.5, 1.0);
  EXPECT_NEAR(summary.p90, 90.1, 1.0);
  EXPECT_NEAR(summary.p99, 99.0, 1.1);
}

TEST(LatencyRecorderTest, EmptySummaryIsZeroed) {
  LatencyRecorder recorder;
  const LatencySummary summary = recorder.Summarize();
  EXPECT_EQ(summary.count, 0u);
  EXPECT_EQ(summary.mean, 0.0);
}

TEST(ExponentialHistogramTest, BucketBoundaries) {
  ExponentialHistogram histogram(8);
  histogram.Add(0.0);   // [0,1)
  histogram.Add(0.99);  // [0,1)
  histogram.Add(1.0);   // [1,2)
  histogram.Add(3.9);   // [2,4)
  histogram.Add(4.0);   // [4,8)
  EXPECT_EQ(histogram.TotalCount(), 5u);
  EXPECT_EQ(histogram.BucketCount(0), 2u);
  EXPECT_EQ(histogram.BucketCount(1), 1u);
  EXPECT_EQ(histogram.BucketCount(2), 1u);
  EXPECT_EQ(histogram.BucketCount(3), 1u);
}

TEST(ExponentialHistogramTest, OverflowGoesToLastBucket) {
  ExponentialHistogram histogram(4);
  histogram.Add(1e12);
  EXPECT_EQ(histogram.BucketCount(3), 1u);
}

TEST(ExponentialHistogramTest, ToStringSkipsEmptyBuckets) {
  ExponentialHistogram histogram(8);
  histogram.Add(0.5);
  histogram.Add(5.0);
  const std::string rendered = histogram.ToString();
  EXPECT_NE(rendered.find("[0,1):1"), std::string::npos);
  EXPECT_NE(rendered.find("[4,8):1"), std::string::npos);
  EXPECT_EQ(rendered.find("[1,2)"), std::string::npos);
}

}  // namespace
}  // namespace amici
