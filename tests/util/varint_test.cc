#include "util/varint.h"

#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace amici {
namespace {

TEST(VarintTest, RoundTripSmallValues) {
  for (uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL, 16384ULL}) {
    std::string buffer;
    PutVarint64(v, &buffer);
    size_t offset = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(buffer, &offset, &decoded));
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(offset, buffer.size());
  }
}

TEST(VarintTest, RoundTripBoundaryWidths) {
  // Values at every 7-bit boundary.
  for (int shift = 0; shift < 64; shift += 7) {
    const uint64_t v = 1ULL << shift;
    std::string buffer;
    PutVarint64(v, &buffer);
    size_t offset = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(buffer, &offset, &decoded)) << "shift " << shift;
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(buffer.size(), VarintLength(v));
  }
}

TEST(VarintTest, RoundTripMaxValues) {
  std::string buffer;
  PutVarint64(std::numeric_limits<uint64_t>::max(), &buffer);
  EXPECT_EQ(buffer.size(), 10u);
  size_t offset = 0;
  uint64_t decoded = 0;
  ASSERT_TRUE(GetVarint64(buffer, &offset, &decoded));
  EXPECT_EQ(decoded, std::numeric_limits<uint64_t>::max());
}

TEST(VarintTest, RandomRoundTrips) {
  Rng rng(99);
  std::string buffer;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    // Mix widths by masking random bit counts.
    const int bits = 1 + static_cast<int>(rng.UniformIndex(64));
    const uint64_t v =
        bits == 64 ? rng.NextUint64() : (rng.NextUint64() >> (64 - bits));
    values.push_back(v);
    PutVarint64(v, &buffer);
  }
  size_t offset = 0;
  for (const uint64_t expected : values) {
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(buffer, &offset, &decoded));
    EXPECT_EQ(decoded, expected);
  }
  EXPECT_EQ(offset, buffer.size());
}

TEST(VarintTest, TruncatedInputFails) {
  std::string buffer;
  PutVarint64(1ULL << 40, &buffer);
  for (size_t cut = 0; cut + 1 < buffer.size(); ++cut) {
    const std::string truncated = buffer.substr(0, cut);
    size_t offset = 0;
    uint64_t decoded = 0;
    EXPECT_FALSE(GetVarint64(truncated, &offset, &decoded));
  }
}

TEST(VarintTest, Varint32RejectsOversizedValue) {
  std::string buffer;
  PutVarint64(1ULL << 40, &buffer);
  size_t offset = 0;
  uint32_t decoded = 0;
  EXPECT_FALSE(GetVarint32(buffer, &offset, &decoded));
}

TEST(VarintTest, VarintLengthMatchesEncoding) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const uint64_t v = rng.NextUint64() >> rng.UniformIndex(64);
    std::string buffer;
    PutVarint64(v, &buffer);
    EXPECT_EQ(buffer.size(), VarintLength(v));
  }
}

TEST(ZigZagTest, SmallMagnitudesStaySmall) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  EXPECT_EQ(ZigZagEncode(2), 4u);
}

TEST(ZigZagTest, RoundTripsExtremes) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1},
                    std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

TEST(DeltaTest, RoundTripsSortedSequence) {
  const std::vector<uint32_t> values{3, 10, 11, 400, 100000, 100001};
  std::string encoded;
  ASSERT_TRUE(DeltaEncode(values, &encoded));
  std::vector<uint32_t> decoded;
  ASSERT_TRUE(DeltaDecode(encoded, values.size(), &decoded));
  EXPECT_EQ(decoded, values);
}

TEST(DeltaTest, EmptySequence) {
  std::string encoded;
  ASSERT_TRUE(DeltaEncode({}, &encoded));
  EXPECT_TRUE(encoded.empty());
  std::vector<uint32_t> decoded;
  ASSERT_TRUE(DeltaDecode(encoded, 0, &decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(DeltaTest, RejectsNonIncreasingInput) {
  std::string encoded;
  EXPECT_FALSE(DeltaEncode({5, 5}, &encoded));
  std::string encoded2;
  EXPECT_FALSE(DeltaEncode({5, 4}, &encoded2));
}

TEST(DeltaTest, DecodeDetectsTruncation) {
  const std::vector<uint32_t> values{1, 2, 3, 4, 5};
  std::string encoded;
  ASSERT_TRUE(DeltaEncode(values, &encoded));
  std::vector<uint32_t> decoded;
  EXPECT_FALSE(DeltaDecode(encoded.substr(0, encoded.size() - 1),
                           values.size(), &decoded));
}

}  // namespace
}  // namespace amici
