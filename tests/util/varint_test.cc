#include "util/varint.h"

#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace amici {
namespace {

TEST(VarintTest, RoundTripSmallValues) {
  for (uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL, 16384ULL}) {
    std::string buffer;
    PutVarint64(v, &buffer);
    size_t offset = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(buffer, &offset, &decoded));
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(offset, buffer.size());
  }
}

TEST(VarintTest, RoundTripBoundaryWidths) {
  // Values at every 7-bit boundary.
  for (int shift = 0; shift < 64; shift += 7) {
    const uint64_t v = 1ULL << shift;
    std::string buffer;
    PutVarint64(v, &buffer);
    size_t offset = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(buffer, &offset, &decoded)) << "shift " << shift;
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(buffer.size(), VarintLength(v));
  }
}

TEST(VarintTest, RoundTripMaxValues) {
  std::string buffer;
  PutVarint64(std::numeric_limits<uint64_t>::max(), &buffer);
  EXPECT_EQ(buffer.size(), 10u);
  size_t offset = 0;
  uint64_t decoded = 0;
  ASSERT_TRUE(GetVarint64(buffer, &offset, &decoded));
  EXPECT_EQ(decoded, std::numeric_limits<uint64_t>::max());
}

TEST(VarintTest, RandomRoundTrips) {
  Rng rng(99);
  std::string buffer;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    // Mix widths by masking random bit counts.
    const int bits = 1 + static_cast<int>(rng.UniformIndex(64));
    const uint64_t v =
        bits == 64 ? rng.NextUint64() : (rng.NextUint64() >> (64 - bits));
    values.push_back(v);
    PutVarint64(v, &buffer);
  }
  size_t offset = 0;
  for (const uint64_t expected : values) {
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(buffer, &offset, &decoded));
    EXPECT_EQ(decoded, expected);
  }
  EXPECT_EQ(offset, buffer.size());
}

TEST(VarintTest, TruncatedInputFails) {
  std::string buffer;
  PutVarint64(1ULL << 40, &buffer);
  for (size_t cut = 0; cut + 1 < buffer.size(); ++cut) {
    const std::string truncated = buffer.substr(0, cut);
    size_t offset = 0;
    uint64_t decoded = 0;
    EXPECT_FALSE(GetVarint64(truncated, &offset, &decoded));
  }
}

TEST(VarintTest, Varint32RejectsOversizedValue) {
  std::string buffer;
  PutVarint64(1ULL << 40, &buffer);
  size_t offset = 0;
  uint32_t decoded = 0;
  EXPECT_FALSE(GetVarint32(buffer, &offset, &decoded));
}

TEST(VarintTest, VarintLengthMatchesEncoding) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const uint64_t v = rng.NextUint64() >> rng.UniformIndex(64);
    std::string buffer;
    PutVarint64(v, &buffer);
    EXPECT_EQ(buffer.size(), VarintLength(v));
  }
}

TEST(ZigZagTest, SmallMagnitudesStaySmall) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  EXPECT_EQ(ZigZagEncode(2), 4u);
}

TEST(ZigZagTest, RoundTripsExtremes) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1},
                    std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

TEST(DeltaTest, RoundTripsSortedSequence) {
  const std::vector<uint32_t> values{3, 10, 11, 400, 100000, 100001};
  std::string encoded;
  ASSERT_TRUE(DeltaEncode(values, &encoded));
  std::vector<uint32_t> decoded;
  ASSERT_TRUE(DeltaDecode(encoded, values.size(), &decoded));
  EXPECT_EQ(decoded, values);
}

TEST(DeltaTest, EmptySequence) {
  std::string encoded;
  ASSERT_TRUE(DeltaEncode({}, &encoded));
  EXPECT_TRUE(encoded.empty());
  std::vector<uint32_t> decoded;
  ASSERT_TRUE(DeltaDecode(encoded, 0, &decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(DeltaTest, RejectsNonIncreasingInput) {
  std::string encoded;
  EXPECT_FALSE(DeltaEncode({5, 5}, &encoded));
  std::string encoded2;
  EXPECT_FALSE(DeltaEncode({5, 4}, &encoded2));
}

TEST(DeltaTest, DecodeDetectsTruncation) {
  const std::vector<uint32_t> values{1, 2, 3, 4, 5};
  std::string encoded;
  ASSERT_TRUE(DeltaEncode(values, &encoded));
  std::vector<uint32_t> decoded;
  EXPECT_FALSE(DeltaDecode(encoded.substr(0, encoded.size() - 1),
                           values.size(), &decoded));
}

// --- Batched block decode ------------------------------------------------

TEST(DecodeDeltaBlockTest, KernelNameIsKnown) {
  const std::string kernel = DeltaBlockKernelName();
  EXPECT_TRUE(kernel == "avx2" || kernel == "sse2" || kernel == "scalar")
      << kernel;
}

TEST(DecodeDeltaBlockTest, MatchesDeltaDecodeOnStrictlyIncreasingInput) {
  Rng rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t count = rng.UniformIndex(400);
    std::vector<uint32_t> values;
    uint32_t v = 0;
    for (size_t i = 0; i < count; ++i) {
      // Mix of 1-byte and multi-byte gaps.
      v += 1 + static_cast<uint32_t>(rng.UniformIndex(
               rng.Bernoulli(0.8) ? 8 : 100000));
      values.push_back(v);
    }
    std::string encoded;
    ASSERT_TRUE(DeltaEncode(values, &encoded));

    std::vector<uint32_t> batched(count + 1, 0xDEADBEEF);
    size_t offset = 0;
    ASSERT_TRUE(DecodeDeltaBlock(encoded.data(), encoded.size(), &offset,
                                 count, batched.data()));
    EXPECT_EQ(offset, encoded.size());
    EXPECT_EQ(batched.back(), 0xDEADBEEFu) << "wrote past count";
    batched.pop_back();
    EXPECT_EQ(batched, values);
  }
}

TEST(DecodeDeltaBlockTest, ScalarAndDispatchedKernelsAreBitIdentical) {
  // Fuzz both kernels over adversarial gap mixes (including gaps of 0
  // and huge gaps that wrap uint32 accumulation) and compare outputs and
  // consumed bytes exactly.
  Rng rng(42);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t count = rng.UniformIndex(200);
    std::string encoded;
    for (size_t i = 0; i < count; ++i) {
      uint32_t gap = 0;
      switch (rng.UniformIndex(4)) {
        case 0: gap = static_cast<uint32_t>(rng.UniformIndex(2)); break;
        case 1: gap = static_cast<uint32_t>(rng.UniformIndex(128)); break;
        case 2: gap = static_cast<uint32_t>(rng.UniformIndex(1 << 21)); break;
        default: gap = static_cast<uint32_t>(rng.NextUint64()); break;
      }
      PutVarint32(gap, &encoded);
    }
    // Random trailing garbage the decoder must not consume.
    const size_t payload_size = encoded.size();
    for (int i = 0; i < 3; ++i) {
      encoded.push_back(static_cast<char>(rng.UniformIndex(256)));
    }

    std::vector<uint32_t> reference(count + 1, 1);
    std::vector<uint32_t> dispatched(count + 1, 2);
    size_t reference_offset = 0;
    size_t dispatched_offset = 0;
    ASSERT_TRUE(DecodeDeltaBlockScalar(encoded.data(), encoded.size(),
                                       &reference_offset, count,
                                       reference.data()));
    ASSERT_TRUE(DecodeDeltaBlock(encoded.data(), encoded.size(),
                                 &dispatched_offset, count,
                                 dispatched.data()));
    EXPECT_EQ(reference_offset, payload_size);
    EXPECT_EQ(dispatched_offset, reference_offset);
    reference.pop_back();
    dispatched.pop_back();
    EXPECT_EQ(dispatched, reference) << "trial " << trial;
  }
}

TEST(DecodeDeltaBlockTest, BothKernelsDetectTruncation) {
  std::string encoded;
  for (uint32_t gap : {1u, 300u, 5u, 1000000u, 7u}) {
    PutVarint32(gap, &encoded);
  }
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    std::vector<uint32_t> out(5);
    size_t offset = 0;
    EXPECT_FALSE(DecodeDeltaBlockScalar(encoded.data(), cut, &offset, 5,
                                        out.data()))
        << "cut " << cut;
    offset = 0;
    EXPECT_FALSE(
        DecodeDeltaBlock(encoded.data(), cut, &offset, 5, out.data()))
        << "cut " << cut;
  }
}

TEST(DecodeDeltaBlockTest, ZeroCountConsumesNothing) {
  const char data[] = "xyz";
  size_t offset = 1;
  ASSERT_TRUE(DecodeDeltaBlock(data, 3, &offset, 0, nullptr));
  EXPECT_EQ(offset, 1u);
  offset = 1;
  ASSERT_TRUE(DecodeDeltaBlockScalar(data, 3, &offset, 0, nullptr));
  EXPECT_EQ(offset, 1u);
}

TEST(DecodeDeltaBlockTest, OffsetPastLimitFails) {
  const char data[] = "abc";
  size_t offset = 4;
  uint32_t out[1];
  EXPECT_FALSE(DecodeDeltaBlock(data, 3, &offset, 1, out));
  offset = 4;
  EXPECT_FALSE(DecodeDeltaBlockScalar(data, 3, &offset, 1, out));
}

}  // namespace
}  // namespace amici
