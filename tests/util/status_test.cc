#include "util/status.h"

#include <string>

#include "gtest/gtest.h"

namespace amici {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  const Status status = Status::NotFound("user 7 missing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "user 7 missing");
  EXPECT_EQ(status.ToString(), "NotFound: user 7 missing");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeTest, EveryCodeHasName) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValueExtraction) {
  Result<std::string> result = std::string("payload");
  ASSERT_TRUE(result.ok());
  const std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

Status FailWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Caller(int x, bool* reached_end) {
  AMICI_RETURN_IF_ERROR(FailWhenNegative(x));
  *reached_end = true;
  return Status::Ok();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  bool reached = false;
  EXPECT_FALSE(Caller(-1, &reached).ok());
  EXPECT_FALSE(reached);
  EXPECT_TRUE(Caller(1, &reached).ok());
  EXPECT_TRUE(reached);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  AMICI_ASSIGN_OR_RETURN(const int half, Half(x));
  return Half(half);
}

TEST(StatusMacroTest, AssignOrReturnChains) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);

  Result<int> inner_fail = Quarter(6);  // 6/2 = 3 is odd
  EXPECT_FALSE(inner_fail.ok());
  EXPECT_EQ(inner_fail.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace amici
