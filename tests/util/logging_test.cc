#include "util/logging.h"

#include "gtest/gtest.h"

namespace amici {
namespace {

TEST(LoggingTest, MinLevelRoundTrips) {
  const LogLevel original = MinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(MinLogLevel(), LogLevel::kError);
  SetMinLogLevel(LogLevel::kDebug);
  EXPECT_EQ(MinLogLevel(), LogLevel::kDebug);
  SetMinLogLevel(original);
}

TEST(LoggingTest, SuppressedMessagesDoNotEvaluateCheapPath) {
  const LogLevel original = MinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  // The macro must compile and run without side effects at lower levels.
  AMICI_LOG(kDebug) << "invisible " << 1;
  AMICI_LOG(kInfo) << "also invisible";
  SetMinLogLevel(original);
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  AMICI_CHECK(1 + 1 == 2) << "never shown";
  AMICI_CHECK_OK(Status::Ok());
  AMICI_DCHECK(true);
}

TEST(LoggingDeathTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH({ AMICI_CHECK(false) << "boom"; }, "Check failed");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH({ AMICI_CHECK_OK(Status::Internal("bad")); }, "Internal");
}

}  // namespace
}  // namespace amici
