#include "topk/nra.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "topk/topk_heap.h"
#include "util/rng.h"

namespace amici {
namespace {

class VectorSource final : public SortedSource {
 public:
  explicit VectorSource(std::vector<ScoredItem> entries)
      : entries_(std::move(entries)) {}
  bool Valid() const override { return pos_ < entries_.size(); }
  ScoredItem Current() const override { return entries_[pos_]; }
  void Next() override { ++pos_; }

 private:
  std::vector<ScoredItem> entries_;
  size_t pos_ = 0;
};

struct Instance {
  std::vector<std::vector<ScoredItem>> lists;
  std::map<ItemId, double> totals;
};

Instance MakeInstance(size_t num_lists, size_t num_items, double density,
                      uint64_t seed) {
  Rng rng(seed);
  Instance instance;
  instance.lists.resize(num_lists);
  for (size_t l = 0; l < num_lists; ++l) {
    for (ItemId item = 0; item < num_items; ++item) {
      if (!rng.Bernoulli(density)) continue;
      const float partial = static_cast<float>(rng.UniformDouble());
      instance.lists[l].push_back({item, partial});
      instance.totals[item] += partial;
    }
    std::sort(instance.lists[l].begin(), instance.lists[l].end(),
              [](const ScoredItem& a, const ScoredItem& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.item < b.item;
              });
  }
  return instance;
}

std::vector<ScoredItem> RunNraOn(const Instance& instance, size_t k,
                                 AggregationStats* stats = nullptr) {
  std::vector<std::unique_ptr<VectorSource>> owned;
  std::vector<SortedSource*> sources;
  for (const auto& list : instance.lists) {
    owned.push_back(std::make_unique<VectorSource>(list));
    sources.push_back(owned.back().get());
  }
  const auto result = RunNra(
      std::span<SortedSource* const>(sources.data(), sources.size()), k,
      stats);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value_or({});
}

TEST(NraTest, SingleListPrefix) {
  Instance instance;
  instance.lists.push_back({{7, 0.9f}, {3, 0.8f}, {1, 0.5f}});
  for (const auto& e : instance.lists[0]) instance.totals[e.item] = e.score;
  const auto result = RunNraOn(instance, 2);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].item, 7u);
  EXPECT_EQ(result[1].item, 3u);
}

TEST(NraTest, FewerItemsThanK) {
  const Instance instance = MakeInstance(2, 6, 0.9, 3);
  const auto result = RunNraOn(instance, 100);
  EXPECT_EQ(result.size(), instance.totals.size());
}

TEST(NraTest, EmptySources) {
  Instance instance;
  instance.lists.resize(2);
  EXPECT_TRUE(RunNraOn(instance, 5).empty());
}

TEST(NraTest, RejectsZeroKAndTooManySources) {
  VectorSource source({});
  SortedSource* one[] = {&source};
  EXPECT_FALSE(
      RunNra(std::span<SortedSource* const>(one, 1), 0, nullptr).ok());

  std::vector<std::unique_ptr<VectorSource>> owned;
  std::vector<SortedSource*> many;
  for (int i = 0; i < 33; ++i) {
    owned.push_back(std::make_unique<VectorSource>(std::vector<ScoredItem>{}));
    many.push_back(owned.back().get());
  }
  EXPECT_FALSE(RunNra(std::span<SortedSource* const>(many.data(), many.size()),
                      1, nullptr)
                   .ok());
}

TEST(NraTest, NeverPerformsRandomAccess) {
  const Instance instance = MakeInstance(3, 200, 0.4, 5);
  AggregationStats stats;
  RunNraOn(instance, 10, &stats);
  EXPECT_EQ(stats.random_accesses, 0u);
  EXPECT_GT(stats.sorted_accesses, 0u);
}

/// Membership property: NRA's top-k set equals brute force (score ties may
/// swap, so compare score multisets of the selected items).
struct NraParam {
  size_t num_lists;
  size_t num_items;
  double density;
  size_t k;
  uint64_t seed;
};

class NraPropertyTest : public ::testing::TestWithParam<NraParam> {};

TEST_P(NraPropertyTest, MembershipMatchesBruteForce) {
  const NraParam param = GetParam();
  const Instance instance =
      MakeInstance(param.num_lists, param.num_items, param.density,
                   param.seed);
  TopKHeap heap(param.k);
  for (const auto& [item, total] : instance.totals) heap.Push(item, total);
  const auto expected = heap.TakeSorted();

  const auto actual = RunNraOn(instance, param.k);
  ASSERT_EQ(actual.size(), expected.size());
  // NRA guarantees set membership, not the order within the top-k (lower
  // bounds may still be partially resolved at termination). Compare the
  // multiset of true totals of the selected items.
  std::vector<double> actual_totals;
  for (const auto& entry : actual) {
    actual_totals.push_back(instance.totals.at(entry.item));
  }
  std::sort(actual_totals.begin(), actual_totals.end(),
            std::greater<double>());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(actual_totals[i], expected[i].score, 1e-5) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, NraPropertyTest,
    ::testing::Values(NraParam{2, 50, 0.7, 5, 21},
                      NraParam{3, 100, 0.4, 10, 22},
                      NraParam{4, 200, 0.25, 8, 23},
                      NraParam{5, 80, 0.9, 3, 24},
                      NraParam{2, 500, 0.1, 20, 25}));

}  // namespace
}  // namespace amici
