#include "topk/topk_heap.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace amici {
namespace {

TEST(TopKHeapTest, KeepsBestK) {
  TopKHeap heap(3);
  for (ItemId i = 0; i < 10; ++i) {
    heap.Push(i, static_cast<double>(i));
  }
  const auto sorted = heap.TakeSorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].item, 9u);
  EXPECT_EQ(sorted[1].item, 8u);
  EXPECT_EQ(sorted[2].item, 7u);
}

TEST(TopKHeapTest, KthScoreBeforeAndAfterFull) {
  TopKHeap heap(2);
  EXPECT_EQ(heap.KthScore(), -std::numeric_limits<double>::infinity());
  heap.Push(1, 5.0);
  EXPECT_EQ(heap.KthScore(), -std::numeric_limits<double>::infinity());
  heap.Push(2, 7.0);
  EXPECT_DOUBLE_EQ(heap.KthScore(), 5.0);
  heap.Push(3, 6.0);  // replaces the 5.0 entry
  EXPECT_DOUBLE_EQ(heap.KthScore(), 6.0);
}

TEST(TopKHeapTest, PushReportsAcceptance) {
  TopKHeap heap(2);
  EXPECT_TRUE(heap.Push(1, 1.0));
  EXPECT_TRUE(heap.Push(2, 2.0));
  EXPECT_FALSE(heap.Push(3, 0.5));  // too small
  EXPECT_TRUE(heap.Push(4, 3.0));
}

TEST(TopKHeapTest, TieBreakPrefersSmallerItemId) {
  TopKHeap heap(2);
  heap.Push(9, 1.0);
  heap.Push(3, 1.0);
  heap.Push(5, 1.0);
  const auto sorted = heap.TakeSorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].item, 3u);
  EXPECT_EQ(sorted[1].item, 5u);
}

TEST(TopKHeapTest, EqualScoreLargerIdRejectedWhenFull) {
  TopKHeap heap(1);
  heap.Push(3, 1.0);
  EXPECT_FALSE(heap.Push(9, 1.0));  // same score, larger id: worse
  EXPECT_TRUE(heap.Push(1, 1.0));   // same score, smaller id: better
  const auto sorted = heap.TakeSorted();
  EXPECT_EQ(sorted[0].item, 1u);
}

TEST(TopKHeapTest, FewerThanKItems) {
  TopKHeap heap(5);
  heap.Push(1, 2.0);
  heap.Push(2, 1.0);
  const auto sorted = heap.TakeSorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].item, 1u);
}

TEST(TopKHeapTest, TakeSortedLeavesHeapReusable) {
  TopKHeap heap(2);
  heap.Push(1, 1.0);
  heap.TakeSorted();
  EXPECT_EQ(heap.size(), 0u);
  heap.Push(2, 2.0);
  heap.Push(3, 3.0);
  const auto sorted = heap.TakeSorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].item, 3u);
}

TEST(TopKHeapTest, RandomizedAgainstSort) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t k = 1 + rng.UniformIndex(20);
    TopKHeap heap(k);
    std::vector<std::pair<double, ItemId>> all;
    const size_t n = 1 + rng.UniformIndex(500);
    for (size_t i = 0; i < n; ++i) {
      // Coarse scores force plenty of ties.
      const double score = static_cast<double>(rng.UniformIndex(17));
      all.push_back({score, static_cast<ItemId>(i)});
      heap.Push(static_cast<ItemId>(i), score);
    }
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    const auto got = heap.TakeSorted();
    ASSERT_EQ(got.size(), std::min(k, n));
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].item, all[i].second) << "trial " << trial;
      EXPECT_FLOAT_EQ(got[i].score, static_cast<float>(all[i].first));
    }
  }
}

TEST(TopKHeapDeathTest, ZeroKRejected) { EXPECT_DEATH(TopKHeap(0), ""); }

}  // namespace
}  // namespace amici
