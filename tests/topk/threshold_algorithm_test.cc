#include "topk/threshold_algorithm.h"

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "topk/topk_heap.h"
#include "util/rng.h"

namespace amici {
namespace {

/// SortedSource over an in-memory descending vector.
class VectorSource final : public SortedSource {
 public:
  explicit VectorSource(std::vector<ScoredItem> entries)
      : entries_(std::move(entries)) {}
  bool Valid() const override { return pos_ < entries_.size(); }
  ScoredItem Current() const override { return entries_[pos_]; }
  void Next() override { ++pos_; }

 private:
  std::vector<ScoredItem> entries_;
  size_t pos_ = 0;
};

/// A random aggregation instance: `num_lists` lists over `num_items`
/// items; each item appears in each list with probability `density`.
struct Instance {
  std::vector<std::vector<ScoredItem>> lists;  // descending by score
  std::map<ItemId, double> totals;
};

Instance MakeInstance(size_t num_lists, size_t num_items, double density,
                      uint64_t seed) {
  Rng rng(seed);
  Instance instance;
  instance.lists.resize(num_lists);
  for (size_t l = 0; l < num_lists; ++l) {
    for (ItemId item = 0; item < num_items; ++item) {
      if (!rng.Bernoulli(density)) continue;
      const float partial = static_cast<float>(rng.UniformDouble());
      instance.lists[l].push_back({item, partial});
      instance.totals[item] += partial;
    }
    std::sort(instance.lists[l].begin(), instance.lists[l].end(),
              [](const ScoredItem& a, const ScoredItem& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.item < b.item;
              });
  }
  return instance;
}

std::vector<ScoredItem> BruteForceTopK(const Instance& instance, size_t k) {
  TopKHeap heap(k);
  for (const auto& [item, total] : instance.totals) {
    heap.Push(item, total);
  }
  return heap.TakeSorted();
}

std::vector<ScoredItem> RunTaOn(const Instance& instance, size_t k,
                                const PullPolicy& policy,
                                AggregationStats* stats = nullptr) {
  std::vector<std::unique_ptr<VectorSource>> owned;
  std::vector<SortedSource*> sources;
  for (const auto& list : instance.lists) {
    owned.push_back(std::make_unique<VectorSource>(list));
    sources.push_back(owned.back().get());
  }
  auto score_of = [&instance](ItemId item) {
    return instance.totals.at(item);
  };
  const auto result = RunThresholdAlgorithm(
      std::span<SortedSource* const>(sources.data(), sources.size()),
      score_of, k, policy, nullptr, stats);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value_or({});
}

void ExpectSameScores(const std::vector<ScoredItem>& expected,
                      const std::vector<ScoredItem>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(expected[i].score, actual[i].score, 1e-5)
        << "rank " << i;
  }
}

TEST(ThresholdAlgorithmTest, SingleListIsPrefix) {
  Instance instance;
  instance.lists.push_back(
      {{7, 0.9f}, {3, 0.8f}, {1, 0.5f}, {4, 0.2f}});
  for (const auto& e : instance.lists[0]) instance.totals[e.item] = e.score;
  const auto result = RunTaOn(instance, 2, MaxBoundPull);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].item, 7u);
  EXPECT_EQ(result[1].item, 3u);
}

TEST(ThresholdAlgorithmTest, FewerItemsThanK) {
  Instance instance = MakeInstance(3, 5, 0.9, 1);
  const auto result = RunTaOn(instance, 50, MaxBoundPull);
  EXPECT_EQ(result.size(), instance.totals.size());
}

TEST(ThresholdAlgorithmTest, EmptySourcesYieldEmptyResult) {
  Instance instance;
  instance.lists.resize(3);
  const auto result = RunTaOn(instance, 10, MaxBoundPull);
  EXPECT_TRUE(result.empty());
}

TEST(ThresholdAlgorithmTest, RejectsZeroK) {
  VectorSource source({});
  SortedSource* sources[] = {&source};
  auto score_of = [](ItemId) { return 0.0; };
  const auto result = RunThresholdAlgorithm(
      std::span<SortedSource* const>(sources, 1), score_of, 0, MaxBoundPull,
      nullptr, nullptr);
  EXPECT_FALSE(result.ok());
}

TEST(ThresholdAlgorithmTest, FilterExcludesItems) {
  Instance instance;
  instance.lists.push_back({{1, 0.9f}, {2, 0.8f}, {3, 0.7f}});
  for (const auto& e : instance.lists[0]) instance.totals[e.item] = e.score;
  std::vector<std::unique_ptr<VectorSource>> owned;
  owned.push_back(std::make_unique<VectorSource>(instance.lists[0]));
  SortedSource* sources[] = {owned[0].get()};
  auto score_of = [&instance](ItemId item) {
    return instance.totals.at(item);
  };
  auto filter = [](ItemId item) { return item != 1; };
  const auto result = RunThresholdAlgorithm(
      std::span<SortedSource* const>(sources, 1), score_of, 2, MaxBoundPull,
      filter, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 2u);
  EXPECT_EQ(result.value()[0].item, 2u);
  EXPECT_EQ(result.value()[1].item, 3u);
}

TEST(ThresholdAlgorithmTest, EarlyTerminationDoesLessWorkThanExhaustion) {
  // Steep score decay: the top-k is decided after a few pulls.
  Instance instance;
  std::vector<ScoredItem> list;
  for (ItemId i = 0; i < 10000; ++i) {
    list.push_back({i, static_cast<float>(1.0 / (1.0 + i))});
    instance.totals[i] = 1.0 / (1.0 + i);
  }
  instance.lists.push_back(std::move(list));
  AggregationStats stats;
  RunTaOn(instance, 5, MaxBoundPull, &stats);
  EXPECT_LT(stats.sorted_accesses, 100u);
}

// Property sweep: TA with every pull policy matches brute force on random
// instances.
struct TaPropertyParam {
  size_t num_lists;
  size_t num_items;
  double density;
  size_t k;
  uint64_t seed;
};

class TaPropertyTest : public ::testing::TestWithParam<TaPropertyParam> {};

TEST_P(TaPropertyTest, MatchesBruteForceUnderAllPolicies) {
  const TaPropertyParam param = GetParam();
  const Instance instance =
      MakeInstance(param.num_lists, param.num_items, param.density,
                   param.seed);
  const auto expected = BruteForceTopK(instance, param.k);

  // Max-bound policy.
  ExpectSameScores(expected, RunTaOn(instance, param.k, MaxBoundPull));

  // Biased policies (first list preferred / others preferred).
  std::vector<bool> first_only(param.num_lists, false);
  first_only[0] = true;
  ExpectSameScores(expected,
                   RunTaOn(instance, param.k, MakeBiasedPull(first_only, 8)));
  std::vector<bool> rest(param.num_lists, true);
  rest[0] = false;
  ExpectSameScores(expected,
                   RunTaOn(instance, param.k, MakeBiasedPull(rest, 8)));

  // Adversarial policy: always returns an out-of-range index; the engine
  // must fall back gracefully and stay exact.
  ExpectSameScores(expected,
                   RunTaOn(instance, param.k, [](std::span<const double>) {
                     return size_t{9999};
                   }));
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, TaPropertyTest,
    ::testing::Values(TaPropertyParam{1, 50, 0.8, 5, 11},
                      TaPropertyParam{2, 100, 0.5, 10, 12},
                      TaPropertyParam{3, 200, 0.3, 7, 13},
                      TaPropertyParam{4, 500, 0.2, 20, 14},
                      TaPropertyParam{5, 100, 0.9, 3, 15},
                      TaPropertyParam{8, 300, 0.1, 10, 16},
                      TaPropertyParam{2, 1000, 0.05, 50, 17},
                      TaPropertyParam{6, 50, 1.0, 49, 18}));

}  // namespace
}  // namespace amici
