#include "graph/graph_algorithms.h"

#include "graph/graph_builder.h"
#include "graph/graph_generators.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace amici {
namespace {

/// Path 0-1-2-3 plus isolated 4.
SocialGraph PathWithIsolate() {
  GraphBuilder builder(5);
  EXPECT_TRUE(builder.AddEdge(0, 1).ok());
  EXPECT_TRUE(builder.AddEdge(1, 2).ok());
  EXPECT_TRUE(builder.AddEdge(2, 3).ok());
  return builder.Build();
}

TEST(BfsTest, DistancesAlongPath) {
  const SocialGraph graph = PathWithIsolate();
  const auto dist = BfsDistances(graph, 0, 10);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[3], 3);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(BfsTest, TruncationAtMaxHops) {
  const SocialGraph graph = PathWithIsolate();
  const auto dist = BfsDistances(graph, 0, 2);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(KHopTest, OrderedByDistance) {
  const SocialGraph graph = PathWithIsolate();
  const auto hood = KHopNeighborhood(graph, 1, 2);
  ASSERT_EQ(hood.size(), 3u);
  EXPECT_EQ(hood[0].hops, 1);
  EXPECT_EQ(hood[1].hops, 1);
  EXPECT_EQ(hood[2].hops, 2);
  EXPECT_EQ(hood[2].user, 3u);
}

TEST(KHopTest, ExcludesSource) {
  const SocialGraph graph = PathWithIsolate();
  for (const auto& neighbor : KHopNeighborhood(graph, 0, 5)) {
    EXPECT_NE(neighbor.user, 0u);
  }
}

TEST(ComponentsTest, CountsAndLabels) {
  const SocialGraph graph = PathWithIsolate();
  const ComponentInfo info = ConnectedComponents(graph);
  EXPECT_EQ(info.num_components, 2u);
  EXPECT_EQ(info.largest_size, 4u);
  EXPECT_EQ(info.label[0], info.label[3]);
  EXPECT_NE(info.label[0], info.label[4]);
}

TEST(ComponentsTest, EdgelessGraphAllSingletons) {
  GraphBuilder builder(4);
  const ComponentInfo info = ConnectedComponents(builder.Build());
  EXPECT_EQ(info.num_components, 4u);
  EXPECT_EQ(info.largest_size, 1u);
}

TEST(TriangleTest, SingleTriangle) {
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  EXPECT_EQ(CountTriangles(builder.Build()), 1u);
}

TEST(TriangleTest, PathHasNone) {
  EXPECT_EQ(CountTriangles(PathWithIsolate()), 0u);
}

TEST(TriangleTest, CompleteGraphK5) {
  GraphBuilder builder(5);
  for (UserId u = 0; u < 5; ++u) {
    for (UserId v = u + 1; v < 5; ++v) {
      ASSERT_TRUE(builder.AddEdge(u, v).ok());
    }
  }
  // C(5,3) = 10 triangles.
  EXPECT_EQ(CountTriangles(builder.Build()), 10u);
}

TEST(WedgeTest, StarGraph) {
  GraphBuilder builder(5);
  for (UserId v = 1; v < 5; ++v) ASSERT_TRUE(builder.AddEdge(0, v).ok());
  // Center has degree 4 -> C(4,2)=6 wedges; leaves contribute none.
  EXPECT_EQ(CountWedges(builder.Build()), 6u);
}

TEST(ClusteringTest, CompleteGraphIsOne) {
  GraphBuilder builder(4);
  for (UserId u = 0; u < 4; ++u) {
    for (UserId v = u + 1; v < 4; ++v) {
      ASSERT_TRUE(builder.AddEdge(u, v).ok());
    }
  }
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(builder.Build()), 1.0);
}

TEST(ClusteringTest, TreeIsZero) {
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(PathWithIsolate()), 0.0);
}

TEST(ClusteringTest, WattsStrogatzBeatsErdosRenyi) {
  // The hallmark property: a small-world lattice clusters far more than a
  // random graph of equal density.
  Rng rng_ws(1);
  Rng rng_er(1);
  const SocialGraph ws = GenerateWattsStrogatz(2000, 10, 0.05, &rng_ws);
  const SocialGraph er = GenerateErdosRenyi(2000, 10, &rng_er);
  EXPECT_GT(GlobalClusteringCoefficient(ws),
            3.0 * GlobalClusteringCoefficient(er));
}

}  // namespace
}  // namespace amici
