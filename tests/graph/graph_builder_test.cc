#include "graph/graph_builder.h"

#include "gtest/gtest.h"

namespace amici {
namespace {

TEST(GraphBuilderTest, RejectsOutOfRangeEndpoints) {
  GraphBuilder builder(3);
  EXPECT_EQ(builder.AddEdge(0, 3).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(builder.AddEdge(3, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(builder.AddEdge(5, 9).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(builder.num_pending_edges(), 0u);
}

TEST(GraphBuilderTest, IgnoresSelfLoops) {
  GraphBuilder builder(3);
  EXPECT_TRUE(builder.AddEdge(1, 1).ok());
  EXPECT_EQ(builder.num_pending_edges(), 0u);
  const SocialGraph graph = builder.Build();
  EXPECT_EQ(graph.num_edges(), 0u);
}

TEST(GraphBuilderTest, DeduplicatesParallelEdges) {
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 0).ok());  // same undirected edge
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  EXPECT_EQ(builder.num_pending_edges(), 3u);
  const SocialGraph graph = builder.Build();
  EXPECT_EQ(graph.num_edges(), 1u);
  EXPECT_EQ(graph.Degree(0), 1u);
  EXPECT_EQ(graph.Degree(1), 1u);
}

TEST(GraphBuilderTest, BuildIsRepeatable) {
  GraphBuilder builder(4);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(2, 3).ok());
  const SocialGraph first = builder.Build();
  const SocialGraph second = builder.Build();
  EXPECT_EQ(first.num_edges(), second.num_edges());
  EXPECT_EQ(first.neighbors(), second.neighbors());
  EXPECT_EQ(first.offsets(), second.offsets());
}

TEST(GraphBuilderTest, EmptyBuilderYieldsEdgelessGraph) {
  GraphBuilder builder(7);
  const SocialGraph graph = builder.Build();
  EXPECT_EQ(graph.num_users(), 7u);
  EXPECT_EQ(graph.num_edges(), 0u);
}

TEST(GraphBuilderTest, AdjacencySortedAfterArbitraryInsertionOrder) {
  GraphBuilder builder(6);
  ASSERT_TRUE(builder.AddEdge(5, 0).ok());
  ASSERT_TRUE(builder.AddEdge(0, 3).ok());
  ASSERT_TRUE(builder.AddEdge(1, 0).ok());
  ASSERT_TRUE(builder.AddEdge(0, 4).ok());
  const SocialGraph graph = builder.Build();
  const auto friends = graph.Friends(0);
  ASSERT_EQ(friends.size(), 4u);
  for (size_t i = 1; i < friends.size(); ++i) {
    EXPECT_LT(friends[i - 1], friends[i]);
  }
}

}  // namespace
}  // namespace amici
