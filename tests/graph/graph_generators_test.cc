#include "graph/graph_generators.h"

#include <vector>

#include "graph/graph_algorithms.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace amici {
namespace {

/// Shared structural sanity checks every generator must satisfy.
void ExpectWellFormed(const SocialGraph& graph) {
  for (size_t u = 0; u < graph.num_users(); ++u) {
    const auto friends = graph.Friends(static_cast<UserId>(u));
    for (size_t i = 0; i < friends.size(); ++i) {
      EXPECT_NE(friends[i], u) << "self-loop at " << u;
      EXPECT_LT(friends[i], graph.num_users());
      if (i > 0) {
        EXPECT_LT(friends[i - 1], friends[i]) << "unsorted/dup row";
      }
      EXPECT_TRUE(graph.HasEdge(friends[i], static_cast<UserId>(u)))
          << "asymmetric edge";
    }
  }
}

TEST(ErdosRenyiTest, HitsTargetDegree) {
  Rng rng(1);
  const SocialGraph graph = GenerateErdosRenyi(5000, 12.0, &rng);
  ExpectWellFormed(graph);
  EXPECT_NEAR(graph.AverageDegree(), 12.0, 1.0);
}

TEST(ErdosRenyiTest, ZeroDegreeYieldsEdgeless) {
  Rng rng(2);
  const SocialGraph graph = GenerateErdosRenyi(100, 0.0, &rng);
  EXPECT_EQ(graph.num_edges(), 0u);
}

TEST(ErdosRenyiTest, TinyGraphs) {
  Rng rng(3);
  EXPECT_EQ(GenerateErdosRenyi(1, 5.0, &rng).num_users(), 1u);
  const SocialGraph pair = GenerateErdosRenyi(2, 1.0, &rng);
  ExpectWellFormed(pair);
}

TEST(ErdosRenyiTest, DeterministicPerSeed) {
  Rng rng_a(42);
  Rng rng_b(42);
  const SocialGraph a = GenerateErdosRenyi(1000, 8.0, &rng_a);
  const SocialGraph b = GenerateErdosRenyi(1000, 8.0, &rng_b);
  EXPECT_EQ(a.neighbors(), b.neighbors());
}

TEST(BarabasiAlbertTest, WellFormedAndConnected) {
  Rng rng(4);
  const SocialGraph graph = GenerateBarabasiAlbert(3000, 5, &rng);
  ExpectWellFormed(graph);
  const ComponentInfo info = ConnectedComponents(graph);
  EXPECT_EQ(info.num_components, 1u);
}

TEST(BarabasiAlbertTest, ProducesHeavyTail) {
  Rng rng(5);
  const SocialGraph graph = GenerateBarabasiAlbert(5000, 4, &rng);
  // Preferential attachment: the max degree should dwarf the average.
  EXPECT_GT(static_cast<double>(graph.MaxDegree()),
            8.0 * graph.AverageDegree());
}

TEST(BarabasiAlbertTest, AverageDegreeNearTwiceM) {
  Rng rng(6);
  const size_t m = 6;
  const SocialGraph graph = GenerateBarabasiAlbert(4000, m, &rng);
  // Each arrival adds ~m edges -> average degree ~2m.
  EXPECT_NEAR(graph.AverageDegree(), 2.0 * static_cast<double>(m), 1.5);
}

TEST(WattsStrogatzTest, ZeroRewireIsRingLattice) {
  Rng rng(7);
  const SocialGraph graph = GenerateWattsStrogatz(100, 6, 0.0, &rng);
  ExpectWellFormed(graph);
  for (size_t u = 0; u < graph.num_users(); ++u) {
    EXPECT_EQ(graph.Degree(static_cast<UserId>(u)), 6u);
  }
}

TEST(WattsStrogatzTest, RewiringKeepsDensity) {
  Rng rng(8);
  const SocialGraph graph = GenerateWattsStrogatz(2000, 8, 0.3, &rng);
  ExpectWellFormed(graph);
  EXPECT_NEAR(graph.AverageDegree(), 8.0, 0.8);
}

TEST(PlantedPartitionTest, IntraEdgesDominate) {
  Rng rng(9);
  const size_t num_users = 4000;
  const size_t num_communities = 20;
  const SocialGraph graph = GeneratePlantedPartition(
      num_users, num_communities, 12.0, 2.0, &rng);
  ExpectWellFormed(graph);
  const size_t community_size =
      (num_users + num_communities - 1) / num_communities;
  size_t intra = 0;
  size_t inter = 0;
  for (size_t u = 0; u < graph.num_users(); ++u) {
    for (const UserId v : graph.Friends(static_cast<UserId>(u))) {
      if (u / community_size == v / community_size) {
        ++intra;
      } else {
        ++inter;
      }
    }
  }
  EXPECT_GT(intra, 3 * inter);
}

TEST(GeneratorsTest, AllProduceRequestedUserCount) {
  Rng rng(10);
  EXPECT_EQ(GenerateErdosRenyi(123, 4.0, &rng).num_users(), 123u);
  EXPECT_EQ(GenerateBarabasiAlbert(123, 3, &rng).num_users(), 123u);
  EXPECT_EQ(GenerateWattsStrogatz(123, 4, 0.1, &rng).num_users(), 123u);
  EXPECT_EQ(GeneratePlantedPartition(123, 5, 4.0, 1.0, &rng).num_users(),
            123u);
}

}  // namespace
}  // namespace amici
