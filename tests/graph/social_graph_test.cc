#include "graph/social_graph.h"

#include <vector>

#include "graph/graph_builder.h"
#include "gtest/gtest.h"

namespace amici {
namespace {

SocialGraph Triangle() {
  GraphBuilder builder(3);
  EXPECT_TRUE(builder.AddEdge(0, 1).ok());
  EXPECT_TRUE(builder.AddEdge(1, 2).ok());
  EXPECT_TRUE(builder.AddEdge(0, 2).ok());
  return builder.Build();
}

TEST(SocialGraphTest, EmptyGraph) {
  SocialGraph graph;
  EXPECT_EQ(graph.num_users(), 0u);
  EXPECT_EQ(graph.num_edges(), 0u);
  EXPECT_EQ(graph.AverageDegree(), 0.0);
  EXPECT_EQ(graph.MaxDegree(), 0u);
}

TEST(SocialGraphTest, TriangleBasics) {
  const SocialGraph graph = Triangle();
  EXPECT_EQ(graph.num_users(), 3u);
  EXPECT_EQ(graph.num_edges(), 3u);
  EXPECT_EQ(graph.Degree(0), 2u);
  EXPECT_EQ(graph.Degree(1), 2u);
  EXPECT_EQ(graph.Degree(2), 2u);
  EXPECT_DOUBLE_EQ(graph.AverageDegree(), 2.0);
  EXPECT_EQ(graph.MaxDegree(), 2u);
}

TEST(SocialGraphTest, FriendsAreSortedAndSymmetric) {
  const SocialGraph graph = Triangle();
  const auto friends0 = graph.Friends(0);
  ASSERT_EQ(friends0.size(), 2u);
  EXPECT_EQ(friends0[0], 1u);
  EXPECT_EQ(friends0[1], 2u);
  for (UserId u = 0; u < 3; ++u) {
    for (const UserId v : graph.Friends(u)) {
      EXPECT_TRUE(graph.HasEdge(v, u)) << u << "-" << v;
    }
  }
}

TEST(SocialGraphTest, HasEdgeNegativeCases) {
  GraphBuilder builder(4);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  const SocialGraph graph = builder.Build();
  EXPECT_TRUE(graph.HasEdge(0, 1));
  EXPECT_FALSE(graph.HasEdge(0, 2));
  EXPECT_FALSE(graph.HasEdge(2, 3));
  EXPECT_FALSE(graph.HasEdge(0, 0));
}

TEST(SocialGraphTest, IsolatedUsersHaveNoFriends) {
  GraphBuilder builder(5);
  ASSERT_TRUE(builder.AddEdge(1, 3).ok());
  const SocialGraph graph = builder.Build();
  EXPECT_EQ(graph.Degree(0), 0u);
  EXPECT_TRUE(graph.Friends(0).empty());
  EXPECT_EQ(graph.Degree(4), 0u);
}

TEST(SocialGraphTest, MemoryBytesScalesWithSize) {
  GraphBuilder small_builder(10);
  ASSERT_TRUE(small_builder.AddEdge(0, 1).ok());
  const SocialGraph small = small_builder.Build();

  GraphBuilder big_builder(10000);
  for (UserId u = 0; u + 1 < 10000; ++u) {
    ASSERT_TRUE(big_builder.AddEdge(u, u + 1).ok());
  }
  const SocialGraph big = big_builder.Build();
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes());
}

TEST(SocialGraphTest, RawCsrAccessorsConsistent) {
  const SocialGraph graph = Triangle();
  EXPECT_EQ(graph.offsets().size(), graph.num_users() + 1);
  EXPECT_EQ(graph.offsets().back(), graph.neighbors().size());
  EXPECT_EQ(graph.neighbors().size(), 2 * graph.num_edges());
}

}  // namespace
}  // namespace amici
