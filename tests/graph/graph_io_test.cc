#include "graph/graph_io.h"

#include <cstdio>
#include <string>

#include "graph/graph_builder.h"
#include "graph/graph_generators.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace amici {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(GraphIoTest, InMemoryRoundTrip) {
  Rng rng(1);
  const SocialGraph original = GenerateBarabasiAlbert(500, 4, &rng);
  const std::string bytes = SerializeGraph(original);
  const Result<SocialGraph> loaded = DeserializeGraph(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().offsets(), original.offsets());
  EXPECT_EQ(loaded.value().neighbors(), original.neighbors());
}

TEST(GraphIoTest, EmptyGraphRoundTrip) {
  GraphBuilder builder(0);
  const std::string bytes = SerializeGraph(builder.Build());
  const Result<SocialGraph> loaded = DeserializeGraph(bytes);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_users(), 0u);
}

TEST(GraphIoTest, EdgelessGraphRoundTrip) {
  GraphBuilder builder(42);
  const std::string bytes = SerializeGraph(builder.Build());
  const Result<SocialGraph> loaded = DeserializeGraph(bytes);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_users(), 42u);
  EXPECT_EQ(loaded.value().num_edges(), 0u);
}

TEST(GraphIoTest, FileRoundTrip) {
  Rng rng(2);
  const SocialGraph original = GenerateErdosRenyi(300, 6.0, &rng);
  const std::string path = TempPath("graph_io_test.amig");
  ASSERT_TRUE(SaveGraph(original, path).ok());
  const Result<SocialGraph> loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().neighbors(), original.neighbors());
  std::remove(path.c_str());
}

TEST(GraphIoTest, MissingFileIsIoError) {
  const Result<SocialGraph> loaded = LoadGraph("/nonexistent/zzz.amig");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(GraphIoTest, BadMagicIsCorruption) {
  std::string bytes = SerializeGraph(SocialGraph());
  bytes[0] = 'X';
  const Result<SocialGraph> loaded = DeserializeGraph(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(GraphIoTest, FlippedByteFailsChecksum) {
  Rng rng(3);
  std::string bytes = SerializeGraph(GenerateErdosRenyi(100, 4.0, &rng));
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  const Result<SocialGraph> loaded = DeserializeGraph(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(GraphIoTest, TruncationFailsCleanly) {
  Rng rng(4);
  const std::string bytes =
      SerializeGraph(GenerateErdosRenyi(100, 4.0, &rng));
  for (const size_t keep : {size_t{0}, size_t{3}, size_t{10},
                            bytes.size() / 2, bytes.size() - 1}) {
    const Result<SocialGraph> loaded =
        DeserializeGraph(bytes.substr(0, keep));
    EXPECT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
  }
}

}  // namespace
}  // namespace amici
