#include "workload/trace.h"

#include <cstdio>
#include <string>

#include "gtest/gtest.h"
#include "workload/dataset_generator.h"
#include "workload/query_workload.h"

namespace amici {
namespace {

SocialQuery MakeQuery(UserId user, std::vector<TagId> tags, double alpha,
                      MatchMode mode = MatchMode::kAny) {
  SocialQuery query;
  query.user = user;
  query.tags = std::move(tags);
  query.k = 10;
  query.alpha = alpha;
  query.mode = mode;
  NormalizeQuery(&query);
  return query;
}

TEST(TraceTest, RoundTripsPlainQueries) {
  std::vector<SocialQuery> original{
      MakeQuery(5, {3, 17, 42}, 0.5),
      MakeQuery(9, {7}, 0.9, MatchMode::kAll),
  };
  const auto parsed = ParseQueryTrace(SerializeQueryTrace(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[0].user, 5u);
  EXPECT_EQ(parsed.value()[0].tags, (std::vector<TagId>{3, 17, 42}));
  EXPECT_DOUBLE_EQ(parsed.value()[0].alpha, 0.5);
  EXPECT_EQ(parsed.value()[0].mode, MatchMode::kAny);
  EXPECT_EQ(parsed.value()[1].mode, MatchMode::kAll);
  EXPECT_EQ(parsed.value()[1].k, 10u);
}

TEST(TraceTest, RoundTripsGeoQueries) {
  SocialQuery query = MakeQuery(1, {2}, 0.3);
  query.has_geo_filter = true;
  query.latitude = 37.77f;
  query.longitude = -122.42f;
  query.radius_km = 5.5f;
  const auto parsed =
      ParseQueryTrace(SerializeQueryTrace(std::vector<SocialQuery>{query}));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_TRUE(parsed.value()[0].has_geo_filter);
  EXPECT_NEAR(parsed.value()[0].latitude, 37.77f, 1e-4);
  EXPECT_NEAR(parsed.value()[0].longitude, -122.42f, 1e-4);
  EXPECT_NEAR(parsed.value()[0].radius_km, 5.5f, 1e-3);
}

TEST(TraceTest, SkipsCommentsAndBlankLines) {
  const auto parsed = ParseQueryTrace(
      "# header\n\n  \nuser=1 k=5 alpha=0.1 tags=9\n# trailing\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value()[0].k, 5u);
}

TEST(TraceTest, NormalizesTagsOnParse) {
  const auto parsed =
      ParseQueryTrace("user=1 k=3 alpha=0.5 tags=9,1,9,4\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value()[0].tags, (std::vector<TagId>{1, 4, 9}));
}

TEST(TraceTest, ErrorsNameTheLine) {
  const auto missing = ParseQueryTrace("user=1 k=3 alpha=0.5\n");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("line 1"), std::string::npos);

  const auto bad_mode =
      ParseQueryTrace("# ok\nuser=1 k=3 alpha=0.5 mode=never tags=1\n");
  ASSERT_FALSE(bad_mode.ok());
  EXPECT_NE(bad_mode.status().message().find("line 2"), std::string::npos);

  EXPECT_FALSE(ParseQueryTrace("user=1 bogus tags=1\n").ok());
  EXPECT_FALSE(ParseQueryTrace("user=1 tags=1 what=ever\n").ok());
  EXPECT_FALSE(ParseQueryTrace("user=1 tags=1 geo=1,2\n").ok());
  EXPECT_FALSE(ParseQueryTrace("user=1 tags=1,,2\n").ok());
}

TEST(TraceTest, FileRoundTrip) {
  const std::vector<SocialQuery> original{MakeQuery(3, {1, 2}, 0.7)};
  const std::string path =
      std::string(::testing::TempDir()) + "/trace_test.txt";
  ASSERT_TRUE(SaveQueryTrace(original, path).ok());
  const auto loaded = LoadQueryTrace(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_EQ(loaded.value()[0].tags, original[0].tags);
  std::remove(path.c_str());
}

TEST(TraceTest, GeneratedWorkloadSurvivesRoundTrip) {
  DatasetConfig config = SmallDataset();
  config.num_users = 200;
  const Dataset dataset = GenerateDataset(config).value();
  QueryWorkloadConfig workload;
  workload.num_queries = 40;
  workload.with_geo_filter = true;
  const auto queries = GenerateQueries(dataset, workload).value();

  const auto parsed = ParseQueryTrace(SerializeQueryTrace(queries));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(parsed.value()[i].user, queries[i].user);
    EXPECT_EQ(parsed.value()[i].tags, queries[i].tags);
    EXPECT_EQ(parsed.value()[i].k, queries[i].k);
    EXPECT_NEAR(parsed.value()[i].alpha, queries[i].alpha, 1e-9);
    EXPECT_TRUE(
        ValidateQuery(parsed.value()[i], dataset.graph.num_users()).ok());
  }
}

}  // namespace
}  // namespace amici
